"""Figure 9: % of domains with completely mismatched mx patterns whose
patterns DO match some historical MX record — stale policies left
behind after a mail-server migration.

Paper: an increasing trend, reaching 63% (644 of 1,023) at the final
snapshot.
"""

from repro.analysis.report import render_table
from benchmarks.conftest import paper_row


def test_figure9(benchmark, campaign):
    series = benchmark(campaign.figure9_series)
    print()
    print(render_table(series, ["month_index", "candidates", "matched",
                                "percent"],
                       title="Figure 9 — mismatches explained by "
                             "historical MX records"))
    final = series[-1]
    print(paper_row("final matched-by-history (%)", 63.0,
                    round(final["percent"], 1)))

    assert final["candidates"] > 0
    # The share grows over the window (migrations accumulate) ...
    early = next(p for p in series if p["candidates"] > 0)
    assert final["percent"] >= early["percent"]
    # ... and lands in the paper's neighbourhood.
    assert 40 <= final["percent"] <= 85
