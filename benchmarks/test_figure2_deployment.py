"""Figure 2: weekly MTA-STS record deployment per TLD, 2021-09 → 2024-09.

Paper shape: adoption starts at 0.02-0.03% and rises 3-4x by 2024-09 to
0.07% (.com) … 0.12-0.13% (.org); a spike of 461 .org domains lands on
Jan 2, 2024.
"""

from repro.analysis.report import render_series
from benchmarks.conftest import paper_row

PAPER_FINAL_PCT = {"com": 0.07, "net": 0.09, "org": 0.13, "se": 0.08}


def _all_series(timeline):
    return {tld: timeline.adoption_series(tld)
            for tld in ("com", "net", "org", "se")}


def test_figure2(benchmark, timeline):
    series = benchmark(_all_series, timeline)
    print()
    for tld, points in series.items():
        sampled = points[::26]     # every ~6 months, for display
        print(render_series(
            [(i.date_string(), pct) for i, _, pct in sampled],
            title=f"Figure 2 — .{tld} (% of MX domains with MTA-STS)",
            bar_scale=300))
        first_count = points[0][1]
        last_count = points[-1][1]
        growth = last_count / max(1, first_count)
        print(paper_row(f".{tld} growth factor over window", "3-4x",
                        round(growth, 2)))
        assert 2.0 <= growth <= 6.5
        print(paper_row(f".{tld} final share (%)", PAPER_FINAL_PCT[tld],
                        round(points[-1][2], 3)))

    # The Jan 2, 2024 .org spike: a visible week-over-week jump.
    org = series["org"]
    jumps = {org[i][0].date_string(): org[i][1] - org[i - 1][1]
             for i in range(1, len(org))}
    window = [v for d, v in jumps.items() if "2023-12-25" <= d <= "2024-01-15"]
    typical = sorted(jumps.values())[len(jumps) // 2]
    assert max(window) > typical + 3
    # .org overtakes every other TLD by the end, as in the paper.
    finals = {tld: points[-1][2] for tld, points in series.items()}
    assert finals["org"] == max(finals.values())
