"""§7.2: every reported survey statistic, recomputed from the answer
sheets.

Paper values asserted exactly — the synthesizer reproduces the
released answer marginals, and the analysis code recomputes them.
"""

from repro.survey.analysis import analyze
from repro.survey.synthesize import synthesize_respondents
from benchmarks.conftest import paper_row


def test_section7(benchmark, survey_findings):
    findings = benchmark(lambda: analyze(synthesize_respondents()))
    print()
    checks = [
        ("heard of MTA-STS", findings.heard_of_mta_sts, (89, 94, 94.7)),
        ("deployed MTA-STS", findings.deployed, (50, 88, 56.8)),
        ("motivation: prevent downgrade", findings.motivation_downgrade,
         (34, 42, 81.0)),
        ("requirement: customer demand", findings.customer_demand,
         (13, 41, 31.7)),
        ("requirement: regulation", findings.regulation, (14, 41, 34.1)),
        ("bottleneck: operational complexity",
         findings.bottleneck_complexity, (21, 43, 48.8)),
        ("bottleneck: DANE more secure",
         findings.bottleneck_dane_secure, (17, 43, 39.5)),
        ("bottleneck: no need", findings.bottleneck_no_need, (5, 43, 11.6)),
        ("not deployed: use DANE", findings.not_deployed_use_dane,
         (15, 33, 45.5)),
        ("not deployed: too complicated",
         findings.not_deployed_too_complicated, (9, 33, 27.3)),
        ("management: HTTPS policy file hard",
         findings.mgmt_https_hard, (8, 41, 19.5)),
        ("management: policy updates hard",
         findings.mgmt_updates_hard, (11, 41, 26.8)),
        ("updates: never updated", findings.update_never, (15, 42, 35.7)),
        ("updates: TXT record first", findings.update_txt_first,
         (10, 42, 23.8)),
        ("heard of DANE", findings.heard_dane, (78, 79, 98.7)),
        ("no TLSA served", findings.dane_no_tlsa, (26, 78, 33.3)),
        ("DANE is superior", findings.dane_superior, (51, 70, 72.9)),
    ]
    for label, measured, (count, denom, pct) in checks:
        print(paper_row(label, f"{count}/{denom} ({pct}%)",
                        f"{measured[0]}/{measured[1]} "
                        f"({round(measured[2], 1)}%)"))
        assert measured[0] == count, label
        assert measured[1] == denom, label
        assert round(measured[2], 1) == pct, label

    print(paper_row("trust web PKI more than DANE", 9,
                    findings.trust_web_pki))
    assert findings.trust_web_pki == 9
    assert findings.favored_over_dane == 10
    assert findings.reputation_large_providers == 5
    assert findings.dane_no_dnssec == 10
    assert findings.engaged == 117
