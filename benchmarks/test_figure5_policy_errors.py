"""Figure 5: policy-server errors by failure stage and managing entity.

Paper: at the final snapshot 9,588 (37.8%) self-managed vs 1,393
(4.9%) third-party policy servers are misconfigured; TLS is the
dominant stage everywhere (abstract: 35% of self-managed and 3.9% of
third-party policy servers fail the TLS handshake); DNS errors are
rare for self-managed and absent for third-party; a June 8, 2024
spike (1,385 domains, one provider issuing self-signed certificates)
hits the third-party series; Porkbun drives the late self-managed
spike.
"""

from repro.analysis.report import render_table
from benchmarks.conftest import paper_row

STAGES = ["dns", "tcp", "tls", "http", "policy-syntax"]


def test_figure5(benchmark, campaign):
    self_rows = benchmark(campaign.figure5_series, "self-managed")
    third_rows = campaign.figure5_series("third-party")
    print()
    print(render_table(self_rows, ["month_index", "total"] + STAGES + ["any"],
                       title="Figure 5 (top) — self-managed policy-server "
                             "errors (%)"))
    print(render_table(third_rows, ["month_index", "total"] + STAGES + ["any"],
                       title="Figure 5 (bottom) — third-party policy-server "
                             "errors (%)"))

    final_self, final_third = self_rows[-1], third_rows[-1]
    print(paper_row("self-managed errors, final (%)", 37.8,
                    round(final_self["any"], 1)))
    print(paper_row("third-party errors, final (%)", 4.9,
                    round(final_third["any"], 1)))
    print(paper_row("self-managed TLS failures, final (%)", 35.0,
                    round(final_self["tls"], 1)))
    print(paper_row("third-party TLS failures, final (%)", 3.9,
                    round(final_third["tls"], 1)))

    assert 20 <= final_self["any"] <= 50
    assert 2 <= final_third["any"] <= 9
    # Self-managed is worse in every month; by a wide factor at the end.
    for s, t in zip(self_rows, third_rows):
        assert s["any"] > t["any"]
    assert final_self["any"] > 4 * final_third["any"]

    # TLS dominates both series at the final snapshot.
    assert final_self["tls"] == max(final_self[stage] for stage in STAGES)
    assert final_third["tls"] == max(final_third[stage] for stage in STAGES)

    # DNS errors: rare (self) to none (third).
    assert final_self["dns"] < 1.0
    assert final_third["dns"] == 0.0

    # The June third-party spike is transient.
    june = next(r for r in third_rows if r["month_index"] == 7)
    assert june["tls"] > final_third["tls"]
    print(paper_row("June-2024 third-party TLS spike (%)", "~9",
                    round(june["tls"], 1)))
