"""Figure 11: survey demographics — respondents by managed-account
bucket, with the MTA-STS-deployed overlay.

Paper: 92 respondents answered, from 22 operators managing fewer than
10 accounts to 36 managing more than 500; larger operators deploy
MTA-STS more often (the deployed overlay grows with size).
"""

from repro.survey.analysis import analyze
from repro.survey.synthesize import synthesize_respondents
from benchmarks.conftest import paper_row


def test_figure11(benchmark, survey_findings):
    findings = benchmark(lambda: analyze(synthesize_respondents()))
    print()
    print("  Figure 11 — respondents (total / deployed) per bucket")
    for bucket in ("<10", "10-100", "100-500", "500-1k", ">1k"):
        total = findings.demographics[bucket]
        deployed = findings.demographics_deployed[bucket]
        print(f"  {bucket:<8} {total:>3} / {deployed:<3} "
              + "#" * total + " (" + "+" * deployed + ")")

    assert sum(findings.demographics.values()) == 92
    print(paper_row("smallest bucket (<10 accounts)", 22,
                    findings.demographics["<10"]))
    assert findings.demographics["<10"] == 22
    above_500 = (findings.demographics["500-1k"]
                 + findings.demographics[">1k"])
    print(paper_row("operators with >500 accounts", 36, above_500))
    assert above_500 == 36

    # Deployment correlates with operator size.
    sizes = ["<10", "10-100", "100-500", "500-1k", ">1k"]
    ratios = [findings.demographics_deployed[b]
              / max(1, findings.demographics[b]) for b in sizes]
    assert ratios[-1] > ratios[0]
    assert sum(findings.demographics_deployed.values()) == 50
