"""§4.7: the responsible-disclosure campaign.

Paper: 20,144 misconfigured domains notified via postmaster@; more
than 5,000 (~25%) bounced; after the campaign, 2,064 (10%) of the
misconfigured domains had their issues resolved.
"""

from repro.measurement.notify import DisclosureCampaign
from repro.measurement.taxonomy import categorize
from benchmarks.conftest import SCALE, paper_row


def test_section47(benchmark, campaign, timeline):
    latest = campaign.store.latest()
    misconfigured = [snap for snap in latest if categorize(snap)]

    # The campaign delivers through the same simulated SMTP fabric the
    # scanner used, so it needs the final month's world to be alive.
    materialized = timeline.materialize(campaign.store.latest_month())

    def run():
        disclosure = DisclosureCampaign(materialized.world,
                                        extra_bounce_rate=0.22)
        return disclosure.run(misconfigured)

    report = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(paper_row("notified (count)", round(20_144 * SCALE),
                    report.notified))
    print(paper_row("bounce rate (%)", ">24.8",
                    round(100 * report.bounce_rate, 1)))
    print(paper_row("remediation rate (%)", 10.0,
                    round(100 * report.remediation_rate, 1)))

    scaled_notified = 20_144 * SCALE
    assert abs(report.notified - scaled_notified) <= 0.4 * scaled_notified
    # More than a quarter of notifications bounce.
    assert report.bounce_rate > 0.15
    assert report.bounce_rate < 0.5
    # Roughly 10% remediate.
    assert 0.03 <= report.remediation_rate <= 0.2
