"""Figure 6: % of MTA-STS domains whose MX hosts present PKIX-invalid
certificates, split by managing entity and failure class.

Paper: at the final snapshot, 1,046 (4.4%) self-managed vs 397 (1%)
third-party-hosted domains present at least one invalid MX
certificate; CN mismatch dominates the self-managed side (270 of
them fixed their CN mismatch in the last snapshot); one provider,
mxrouting.net, accounts for 39% of the broken third-party domains.
"""

from repro.analysis.report import render_table
from benchmarks.conftest import paper_row

CLASSES = ["cn-mismatch", "self-signed", "expired"]


def test_figure6(benchmark, campaign):
    self_rows = benchmark(campaign.figure6_series, "self-managed")
    third_rows = campaign.figure6_series("third-party")
    print()
    print(render_table(self_rows,
                       ["month_index", "total", "invalid_pct"] + CLASSES,
                       title="Figure 6 (top) — self-managed MX-cert "
                             "errors (%)"))
    print(render_table(third_rows,
                       ["month_index", "total", "invalid_pct"] + CLASSES,
                       title="Figure 6 (bottom) — third-party MX-cert "
                             "errors (%)"))

    final_self, final_third = self_rows[-1], third_rows[-1]
    print(paper_row("self-managed invalid MX (%)", 4.4,
                    round(final_self["invalid_pct"], 2)))
    print(paper_row("third-party invalid MX (%)", 1.0,
                    round(final_third["invalid_pct"], 2)))

    assert 2 <= final_self["invalid_pct"] <= 8
    assert 0.2 <= final_third["invalid_pct"] <= 2.5
    # Self-managed meaningfully worse throughout.
    for s, t in zip(self_rows, third_rows):
        if s["total"] and t["total"]:
            assert s["invalid_pct"] >= t["invalid_pct"]
    assert final_self["invalid_pct"] > 2 * final_third["invalid_pct"]

    # CN mismatch leads the self-managed failure classes.
    assert final_self["cn-mismatch"] == max(
        final_self[c] for c in CLASSES)
