"""Table 1: datasets overview — domains with MX records and the share
carrying MTA-STS records per TLD, at the final snapshot (2024-09-29).

Paper values: .com 73,939,004 MX domains / 53,800 (0.07%) MTA-STS;
.net 6,248,969 / 6,183 (0.09%); .org 5,781,423 / 7,355 (0.13%);
.se 822,449 / 692 (0.08%).
"""

from repro.analysis.report import render_table
from benchmarks.conftest import SCALE, paper_row

PAPER = {
    "com": (73_939_004, 53_800, 0.07),
    "net": (6_248_969, 6_183, 0.09),
    "org": (5_781_423, 7_355, 0.13),
    "se": (822_449, 692, 0.08),
}


def test_table1(benchmark, timeline):
    rows = benchmark(timeline.table1_rows)
    print()
    print(render_table(rows, ["tld", "mx_domains", "sts_domains",
                              "sts_percent"],
                       title=f"Table 1 (scale={SCALE})"))
    by_tld = {r["tld"]: r for r in rows}
    for tld, (mx, sts, pct) in PAPER.items():
        row = by_tld[tld]
        print(paper_row(f".{tld} MTA-STS share (%)", pct,
                        round(row["sts_percent"], 3)))
        # Scaled counts track the paper's counts linearly.
        assert abs(row["mx_domains"] - mx * SCALE) / (mx * SCALE) < 0.01
        assert abs(row["sts_domains"] - sts * SCALE) / (sts * SCALE) < 0.25
        # Percentages are scale-free: within 2x of the paper's.
        assert 0.4 * pct < row["sts_percent"] < 2.2 * pct
    # Ordering: .org has the highest share, as in the paper.
    assert by_tld["org"]["sts_percent"] == max(
        r["sts_percent"] for r in rows)
