"""Figure 10: inconsistency among domains outsourcing BOTH email and
policy hosting, split by whether one provider manages both.

Paper: of 26,414 such domains, 7,492 use the same provider for both
and 18,922 split across different providers; same-provider
inconsistency is essentially nonexistent (exactly 1 domain,
laura-norman.com, a persistent typo) while 640 (3.4%) of the
different-provider domains are inconsistent.
"""

from repro.analysis.report import render_table
from benchmarks.conftest import SCALE, paper_row


def test_figure10(benchmark, campaign):
    rows = benchmark(campaign.figure10_series)
    print()
    print(render_table(rows, ["month_index", "same_total", "same_bad",
                              "same_pct", "diff_total", "diff_bad",
                              "diff_pct"],
                       title="Figure 10 — inconsistency by provider "
                             "arrangement"))
    final = rows[-1]
    print(paper_row("same-provider inconsistent (count)", 1,
                    final["same_bad"]))
    print(paper_row("different-provider inconsistent (%)", 3.4,
                    round(final["diff_pct"], 2)))

    assert final["same_total"] > 0 and final["diff_total"] > 0
    # Same-provider: at most the single known laura-norman typo, in
    # every month it is observable.
    for row in rows:
        assert row["same_bad"] <= 1
    # Different providers carry the inconsistency burden.
    assert final["diff_bad"] >= final["same_bad"]
    assert final["diff_pct"] <= 10
    # Population split leans toward different-provider arrangements.
    assert final["diff_total"] >= final["same_total"]
