"""Table 2: the top-8 policy hosting providers, their CNAME patterns,
customer counts, and opt-out behaviour.

Paper: Tutanota 7,614 / DMARCReport 7,293 / PowerDMARC 3,753 /
EasyDMARC 2,222 / Mailhardener 1,558 / URIports 1,100 / Sendmarc 805 /
OnDMARC 451 domains; three providers answer NXDOMAIN after opt-out,
four keep reissuing certificates, DMARCReport serves empty policy
files, Tutanota rejects mail while leaving policies stale.
"""

from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.providers import (
    OptOutBehavior, TABLE2_DOMAIN_COUNTS, table2_providers,
)
from repro.ecosystem.world import World
from repro.measurement.delegation import (
    delegation_census, probe_opted_out, table2_rows,
)
from repro.analysis.report import render_table
from benchmarks.conftest import SCALE, paper_row

PROVIDER_SLD = {
    "Tutanota": "tutanota.de", "DMARCReport": "dmarcinput.com",
    "PowerDMARC": "mta-sts.tech", "EasyDMARC": "easydmarc.pro",
    "Mailhardener": "mailhardener.com", "URIports": "uriports.com",
    "Sendmarc": "sdmarc.net", "OnDMARC": "ondmarc.com",
}


def test_table2_census(benchmark, campaign):
    # The census keeps the long-tail generic providers in view too;
    # rows are then joined against the Table-2 eight.
    census = benchmark(campaign.table2_census, top=16)
    providers = {p.name: p for p in table2_providers()}
    rows = table2_rows(census, providers)
    print()
    print(render_table(rows, ["provider", "cname_example", "domains",
                              "email_hosting", "optout_nxdomain",
                              "optout_reissues_cert",
                              "optout_policy_update"],
                       title=f"Table 2 (scale={SCALE})"))

    by_provider = {r["provider"]: r for r in rows}
    # Counts track the paper linearly and keep the ranking.
    for name, paper_count in TABLE2_DOMAIN_COUNTS.items():
        row = by_provider.get(name)
        assert row is not None, f"{name} missing from census"
        scaled = paper_count * SCALE
        print(paper_row(f"{name} customers", round(scaled), row["domains"]))
        assert abs(row["domains"] - scaled) <= max(3, 0.35 * scaled)
    assert rows[0]["provider"] in ("Tutanota", "DMARCReport")

    # Behaviour flags match the paper's right-hand columns.
    assert by_provider["Tutanota"]["email_hosting"]
    assert sum(r["optout_nxdomain"] for r in rows
               if r["provider"] in TABLE2_DOMAIN_COUNTS) == 3
    assert by_provider["DMARCReport"]["optout_policy_update"] == "empty-file"


def test_table2_optout_probes(benchmark):
    """Exercise each provider's opt-out path against a live world."""
    def run():
        world = World()
        observations = {}
        for provider in table2_providers():
            domain = f"cust-{provider.name.lower()}.com"
            deploy_domain(world, DomainSpec(domain=domain,
                                            policy_provider=provider))
            provider.customer_opts_out(world, domain)
            world.resolver.flush_cache()
            observations[provider.name] = probe_opted_out(
                world, provider, domain)
        return observations

    observations = benchmark(run)
    print()
    for name, obs in observations.items():
        print(f"  {name:<14} resolves={obs.policy_resolves!s:<6} "
              f"cert_valid={obs.cert_valid!s:<6} "
              f"effective_mode={obs.effective_mode}")

    # NXDOMAIN providers: the policy stops resolving.
    for name in ("PowerDMARC", "Mailhardener", "URIports"):
        assert not observations[name].policy_resolves
    # Certificate reissuers keep a valid cert.
    for name in ("DMARCReport", "EasyDMARC", "Sendmarc", "OnDMARC"):
        assert observations[name].cert_valid
    # DMARCReport's empty file degrades to none-equivalent.
    assert observations["DMARCReport"].effective_mode == "none"
    # Stale-policy providers keep serving the old policy verbatim.
    assert observations["Sendmarc"].effective_mode in ("testing", "enforce")
