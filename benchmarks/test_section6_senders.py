"""§6.2: sender-side MTA-STS validation, measured with the testbed.

Paper (2,394 sender domains): 2,264 (94.6%) deliver over TLS; 2,232
(93.2%) are purely opportunistic; 31 (1.3%) always require PKIX-valid
certificates; 469 (19.6%) validate MTA-STS; 714 (29.8%) validate DANE;
203 validate both; 62 of those prefer MTA-STS over DANE (the known
milter bug, not recommended by RFC 8461).
"""

import pytest

from repro.ecosystem.world import World
from repro.measurement.senderside import (
    SENDER_COUNT, SenderSideTestbed, synthesize_sender_population,
)
from benchmarks.conftest import paper_row

PAPER = {
    "senders": 2394, "tls": 2264, "pkix_always": 31,
    "mta_sts_validators": 469, "dane_validators": 714,
    "both_validators": 203, "prefer_sts_over_dane": 62,
}


@pytest.fixture(scope="module")
def report():
    testbed = SenderSideTestbed(World())
    profiles = synthesize_sender_population()
    return testbed, profiles


def test_section6_campaign(benchmark, report):
    testbed, profiles = report
    result = benchmark.pedantic(testbed.run_campaign, args=(profiles,),
                                iterations=1, rounds=1)
    print()
    for key, paper_value in PAPER.items():
        print(paper_row(key, paper_value, result[key]))

    assert result["senders"] == SENDER_COUNT
    # Percent-level agreement with every §6.2 marginal.
    assert abs(result["tls"] / result["senders"] - 0.946) < 0.02
    assert abs(result["mta_sts_validators"] / result["senders"]
               - 469 / 2394) < 0.03
    assert abs(result["dane_validators"] / result["senders"]
               - 714 / 2394) < 0.03
    assert abs(result["both_validators"] - 203) < 60
    assert 0 < result["prefer_sts_over_dane"] <= result["both_validators"]
    assert abs(result["pkix_always"] - 31) < 20
    # Shape: DANE validation outnumbers MTA-STS validation among senders.
    assert result["dane_validators"] > result["mta_sts_validators"]


def test_section6_dataset_shape(benchmark, report):
    """§6.1's dataset statistics: 3,806 tests over 2,394 senders; the
    top-10 sending operators contribute 60.7% of MX interactions."""
    from repro.measurement.senderside import (
        latest_test_per_sender, operator_concentration,
        synthesize_test_log,
    )
    _, profiles = report
    log = benchmark(synthesize_test_log, profiles)
    latest = latest_test_per_sender(log)
    stats = operator_concentration(log)
    print()
    print(paper_row("deliverability tests", 3806, len(log)))
    print(paper_row("unique sender domains", 2394, len(latest)))
    print(paper_row("top-10 operator share (%)", 60.7,
                    round(100 * stats["top_share"], 1)))
    assert len(log) == 3806
    assert len(latest) == 2394
    assert 0.5 <= stats["top_share"] <= 0.72
