"""Scan-pipeline benchmark: times the monthly component-scan campaign
under each execution strategy and writes ``BENCH_scan.json``.

Four configurations of the same campaign run at the benchmark scale
(0.02, the scale the figure benchmarks use):

* ``full-serial``        — from-scratch world per month, serial scan
  (the pre-optimisation reference path);
* ``incremental-serial`` — one long-lived world updated by diffing
  (the default pipeline);
* ``incremental-threaded`` — the same plus the sharded scan backend;
* ``incremental-serial-checkpointed`` — the default pipeline with
  durable per-month checkpoints (the report records the overhead,
  capped at 10% by the acceptance criteria).

Every configuration must produce identical figure series — the run
aborts if the outputs diverge.  The JSON report records wall-clock per
configuration, the speedup over both the in-run reference and the
recorded pre-optimisation baseline, and the per-stage ``ScanStats``.

The run also exercises the observability layer: the incremental-serial
campaign runs with a :class:`~repro.obs.monitor.CampaignMonitor`
attached (its monthly metrics JSONL and the final month's Prometheus
exposition are written when ``--metrics-out`` / ``--prom-out`` are
given, and its health verdict lands in the report), and one extra
profiled campaign records the wall-clock stage split plus the top
slowest domains under the report's ``profile`` key.

``--check BASELINE.json`` turns the run into a perf-regression gate:
every configuration's wall-clock is compared against the baseline
report's, and the run fails when any regresses by more than
``--max-regression`` (default 25% — generous, because CI machines are
not the reference machine).

Usage::

    PYTHONPATH=src python benchmarks/bench_scan_pipeline.py \
        [--scale 0.02] [--seed 20240929] [--jobs 4] [--out BENCH_scan.json] \
        [--check BASELINE.json] [--max-regression 0.25] \
        [--metrics-out FILE.jsonl] [--prom-out FILE.prom]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time

from repro.analysis.series import run_campaign
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.measurement.executor import ScanExecutor
from repro.obs.exporters import prometheus_exposition, write_lines_atomic
from repro.obs.monitor import CampaignMonitor

#: Wall-clock of the same workloads on the pre-optimisation tree
#: (commit 25e7ef2: linear-scan delegation lookup, no memoization, full
#: rebuild per month), measured on the reference machine.
SEED_BASELINE_SECONDS = {
    "campaign": 43.45,            # 12-month campaign, scale 0.02
    "figure4_benchmark": 51.4,    # pytest benchmarks/test_figure4_misconfig.py
}

#: The figure-4 benchmark re-run on this tree (same machine, same
#: command as the baseline row above).  Re-measure when the pipeline
#: changes: ``PYTHONPATH=src python -m pytest benchmarks/test_figure4_misconfig.py``.
MEASURED_FIGURE4_SECONDS = 10.2

#: Wall-clock of the same workloads immediately *before* the
#: retry/fault-injection layer landed (commit dc329b7, reference
#: machine) — the bar for the retry layer's no-faults overhead, which
#: the acceptance criteria cap at 10%.
PRE_RETRY_SECONDS = {
    "full-serial": 11.537,
    "incremental-serial": 7.472,
}


def _figures_digest(analysis) -> str:
    """A digest over every figure series — the identity check."""
    payload = {
        "figure4": analysis.figure4_series(),
        "figure5_self": analysis.figure5_series("self-managed"),
        "figure5_third": analysis.figure5_series("third-party"),
        "figure6_self": analysis.figure6_series("self-managed"),
        "figure6_third": analysis.figure6_series("third-party"),
        "figure7": analysis.figure7_series(),
        "figure8": analysis.figure8_series(),
        "figure9": analysis.figure9_series(),
        "figure10": analysis.figure10_series(),
        "table2": analysis.table2_census(),
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _run(config: PopulationConfig, *, incremental: bool,
         backend: str, jobs: int, monitor: CampaignMonitor = None,
         profile: bool = False, state_dir: str = None) -> dict:
    timeline = EcosystemTimeline(TimelineConfig(config))
    executor = ScanExecutor(backend=backend, jobs=jobs, profile=profile)
    started = time.perf_counter()
    analysis = run_campaign(timeline, incremental=incremental,
                            executor=executor, monitor=monitor,
                            state_dir=state_dir)
    elapsed = time.perf_counter() - started
    totals = analysis.total_stats()
    result = {
        "seconds": round(elapsed, 3),
        "figures_sha256": _figures_digest(analysis),
        "stats": {k: (round(v, 3) if isinstance(v, float) else v)
                  for k, v in totals.as_dict().items()},
    }
    if profile:
        result["profile"] = executor.last_profile.to_dict()
    return result


def _check_regressions(results: dict, baseline_path: str,
                       max_regression: float) -> list:
    """Compare wall-clock per configuration against a baseline report;
    returns the list of failures."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures = []
    for name, row in results.items():
        base = baseline.get("results", {}).get(name)
        if base is None:
            continue
        before, now = base["seconds"], row["seconds"]
        change = (now - before) / before
        verdict = "FAIL" if change > max_regression else "ok"
        print(f"perf gate [{name}]: {before:.2f}s -> {now:.2f}s "
              f"({change:+.1%}, limit +{max_regression:.0%}) {verdict}")
        if change > max_regression:
            failures.append(name)
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=20240929)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--out", default="BENCH_scan.json")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail if any configuration regresses past "
                             "--max-regression vs this baseline report")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        metavar="FRACTION",
                        help="allowed wall-clock regression (default "
                             "0.25 = 25%%)")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the monitored campaign's monthly "
                             "metrics JSONL feed to FILE")
    parser.add_argument("--prom-out", default=None, metavar="FILE",
                        help="write the final month's Prometheus "
                             "exposition to FILE")
    parser.add_argument("--skip-profile", action="store_true",
                        help="skip the extra profiled campaign run")
    args = parser.parse_args()

    import shutil
    import tempfile

    config = PopulationConfig(scale=args.scale, seed=args.seed)
    monitor = CampaignMonitor()
    state_dir = tempfile.mkdtemp(prefix="bench-campaign-store-")
    configurations = {
        "full-serial": dict(incremental=False, backend="serial", jobs=1),
        "incremental-serial": dict(incremental=True, backend="serial",
                                   jobs=1, monitor=monitor),
        "incremental-threaded": dict(incremental=True, backend="threaded",
                                     jobs=args.jobs),
        # The default pipeline plus durable per-month checkpoints
        # (shard + manifest commit after every scanned month) — the
        # acceptance bar caps the overhead at 10% of incremental-serial.
        "incremental-serial-checkpointed": dict(
            incremental=True, backend="serial", jobs=1,
            state_dir=state_dir),
    }

    results = {}
    try:
        for name, options in configurations.items():
            print(f"running {name} ...", flush=True)
            results[name] = _run(config, **options)
            print(f"  {results[name]['seconds']:.2f}s", flush=True)
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)

    checkpointed = results["incremental-serial-checkpointed"]
    plain = results["incremental-serial"]["seconds"]
    checkpoint_overhead = {
        "plain_seconds": plain,
        "checkpointed_seconds": checkpointed["seconds"],
        "commit_seconds": checkpointed["stats"].get(
            "checkpoint_seconds", 0.0),
        "overhead_percent": round(
            100.0 * (checkpointed["seconds"] - plain) / plain, 1),
    }

    profile_report = None
    if not args.skip_profile:
        # One extra profiled campaign: its timings never replace the
        # unprofiled measurements above (profiling adds wall-clock
        # overhead by design), but its stage split and slowest-domain
        # list are recorded for the next perf PR.
        print("running incremental-serial (profiled) ...", flush=True)
        profiled = _run(config, incremental=True, backend="serial",
                        jobs=1, profile=True)
        print(f"  {profiled['seconds']:.2f}s", flush=True)
        reference = results["incremental-serial"]["seconds"]
        profile_report = {
            "seconds": profiled["seconds"],
            "overhead_vs_unprofiled_percent": round(
                100.0 * (profiled["seconds"] - reference) / reference, 1),
            **profiled["profile"],
        }
        results["incremental-serial-profiled"] = {
            "seconds": profiled["seconds"],
            "figures_sha256": profiled["figures_sha256"],
        }

    digests = {r["figures_sha256"] for r in results.values()}
    if len(digests) != 1:
        print("FATAL: configurations produced diverging figure series")
        for name, r in results.items():
            print(f"  {name}: {r['figures_sha256']}")
        return 1

    # The recorded seed baseline was measured at the default scale and
    # seed; at any other operating point the comparison is meaningless.
    comparable = args.scale == 0.02 and args.seed == 20240929
    reference = results["full-serial"]["seconds"]
    for name, r in results.items():
        r["speedup_vs_full_serial"] = round(reference / r["seconds"], 2)
        if comparable:
            r["speedup_vs_seed_baseline"] = round(
                SEED_BASELINE_SECONDS["campaign"] / r["seconds"], 2)

    # Retry-layer overhead with faults disabled: the retry plumbing is
    # on every connect path even without a fault plan, and must stay
    # cheap (< 10% against the pre-retry tree).
    retry_overhead = {}
    if comparable:
        for name, before in PRE_RETRY_SECONDS.items():
            measured = results[name]["seconds"]
            retry_overhead[name] = {
                "pre_retry_seconds": before,
                "measured_seconds": measured,
                "overhead_percent": round(100.0 * (measured - before)
                                          / before, 1),
            }

    health = monitor.health()
    print(f"campaign health: {health.level} "
          f"({len(monitor.records)} months monitored)")
    if args.metrics_out:
        records = monitor.write_jsonl(args.metrics_out)
        print(f"monthly metrics: {records} records -> {args.metrics_out}")
    if args.prom_out:
        last = monitor.records[-1]
        write_lines_atomic(args.prom_out, prometheus_exposition(
            last.metrics,
            labels={"month": str(last.month_index)}).splitlines())
        print(f"prometheus exposition: month {last.month_index} -> "
              f"{args.prom_out}")

    report = {
        "scale": args.scale,
        "seed": args.seed,
        "months": 12,
        "seed_baseline_seconds": SEED_BASELINE_SECONDS,
        "retry_layer_overhead": retry_overhead,
        "checkpoint_overhead": checkpoint_overhead,
        "figure4_benchmark": {
            "seed_baseline_seconds":
                SEED_BASELINE_SECONDS["figure4_benchmark"],
            "measured_seconds": MEASURED_FIGURE4_SECONDS,
            "speedup": round(SEED_BASELINE_SECONDS["figure4_benchmark"]
                             / MEASURED_FIGURE4_SECONDS, 2),
        },
        "figures_identical_across_configs": True,
        "campaign_health": health.as_dict(),
        "profile": profile_report,
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"\nwrote {args.out}")

    if args.check:
        failures = _check_regressions(results, args.check,
                                      args.max_regression)
        if failures:
            print("FATAL: perf-regression gate failed for: "
                  + ", ".join(failures))
            return 1
    for name, row in retry_overhead.items():
        print(f"retry-layer overhead [{name}]: "
              f"{row['overhead_percent']:+.1f}% "
              f"({row['pre_retry_seconds']}s -> "
              f"{row['measured_seconds']}s)")
    print(f"checkpoint overhead: "
          f"{checkpoint_overhead['overhead_percent']:+.1f}% "
          f"({checkpoint_overhead['plain_seconds']}s -> "
          f"{checkpoint_overhead['checkpointed_seconds']}s, "
          f"{checkpoint_overhead['commit_seconds']:.2f}s in commits)")
    best = min(results, key=lambda n: results[n]["seconds"])
    line = f"fastest: {best} at {results[best]['seconds']:.2f}s"
    if comparable:
        line += (f" ({results[best]['speedup_vs_seed_baseline']:.2f}x over "
                 f"the pre-optimisation baseline)")
    else:
        line += (f" ({results[best]['speedup_vs_full_serial']:.2f}x over "
                 f"full-serial; seed-baseline comparison only applies at "
                 f"the default scale/seed)")
    print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
