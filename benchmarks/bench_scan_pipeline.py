"""Scan-pipeline benchmark: times the monthly component-scan campaign
under each execution strategy and writes ``BENCH_scan.json``.

Four configurations of the same campaign run at the benchmark scale
(0.02, the scale the figure benchmarks use):

* ``full-serial``        — from-scratch world per month, serial scan
  (the pre-optimisation reference path);
* ``incremental-serial`` — one long-lived world updated by diffing
  (the default pipeline);
* ``incremental-threaded`` — the same plus the sharded scan backend;
* ``incremental-serial-checkpointed`` — the default pipeline with
  durable per-month checkpoints (the report records the overhead,
  capped at 10% by the acceptance criteria).

Every configuration must produce identical figure series — the run
aborts if the outputs diverge.  The JSON report records wall-clock per
configuration, the speedup over both the in-run reference and the
recorded pre-optimisation baseline, and the per-stage ``ScanStats``.

A fifth section exercises the **process backend** at a raised scale
(default 0.1, five times the figure scale): one serial reference
audit plus one ``--backend process`` audit per job count, recording
the cores-vs-throughput curve and every worker's peak RSS.  The run
aborts if any process audit's ``canonical_bytes()`` diverges from the
serial reference.  Read the curve against the recorded ``cpu_count``:
on a single-core machine the process backend *costs* (each worker
rebuilds its shard's world), and the curve only bends upward once real
cores are available.

A sixth section exercises the **delivery engine** (the campaign-scale
queued-delivery executor) at its own raised scale: a clean and a
fault-seeded campaign, each run serial and threaded, with the serial
run as the byte-identity reference — the run aborts if any threaded
ledger, metrics feed, or health report diverges.  The section records
per-variant wall-clock, messages/s, waves, and peak queue depth, and
``--check`` enforces both the wall-clock regression gate and an
absolute serial-clean throughput floor
(``DELIVERY_THROUGHPUT_FLOOR_MPS``).

A **tlsrpt pipeline** section exercises the RFC 8460 reporting path
over the delivery campaign at the delivery scale: clean and
fault-seeded runs, each serial and threaded, with the serial
received-report JSONL and ingestion-monitor window JSONL as the
byte-identity reference (the run aborts on divergence), plus a
separately timed offline re-ingestion of the saved report feed.
``--check`` enforces two absolute rate floors:
``TLSRPT_GENERATION_FLOOR_RPS`` (reports minted per second of
delivery time in the serial clean run) and
``TLSRPT_INGEST_FLOOR_RPS`` (aggregator + monitor re-ingestion).

A seventh section exercises the **policy-checker service** (``repro
serve``): a million-request seeded query mix replayed serially against
the evolving world, recording cache hit rate, p99 virtual latency,
stampede fan-in, and requests/s, plus a smaller serial-vs-threaded
pair whose metrics feeds must be byte-identical (the run aborts on
divergence).  ``--check`` enforces the wall-clock regression gate, an
absolute requests/s floor (``SERVE_THROUGHPUT_FLOOR_RPS``), and a
cache hit-rate floor (``SERVE_HITRATE_FLOOR``) — the hit rate is
deterministic at the pinned operating point, so a drop means the
verdict cache or the query mix changed behaviour.

The run also exercises the observability layer: the incremental-serial
campaign runs with a :class:`~repro.obs.monitor.CampaignMonitor`
attached (its monthly metrics JSONL and the final month's Prometheus
exposition are written when ``--metrics-out`` / ``--prom-out`` are
given, and its health verdict lands in the report), and one extra
profiled campaign records the wall-clock stage split plus the top
slowest domains under the report's ``profile`` key.

``--check BASELINE.json`` turns the run into a perf-regression gate:
every configuration's wall-clock (campaign configurations *and*
process-backend curve points) is compared against the baseline
report's, and the run fails when any regresses by more than
``--max-regression`` (default 25% — generous, because CI machines are
not the reference machine).  ``--check`` also enforces the overhead
bars: the retry layer's no-faults overhead and the checkpoint commit
overhead must both stay under 10%, and a violation fails the run
explicitly instead of being silently recorded in the report.

Usage::

    PYTHONPATH=src python benchmarks/bench_scan_pipeline.py \
        [--scale 0.02] [--seed 20240929] [--jobs 4] [--out BENCH_scan.json] \
        [--check BASELINE.json] [--max-regression 0.25] \
        [--process-scale 0.1] [--process-jobs 1,2,4] [--skip-process] \
        [--delivery-scale 0.1] [--delivery-senders 2394] \
        [--delivery-messages 42] [--skip-delivery] \
        [--tlsrpt-scale 0.1] [--tlsrpt-senders 600] \
        [--tlsrpt-messages 6] [--skip-tlsrpt] \
        [--serve-scale 0.02] [--serve-requests 1000000] [--skip-serve] \
        [--metrics-out FILE.jsonl] [--prom-out FILE.prom]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import time

from repro.analysis.series import run_campaign
from repro.ecosystem.population import PopulationConfig
from repro.measurement.delivery_campaign import (
    DeliveryCampaignConfig, run_delivery_campaign,
)
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.measurement.executor import ScanExecutor
from repro.obs.exporters import prometheus_exposition, write_lines_atomic
from repro.obs.monitor import CampaignMonitor

#: Wall-clock of the same workloads on the pre-optimisation tree
#: (commit 25e7ef2: linear-scan delegation lookup, no memoization, full
#: rebuild per month), measured on the reference machine.
SEED_BASELINE_SECONDS = {
    "campaign": 43.45,            # 12-month campaign, scale 0.02
    "figure4_benchmark": 51.4,    # pytest benchmarks/test_figure4_misconfig.py
}

#: The figure-4 benchmark re-run on this tree (same machine, same
#: command as the baseline row above).  Re-measure when the pipeline
#: changes: ``PYTHONPATH=src python -m pytest benchmarks/test_figure4_misconfig.py``.
MEASURED_FIGURE4_SECONDS = 10.7

#: The acceptance bars for the two always-on overhead sources.  Both
#: are enforced by ``--check``.
RETRY_OVERHEAD_BAR_PERCENT = 10.0
CHECKPOINT_OVERHEAD_BAR_PERCENT = 10.0

#: Absolute throughput floor for the delivery engine's serial clean
#: run at the default delivery operating point (scale 0.1, the full
#: §6.2 sender census, ~100k messages).  The reference machine
#: sustains well above this; the floor is set at roughly half the
#: measured rate so CI machines pass while a real throughput
#: regression (e.g. an accidental per-message world rebuild) fails.
DELIVERY_THROUGHPUT_FLOOR_MPS = 4_000.0

#: Absolute floors for the TLSRPT pipeline section: the serial clean
#: campaign's report-generation rate (reports minted per second of
#: delivery time, flushes and rua routing included) and the offline
#: re-ingestion rate of the saved report feed (``ReportAggregator`` +
#: ``TlsRptMonitor``).  The reference machine generates ~2.5k
#: reports/s clean (~1k faulted) and ingests ~47k reports/s; both
#: floors sit at less than half the worst measured rate so CI machines
#: pass while a real regression (e.g. a per-flush world walk) fails.
TLSRPT_GENERATION_FLOOR_RPS = 1_000.0
TLSRPT_INGEST_FLOOR_RPS = 15_000.0

#: Absolute floors for the policy-checker service's serial 1M-request
#: replay at the default operating point (scale 0.02, two month
#: segments, default Zipf mix and flash cadence).  The reference
#: machine sustains ~25k req/s at a 94.5% hit rate; the throughput
#: floor sits at roughly a third of that so CI machines pass, while
#: the hit-rate floor sits just under the deterministic measured value
#: — the mix and cache are seeded, so any drop below it is a
#: behavioural change, not noise.
SERVE_THROUGHPUT_FLOOR_RPS = 8_000.0
SERVE_HITRATE_FLOOR = 0.90

#: Minimum speedup of the columnar analysis path over the object path
#: for the full offline analysis phase (campaign load + every figure
#: series + the monitor feed and health report) at the columnar
#: section's operating point.  The columnar decoder skips
#: DomainSnapshot/MxObservation construction entirely and memoises
#: every pure classification behind its dictionary encodings, so the
#: reference machine measures well above this; the floor is the
#: regression gate, identity is asserted outright (RuntimeError).
COLUMNAR_SPEEDUP_FLOOR = 2.0

#: The retry/fault-injection layer's no-faults overhead, measured by
#: bracketing the commit that landed it: the campaign workload on
#: dc329b7 (its parent — no retry plumbing) against 6d8aa7c (the retry
#: layer), both trees re-run on the reference machine on 2026-08-09
#: (interleaved repetitions, minimum of >= 13 runs per tree as the
#: noise-floor estimator).  An earlier revision of this file compared
#: the *current* tree against the pre-retry constant instead, which
#: misattributed every later feature's cost (tracing, monitoring, the
#: durable store) to the retry layer — the recorded "overhead" drifted
#: to 15.5% while the bracketed layer cost stayed under the bar.
RETRY_LAYER_BRACKET = {
    "full-serial": {
        "pre_retry_seconds": 11.135,
        "post_retry_seconds": 11.128,
    },
    "incremental-serial": {
        "pre_retry_seconds": 6.852,
        "post_retry_seconds": 7.391,
    },
}


def _figures_digest(analysis) -> str:
    """A digest over every figure series — the identity check."""
    payload = {
        "figure4": analysis.figure4_series(),
        "figure5_self": analysis.figure5_series("self-managed"),
        "figure5_third": analysis.figure5_series("third-party"),
        "figure6_self": analysis.figure6_series("self-managed"),
        "figure6_third": analysis.figure6_series("third-party"),
        "figure7": analysis.figure7_series(),
        "figure8": analysis.figure8_series(),
        "figure9": analysis.figure9_series(),
        "figure10": analysis.figure10_series(),
        "table2": analysis.table2_census(),
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _run(config: PopulationConfig, *, incremental: bool,
         backend: str, jobs: int, monitor: CampaignMonitor = None,
         profile: bool = False, state_dir: str = None) -> dict:
    timeline = EcosystemTimeline(TimelineConfig(config))
    executor = ScanExecutor(backend=backend, jobs=jobs, profile=profile)
    started = time.perf_counter()
    analysis = run_campaign(timeline, incremental=incremental,
                            executor=executor, monitor=monitor,
                            state_dir=state_dir)
    elapsed = time.perf_counter() - started
    totals = analysis.total_stats()
    result = {
        "seconds": round(elapsed, 3),
        "figures_sha256": _figures_digest(analysis),
        "stats": {k: (round(v, 3) if isinstance(v, float) else v)
                  for k, v in totals.as_dict().items()},
    }
    if profile:
        result["profile"] = executor.last_profile.to_dict()
    return result


def _process_backend_section(scale: float, seed: int,
                             job_counts: list) -> dict:
    """One serial reference audit plus one process audit per job
    count, all at *scale* — the cores-vs-throughput curve.  Aborts
    (``RuntimeError``) if any process run's store diverges from the
    serial reference."""
    config = PopulationConfig(scale=scale, seed=seed)
    print(f"process backend curve (scale {scale}) ...", flush=True)

    started = time.perf_counter()
    serial = ScanExecutor(backend="serial", jobs=1).scan_population(config)
    serial_seconds = time.perf_counter() - started
    domains = serial.stats.domains_scanned
    reference_digest = hashlib.sha256(
        serial.store.canonical_bytes()).hexdigest()
    print(f"  serial       {serial_seconds:6.2f}s  "
          f"({domains} domains)", flush=True)

    rows = []
    for jobs in job_counts:
        started = time.perf_counter()
        result = ScanExecutor(backend="process",
                              jobs=jobs).scan_population(config)
        elapsed = time.perf_counter() - started
        digest = hashlib.sha256(result.store.canonical_bytes()).hexdigest()
        if digest != reference_digest:
            raise RuntimeError(
                f"process backend (jobs={jobs}) diverged from the "
                f"serial reference: {digest} != {reference_digest}")
        row = {
            "jobs": jobs,
            "seconds": round(elapsed, 3),
            "domains_per_second": round(domains / elapsed, 1),
            "speedup_vs_serial": round(serial_seconds / elapsed, 2),
            "worker_peak_rss_kib": result.worker_peak_rss_kib,
            "max_worker_rss_mib": round(
                max(result.worker_peak_rss_kib) / 1024.0, 1),
        }
        rows.append(row)
        print(f"  process -j{jobs:<2d} {elapsed:6.2f}s  "
              f"{row['domains_per_second']:7.1f} dom/s  "
              f"peak worker RSS {row['max_worker_rss_mib']:.0f} MiB",
              flush=True)

    return {
        "scale": scale,
        "seed": seed,
        "month_index": serial.month_index,
        "domains": domains,
        "cpu_count": os.cpu_count() or 1,
        "canonical_identical_to_serial": True,
        "serial": {
            "seconds": round(serial_seconds, 3),
            "domains_per_second": round(domains / serial_seconds, 1),
        },
        "jobs": rows,
    }


def _delivery_engine_section(scale: float, senders: int, messages: int,
                             jobs: int) -> dict:
    """Clean and fault-seeded delivery campaigns, each serial and
    threaded, with the serial ledger/metrics/health as the
    byte-identity reference.  Aborts (``RuntimeError``) on any
    divergence."""
    print(f"delivery engine (scale {scale}, {senders} senders x "
          f"{messages} messages) ...", flush=True)
    results = {}
    for label, fault_seed in (("clean", None), ("faulted", 4242)):
        config = DeliveryCampaignConfig(
            scale=scale, seed=11, month_index=3, senders=senders,
            messages_per_sender=messages, backpressure=20_000,
            fault_seed=fault_seed, fault_rate=0.2)
        reference = None
        for backend in ("serial", "threaded"):
            started = time.perf_counter()
            result = run_delivery_campaign(
                config, backend=backend,
                jobs=1 if backend == "serial" else jobs)
            elapsed = time.perf_counter() - started
            if backend == "serial":
                reference = result
            else:
                if result.ledger_digest != reference.ledger_digest:
                    raise RuntimeError(
                        f"delivery engine ({label}, threaded) ledger "
                        f"diverged from the serial reference: "
                        f"{result.ledger_digest} != "
                        f"{reference.ledger_digest}")
                if (result.monitor.to_jsonl()
                        != reference.monitor.to_jsonl()
                        or result.health().render()
                        != reference.health().render()):
                    raise RuntimeError(
                        f"delivery engine ({label}, threaded) metrics "
                        f"or health diverged from the serial reference")
            stats = result.stats
            results[f"{label}-{backend}"] = {
                "seconds": round(elapsed, 3),
                "jobs": stats.jobs,
                "waves": stats.waves,
                "delivered": stats.delivered,
                "bounced": stats.bounced,
                "attempts": stats.attempts,
                "queue_depth_peak": stats.queue_depth_peak,
                "world_build_seconds": round(
                    stats.world_build_seconds, 3),
                "deliver_seconds": round(stats.deliver_seconds, 3),
                "messages_per_second": round(
                    stats.messages_per_second, 1),
                "ledger_sha256": result.ledger_digest,
            }
            print(f"  {label}-{backend:<9s} {elapsed:6.2f}s  "
                  f"{stats.messages_per_second:8.1f} msg/s  "
                  f"{stats.waves} waves  peak depth "
                  f"{stats.queue_depth_peak}", flush=True)
    config = DeliveryCampaignConfig(
        scale=scale, senders=senders, messages_per_sender=messages)
    return {
        "scale": scale,
        "seed": 11,
        "month_index": 3,
        "senders": senders,
        "messages_per_sender": messages,
        "messages": config.total_messages,
        "backpressure": 20_000,
        "cpu_count": os.cpu_count() or 1,
        "ledgers_identical_across_backends": True,
        "throughput_floor_mps": DELIVERY_THROUGHPUT_FLOOR_MPS,
        "results": results,
    }


def _tlsrpt_pipeline_section(scale: float, senders: int, messages: int,
                             jobs: int) -> dict:
    """The RFC 8460 reporting pipeline over the delivery campaign:
    clean and fault-seeded runs, each serial and threaded, with the
    serial received-report JSONL and monitor window JSONL as the
    byte-identity reference, plus a separately timed offline
    re-ingestion of the serial clean report feed.  Aborts
    (``RuntimeError``) on any divergence."""
    from repro.core.reporting import ReportAggregator
    from repro.obs.tlsrpt_monitor import TlsRptMonitor

    print(f"tlsrpt pipeline (scale {scale}, {senders} senders x "
          f"{messages} messages) ...", flush=True)
    results = {}
    clean_serial = None
    for label, fault_seed in (("clean", None), ("faulted", 4242)):
        config = DeliveryCampaignConfig(
            scale=scale, seed=11, month_index=3, senders=senders,
            messages_per_sender=messages, backpressure=20_000,
            fault_seed=fault_seed, fault_rate=0.2, tlsrpt=True)
        reference = None
        for backend in ("serial", "threaded"):
            started = time.perf_counter()
            result = run_delivery_campaign(
                config, backend=backend,
                jobs=1 if backend == "serial" else jobs)
            elapsed = time.perf_counter() - started
            if backend == "serial":
                reference = result
                if label == "clean":
                    clean_serial = result
            else:
                if (result.tlsrpt_reports_jsonl
                        != reference.tlsrpt_reports_jsonl):
                    raise RuntimeError(
                        f"tlsrpt pipeline ({label}, threaded) report "
                        f"feed diverged from the serial reference")
                if (result.tlsrpt_monitor.to_jsonl()
                        != reference.tlsrpt_monitor.to_jsonl()
                        or result.ledger_digest
                        != reference.ledger_digest):
                    raise RuntimeError(
                        f"tlsrpt pipeline ({label}, threaded) monitor "
                        f"feed or ledger diverged from the serial "
                        f"reference")
            stats = result.stats
            generation_rps = (stats.reports_generated
                              / stats.deliver_seconds
                              if stats.deliver_seconds else 0.0)
            results[f"{label}-{backend}"] = {
                "seconds": round(elapsed, 3),
                "jobs": stats.jobs,
                "waves": stats.waves,
                "reports_generated": stats.reports_generated,
                "reports_delivered": stats.reports_delivered,
                "reports_bounced": stats.reports_bounced,
                "reports_received": stats.reports_received,
                "reports_missing_endpoint":
                    stats.reports_missing_endpoint,
                "reports_per_second": round(generation_rps, 1),
            }
            print(f"  {label}-{backend:<9s} {elapsed:6.2f}s  "
                  f"{generation_rps:7.1f} reports/s  "
                  f"{stats.reports_received} received", flush=True)

    lines = [line for line
             in clean_serial.tlsrpt_reports_jsonl.splitlines()
             if line.strip()]
    started = time.perf_counter()
    aggregator = ReportAggregator()
    for line in lines:
        aggregator.ingest(line)
    monitor = TlsRptMonitor()
    monitor.observe_reports(aggregator.reports)
    ingest_seconds = time.perf_counter() - started
    ingest_rps = (len(aggregator.reports) / ingest_seconds
                  if ingest_seconds else 0.0)
    print(f"  ingest       {ingest_seconds:6.3f}s  "
          f"{ingest_rps:7.1f} reports/s  "
          f"({len(aggregator.reports)} reports, "
          f"{len(monitor.records)} windows)", flush=True)

    return {
        "scale": scale,
        "seed": 11,
        "month_index": 3,
        "senders": senders,
        "messages_per_sender": messages,
        "backpressure": 20_000,
        "cpu_count": os.cpu_count() or 1,
        "reports_identical_across_backends": True,
        "generation_floor_rps": TLSRPT_GENERATION_FLOOR_RPS,
        "ingest_floor_rps": TLSRPT_INGEST_FLOOR_RPS,
        "ingest": {
            "seconds": round(ingest_seconds, 3),
            "reports": len(aggregator.reports),
            "windows": len(monitor.records),
            "malformed": aggregator.malformed,
            "reports_per_second": round(ingest_rps, 1),
        },
        "results": results,
    }


def _policy_checker_section(scale: float, requests: int,
                            jobs: int) -> dict:
    """The ``repro serve`` replay: one serial million-request run for
    the throughput/hit-rate record, plus a smaller serial-vs-threaded
    pair as the byte-identity check.  Aborts (``RuntimeError``) if the
    threaded metrics feed or health report diverges from serial."""
    from repro.measurement.serve import ServeConfig, run_serve

    print(f"policy-checker service (scale {scale}, "
          f"{requests:,} requests) ...", flush=True)
    config = ServeConfig(scale=scale, requests=requests, months=2)
    started = time.perf_counter()
    result = run_serve(config)
    elapsed = time.perf_counter() - started
    stats = result.stats
    print(f"  serial       {elapsed:6.2f}s  "
          f"{stats.requests_per_second:8.1f} req/s  "
          f"hit rate {stats.hit_rate:.2%}  "
          f"p99 {result.p99_latency_seconds:.3f}s", flush=True)

    identity_config = ServeConfig(scale=scale, months=2,
                                  requests=max(1, requests // 10))
    reference = run_serve(identity_config)
    started = time.perf_counter()
    threaded = run_serve(identity_config, backend="threaded", jobs=jobs)
    threaded_seconds = time.perf_counter() - started
    if threaded.monitor.to_jsonl() != reference.monitor.to_jsonl():
        raise RuntimeError(
            "policy-checker service (threaded) metrics feed diverged "
            "from the serial reference")
    if (threaded.health().render() != reference.health().render()
            or threaded.stats.comparable()
            != reference.stats.comparable()):
        raise RuntimeError(
            "policy-checker service (threaded) health or stats "
            "diverged from the serial reference")
    print(f"  threaded -j{jobs:<2d} {threaded_seconds:6.2f}s  "
          f"({identity_config.requests:,} requests, metrics "
          f"byte-identical to serial)", flush=True)

    return {
        "scale": scale,
        "seed": config.seed,
        "query_seed": config.query_seed,
        "months": config.months,
        "throughput_floor_rps": SERVE_THROUGHPUT_FLOOR_RPS,
        "hit_rate_floor": SERVE_HITRATE_FLOOR,
        "metrics_identical_across_backends": True,
        "results": {
            "serve-serial": {
                "seconds": round(elapsed, 3),
                "requests": stats.requests,
                "flash_requests": stats.flash_requests,
                "computations": stats.computations,
                "hits": stats.hits,
                "collapsed": stats.collapsed,
                "evictions": stats.evictions,
                "hit_rate": round(stats.hit_rate, 4),
                "stampede_fanin_peak": stats.stampede_fanin_peak,
                "p99_latency_seconds": result.p99_latency_seconds,
                "requests_per_second": round(
                    stats.requests_per_second, 1),
                "windows": stats.windows,
                "health": result.health().level,
            },
            "serve-threaded-identity": {
                "seconds": round(threaded_seconds, 3),
                "jobs": jobs,
                "requests": threaded.stats.requests,
            },
        },
    }


def _columnar_analysis_section(scale: float, seed: int) -> dict:
    """The object path and the columnar path over one checkpointed
    campaign at *scale*: byte-identity across every figure series,
    the metrics JSONL feed and the health report (aborts on any
    divergence), plus the speedup the ``--check`` floor gates."""
    import shutil
    import tempfile

    from repro.analysis.series import load_campaign
    from repro.obs.exporters import month_jsonl_line

    print(f"columnar analysis (scale {scale}) ...", flush=True)
    config = PopulationConfig(scale=scale, seed=seed)
    timeline = EcosystemTimeline(TimelineConfig(config))
    state_dir = tempfile.mkdtemp(prefix="bench-columnar-store-")
    try:
        run_campaign(timeline,
                     executor=ScanExecutor(backend="serial", jobs=1),
                     state_dir=state_dir)

        rows, digests = {}, {}
        domains = 0
        for name, columnar in (("objects", False), ("columnar", True)):
            started = time.perf_counter()
            analysis = load_campaign(state_dir, columnar=columnar)
            figures = _figures_digest(analysis)
            figure_seconds = time.perf_counter() - started

            started = time.perf_counter()
            monitor = CampaignMonitor.from_state(state_dir,
                                                 columnar=columnar)
            feed = "".join(
                month_jsonl_line(r.month_index, r.date, r.metrics)
                for r in monitor.records)
            health = json.dumps(monitor.health().as_dict(),
                                sort_keys=True, default=str)
            monitor_seconds = time.perf_counter() - started

            blob = "\n".join((figures, feed, health))
            digests[name] = hashlib.sha256(
                blob.encode("utf-8")).hexdigest()
            last = max(analysis.stats_by_month)
            domains = analysis.stats_by_month[last].domains_scanned
            rows[name] = {
                "seconds": round(figure_seconds + monitor_seconds, 3),
                "figure_seconds": round(figure_seconds, 3),
                "monitor_seconds": round(monitor_seconds, 3),
                "digest_sha256": digests[name],
            }
            print(f"  {name:<9} {rows[name]['seconds']:6.2f}s  "
                  f"(figures {figure_seconds:.2f}s, monitor "
                  f"{monitor_seconds:.2f}s)", flush=True)
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)

    if digests["objects"] != digests["columnar"]:
        raise RuntimeError(
            f"columnar analysis diverged from the object path: "
            f"{digests['columnar']} != {digests['objects']}")
    speedup = round(rows["objects"]["seconds"]
                    / rows["columnar"]["seconds"], 2)
    print(f"  speedup {speedup:.2f}x (floor "
          f"{COLUMNAR_SPEEDUP_FLOOR:.1f}x)", flush=True)
    return {
        "scale": scale,
        "seed": seed,
        "domains": domains,
        "identical_to_object_path": True,
        "speedup": speedup,
        "speedup_floor": COLUMNAR_SPEEDUP_FLOOR,
        "results": rows,
    }


def _wallclock_rows(report: dict) -> dict:
    """Flatten every gated wall-clock in a report to ``name ->
    seconds`` — campaign configurations, the process curve, and the
    delivery-engine variants."""
    rows = {name: row["seconds"]
            for name, row in report.get("results", {}).items()}
    process = report.get("process_backend") or {}
    if "serial" in process:
        rows["process-scale-serial"] = process["serial"]["seconds"]
    for row in process.get("jobs", []):
        rows[f"process-j{row['jobs']}"] = row["seconds"]
    delivery = report.get("delivery_engine") or {}
    for name, row in delivery.get("results", {}).items():
        rows[f"delivery-{name}"] = row["seconds"]
    checker = report.get("policy_checker") or {}
    for name, row in checker.get("results", {}).items():
        rows[name] = row["seconds"]
    tlsrpt = report.get("tlsrpt_pipeline") or {}
    for name, row in tlsrpt.get("results", {}).items():
        rows[f"tlsrpt-{name}"] = row["seconds"]
    columnar = report.get("columnar_analysis") or {}
    for name, row in columnar.get("results", {}).items():
        rows[f"columnar-{name}"] = row["seconds"]
    return rows


def _check_regressions(report: dict, baseline_path: str,
                       max_regression: float) -> list:
    """Compare wall-clock per configuration against a baseline report;
    returns the list of failures."""
    with open(baseline_path, encoding="utf-8") as handle:
        baseline = json.load(handle)
    rows, base_rows = _wallclock_rows(report), _wallclock_rows(baseline)
    failures = []
    for name, now in rows.items():
        before = base_rows.get(name)
        if before is None:
            continue
        change = (now - before) / before
        verdict = "FAIL" if change > max_regression else "ok"
        print(f"perf gate [{name}]: {before:.2f}s -> {now:.2f}s "
              f"({change:+.1%}, limit +{max_regression:.0%}) {verdict}")
        if change > max_regression:
            failures.append(name)
    return failures


def _overhead_bar_failures(retry_overhead: dict,
                           checkpoint_overhead: dict) -> list:
    """Print every overhead measurement against its acceptance bar;
    returns the list of violated bars (``--check`` fails on any)."""
    failures = []
    for name, row in retry_overhead.items():
        violated = row["overhead_percent"] > row["bar_percent"]
        print(f"overhead bar [retry/{name}]: "
              f"{row['overhead_percent']:+.1f}% "
              f"(bar +{row['bar_percent']:.0f}%) "
              f"{'FAIL' if violated else 'ok'}")
        if violated:
            failures.append(f"retry/{name}")
    violated = (checkpoint_overhead["overhead_percent"]
                > checkpoint_overhead["bar_percent"])
    print(f"overhead bar [checkpoint]: "
          f"{checkpoint_overhead['overhead_percent']:+.1f}% "
          f"(bar +{checkpoint_overhead['bar_percent']:.0f}%) "
          f"{'FAIL' if violated else 'ok'}")
    if violated:
        failures.append("checkpoint")
    return failures


def _job_list(text: str) -> list:
    jobs = [int(piece) for piece in text.split(",") if piece.strip()]
    if not jobs or any(j < 1 for j in jobs):
        raise argparse.ArgumentTypeError(
            "expected a comma-separated list of positive job counts")
    return jobs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=20240929)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--out", default="BENCH_scan.json")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail if any configuration regresses past "
                             "--max-regression vs this baseline report, "
                             "or any overhead bar is violated")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        metavar="FRACTION",
                        help="allowed wall-clock regression (default "
                             "0.25 = 25%%)")
    parser.add_argument("--process-scale", type=float, default=0.1,
                        metavar="SCALE",
                        help="population scale for the process-backend "
                             "curve (default 0.1)")
    parser.add_argument("--process-jobs", type=_job_list, default=[1, 2, 4],
                        metavar="N,N,...",
                        help="job counts for the process-backend curve "
                             "(default 1,2,4)")
    parser.add_argument("--skip-process", action="store_true",
                        help="skip the process-backend curve section")
    parser.add_argument("--delivery-scale", type=float, default=0.1,
                        metavar="SCALE",
                        help="recipient-world scale for the delivery "
                             "engine section (default 0.1)")
    parser.add_argument("--delivery-senders", type=int, default=2394,
                        metavar="N",
                        help="sender-domain count for the delivery "
                             "engine section (default 2394, the full "
                             "paper census)")
    parser.add_argument("--delivery-messages", type=int, default=42,
                        metavar="N",
                        help="messages per sender for the delivery "
                             "engine section (default 42 -> ~100k "
                             "messages at the default sender count)")
    parser.add_argument("--skip-delivery", action="store_true",
                        help="skip the delivery-engine section")
    parser.add_argument("--tlsrpt-scale", type=float, default=0.1,
                        metavar="SCALE",
                        help="recipient-world scale for the TLSRPT "
                             "pipeline section (default 0.1)")
    parser.add_argument("--tlsrpt-senders", type=int, default=600,
                        metavar="N",
                        help="sender-domain count for the TLSRPT "
                             "pipeline section (default 600)")
    parser.add_argument("--tlsrpt-messages", type=int, default=6,
                        metavar="N",
                        help="messages per sender for the TLSRPT "
                             "pipeline section (default 6)")
    parser.add_argument("--skip-tlsrpt", action="store_true",
                        help="skip the TLSRPT pipeline section")
    parser.add_argument("--serve-scale", type=float, default=0.02,
                        metavar="SCALE",
                        help="domain-world scale for the policy-checker "
                             "section (default 0.02)")
    parser.add_argument("--serve-requests", type=int, default=1_000_000,
                        metavar="N",
                        help="popularity-mix requests for the "
                             "policy-checker replay (default 1000000; "
                             "flash crowds ride on top)")
    parser.add_argument("--skip-serve", action="store_true",
                        help="skip the policy-checker service section")
    parser.add_argument("--columnar-scale", type=float, default=0.1,
                        metavar="SCALE",
                        help="population scale for the columnar "
                             "analysis section (default 0.1)")
    parser.add_argument("--skip-columnar", action="store_true",
                        help="skip the columnar analysis section")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write the monitored campaign's monthly "
                             "metrics JSONL feed to FILE")
    parser.add_argument("--prom-out", default=None, metavar="FILE",
                        help="write the final month's Prometheus "
                             "exposition to FILE")
    parser.add_argument("--skip-profile", action="store_true",
                        help="skip the extra profiled campaign run")
    args = parser.parse_args()

    import shutil
    import tempfile

    config = PopulationConfig(scale=args.scale, seed=args.seed)
    monitor = CampaignMonitor()
    state_dir = tempfile.mkdtemp(prefix="bench-campaign-store-")
    configurations = {
        "full-serial": dict(incremental=False, backend="serial", jobs=1),
        "incremental-serial": dict(incremental=True, backend="serial",
                                   jobs=1, monitor=monitor),
        "incremental-threaded": dict(incremental=True, backend="threaded",
                                     jobs=args.jobs),
        # The default pipeline plus durable per-month checkpoints
        # (shard + manifest commit after every scanned month) — the
        # acceptance bar caps the overhead at 10% of incremental-serial.
        "incremental-serial-checkpointed": dict(
            incremental=True, backend="serial", jobs=1,
            state_dir=state_dir),
    }

    results = {}
    try:
        for name, options in configurations.items():
            print(f"running {name} ...", flush=True)
            results[name] = _run(config, **options)
            print(f"  {results[name]['seconds']:.2f}s", flush=True)
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)

    checkpointed = results["incremental-serial-checkpointed"]
    plain = results["incremental-serial"]["seconds"]
    commit_seconds = checkpointed["stats"].get("checkpoint_seconds", 0.0)
    # The bar sits on the directly-measured commit time, not on the
    # wall-clock difference of two single campaign runs: the latter
    # carries multi-percent scheduler noise that a 10% bar cannot
    # tolerate (the wall difference stays recorded as context).
    checkpoint_overhead = {
        "plain_seconds": plain,
        "checkpointed_seconds": checkpointed["seconds"],
        "commit_seconds": commit_seconds,
        "wall_overhead_percent": round(
            100.0 * (checkpointed["seconds"] - plain) / plain, 1),
        "overhead_percent": round(100.0 * commit_seconds / plain, 1),
        "bar_percent": CHECKPOINT_OVERHEAD_BAR_PERCENT,
    }

    profile_report = None
    if not args.skip_profile:
        # One extra profiled campaign: its timings never replace the
        # unprofiled measurements above (profiling adds wall-clock
        # overhead by design), but its stage split and slowest-domain
        # list are recorded for the next perf PR.
        print("running incremental-serial (profiled) ...", flush=True)
        profiled = _run(config, incremental=True, backend="serial",
                        jobs=1, profile=True)
        print(f"  {profiled['seconds']:.2f}s", flush=True)
        reference = results["incremental-serial"]["seconds"]
        profile_report = {
            "seconds": profiled["seconds"],
            "overhead_vs_unprofiled_percent": round(
                100.0 * (profiled["seconds"] - reference) / reference, 1),
            **profiled["profile"],
        }
        results["incremental-serial-profiled"] = {
            "seconds": profiled["seconds"],
            "figures_sha256": profiled["figures_sha256"],
        }

    digests = {r["figures_sha256"] for r in results.values()}
    if len(digests) != 1:
        print("FATAL: configurations produced diverging figure series")
        for name, r in results.items():
            print(f"  {name}: {r['figures_sha256']}")
        return 1

    process_section = None
    if not args.skip_process:
        process_section = _process_backend_section(
            args.process_scale, args.seed, args.process_jobs)

    delivery_section = None
    if not args.skip_delivery:
        delivery_section = _delivery_engine_section(
            args.delivery_scale, args.delivery_senders,
            args.delivery_messages, args.jobs)

    tlsrpt_section = None
    if not args.skip_tlsrpt:
        tlsrpt_section = _tlsrpt_pipeline_section(
            args.tlsrpt_scale, args.tlsrpt_senders,
            args.tlsrpt_messages, args.jobs)

    serve_section = None
    if not args.skip_serve:
        serve_section = _policy_checker_section(
            args.serve_scale, args.serve_requests, args.jobs)

    columnar_section = None
    if not args.skip_columnar:
        columnar_section = _columnar_analysis_section(
            args.columnar_scale, args.seed)

    # The recorded seed baseline was measured at the default scale and
    # seed; at any other operating point the comparison is meaningless.
    comparable = args.scale == 0.02 and args.seed == 20240929
    reference = results["full-serial"]["seconds"]
    for name, r in results.items():
        r["speedup_vs_full_serial"] = round(reference / r["seconds"], 2)
        if comparable:
            r["speedup_vs_seed_baseline"] = round(
                SEED_BASELINE_SECONDS["campaign"] / r["seconds"], 2)

    # Retry-layer overhead with faults disabled: the retry plumbing is
    # on every connect path even without a fault plan, and must stay
    # cheap.  Both sides of the division are the pinned bracket
    # measurements (see RETRY_LAYER_BRACKET) so the number attributes
    # only the retry layer; the live tree's wall-clock rides along as
    # drift context and is gated by the --check regression comparison.
    retry_overhead = {}
    for name, bracket in RETRY_LAYER_BRACKET.items():
        pre = bracket["pre_retry_seconds"]
        post = bracket["post_retry_seconds"]
        entry = {
            "pre_retry_seconds": pre,
            "post_retry_seconds": post,
            "overhead_percent": round(100.0 * (post - pre) / pre, 1),
            "bar_percent": RETRY_OVERHEAD_BAR_PERCENT,
        }
        if comparable and name in results:
            entry["current_tree_seconds"] = results[name]["seconds"]
        retry_overhead[name] = entry

    health = monitor.health()
    print(f"campaign health: {health.level} "
          f"({len(monitor.records)} months monitored)")
    if args.metrics_out:
        records = monitor.write_jsonl(args.metrics_out)
        print(f"monthly metrics: {records} records -> {args.metrics_out}")
    if args.prom_out:
        last = monitor.records[-1]
        write_lines_atomic(args.prom_out, prometheus_exposition(
            last.metrics,
            labels={"month": str(last.month_index)}).splitlines())
        print(f"prometheus exposition: month {last.month_index} -> "
              f"{args.prom_out}")

    report = {
        "scale": args.scale,
        "seed": args.seed,
        "months": 12,
        "seed_baseline_seconds": SEED_BASELINE_SECONDS,
        "retry_layer_overhead": retry_overhead,
        "checkpoint_overhead": checkpoint_overhead,
        "figure4_benchmark": {
            "seed_baseline_seconds":
                SEED_BASELINE_SECONDS["figure4_benchmark"],
            "measured_seconds": MEASURED_FIGURE4_SECONDS,
            "speedup": round(SEED_BASELINE_SECONDS["figure4_benchmark"]
                             / MEASURED_FIGURE4_SECONDS, 2),
        },
        "figures_identical_across_configs": True,
        "campaign_health": health.as_dict(),
        "profile": profile_report,
        "process_backend": process_section,
        "delivery_engine": delivery_section,
        "tlsrpt_pipeline": tlsrpt_section,
        "policy_checker": serve_section,
        "columnar_analysis": columnar_section,
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"\nwrote {args.out}")

    bar_failures = _overhead_bar_failures(retry_overhead,
                                          checkpoint_overhead)
    if delivery_section is not None:
        # The delivery throughput bar is absolute (messages/s of the
        # serial clean run), not baseline-relative: the engine's whole
        # point is sustaining campaign-scale volume.
        mps = delivery_section["results"]["clean-serial"][
            "messages_per_second"]
        violated = mps < DELIVERY_THROUGHPUT_FLOOR_MPS
        print(f"throughput bar [delivery/clean-serial]: {mps:.0f} msg/s "
              f"(floor {DELIVERY_THROUGHPUT_FLOOR_MPS:.0f}) "
              f"{'FAIL' if violated else 'ok'}")
        if violated:
            bar_failures.append("delivery/clean-serial-throughput")
    if tlsrpt_section is not None:
        # Like the delivery bar, the TLSRPT bars are absolute rates:
        # report generation (serial clean campaign) and offline
        # re-ingestion of the saved feed.
        gen_rps = tlsrpt_section["results"]["clean-serial"][
            "reports_per_second"]
        violated = gen_rps < TLSRPT_GENERATION_FLOOR_RPS
        print(f"throughput bar [tlsrpt/clean-serial]: "
              f"{gen_rps:.0f} reports/s "
              f"(floor {TLSRPT_GENERATION_FLOOR_RPS:.0f}) "
              f"{'FAIL' if violated else 'ok'}")
        if violated:
            bar_failures.append("tlsrpt/clean-serial-generation")
        ingest_rps = tlsrpt_section["ingest"]["reports_per_second"]
        violated = ingest_rps < TLSRPT_INGEST_FLOOR_RPS
        print(f"throughput bar [tlsrpt/ingest]: "
              f"{ingest_rps:.0f} reports/s "
              f"(floor {TLSRPT_INGEST_FLOOR_RPS:.0f}) "
              f"{'FAIL' if violated else 'ok'}")
        if violated:
            bar_failures.append("tlsrpt/ingest")
    if serve_section is not None:
        serial_row = serve_section["results"]["serve-serial"]
        rps = serial_row["requests_per_second"]
        violated = rps < SERVE_THROUGHPUT_FLOOR_RPS
        print(f"throughput bar [serve/serial]: {rps:.0f} req/s "
              f"(floor {SERVE_THROUGHPUT_FLOOR_RPS:.0f}) "
              f"{'FAIL' if violated else 'ok'}")
        if violated:
            bar_failures.append("serve/serial-throughput")
        hit_rate = serial_row["hit_rate"]
        violated = hit_rate < SERVE_HITRATE_FLOOR
        print(f"hit-rate bar [serve/serial]: {hit_rate:.2%} "
              f"(floor {SERVE_HITRATE_FLOOR:.0%}) "
              f"{'FAIL' if violated else 'ok'}")
        if violated:
            bar_failures.append("serve/serial-hit-rate")
    if columnar_section is not None:
        # The columnar bar is a relative floor, not a wall-clock
        # comparison: the whole point of the columnar decoder is that
        # the analysis phase beats the object path by a wide margin.
        speedup = columnar_section["speedup"]
        violated = speedup < COLUMNAR_SPEEDUP_FLOOR
        print(f"speedup bar [columnar/analysis]: {speedup:.2f}x "
              f"(floor {COLUMNAR_SPEEDUP_FLOOR:.1f}x) "
              f"{'FAIL' if violated else 'ok'}")
        if violated:
            bar_failures.append("columnar/analysis-speedup")
    if args.check:
        failures = _check_regressions(report, args.check,
                                      args.max_regression)
        if failures:
            print("FATAL: perf-regression gate failed for: "
                  + ", ".join(failures))
            return 1
        if bar_failures:
            print("FATAL: overhead bar violated for: "
                  + ", ".join(bar_failures))
            return 1
    print(f"checkpoint overhead: "
          f"{checkpoint_overhead['overhead_percent']:+.1f}% in commits "
          f"({checkpoint_overhead['commit_seconds']:.2f}s of "
          f"{checkpoint_overhead['plain_seconds']}s; wall "
          f"{checkpoint_overhead['wall_overhead_percent']:+.1f}%)")
    best = min(results, key=lambda n: results[n]["seconds"])
    line = f"fastest: {best} at {results[best]['seconds']:.2f}s"
    if comparable:
        line += (f" ({results[best]['speedup_vs_seed_baseline']:.2f}x over "
                 f"the pre-optimisation baseline)")
    else:
        line += (f" ({results[best]['speedup_vs_full_serial']:.2f}x over "
                 f"full-serial; seed-baseline comparison only applies at "
                 f"the default scale/seed)")
    print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
