"""Scan-pipeline benchmark: times the monthly component-scan campaign
under each execution strategy and writes ``BENCH_scan.json``.

Three configurations of the same campaign run at the benchmark scale
(0.02, the scale the figure benchmarks use):

* ``full-serial``        — from-scratch world per month, serial scan
  (the pre-optimisation reference path);
* ``incremental-serial`` — one long-lived world updated by diffing
  (the default pipeline);
* ``incremental-threaded`` — the same plus the sharded scan backend.

Every configuration must produce identical figure series — the run
aborts if the outputs diverge.  The JSON report records wall-clock per
configuration, the speedup over both the in-run reference and the
recorded pre-optimisation baseline, and the per-stage ``ScanStats``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scan_pipeline.py \
        [--scale 0.02] [--seed 20240929] [--jobs 4] [--out BENCH_scan.json]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import time

from repro.analysis.series import run_campaign
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.measurement.executor import ScanExecutor

#: Wall-clock of the same workloads on the pre-optimisation tree
#: (commit 25e7ef2: linear-scan delegation lookup, no memoization, full
#: rebuild per month), measured on the reference machine.
SEED_BASELINE_SECONDS = {
    "campaign": 43.45,            # 12-month campaign, scale 0.02
    "figure4_benchmark": 51.4,    # pytest benchmarks/test_figure4_misconfig.py
}

#: The figure-4 benchmark re-run on this tree (same machine, same
#: command as the baseline row above).  Re-measure when the pipeline
#: changes: ``PYTHONPATH=src python -m pytest benchmarks/test_figure4_misconfig.py``.
MEASURED_FIGURE4_SECONDS = 10.2

#: Wall-clock of the same workloads immediately *before* the
#: retry/fault-injection layer landed (commit dc329b7, reference
#: machine) — the bar for the retry layer's no-faults overhead, which
#: the acceptance criteria cap at 10%.
PRE_RETRY_SECONDS = {
    "full-serial": 11.537,
    "incremental-serial": 7.472,
}


def _figures_digest(analysis) -> str:
    """A digest over every figure series — the identity check."""
    payload = {
        "figure4": analysis.figure4_series(),
        "figure5_self": analysis.figure5_series("self-managed"),
        "figure5_third": analysis.figure5_series("third-party"),
        "figure6_self": analysis.figure6_series("self-managed"),
        "figure6_third": analysis.figure6_series("third-party"),
        "figure7": analysis.figure7_series(),
        "figure8": analysis.figure8_series(),
        "figure9": analysis.figure9_series(),
        "figure10": analysis.figure10_series(),
        "table2": analysis.table2_census(),
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _run(config: PopulationConfig, *, incremental: bool,
         backend: str, jobs: int) -> dict:
    timeline = EcosystemTimeline(TimelineConfig(config))
    executor = ScanExecutor(backend=backend, jobs=jobs)
    started = time.perf_counter()
    analysis = run_campaign(timeline, incremental=incremental,
                            executor=executor)
    elapsed = time.perf_counter() - started
    totals = analysis.total_stats()
    return {
        "seconds": round(elapsed, 3),
        "figures_sha256": _figures_digest(analysis),
        "stats": {k: (round(v, 3) if isinstance(v, float) else v)
                  for k, v in totals.as_dict().items()},
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.02)
    parser.add_argument("--seed", type=int, default=20240929)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--out", default="BENCH_scan.json")
    args = parser.parse_args()

    config = PopulationConfig(scale=args.scale, seed=args.seed)
    configurations = {
        "full-serial": dict(incremental=False, backend="serial", jobs=1),
        "incremental-serial": dict(incremental=True, backend="serial",
                                   jobs=1),
        "incremental-threaded": dict(incremental=True, backend="threaded",
                                     jobs=args.jobs),
    }

    results = {}
    for name, options in configurations.items():
        print(f"running {name} ...", flush=True)
        results[name] = _run(config, **options)
        print(f"  {results[name]['seconds']:.2f}s", flush=True)

    digests = {r["figures_sha256"] for r in results.values()}
    if len(digests) != 1:
        print("FATAL: configurations produced diverging figure series")
        for name, r in results.items():
            print(f"  {name}: {r['figures_sha256']}")
        return 1

    # The recorded seed baseline was measured at the default scale and
    # seed; at any other operating point the comparison is meaningless.
    comparable = args.scale == 0.02 and args.seed == 20240929
    reference = results["full-serial"]["seconds"]
    for name, r in results.items():
        r["speedup_vs_full_serial"] = round(reference / r["seconds"], 2)
        if comparable:
            r["speedup_vs_seed_baseline"] = round(
                SEED_BASELINE_SECONDS["campaign"] / r["seconds"], 2)

    # Retry-layer overhead with faults disabled: the retry plumbing is
    # on every connect path even without a fault plan, and must stay
    # cheap (< 10% against the pre-retry tree).
    retry_overhead = {}
    if comparable:
        for name, before in PRE_RETRY_SECONDS.items():
            measured = results[name]["seconds"]
            retry_overhead[name] = {
                "pre_retry_seconds": before,
                "measured_seconds": measured,
                "overhead_percent": round(100.0 * (measured - before)
                                          / before, 1),
            }

    report = {
        "scale": args.scale,
        "seed": args.seed,
        "months": 12,
        "seed_baseline_seconds": SEED_BASELINE_SECONDS,
        "retry_layer_overhead": retry_overhead,
        "figure4_benchmark": {
            "seed_baseline_seconds":
                SEED_BASELINE_SECONDS["figure4_benchmark"],
            "measured_seconds": MEASURED_FIGURE4_SECONDS,
            "speedup": round(SEED_BASELINE_SECONDS["figure4_benchmark"]
                             / MEASURED_FIGURE4_SECONDS, 2),
        },
        "figures_identical_across_configs": True,
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(f"\nwrote {args.out}")
    for name, row in retry_overhead.items():
        print(f"retry-layer overhead [{name}]: "
              f"{row['overhead_percent']:+.1f}% "
              f"({row['pre_retry_seconds']}s -> "
              f"{row['measured_seconds']}s)")
    best = min(results, key=lambda n: results[n]["seconds"])
    line = f"fastest: {best} at {results[best]['seconds']:.2f}s"
    if comparable:
        line += (f" ({results[best]['speedup_vs_seed_baseline']:.2f}x over "
                 f"the pre-optimisation baseline)")
    else:
        line += (f" ({results[best]['speedup_vs_full_serial']:.2f}x over "
                 f"full-serial; seed-baseline comparison only applies at "
                 f"the default scale/seed)")
    print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
