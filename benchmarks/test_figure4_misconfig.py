"""Figure 4: % of MTA-STS-enabled domains misconfigured, by category,
over the monthly scan window (11/2023 – 09/2024).

Paper: at the final snapshot, 20,144 of 68,030 (29.6%) domains are
misconfigured; errors are not exclusive; policy-retrieval errors
dominate throughout (70-85% of errors); Porkbun inflates policy-server
errors from August 2024 (7,237 domains).  Additionally, 640 (3.2% of
misconfigured) domains face delivery failure from compliant senders.
"""

from repro.analysis.report import render_table
from benchmarks.conftest import paper_row


def test_figure4(benchmark, campaign):
    rows = benchmark(campaign.figure4_series)
    print()
    print(render_table(
        rows, ["date", "total_sts", "misconfigured", "misconfigured_pct",
               "dns-record", "policy-retrieval", "mx-certificate",
               "inconsistency"],
        title="Figure 4 — misconfigured MTA-STS domains by category (%)"))

    final = rows[-1]
    print(paper_row("final misconfigured (%)", 29.6,
                    round(final["misconfigured_pct"], 1)))
    assert 20 <= final["misconfigured_pct"] <= 40

    # Policy retrieval dominates every month.
    for row in rows:
        assert row["policy-retrieval"] >= row["mx-certificate"]
        assert row["policy-retrieval"] >= row["inconsistency"]
        assert row["policy-retrieval"] >= row["dns-record"]

    # The Porkbun event: the policy-retrieval share jumps in the last
    # two snapshots relative to the pre-August level.
    pre = max(r["policy-retrieval"] for r in rows[:9])
    post = rows[-1]["policy-retrieval"]
    print(paper_row("policy-error % rises after Porkbun", "yes",
                    f"{round(pre, 1)} -> {round(post, 1)}"))
    assert post > pre + 3

    # Delivery failures: a few percent of misconfigured domains.
    summary = campaign.latest_summary()
    failure_share = (100.0 * summary.delivery_failures
                     / max(1, summary.misconfigured))
    print(paper_row("delivery-failure share of misconfigured (%)", 3.2,
                    round(failure_share, 1)))
    assert 0.5 <= failure_share <= 12
