"""Figure 12: TLSRPT record deployment, 2021-09 → 2024-09.

Paper: (top) the share of MX domains with TLSRPT records starts at
0.02-0.03% and rises 3-4x, closely tracking MTA-STS adoption; the .se
series dips in Dec 2021 (82 domains revoked TLSRPT) and .net jumps
mid-2024 (1,411 domains added, only 198 with MTA-STS).  (bottom) among
MTA-STS domains, TLSRPT adoption is high and climbs from roughly 35%
to ~70%.
"""

from repro.analysis.report import render_series
from benchmarks.conftest import paper_row


def _all_series(timeline):
    return {tld: timeline.tlsrpt_series(tld)
            for tld in ("com", "net", "org", "se")}


def test_figure12(benchmark, timeline):
    series = benchmark(_all_series, timeline)
    print()
    com = series["com"]
    shown = com[::26]
    print(render_series([(i.date_string(), mx_pct)
                         for i, mx_pct, _ in shown],
                        title="Figure 12 (top) — .com % of MX domains "
                              "with TLSRPT", bar_scale=300))
    print(render_series([(i.date_string(), sts_pct)
                         for i, _, sts_pct in shown],
                        title="Figure 12 (bottom) — .com % of MTA-STS "
                              "domains with TLSRPT", bar_scale=1))

    for tld, points in series.items():
        first_mx = points[0][1]
        last_mx = points[-1][1]
        assert last_mx > first_mx, tld
        last_sts = points[-1][2]
        print(paper_row(f".{tld} TLSRPT share of MTA-STS domains (%)",
                        "~70", round(last_sts, 1)))
        assert 55 <= last_sts <= 85

    # The bottom series climbs over the window for every TLD.
    for tld, points in series.items():
        mid = points[len(points) // 2][2]
        assert points[-1][2] >= mid - 5

    # The .se December-2021 revocation dents the top series.
    se = series["se"]
    by_date = {i.date_string(): mx for i, mx, _ in se}
    before = by_date["2021-12-16"]
    after = by_date["2021-12-30"]
    print(paper_row(".se Dec-21 TLSRPT dip", "82 domains revoked",
                    f"{round(before, 4)} -> {round(after, 4)}"))
    assert after < before

    # The .net mid-2024 additions lift that series.
    net = series["net"]
    by_date_net = {i.date_string(): mx for i, mx, _ in net}
    jump = by_date_net["2024-07-11"] - by_date_net["2024-06-13"]
    assert jump > 0
