"""Figure 3: MTA-STS adoption vs Tranco popularity rank (bins of 10k).

Paper shape: ~1.2% adoption in the top 10k bin declining to ~0.4% in
the bottom bin — a positive popularity correlation but low absolute
deployment across every range.
"""

from repro.analysis.report import render_series
from repro.ecosystem.tranco import TrancoRanking
from benchmarks.conftest import paper_row


def test_figure3(benchmark):
    ranking = TrancoRanking(list_size=1_000_000, bin_size=10_000)
    bins = benchmark(ranking.binned_adoption)
    print()
    shown = bins[::10]
    print(render_series([(f"rank {start // 1000}k", pct)
                         for start, pct in shown],
                        title="Figure 3 — % of domains with MTA-STS by "
                              "Tranco rank bin", bar_scale=30,
                        label_width=14))
    top = bins[0][1]
    bottom = bins[-1][1]
    print(paper_row("top 10k bin (%)", 1.2, round(top, 2)))
    print(paper_row("bottom 10k bin (%)", 0.4, round(bottom, 2)))
    assert 0.9 <= top <= 1.5
    assert 0.25 <= bottom <= 0.6
    assert top > 2 * bottom

    # Smoothed monotone decline: each third of the list adopts less
    # than the previous one.
    thirds = [sum(p for _, p in bins[i::3]) / len(bins[i::3])
              for i in range(3)]
    averages = [sum(p for _, p in bins[i * 33:(i + 1) * 33]) / 33
                for i in range(3)]
    assert averages[0] > averages[1] > averages[2]
