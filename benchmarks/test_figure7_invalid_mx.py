"""Figure 7: % of MTA-STS domains with all-invalid vs partially-invalid
MX hosts, and the enforce-mode at-risk population.

Paper: at the final snapshot, 1,326 (1.9%) domains present no valid
TLS certificate on any MX; all-invalid dominates partially-invalid
(self-managed domains rarely run redundant MX farms); 269 domains in
enforce mode with every matching MX invalid are subject to delivery
failure from compliant senders.
"""

from repro.analysis.report import render_table
from benchmarks.conftest import paper_row


def test_figure7(benchmark, campaign):
    rows = benchmark(campaign.figure7_series)
    print()
    print(render_table(rows, ["month_index", "all_invalid",
                              "all_invalid_pct", "partially_invalid",
                              "partially_invalid_pct", "enforce_invalid",
                              "enforce_invalid_pct"],
                       title="Figure 7 — all vs partially invalid MX (%)"))
    final = rows[-1]
    print(paper_row("all-invalid (%)", 1.9, round(final["all_invalid_pct"], 2)))
    print(paper_row("enforce-mode at risk (count, paper 269 -> scaled)",
                    round(269 * 0.02), final["enforce_invalid"]))

    assert 0.8 <= final["all_invalid_pct"] <= 4
    # All-invalid dominates partial in every month, as in the figure.
    for row in rows:
        assert row["all_invalid"] >= row["partially_invalid"]
    # The enforce-mode at-risk class exists and is a strict subset.
    assert 0 < final["enforce_invalid"] <= final["all_invalid"]
