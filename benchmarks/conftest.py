"""Shared fixtures for the benchmark harness.

The expensive artefact — a full 12-snapshot scan campaign over the
synthetic ecosystem — is built once per session; each benchmark then
times its own figure's analysis step and prints the same rows/series
the paper reports (paper value next to measured value).

Scale: 0.02 of the paper's population (68,030 MTA-STS domains scale to
~1,360 at the final snapshot) keeps the full campaign around a minute
while leaving every event cohort non-degenerate.  Percentages are
scale-free and are what the assertions check.
"""

from __future__ import annotations

import pytest

from repro.analysis.series import CampaignAnalysis, run_campaign
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig

SCALE = 0.02
SEED = 20240929


@pytest.fixture(scope="session")
def timeline() -> EcosystemTimeline:
    return EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=SCALE, seed=SEED)))


@pytest.fixture(scope="session")
def campaign(timeline) -> CampaignAnalysis:
    return run_campaign(timeline)


@pytest.fixture(scope="session")
def survey_findings():
    from repro.survey.analysis import analyze
    from repro.survey.synthesize import synthesize_respondents
    return analyze(synthesize_respondents())


#: Every paper-vs-measured row emitted during the session; echoed in
#: the terminal summary so the comparison survives output capturing.
COMPARISON_LOG: list = []


def paper_row(label: str, paper_value, measured_value) -> str:
    line = (f"  {label:<46} paper={paper_value!s:<12} "
            f"measured={measured_value}")
    COMPARISON_LOG.append(line)
    return line


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not COMPARISON_LOG:
        return
    terminalreporter.write_sep("=", "paper vs measured")
    for line in COMPARISON_LOG:
        terminalreporter.write_line(line)
