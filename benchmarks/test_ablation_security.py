"""Security ablation: the §1 threat model under each sender policy.

The paper motivates MTA-STS with STARTTLS-stripping and traffic-
interception attacks, and footnote 2 concedes the trust-on-first-use
gap.  This benchmark regenerates the full protection matrix:

================  ===========  ==========  ====================
sender            stripping    MX spoof    strip+block, no cache
================  ===========  ==========  ====================
opportunistic     intercepted  redirected  intercepted
MTA-STS           protected    protected   intercepted (TOFU)
MTA-STS (cached)  protected    protected   protected
================  ===========  ==========  ====================
"""

from repro.attacks import DnsSpoofer, PolicyHostBlocker, StarttlsStripper
from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode
from repro.core.sender import MtaStsSender
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.world import World
from repro.smtp.delivery import DeliveryStatus, Message, SendingMta
from benchmarks.conftest import paper_row


def _fresh_setup():
    world = World()
    victim = deploy_domain(world, DomainSpec(
        domain="victim.com",
        policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                      max_age=7 * 86400,
                      mx_patterns=("mail.victim.com",))))
    fetcher = PolicyFetcher(world.resolver, world.https_client)
    return world, victim, fetcher


def _sts_sender(world, fetcher, name="secure.net"):
    return MtaStsSender(name, world.network, world.resolver,
                        world.trust_store, world.clock, fetcher)


def _matrix():
    results = {}

    # Scenario A: STARTTLS stripping.
    world, victim, fetcher = _fresh_setup()
    stripper = StarttlsStripper(world.network)
    stripper.attack(victim.mx_hosts[0])
    naive = SendingMta("naive.net", world.network, world.resolver,
                       world.trust_store, world.clock)
    results["strip/opportunistic"] = naive.send(
        Message("a@n", "b@victim.com")).status
    results["strip/opportunistic-intercepted"] = stripper.plaintext_captured
    stripper.intercepted_messages.clear()
    results["strip/mta-sts"] = _sts_sender(world, fetcher).send(
        Message("a@s", "b@victim.com")).status
    results["strip/mta-sts-intercepted"] = stripper.plaintext_captured

    # Scenario B: MX spoofing toward an attacker with a valid cert.
    world, victim, fetcher = _fresh_setup()
    from repro.dns.name import DnsName
    from repro.dns.records import ARecord
    from repro.dns.zone import Zone
    from repro.smtp.server import MxHost
    from repro.tls.handshake import TlsEndpoint
    ip = world.fresh_ip("mx")
    tls = TlsEndpoint()
    tls.install("mx.evil.net", world.issue_cert(["mx.evil.net"]),
                default=True)
    evil = MxHost("mx.evil.net", ip, world.network, tls=tls)
    zone = Zone(apex=DnsName.parse("evil.net"))
    zone.add(ARecord(DnsName.parse("mx.evil.net"), 60, ip))
    world.host_zone(zone)
    spoofer = DnsSpoofer(world.resolver)
    spoofer.spoof_mx("victim.com", "mx.evil.net")
    naive = SendingMta("naive.net", world.network, world.resolver,
                       world.trust_store, world.clock)
    naive.send(Message("a@n", "b@victim.com"))
    results["spoof/opportunistic-redirected"] = bool(evil.mailbox)
    results["spoof/mta-sts"] = _sts_sender(world, fetcher).send(
        Message("a@s", "b@victim.com")).status
    results["spoof/mta-sts-redirected"] = len(evil.mailbox) > 1

    # Scenario C: strip + policy-host block, first contact vs cached.
    world, victim, fetcher = _fresh_setup()
    veteran = _sts_sender(world, fetcher, "veteran.net")
    veteran.send(Message("a@v", "b@victim.com"))   # warm cache
    stripper = StarttlsStripper(world.network)
    stripper.attack(victim.mx_hosts[0])
    blocker = PolicyHostBlocker(world.resolver)
    blocker.block_policy_host("victim.com")
    world.resolver.flush_cache()
    newcomer = _sts_sender(world, fetcher, "newcomer.net")
    results["tofu/first-contact"] = newcomer.send(
        Message("a@n", "b@victim.com")).status
    stripper.intercepted_messages.clear()
    results["tofu/cached"] = veteran.send(
        Message("a@v", "b@victim.com")).status
    results["tofu/cached-intercepted"] = stripper.plaintext_captured
    return results


def test_ablation_security_matrix(benchmark):
    results = benchmark.pedantic(_matrix, iterations=1, rounds=1)
    print()
    print(paper_row("stripping vs opportunistic sender",
                    "downgrade succeeds",
                    results["strip/opportunistic"].value))
    print(paper_row("stripping vs MTA-STS sender", "refused",
                    results["strip/mta-sts"].value))
    print(paper_row("MX spoof vs MTA-STS sender", "refused",
                    results["spoof/mta-sts"].value))
    print(paper_row("TOFU gap: first contact under full attack",
                    "downgrade succeeds (fn. 2)",
                    results["tofu/first-contact"].value))
    print(paper_row("TOFU gap: cached policy", "protected",
                    results["tofu/cached"].value))

    assert results["strip/opportunistic"] is \
        DeliveryStatus.DELIVERED_PLAINTEXT
    assert results["strip/opportunistic-intercepted"]
    assert results["strip/mta-sts"] is DeliveryStatus.REFUSED_BY_POLICY
    assert not results["strip/mta-sts-intercepted"]

    assert results["spoof/opportunistic-redirected"]
    assert results["spoof/mta-sts"] is DeliveryStatus.REFUSED_BY_POLICY
    assert not results["spoof/mta-sts-redirected"]

    assert results["tofu/first-contact"] is \
        DeliveryStatus.DELIVERED_PLAINTEXT
    assert results["tofu/cached"] is DeliveryStatus.REFUSED_BY_POLICY
    assert not results["tofu/cached-intercepted"]
