"""Figure 8: mx-pattern / MX-record mismatches by class over time.

Paper: at the final snapshot — 1,023 complete-domain mismatches, 730
3LD+ mismatches (597 carrying the mta-sts label, an RFC
misunderstanding), 63 typos (edit distance <= 3), plus TLD swaps; 406
domains in enforce mode are subject to delivery failure; the
lucidgrow/DMARCReport incident (246 domains, enforce mode) spikes the
3LD+ class on Jan 23, 2024.
"""

from repro.analysis.report import render_table
from repro.ecosystem.population import LUCIDGROW_MONTH
from benchmarks.conftest import SCALE, paper_row

CLASSES = ["complete-domain-mismatch", "3ld-plus-mismatch", "typo",
           "tld-mismatch"]


def test_figure8(benchmark, campaign):
    rows = benchmark(campaign.figure8_series)
    print()
    print(render_table(rows, ["month_index"] + CLASSES + ["enforce"],
                       title="Figure 8 — mismatch classes (counts, "
                             f"scale={SCALE})"))

    final = rows[-1]
    print(paper_row("complete-domain (count)", round(1023 * SCALE),
                    final["complete-domain-mismatch"]))
    print(paper_row("3LD+ (count)", round(730 * SCALE),
                    final["3ld-plus-mismatch"]))
    print(paper_row("typos (count)", round(63 * SCALE), final["typo"]))
    print(paper_row("enforce-mode mismatched (count)", round(406 * SCALE),
                    final["enforce"]))

    # Ordering at the end: complete-domain > 3LD+ > typos.
    assert final["complete-domain-mismatch"] >= final["3ld-plus-mismatch"]
    assert final["3ld-plus-mismatch"] > final["typo"]
    assert final["typo"] >= 1

    # The lucidgrow spike: 3LD+ jumps by about the cohort size in
    # January and recedes the next month.
    by_month = {r["month_index"]: r["3ld-plus-mismatch"] for r in rows}
    cohort = round(246 * SCALE)
    jump = by_month[LUCIDGROW_MONTH] - by_month[LUCIDGROW_MONTH - 1]
    drop = by_month[LUCIDGROW_MONTH] - by_month[LUCIDGROW_MONTH + 1]
    print(paper_row("Jan-2024 3LD+ spike (cohort)", cohort, jump))
    assert jump >= cohort - 1
    assert drop >= cohort - 2

    # Enforce-mode exposure present in every month.
    assert all(r["enforce"] >= 0 for r in rows)
    assert final["enforce"] > 0
