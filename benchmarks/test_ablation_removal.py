"""Ablations of the design choices DESIGN.md calls out.

1. MTA-STS removal procedure (§2.6): the RFC's four-step sequence vs
   abrupt removal, measured as delivery outcomes for senders holding a
   cached enforce policy while the domain migrates to a new provider.
2. Policy update ordering (§7.2): updating the TXT record before the
   policy file opens a transient window where refetching senders pick
   up the stale policy.
3. TOFU max_age sensitivity: how long stale enforce policies keep
   breaking delivery after an unannounced migration.
4. Provider opt-out strategies (Table 2): the delivery outcome for an
   opted-out enforce-mode customer under each strategy.
"""

import pytest

from repro.clock import DAY, Duration
from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode, render_policy
from repro.core.sender import MtaStsSender
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.ecosystem.providers import OptOutBehavior, table2_providers
from repro.ecosystem.world import World
from repro.smtp.delivery import DeliveryStatus, Message
from benchmarks.conftest import paper_row


def _world_with_enforce_domain(max_age=7 * 86400):
    world = World()
    deployed = deploy_domain(world, DomainSpec(
        domain="victim.com",
        policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                      max_age=max_age, mx_patterns=("mail.victim.com",))))
    fetcher = PolicyFetcher(world.resolver, world.https_client)
    sender = MtaStsSender("relay.example.net", world.network,
                          world.resolver, world.trust_store, world.clock,
                          fetcher)
    # Prime the sender's cache.
    assert sender.send(Message("a@x", "b@victim.com")).delivered
    return world, deployed, sender


def _migrate_breaking_sts(world, deployed):
    """Move the domain's mail to a new provider whose hostname matches
    no cached mx pattern (the §2.6 hazard scenario)."""
    apply_fault(world, deployed, Fault.OUTDATED_POLICY)
    world.resolver.flush_cache()


def test_ablation_removal_sequences(benchmark):
    """Abrupt removal strands cached senders; the RFC sequence does not."""
    def run():
        outcomes = {}

        # Strategy A: abrupt removal, then immediate migration.
        world, deployed, sender = _world_with_enforce_domain()
        deployed.remove_record()
        deployed.set_policy_text("")
        _migrate_breaking_sts(world, deployed)
        outcomes["abrupt"] = sender.send(
            Message("a@x", "b@victim.com")).status

        # Strategy B: RFC 8461 §2.6 — mode=none policy with a small
        # max_age, new record id, wait out the caches, then remove.
        world, deployed, sender = _world_with_enforce_domain()
        none_policy = Policy(version="STSv1", mode=PolicyMode.NONE,
                             max_age=86400, mx_patterns=())
        deployed.set_policy_text(render_policy(none_policy))
        deployed.set_record("v=STSv1; id=removal2024;")
        world.resolver.flush_cache()
        # Compliant senders refetch on the id bump (cache turns none).
        sender.send(Message("a@x", "b@victim.com"))
        world.clock.advance(Duration(8 * 86400))   # > both max_ages
        deployed.remove_record()
        deployed.set_policy_text("")
        _migrate_breaking_sts(world, deployed)
        outcomes["rfc8461"] = sender.send(
            Message("a@x", "b@victim.com")).status
        return outcomes

    outcomes = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(paper_row("abrupt removal then migration",
                    "delivery failure", outcomes["abrupt"].value))
    print(paper_row("RFC 8461 removal then migration",
                    "delivered", outcomes["rfc8461"].value))
    assert outcomes["abrupt"] is DeliveryStatus.REFUSED_BY_POLICY
    assert outcomes["rfc8461"] in (DeliveryStatus.DELIVERED,
                                   DeliveryStatus.DELIVERED_PLAINTEXT)


def test_ablation_update_ordering(benchmark):
    """TXT-first updates (23.8% of surveyed operators) let refetching
    senders cache the stale policy; policy-first updates never do."""
    def run():
        outcomes = {}
        new_patterns = ("mx.victim-new.net",)

        # TXT-first: bump the id while the policy still lists old MX.
        world, deployed, sender = _world_with_enforce_domain()
        deployed.set_record("v=STSv1; id=update2;")
        world.resolver.flush_cache()
        sender.send(Message("a@x", "b@victim.com"))   # refetch stale policy
        _migrate_breaking_sts(world, deployed)        # now MX changes
        outcomes["txt-first"] = sender.send(
            Message("a@x", "b@victim.com")).status

        # Policy-first: update the body, then the record.
        world, deployed, sender = _world_with_enforce_domain()
        _migrate_breaking_sts(world, deployed)
        updated = Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                         max_age=7 * 86400,
                         mx_patterns=("mx.victim-mail.net",))
        deployed.set_policy_text(render_policy(updated))
        deployed.set_record("v=STSv1; id=update2;")
        world.resolver.flush_cache()
        outcomes["policy-first"] = sender.send(
            Message("a@x", "b@victim.com")).status
        return outcomes

    outcomes = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print(paper_row("TXT-record-first update", "transient failure window",
                    outcomes["txt-first"].value))
    print(paper_row("policy-file-first update", "delivered",
                    outcomes["policy-first"].value))
    assert outcomes["txt-first"] is DeliveryStatus.REFUSED_BY_POLICY
    assert outcomes["policy-first"] is DeliveryStatus.DELIVERED


def test_ablation_max_age_staleness(benchmark):
    """Larger max_age keeps stale enforce policies lethal for longer."""
    def staleness(max_age, days_later):
        world, deployed, sender = _world_with_enforce_domain(max_age)
        _migrate_breaking_sts(world, deployed)
        world.clock.advance(DAY * days_later)
        return sender.send(Message("a@x", "b@victim.com")).status

    def run():
        table = {}
        for max_age_days in (1, 7, 28):
            for days_later in (2, 10, 30):
                status = staleness(max_age_days * 86400, days_later)
                table[(max_age_days, days_later)] = status
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for (max_age_days, days_later), status in sorted(table.items()):
        print(f"  max_age={max_age_days:>2}d, migrated {days_later:>2}d "
              f"ago: {status.value}")
        if days_later > max_age_days:
            # Cache expired; sender refetches the (stale but matching-
            # nothing) policy... and the stale policy still lists the
            # old MX, so refusal persists until the policy is fixed —
            # unless the policy host broke too, degrading to
            # opportunistic delivery.
            assert status in (DeliveryStatus.DELIVERED,
                              DeliveryStatus.REFUSED_BY_POLICY)
        else:
            assert status is DeliveryStatus.REFUSED_BY_POLICY


def test_ablation_optout_strategies(benchmark):
    """Delivery outcome per Table-2 opt-out strategy, for an opted-out
    customer whose policy was enforce-mode."""
    def run():
        outcomes = {}
        for provider in table2_providers():
            world = World()
            domain = f"left-{provider.name.lower()}.com"
            deploy_domain(world, DomainSpec(
                domain=domain, policy_provider=provider,
                policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                              max_age=86400,
                              mx_patterns=(f"mail.{domain}",))))
            provider.customer_opts_out(world, domain)
            world.resolver.flush_cache()
            fetcher = PolicyFetcher(world.resolver, world.https_client)
            sender = MtaStsSender("relay.net", world.network,
                                  world.resolver, world.trust_store,
                                  world.clock, fetcher)
            outcomes[provider.opt_out] = sender.send(
                Message("a@x", f"b@{domain}")).status
        return outcomes

    outcomes = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    for behavior, status in outcomes.items():
        print(f"  {behavior.value:<16} -> {status.value}")
    # NXDOMAIN and empty-file strategies leave mail flowing (senders
    # degrade to opportunistic); stale enforce policies keep delivering
    # only while the MX still matches — they are the latent hazard.
    assert outcomes[OptOutBehavior.NXDOMAIN] is DeliveryStatus.DELIVERED
    assert outcomes[OptOutBehavior.REISSUE_CERT_EMPTY_POLICY] is \
        DeliveryStatus.DELIVERED
    assert outcomes[OptOutBehavior.REISSUE_CERT_STALE_POLICY] is \
        DeliveryStatus.DELIVERED
