"""Kill-and-resume differential harness (real SIGKILL, real resume).

The in-process resume tests (``tests/test_campaign_resume.py``) unwind
the campaign loop with an exception; this harness goes further and
kills an actual child process with ``SIGKILL`` mid-campaign — no
``finally`` blocks, no atexit, nothing flushes — then resumes from the
surviving state directory and byte-compares three artifacts against an
uninterrupted reference run:

* the store's ``canonical_bytes()``;
* the monthly metrics JSONL feed the monitor renders;
* the health report text.

Exit status 0 means every comparison matched for every configuration
(serial and threaded backends, with and without a seeded fault plan).
The state directory of the last configuration is left in place so CI
can upload its ``manifest.json`` as an artifact.

Usage::

    PYTHONPATH=src python benchmarks/crash_resume_harness.py \
        [--scale 0.004] [--seed 7] [--months 6] [--kill-after 2] \
        [--keep-dir DIR]

The child mode (``--child``) is internal: it runs the campaign with
checkpointing enabled and SIGKILLs itself the moment month
``--kill-after`` commits.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile

from repro.analysis.series import run_campaign
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.measurement.executor import ScanExecutor
from repro.netsim.network import FaultPlan
from repro.obs.monitor import CampaignMonitor


def _timeline(args) -> EcosystemTimeline:
    return EcosystemTimeline(TimelineConfig(
        PopulationConfig(scale=args.scale, seed=args.seed)))


def _fault_factory(args):
    if args.fault_seed is None:
        return None
    return lambda month: FaultPlan.seeded(seed=args.fault_seed + month,
                                          rate=0.2)


class _SelfKillMonitor(CampaignMonitor):
    """SIGKILLs the process after ``after`` months committed — the
    monitor observes *after* the checkpoint, so the kill lands exactly
    between one month's commit and the next month's scan."""

    def __init__(self, after: int):
        super().__init__()
        self._after = after

    def observe_month(self, *observed, **kwargs):
        super().observe_month(*observed, **kwargs)
        if len(self.records) >= self._after:
            os.kill(os.getpid(), signal.SIGKILL)


def _child(args) -> int:
    run_campaign(_timeline(args), list(range(args.months)),
                 executor=ScanExecutor(backend=args.backend,
                                       jobs=args.jobs),
                 monitor=_SelfKillMonitor(args.kill_after),
                 state_dir=args.state_dir,
                 fault_plan_factory=_fault_factory(args))
    # Reaching this line means the kill never fired.
    print("child: campaign finished without being killed", file=sys.stderr)
    return 1


def _spawn_child(args, state_dir: str, backend: str, jobs: int) -> int:
    command = [sys.executable, os.path.abspath(__file__), "--child",
               "--state-dir", state_dir, "--backend", backend,
               "--jobs", str(jobs), "--scale", str(args.scale),
               "--seed", str(args.seed), "--months", str(args.months),
               "--kill-after", str(args.kill_after)]
    if args.fault_seed is not None:
        command += ["--fault-seed", str(args.fault_seed)]
    env = dict(os.environ)
    repo_src = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(command, env=env).returncode


def _run_config(args, backend: str, jobs: int, keep_dir: str = None) -> bool:
    label = f"{backend}/j{jobs}" + (
        f"/faults@{args.fault_seed}" if args.fault_seed is not None else "")
    months = list(range(args.months))

    reference_monitor = CampaignMonitor()
    reference = run_campaign(
        _timeline(args), months,
        executor=ScanExecutor(backend=backend, jobs=jobs),
        monitor=reference_monitor, fault_plan_factory=_fault_factory(args))

    state_dir = keep_dir or tempfile.mkdtemp(prefix="crash-resume-")
    try:
        code = _spawn_child(args, state_dir, backend, jobs)
        if code != -signal.SIGKILL:
            print(f"[{label}] FAIL: child exited {code}, expected "
                  f"SIGKILL ({-signal.SIGKILL})")
            return False
        manifest = json.loads(open(
            os.path.join(state_dir, "manifest.json")).read())
        committed = [entry["month"] for entry in manifest["months"]]
        print(f"[{label}] child SIGKILLed with months {committed} "
              f"committed; resuming")

        resumed_monitor = CampaignMonitor()
        resumed = run_campaign(
            _timeline(args), months,
            executor=ScanExecutor(backend=backend, jobs=jobs),
            monitor=resumed_monitor, state_dir=state_dir, resume=True,
            fault_plan_factory=_fault_factory(args))

        checks = [
            ("canonical_bytes", reference.store.canonical_bytes()
             == resumed.store.canonical_bytes()),
            ("metrics jsonl", reference_monitor.to_jsonl()
             == resumed_monitor.to_jsonl()),
            ("health report", reference_monitor.health().render()
             == resumed_monitor.health().render()),
        ]
        for name, ok in checks:
            print(f"[{label}]   {name}: {'identical' if ok else 'DIVERGED'}")
        return all(ok for _, ok in checks)
    finally:
        if keep_dir is None:
            shutil.rmtree(state_dir, ignore_errors=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.004)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--months", type=int, default=6)
    parser.add_argument("--kill-after", type=int, default=2,
                        help="months committed before the SIGKILL")
    parser.add_argument("--keep-dir", default=None, metavar="DIR",
                        help="keep the last configuration's state "
                             "directory at DIR (for artifact upload)")
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--state-dir", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "threaded"))
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--fault-seed", type=int, default=None)
    args = parser.parse_args()

    if args.child:
        return _child(args)

    failures = 0
    matrix = [("serial", 1, None), ("threaded", 3, None),
              ("serial", 1, 4242), ("threaded", 3, 4242)]
    for index, (backend, jobs, fault_seed) in enumerate(matrix):
        args.fault_seed = fault_seed
        keep = args.keep_dir if index == len(matrix) - 1 else None
        if keep:
            os.makedirs(keep, exist_ok=True)
        if not _run_config(args, backend, jobs, keep_dir=keep):
            failures += 1
    if failures:
        print(f"FATAL: {failures} configuration(s) diverged after resume")
        return 1
    print("all configurations byte-identical after kill-and-resume")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
