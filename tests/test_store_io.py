"""The durable campaign store: round-trips, indexes, corruption.

Covers the persistence layer three ways:

* **round-trip** — ``SnapshotStore.from_rows(json.loads(
  store.canonical_bytes())) == store`` for hypothesis-generated stores
  (non-ASCII hostnames, transient flags, policy warnings, empty
  months), and save/load through the on-disk shards is exact;
* **integrity** — a flipped byte, a truncated shard, a missing shard,
  a damaged manifest, or a foreign schema version all raise
  :class:`StoreCorruption` naming the offending artifact;
* **indexes & merge** — ``month()``/``domain_history()`` reflect the
  per-month/per-domain indexes, and ``merge()`` rejects differing
  collisions while staying idempotent for equal re-merges.
"""

import json
import os
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import Instant
from repro.errors import StoreCorruption
from repro.measurement.snapshots import (
    DomainSnapshot, MxObservation, SnapshotStore,
)
from repro.measurement.store_io import (
    MANIFEST_NAME, commit_month, load_state, load_store, read_manifest,
    save_store, shard_digest, shard_name,
)

# -- snapshot generation ----------------------------------------------------

# Deliberately includes ß/ẞ/İ so hostnames with non-trivial case
# mappings travel through JSON and back.
_label = st.text(alphabet=string.ascii_lowercase + "ßẞİü-",
                 min_size=1, max_size=8)
_hostname = st.builds(lambda ls: ".".join(ls + ["example"]),
                      st.lists(_label, min_size=1, max_size=3))


@st.composite
def snapshots(draw, month=None):
    domain = draw(_hostname)
    month_index = (draw(st.integers(min_value=0, max_value=5))
                   if month is None else month)
    observations = draw(st.lists(st.builds(
        MxObservation,
        hostname=_hostname,
        addresses=st.lists(st.sampled_from(["192.0.2.1", "198.51.100.9"]),
                           max_size=2),
        reachable=st.booleans(), starttls=st.booleans(),
        tls_established=st.booleans(), cert_valid=st.booleans(),
        failure_class=st.sampled_from(["", "valid", "cn-mismatch"]),
        transient=st.booleans()), max_size=3))
    return DomainSnapshot(
        domain=domain, tld="example", month_index=month_index,
        instant=Instant(draw(st.integers(min_value=0, max_value=2**31))),
        txt_strings=draw(st.lists(st.text(max_size=20), max_size=2)),
        sts_like=draw(st.booleans()),
        record_valid=draw(st.booleans()),
        dns_transient=draw(st.booleans()),
        policy_transient=draw(st.booleans()),
        policy_warnings=draw(st.lists(
            st.sampled_from(["max-age-over-rfc-bound", "sts-uses-cname"]),
            max_size=2)),
        policy_mode=draw(st.sampled_from(["", "testing", "enforce"])),
        policy_max_age=draw(st.one_of(st.none(),
                                      st.integers(0, 31_557_600))),
        mx_patterns=draw(st.lists(_hostname, max_size=3)),
        mx_hostnames=[obs.hostname for obs in observations],
        mx_observations=observations)


stores = st.builds(
    lambda snaps: SnapshotStore.from_rows(s.to_dict() for s in snaps),
    st.lists(snapshots(), max_size=12))


# -- round-trips ------------------------------------------------------------

class TestRoundTrip:
    @given(snapshots())
    @settings(max_examples=100)
    def test_snapshot_from_dict_inverts_to_dict(self, snap):
        rebuilt = DomainSnapshot.from_dict(snap.to_dict())
        assert rebuilt == snap
        assert rebuilt.instant == snap.instant
        assert rebuilt.to_dict() == snap.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        data = DomainSnapshot(domain="d.example", tld="example",
                              month_index=0, instant=Instant(0)).to_dict()
        data["surprise"] = 1
        with pytest.raises(TypeError):
            DomainSnapshot.from_dict(data)
        obs = MxObservation(hostname="mx.example").__dict__ | {"extra": 1}
        with pytest.raises(TypeError):
            MxObservation.from_dict(obs)

    @given(stores)
    @settings(max_examples=75, deadline=None)
    def test_canonical_bytes_round_trip(self, store):
        rows = json.loads(store.canonical_bytes())
        rebuilt = SnapshotStore.from_rows(rows)
        assert rebuilt == store
        assert rebuilt.canonical_bytes() == store.canonical_bytes()

    def test_empty_store_round_trips(self):
        store = SnapshotStore()
        assert SnapshotStore.from_rows(
            json.loads(store.canonical_bytes())) == store

    @given(stores)
    @settings(max_examples=25, deadline=None)
    def test_disk_round_trip_is_exact(self, tmp_path_factory, store):
        state_dir = str(tmp_path_factory.mktemp("store"))
        save_store(store, state_dir)
        loaded = load_store(state_dir)
        assert loaded == store
        assert loaded.canonical_bytes() == store.canonical_bytes()

    def test_shards_concatenate_to_canonical_bytes(self, tmp_path):
        store = SnapshotStore()
        for month in (0, 1):
            for name in ("a.example", "straße.example"):
                store.add(DomainSnapshot(domain=name, tld="example",
                                         month_index=month,
                                         instant=Instant(month * 100)))
        save_store(store, str(tmp_path))
        rows = []
        for month in store.months():
            with open(tmp_path / shard_name(month), encoding="utf-8") as fh:
                rows.extend(json.loads(line) for line in fh)
        assert rows == json.loads(store.canonical_bytes())


# -- commit / manifest ------------------------------------------------------

def _store_with(*months):
    store = SnapshotStore()
    for month in months:
        store.add(DomainSnapshot(domain="d.example", tld="example",
                                 month_index=month,
                                 instant=Instant(month * 1000)))
    return store


class TestCommit:
    def test_commit_month_is_incremental(self, tmp_path):
        store = _store_with(0, 1)
        commit_month(str(tmp_path), store, 0, stats={"domains_scanned": 1},
                     population={"scale": 0.01})
        commit_month(str(tmp_path), store, 1)
        state = load_state(str(tmp_path))
        assert state.month_indexes() == [0, 1]
        assert state.population == {"scale": 0.01}   # inherited by month 1
        assert state.entry(0).stats == {"domains_scanned": 1}
        assert state.store == store

    def test_recommit_replaces_entry(self, tmp_path):
        store = _store_with(0)
        commit_month(str(tmp_path), store, 0)
        commit_month(str(tmp_path), store, 0, stats={"x": 2})
        state = load_state(str(tmp_path))
        assert [e.month for e in state.months] == [0]
        assert state.entry(0).stats == {"x": 2}

    def test_months_subset_load(self, tmp_path):
        save_store(_store_with(0, 1, 2), str(tmp_path))
        state = load_state(str(tmp_path), months=[0, 2])
        assert state.month_indexes() == [0, 2]
        assert state.store.months() == [0, 2]

    def test_read_manifest_absent_is_none(self, tmp_path):
        assert read_manifest(str(tmp_path)) is None


# -- corruption -------------------------------------------------------------

class TestCorruption:
    def _committed(self, tmp_path):
        save_store(_store_with(0, 1), str(tmp_path))
        return str(tmp_path)

    def test_flipped_byte_is_detected(self, tmp_path):
        state_dir = self._committed(tmp_path)
        shard = os.path.join(state_dir, shard_name(0))
        blob = bytearray(open(shard, "rb").read())
        blob[10] ^= 0xFF
        open(shard, "wb").write(bytes(blob))
        with pytest.raises(StoreCorruption, match=r"month-0000\.jsonl"):
            load_store(state_dir)

    def test_truncated_shard_is_detected(self, tmp_path):
        state_dir = self._committed(tmp_path)
        shard = os.path.join(state_dir, shard_name(1))
        text = open(shard, encoding="utf-8").read()
        open(shard, "w", encoding="utf-8").write(text[:len(text) // 2])
        with pytest.raises(StoreCorruption, match=r"month-0001\.jsonl"):
            load_store(state_dir)

    def test_missing_shard_is_detected(self, tmp_path):
        state_dir = self._committed(tmp_path)
        os.remove(os.path.join(state_dir, shard_name(0)))
        with pytest.raises(StoreCorruption,
                           match=r"month-0000\.jsonl.*missing"):
            load_store(state_dir)

    def test_unparsable_row_with_matching_digest(self, tmp_path):
        # Digest verification passes; the row itself is the problem.
        state_dir = self._committed(tmp_path)
        shard = os.path.join(state_dir, shard_name(0))
        text = '{"domain":"d.example"}\n'
        open(shard, "w", encoding="utf-8").write(text)
        manifest = json.loads(
            open(os.path.join(state_dir, MANIFEST_NAME)).read())
        manifest["months"][0]["sha256"] = shard_digest(text)
        manifest["months"][0]["rows"] = 1
        open(os.path.join(state_dir, MANIFEST_NAME), "w").write(
            json.dumps(manifest))
        with pytest.raises(StoreCorruption, match=r"row 1"):
            load_store(state_dir)

    def test_row_count_mismatch_is_detected(self, tmp_path):
        state_dir = self._committed(tmp_path)
        manifest_path = os.path.join(state_dir, MANIFEST_NAME)
        manifest = json.loads(open(manifest_path).read())
        shard = os.path.join(state_dir, shard_name(0))
        text = open(shard, encoding="utf-8").read() * 2
        open(shard, "w", encoding="utf-8").write(text)
        manifest["months"][0]["sha256"] = shard_digest(text)
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(StoreCorruption, match="manifest records 1"):
            load_store(state_dir)

    def test_damaged_manifest_is_corruption_not_absence(self, tmp_path):
        state_dir = self._committed(tmp_path)
        open(os.path.join(state_dir, MANIFEST_NAME), "w").write("{nope")
        with pytest.raises(StoreCorruption, match="manifest.json"):
            load_store(state_dir)

    def test_foreign_schema_version_is_refused(self, tmp_path):
        state_dir = self._committed(tmp_path)
        manifest_path = os.path.join(state_dir, MANIFEST_NAME)
        manifest = json.loads(open(manifest_path).read())
        manifest["schema_version"] = 99
        open(manifest_path, "w").write(json.dumps(manifest))
        with pytest.raises(StoreCorruption, match="schema version 99"):
            load_store(state_dir)

    def test_no_manifest_at_all(self, tmp_path):
        with pytest.raises(StoreCorruption, match="not a campaign state"):
            load_store(str(tmp_path))


# -- indexes & merge --------------------------------------------------------

class TestStoreIndexes:
    def test_month_is_sorted_by_domain(self):
        store = SnapshotStore()
        for name in ("z.example", "a.example", "m.example"):
            store.add(DomainSnapshot(domain=name, tld="example",
                                     month_index=0, instant=Instant(0)))
        assert [s.domain for s in store.month(0)] == [
            "a.example", "m.example", "z.example"]

    def test_domain_history_is_sorted_by_month(self):
        store = _store_with(2, 0, 1)
        assert [s.month_index for s in store.domain_history("d.example")] \
            == [0, 1, 2]
        assert store.domain_history("absent.example") == []

    def test_re_add_same_key_does_not_double_count(self):
        store = _store_with(0)
        replacement = DomainSnapshot(domain="d.example", tld="example",
                                     month_index=0, instant=Instant(7))
        store.add(replacement)
        assert len(store) == 1
        assert store.get(0, "d.example") == replacement
        assert store.domain_history("d.example") == [replacement]


class TestMerge:
    def test_merge_differing_collision_names_the_key(self):
        ours, theirs = _store_with(0), SnapshotStore()
        theirs.add(DomainSnapshot(domain="d.example", tld="example",
                                  month_index=0, instant=Instant(999)))
        with pytest.raises(ValueError,
                           match=r"month=0, domain='d.example'"):
            ours.merge(theirs)

    def test_equal_re_merge_is_idempotent(self):
        ours, theirs = _store_with(0, 1), _store_with(0, 1)
        ours.merge(theirs)
        assert ours == theirs
        assert len(ours) == 2

    def test_disjoint_merge_unions(self):
        ours, theirs = _store_with(0), _store_with(1)
        ours.merge(theirs)
        assert ours.months() == [0, 1]
        assert len(ours) == 2
