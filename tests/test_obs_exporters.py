"""The metrics exporters: Prometheus and monthly-JSONL round-trips,
serial-vs-threaded byte-identity of the exported artifacts (with and
without fault injection), and the atomic-write primitive every
observability writer shares."""

from __future__ import annotations

import json
import os

import pytest

from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.fsutil import atomic_write_text
from repro.measurement.executor import ScanExecutor
from repro.netsim.network import FaultPlan
from repro.obs.exporters import (
    append_jsonl_line, month_jsonl_line, parse_prometheus_exposition,
    prometheus_exposition, read_month_records, write_lines_atomic,
)
from repro.obs.monitor import build_month_registry
from repro.trace import MetricsRegistry, micros

SCALE = 0.003
SEED = 1789


def scan_month(backend, jobs, *, fault_seed=None):
    """Scan the final month on a **fresh** world and return its
    deterministic monthly registry plus the scan date."""
    timeline = EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=SCALE, seed=SEED)))
    month = len(timeline.scan_instants) - 1
    materialized = timeline.materialize(month)
    if fault_seed is not None:
        materialized.world.network.install_fault_plan(
            FaultPlan.seeded(seed=fault_seed, rate=0.3))
    executor = ScanExecutor(backend=backend, jobs=jobs)
    store, stats = executor.scan(
        materialized.world, materialized.deployed.keys(), month,
        instant=materialized.instant)
    registry = build_month_registry(stats, store.month(month))
    return registry, month, materialized.instant.date_string()


def sample_registry() -> MetricsRegistry:
    """A hand-built registry exercising dotted/dashed keys, zero
    counters, and a histogram with an overflow observation."""
    registry = MetricsRegistry()
    registry.count("scan.domains", 420)
    registry.count("net.connect-retries", 7)
    registry.count("taxonomy.not-sts", 0)
    for seconds in (0.05, 0.3, 0.9, 2.5, 70.0, 0.3):
        registry.observe("retry.backoff", micros(seconds))
    return registry


class TestPrometheusRoundTrip:
    def test_counters_and_histograms_round_trip(self):
        registry = sample_registry()
        text = prometheus_exposition(registry)
        back = parse_prometheus_exposition(text)
        assert back.to_dict() == registry.to_dict()

    def test_round_trip_survives_labels(self):
        registry = sample_registry()
        text = prometheus_exposition(
            registry, labels={"month": "3", "campaign": "x"})
        back = parse_prometheus_exposition(text)
        assert back.to_dict() == registry.to_dict()

    def test_label_keys_sorted_and_quoted(self):
        registry = MetricsRegistry()
        registry.count("scan.domains", 1)
        text = prometheus_exposition(
            registry, labels={"month": "3", "campaign": "x"})
        assert ('repro_scan_domains_total'
                '{campaign="x",month="3"} 1') in text

    def test_keys_flattened_but_help_preserves_original(self):
        registry = MetricsRegistry()
        registry.count("net.connect-retries", 2)
        text = prometheus_exposition(registry)
        assert "repro_net_connect_retries_total 2" in text
        assert ("# HELP repro_net_connect_retries_total "
                "net.connect-retries") in text

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        for seconds in (0.05, 0.3, 70.0):
            registry.observe("retry.backoff", micros(seconds))
        text = prometheus_exposition(registry)
        inf_lines = [line for line in text.splitlines()
                     if '{le="+Inf"}' in line]
        assert len(inf_lines) == 1
        assert inf_lines[0].endswith(" 3")
        assert "repro_retry_backoff_seconds_count 3" in text

    def test_real_scan_registry_round_trips(self):
        registry, _, _ = scan_month("serial", 1)
        back = parse_prometheus_exposition(prometheus_exposition(registry))
        assert back.to_dict() == registry.to_dict()


class TestByteIdentity:
    """Serial and threaded backends must export byte-identical
    artifacts — the monthly feed is only trustworthy longitudinally if
    the execution strategy leaves no fingerprint."""

    @pytest.mark.parametrize("fault_seed", [None, 7])
    def test_serial_and_threaded_exports_identical(self, fault_seed):
        serial, month, date = scan_month("serial", 1,
                                         fault_seed=fault_seed)
        threaded, _, _ = scan_month("threaded", 7, fault_seed=fault_seed)
        assert (prometheus_exposition(serial)
                == prometheus_exposition(threaded))
        assert (month_jsonl_line(month, date, serial)
                == month_jsonl_line(month, date, threaded))

    def test_fault_injection_visible_in_export(self):
        registry, _, _ = scan_month("serial", 1, fault_seed=7)
        assert registry.get("net.faults_injected") > 0
        assert registry.get("taxonomy.transient") > 0


class TestMonthJsonl:
    def test_line_is_canonical_json(self):
        line = month_jsonl_line(3, "2024-02-01", sample_registry())
        assert "\n" not in line
        data = json.loads(line)
        assert data["type"] == "month"
        assert data["month"] == 3
        assert line == json.dumps(data, sort_keys=True,
                                  separators=(",", ":"))

    def test_read_round_trips_and_sorts(self):
        registry = sample_registry()
        lines = [month_jsonl_line(m, f"2024-0{m + 1}-01", registry)
                 for m in (2, 0, 1)]
        text = "\n".join(lines) + "\n"
        records = read_month_records(text)
        assert [month for month, _, _ in records] == [0, 1, 2]
        for _, _, parsed in records:
            assert parsed.to_dict() == registry.to_dict()

    def test_foreign_and_blank_lines_skipped(self):
        text = "\n".join([
            json.dumps({"type": "comment", "note": "x"}),
            "",
            month_jsonl_line(0, "2023-11-07", sample_registry()),
        ]) + "\n"
        records = read_month_records(text)
        assert len(records) == 1
        assert records[0][1] == "2023-11-07"


class TestAtomicWrites:
    def test_write_lines_atomic_writes_and_counts(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        assert write_lines_atomic(str(path), ["a", "b"]) == 2
        assert path.read_text(encoding="utf-8") == "a\nb\n"
        assert os.listdir(tmp_path) == ["feed.jsonl"]

    def test_empty_lines_write_empty_file(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        assert write_lines_atomic(str(path), []) == 0
        assert path.read_text(encoding="utf-8") == ""

    def test_failed_replace_preserves_original(self, tmp_path,
                                               monkeypatch):
        path = tmp_path / "feed.jsonl"
        path.write_text("previous\n", encoding="utf-8")

        def explode(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr("repro.fsutil.os.replace", explode)
        with pytest.raises(OSError):
            atomic_write_text(str(path), "next\n")
        # The original survives and the temp file was cleaned up.
        assert path.read_text(encoding="utf-8") == "previous\n"
        assert os.listdir(tmp_path) == ["feed.jsonl"]

    def test_append_jsonl_line_appends(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        append_jsonl_line(str(path), '{"month":0}')
        append_jsonl_line(str(path), '{"month":1}')
        assert path.read_text(encoding="utf-8").splitlines() == [
            '{"month":0}', '{"month":1}']

    def test_trace_write_jsonl_leaves_no_temp_files(self, tmp_path):
        timeline = EcosystemTimeline(
            TimelineConfig(PopulationConfig(scale=0.002, seed=SEED)))
        materialized = timeline.materialize(0)
        executor = ScanExecutor(trace=True)
        executor.scan(materialized.world, materialized.deployed.keys(),
                      0, instant=materialized.instant)
        path = tmp_path / "trace.jsonl"
        executor.last_trace.write_jsonl(str(path))
        assert os.listdir(tmp_path) == ["trace.jsonl"]
        assert path.read_text(encoding="utf-8") == (
            executor.last_trace.to_jsonl())
