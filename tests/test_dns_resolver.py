"""Unit tests for the authoritative server and the caching resolver."""

import pytest

from repro.clock import Clock, Duration, Instant
from repro.dns.name import DnsName
from repro.dns.records import ARecord, CnameRecord, RRType, TxtRecord
from repro.dns.resolver import Resolver
from repro.dns.server import AuthoritativeServer, ServerFault
from repro.dns.zone import Zone
from repro.errors import (
    CnameLoop, DnsTimeout, NoData, NxDomain, ServFail,
)
from repro.netsim.ip import IpAddress, IpPool
from repro.netsim.network import Network


def n(text):
    return DnsName.parse(text)


@pytest.fixture
def setup():
    network = Network()
    clock = Clock(Instant.parse("2024-01-01"))
    pool = IpPool()
    server = AuthoritativeServer("ns1", pool.allocate(), network)
    zone = Zone(apex=n("example.com"))
    zone.add(ARecord(n("example.com"), 3600, IpAddress.v4(10, 9, 9, 9)))
    zone.add(TxtRecord(n("_mta-sts.example.com"), 300, "v=STSv1; id=1;"))
    zone.add(CnameRecord(n("www.example.com"), 3600, n("example.com")))
    server.add_zone(zone)
    resolver = Resolver(network, clock)
    resolver.delegate("example.com", [server.ip])
    return network, clock, server, zone, resolver


class TestAuthoritative:
    def test_positive_answer(self, setup):
        _, _, server, _, _ = setup
        result = server.query(n("example.com"), RRType.A)
        assert result.rcode == "NOERROR"
        assert len(result.records) == 1

    def test_nxdomain(self, setup):
        _, _, server, _, _ = setup
        assert server.query(n("nope.example.com"), RRType.A).rcode == \
            "NXDOMAIN"

    def test_nodata(self, setup):
        _, _, server, _, _ = setup
        result = server.query(n("example.com"), RRType.MX)
        assert result.rcode == "NOERROR"
        assert result.records == []

    def test_cname_returned_for_other_types(self, setup):
        _, _, server, _, _ = setup
        result = server.query(n("www.example.com"), RRType.A)
        assert result.cname is not None
        assert result.cname.target.text == "example.com"

    def test_servfail_fault(self, setup):
        _, _, server, _, _ = setup
        server.fault = ServerFault.SERVFAIL
        with pytest.raises(ServFail):
            server.query(n("example.com"), RRType.A)

    def test_lame_delegation(self, setup):
        _, _, server, _, _ = setup
        server.fault = ServerFault.LAME
        with pytest.raises(ServFail):
            server.query(n("example.com"), RRType.A)

    def test_longest_zone_match(self, setup):
        _, _, server, _, _ = setup
        child = Zone(apex=n("sub.example.com"))
        child.add(ARecord(n("sub.example.com"), 60, IpAddress.v4(10, 8, 8, 8)))
        server.add_zone(child)
        result = server.query(n("sub.example.com"), RRType.A)
        assert result.records[0].address.text == "10.8.8.8"


class TestResolver:
    def test_resolve(self, setup):
        *_, resolver = setup
        answer = resolver.resolve("example.com", RRType.A)
        assert answer.records[0].address.text == "10.9.9.9"

    def test_cname_chase(self, setup):
        *_, resolver = setup
        answer = resolver.resolve("www.example.com", RRType.A)
        assert answer.canonical_name.text == "example.com"
        assert len(answer.cname_chain) == 1
        assert answer.records[0].address.text == "10.9.9.9"

    def test_nxdomain_raised(self, setup):
        *_, resolver = setup
        with pytest.raises(NxDomain):
            resolver.resolve("missing.example.com", RRType.A)

    def test_nodata_raised(self, setup):
        *_, resolver = setup
        with pytest.raises(NoData):
            resolver.resolve("example.com", RRType.MX)

    def test_no_delegation_times_out(self, setup):
        *_, resolver = setup
        with pytest.raises(DnsTimeout):
            resolver.resolve("unknown.org", RRType.A)

    def test_cname_loop_detected(self, setup):
        network, clock, server, zone, resolver = setup
        zone.add(CnameRecord(n("a.example.com"), 60, n("b.example.com")))
        zone.add(CnameRecord(n("b.example.com"), 60, n("a.example.com")))
        with pytest.raises(CnameLoop):
            resolver.resolve("a.example.com", RRType.A)

    def test_try_resolve_swallows_errors(self, setup):
        *_, resolver = setup
        assert resolver.try_resolve("missing.example.com", RRType.A) is None
        assert resolver.try_resolve("example.com", RRType.A) is not None

    def test_resolve_address_helper(self, setup):
        *_, resolver = setup
        addresses = resolver.resolve_address("example.com")
        assert [a.text for a in addresses] == ["10.9.9.9"]

    def test_resolve_address_failure(self, setup):
        *_, resolver = setup
        with pytest.raises(NxDomain):
            resolver.resolve_address("missing.example.com")


class TestResolverCache:
    def test_positive_cache_hit(self, setup):
        *_, resolver = setup
        resolver.resolve("example.com", RRType.A)
        before = resolver.query_count
        resolver.resolve("example.com", RRType.A)
        assert resolver.query_count == before
        assert resolver.cache_hits >= 1

    def test_cache_expires_with_ttl(self, setup):
        network, clock, server, zone, resolver = setup
        resolver.resolve("example.com", RRType.A)
        clock.advance(Duration(3601))
        before = resolver.query_count
        resolver.resolve("example.com", RRType.A)
        assert resolver.query_count > before

    def test_cache_serves_stale_free_updates_after_flush(self, setup):
        network, clock, server, zone, resolver = setup
        resolver.resolve("_mta-sts.example.com", RRType.TXT)
        zone.replace(TxtRecord(n("_mta-sts.example.com"), 300,
                               "v=STSv1; id=2;"))
        cached = resolver.resolve("_mta-sts.example.com", RRType.TXT)
        assert cached.records[0].text.endswith("id=1;")
        resolver.flush_cache()
        fresh = resolver.resolve("_mta-sts.example.com", RRType.TXT)
        assert fresh.records[0].text.endswith("id=2;")

    def test_negative_cache(self, setup):
        network, clock, server, zone, resolver = setup
        with pytest.raises(NxDomain):
            resolver.resolve("ghost.example.com", RRType.A)
        # Publish the name; the negative entry hides it until TTL.
        zone.add(ARecord(n("ghost.example.com"), 60, IpAddress.v4(10, 1, 1, 1)))
        with pytest.raises(NxDomain):
            resolver.resolve("ghost.example.com", RRType.A)
        clock.advance(Duration(301))
        assert resolver.resolve("ghost.example.com", RRType.A)

    def test_cache_disabled(self, setup):
        network, clock, server, zone, _ = setup
        resolver = Resolver(network, clock, cache_enabled=False)
        resolver.delegate("example.com", [server.ip])
        resolver.resolve("example.com", RRType.A)
        resolver.resolve("example.com", RRType.A)
        assert resolver.cache_hits == 0
        assert resolver.query_count == 2

    def test_unreachable_server_then_timeout(self, setup):
        network, clock, server, zone, resolver = setup
        resolver.delegate("dead.org", [IpAddress.v4(10, 99, 99, 99)])
        with pytest.raises(DnsTimeout):
            resolver.resolve("dead.org", RRType.A)


class TestSingleFlight:
    def test_concurrent_lookups_query_once(self, setup):
        # The cache is compute-once: N threads racing on a cold name
        # must produce exactly one live query, with every other lookup
        # served as a cache hit — the invariant that makes the
        # query/hit counters identical across scan backends.
        import threading

        _, _, _, _, resolver = setup
        barrier = threading.Barrier(8)
        results, errors = [], []

        def lookup():
            barrier.wait()
            try:
                results.append(
                    resolver.resolve(n("example.com"), RRType.A))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=lookup) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 8
        assert resolver.query_count == 1
        assert resolver.cache_hits == 7

    def test_noncacheable_failure_releases_waiters(self, setup):
        # A timeout leaves the cache empty; a waiter must become the
        # next owner instead of deadlocking or serving a stale miss.
        import threading

        network, clock, _, _, _ = setup
        resolver = Resolver(network, clock)  # no delegation → timeout
        outcomes = []

        def lookup():
            try:
                resolver.resolve(n("nowhere.test"), RRType.A)
            except DnsTimeout:
                outcomes.append("timeout")

        threads = [threading.Thread(target=lookup) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert outcomes == ["timeout"] * 4
        assert not resolver._inflight
