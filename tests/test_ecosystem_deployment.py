"""Tests for domain deployment, providers, and fault injection."""

import pytest

from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode
from repro.dns.name import DnsName
from repro.dns.records import RRType
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.ecosystem.providers import (
    OptOutBehavior, default_email_providers, table2_providers,
)
from repro.errors import PolicyFetchStage


class TestDeployment:
    def test_self_managed_stack(self, world, simple_domain):
        assert simple_domain.mx_hosts
        assert simple_domain.policy_server is not None
        zone = simple_domain.zone
        apex = DnsName.parse("example.com")
        assert zone.lookup(apex, RRType.MX)
        assert zone.lookup(apex, RRType.NS)
        assert zone.lookup(DnsName.parse("_mta-sts.example.com"), RRType.TXT)
        assert zone.lookup(DnsName.parse("mta-sts.example.com"), RRType.A)

    def test_default_policy_covers_intended_mx(self, world, fetcher,
                                               simple_domain):
        result = fetcher.fetch_policy("example.com")
        assert result.policy.mx_patterns == ("mail.example.com",)

    def test_multi_mx(self, world):
        deployed = deploy_domain(world, DomainSpec(domain="multi.com",
                                                   self_mx_count=3))
        assert len(deployed.mx_hosts) == 3
        assert deployed.mx_record_hostnames() == [
            "mx1.multi.com", "mx2.multi.com", "mx3.multi.com"]

    def test_provider_mx_shared(self, world):
        google = default_email_providers()[0]
        a = deploy_domain(world, DomainSpec(domain="a.com",
                                            email_provider=google))
        b = deploy_domain(world, DomainSpec(domain="b.com",
                                            email_provider=google))
        assert a.mx_record_hostnames() == b.mx_record_hostnames()
        assert not a.mx_hosts       # the provider owns the hosts

    def test_unique_mx_provider(self, world):
        lucid = next(p for p in default_email_providers()
                     if p.assigns_unique_mx_per_customer)
        deployed = deploy_domain(world, DomainSpec(domain="cust.com",
                                                   email_provider=lucid))
        assert deployed.mx_record_hostnames() == \
            ["cust-com.mail.lucidgrow.com"]

    def test_no_sts_deployment(self, world):
        deployed = deploy_domain(world, DomainSpec(domain="nosts.com",
                                                   deploy_sts=False))
        zone = deployed.zone
        assert not zone.lookup(DnsName.parse("_mta-sts.nosts.com"),
                               RRType.TXT)
        assert deployed.policy_server is None

    def test_dns_provider_ns_records(self, world):
        deployed = deploy_domain(world, DomainSpec(
            domain="outsourced.com", dns_provider_sld="dns-provider.net"))
        ns = deployed.zone.lookup(DnsName.parse("outsourced.com"), RRType.NS)
        assert all(r.nsdname.text.endswith("dns-provider.net") for r in ns)


class TestPolicyProviders:
    def test_cname_delegation(self, world, fetcher):
        provider = table2_providers()[2]     # PowerDMARC
        deploy_domain(world, DomainSpec(domain="c.com",
                                        policy_provider=provider))
        result = fetcher.fetch_policy("c.com")
        assert result.fully_valid
        assert result.policy_host_cname == "c-com._mta.mta-sts.tech"

    def test_cname_patterns_match_table2(self):
        patterns = {p.name: p.canonical_host_for("a.com")
                    for p in table2_providers()}
        assert patterns["Tutanota"] == "_mta-sts.tutanota.de"
        assert patterns["DMARCReport"] == "a-com.mta-sts.dmarcinput.com"
        assert patterns["PowerDMARC"] == "a-com._mta.mta-sts.tech"
        assert patterns["EasyDMARC"] == "a_com__mta_sts.easydmarc.pro"
        assert patterns["Mailhardener"] == "a.com._mta-sts.mailhardener.com"
        assert patterns["URIports"] == "a-com._mta-sts.uriports.com"
        assert patterns["Sendmarc"] == "a.com._mta-sts.sdmarc.net"
        assert patterns["OnDMARC"] == \
            "_mta-sts.a.com._mta-sts.smart.ondmarc.com"

    def test_policy_update_via_provider(self, world, fetcher):
        provider = table2_providers()[3]     # EasyDMARC
        deploy_domain(world, DomainSpec(domain="upd.com",
                                        policy_provider=provider))
        new_policy = Policy(version="STSv1", mode=PolicyMode.NONE,
                            max_age=60, mx_patterns=())
        provider.update_policy("upd.com", new_policy)
        result = fetcher.fetch_policy("upd.com")
        assert result.policy.mode is PolicyMode.NONE


class TestOptOutBehaviors:
    @pytest.fixture
    def customer(self, world):
        def deploy_with(provider):
            return deploy_domain(world, DomainSpec(
                domain=f"cust-{provider.name.lower()}.com",
                policy_provider=provider,
                email_provider=None))
        return deploy_with

    def test_nxdomain_provider(self, world, fetcher, customer):
        provider = next(p for p in table2_providers()
                        if p.opt_out is OptOutBehavior.NXDOMAIN)
        deployed = customer(provider)
        provider.customer_opts_out(world, deployed.domain)
        world.resolver.flush_cache()
        result = fetcher.fetch_policy(deployed.domain)
        assert result.failed_stage is PolicyFetchStage.DNS

    def test_empty_policy_provider(self, world, fetcher, customer):
        provider = next(p for p in table2_providers()
                        if p.opt_out is OptOutBehavior.REISSUE_CERT_EMPTY_POLICY)
        deployed = customer(provider)
        provider.customer_opts_out(world, deployed.domain)
        world.resolver.flush_cache()
        result = fetcher.fetch_policy(deployed.domain)
        assert result.failed_stage is PolicyFetchStage.SYNTAX
        assert result.fetch.certificate is not None   # cert still valid

    def test_stale_policy_provider(self, world, fetcher, customer):
        provider = next(p for p in table2_providers()
                        if p.opt_out is OptOutBehavior.REISSUE_CERT_STALE_POLICY)
        deployed = customer(provider)
        provider.customer_opts_out(world, deployed.domain)
        world.resolver.flush_cache()
        result = fetcher.fetch_policy(deployed.domain)
        assert result.fully_valid     # the stale policy still serves

    def test_tutanota_rejects_mail(self, world, customer):
        provider = table2_providers()[0]
        provider.deploy(world)
        tutanota_mail = next(p for p in default_email_providers()
                             if p.name == "Tutanota")
        deployed = deploy_domain(world, DomainSpec(
            domain="cust-tuta.com", policy_provider=provider,
            email_provider=tutanota_mail))
        provider.customer_opts_out(world, "cust-tuta.com")
        tutanota_mail.mx_hosts[0].reject_all_mail = True
        code, _ = tutanota_mail.mx_hosts[0].accept_message(
            "a@b.c", "x@cust-tuta.com", "hello", over_tls=True)
        assert code == 550


class TestFaultInjection:
    def test_record_faults_change_txt(self, world, simple_domain):
        apply_fault(world, simple_domain, Fault.RECORD_BAD_VERSION)
        records = simple_domain.zone.lookup(
            DnsName.parse("_mta-sts.example.com"), RRType.TXT)
        assert records[0].text.startswith("v=STS1")

    def test_duplicate_record_fault(self, world, simple_domain):
        apply_fault(world, simple_domain, Fault.RECORD_DUPLICATE)
        records = simple_domain.zone.lookup(
            DnsName.parse("_mta-sts.example.com"), RRType.TXT)
        assert len(records) == 2

    def test_outdated_policy_migrates_mx(self, world, fetcher,
                                         simple_domain):
        apply_fault(world, simple_domain, Fault.OUTDATED_POLICY)
        world.resolver.flush_cache()
        assert simple_domain.mx_record_hostnames() == ["mx.example-mail.net"]
        result = fetcher.fetch_policy("example.com")
        assert result.policy.mx_patterns == ("mail.example.com",)
        # The new MX resolves and works.
        probe = world.smtp_probe.probe_host("mx.example-mail.net")
        assert probe.cert_valid

    def test_typo_fault_is_small_edit(self, world, fetcher, simple_domain):
        from repro.dns.name import levenshtein
        apply_fault(world, simple_domain, Fault.MISMATCH_TYPO)
        world.resolver.flush_cache()
        result = fetcher.fetch_policy("example.com")
        pattern = result.policy.mx_patterns[0]
        assert 0 < levenshtein(pattern, "mail.example.com") <= 3

    def test_tld_mismatch_fault(self, world, fetcher, simple_domain):
        apply_fault(world, simple_domain, Fault.MISMATCH_TLD)
        world.resolver.flush_cache()
        result = fetcher.fetch_policy("example.com")
        assert result.policy.mx_patterns == ("mail.example.net",)

    def test_fault_on_provider_hosted_policy(self, world, fetcher):
        provider = table2_providers()[1]
        deployed = deploy_domain(world, DomainSpec(
            domain="provfault.com", policy_provider=provider))
        apply_fault(world, deployed, Fault.POLICY_TLS_NO_CERT)
        result = fetcher.fetch_policy("provfault.com")
        assert result.failed_stage is PolicyFetchStage.TLS
        # Other customers of the same provider are unaffected.
        deploy_domain(world, DomainSpec(domain="healthy.com",
                                        policy_provider=provider))
        assert fetcher.fetch_policy("healthy.com").fully_valid
