"""Tests for the attack simulations and MTA-STS's protection matrix."""

import pytest

from repro.attacks import DnsSpoofer, PolicyHostBlocker, StarttlsStripper
from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode
from repro.core.sender import MtaStsSender
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.smtp.delivery import DeliveryStatus, Message, SendingMta


@pytest.fixture
def victim(world):
    return deploy_domain(world, DomainSpec(
        domain="victim.com",
        policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                      max_age=7 * 86400,
                      mx_patterns=("mail.victim.com",))))


def make_sts_sender(world, fetcher):
    return MtaStsSender("relay.net", world.network, world.resolver,
                        world.trust_store, world.clock, fetcher)


class TestStarttlsStripping:
    def test_opportunistic_sender_downgraded(self, world, victim):
        attacker = StarttlsStripper(world.network)
        attacker.attack(victim.mx_hosts[0])
        sender = SendingMta("naive.net", world.network, world.resolver,
                            world.trust_store, world.clock)
        attempt = sender.send(Message("a@naive.net", "b@victim.com"))
        assert attempt.status is DeliveryStatus.DELIVERED_PLAINTEXT
        assert attacker.stripped_sessions >= 1
        assert attacker.plaintext_captured      # the attacker read it

    def test_mta_sts_sender_refuses_downgrade(self, world, fetcher,
                                              victim):
        attacker = StarttlsStripper(world.network)
        attacker.attack(victim.mx_hosts[0])
        sender = make_sts_sender(world, fetcher)
        attempt = sender.send(Message("a@relay.net", "b@victim.com"))
        assert attempt.status is DeliveryStatus.REFUSED_BY_POLICY
        assert not attacker.plaintext_captured

    def test_cached_policy_protects_after_attack_starts(self, world,
                                                        fetcher, victim):
        sender = make_sts_sender(world, fetcher)
        assert sender.send(Message("a@r.net", "b@victim.com")).delivered
        attacker = StarttlsStripper(world.network)
        attacker.attack(victim.mx_hosts[0])
        attempt = sender.send(Message("a@r.net", "b@victim.com"))
        assert attempt.status is DeliveryStatus.REFUSED_BY_POLICY
        assert not attacker.plaintext_captured

    def test_withdraw_restores_service(self, world, fetcher, victim):
        attacker = StarttlsStripper(world.network)
        attacker.attack(victim.mx_hosts[0])
        attacker.withdraw()
        sender = make_sts_sender(world, fetcher)
        attempt = sender.send(Message("a@r.net", "b@victim.com"))
        assert attempt.status is DeliveryStatus.DELIVERED


class TestFirstContactTofu:
    def test_blocked_policy_plus_strip_downgrades_first_contact(
            self, world, fetcher, victim):
        """Footnote 2's weakness: no cache + blocked policy fetch +
        stripped STARTTLS = plaintext interception, even though the
        domain 'has' MTA-STS."""
        stripper = StarttlsStripper(world.network)
        stripper.attack(victim.mx_hosts[0])
        blocker = PolicyHostBlocker(world.resolver)
        blocker.block_policy_host("victim.com")

        sender = make_sts_sender(world, fetcher)   # empty cache
        attempt = sender.send(Message("a@r.net", "b@victim.com"))
        assert attempt.status is DeliveryStatus.DELIVERED_PLAINTEXT
        assert stripper.plaintext_captured
        assert blocker.blocked_lookups >= 1

    def test_cache_defeats_the_same_attack(self, world, fetcher, victim):
        sender = make_sts_sender(world, fetcher)
        sender.send(Message("a@r.net", "b@victim.com"))   # prime cache

        stripper = StarttlsStripper(world.network)
        stripper.attack(victim.mx_hosts[0])
        blocker = PolicyHostBlocker(world.resolver)
        blocker.block_policy_host("victim.com")
        world.resolver.flush_cache()

        attempt = sender.send(Message("a@r.net", "b@victim.com"))
        assert attempt.status is DeliveryStatus.REFUSED_BY_POLICY
        assert not stripper.plaintext_captured


class TestDnsSpoofing:
    def _attacker_mx(self, world):
        from repro.dns.records import ARecord
        from repro.dns.zone import Zone
        from repro.dns.name import DnsName
        from repro.smtp.server import MxHost
        from repro.tls.handshake import TlsEndpoint

        ip = world.fresh_ip("mx")
        tls = TlsEndpoint()
        cert = world.issue_cert(["mx.evil.net"])   # valid cert, own name
        tls.install("mx.evil.net", cert, default=True)
        host = MxHost("mx.evil.net", ip, world.network, tls=tls)
        zone = Zone(apex=DnsName.parse("evil.net"))
        zone.add(ARecord(DnsName.parse("mx.evil.net"), 60, ip))
        world.host_zone(zone)
        return host

    def test_opportunistic_sender_follows_spoofed_mx(self, world, victim):
        evil = self._attacker_mx(world)
        spoofer = DnsSpoofer(world.resolver)
        spoofer.spoof_mx("victim.com", "mx.evil.net")
        sender = SendingMta("naive.net", world.network, world.resolver,
                            world.trust_store, world.clock)
        attempt = sender.send(Message("a@naive.net", "b@victim.com"))
        assert attempt.delivered
        assert evil.mailbox      # the attacker received the message

    def test_mta_sts_sender_rejects_spoofed_mx(self, world, fetcher,
                                               victim):
        evil = self._attacker_mx(world)
        spoofer = DnsSpoofer(world.resolver)
        spoofer.spoof_mx("victim.com", "mx.evil.net")
        sender = make_sts_sender(world, fetcher)
        attempt = sender.send(Message("a@relay.net", "b@victim.com"))
        # mx.evil.net matches no mx pattern: enforce mode refuses.
        assert attempt.status is DeliveryStatus.REFUSED_BY_POLICY
        assert not evil.mailbox
        assert spoofer.spoofed_lookups >= 1

    def test_withdraw_restores_resolution(self, world, fetcher, victim):
        spoofer = DnsSpoofer(world.resolver)
        spoofer.spoof_mx("victim.com", "mx.evil.net")
        spoofer.withdraw()
        world.resolver.flush_cache()
        sender = make_sts_sender(world, fetcher)
        assert sender.send(Message("a@r.net", "b@victim.com")).delivered
