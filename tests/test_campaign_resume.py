"""Kill-and-resume differentials for the checkpointed campaign.

The contract under test: a campaign killed after any committed month
and resumed with ``resume=True`` produces *byte-identical* results to
an uninterrupted run — the store's ``canonical_bytes``, the monitor's
monthly metrics feed, and the health report — on both scan backends,
with and without seeded fault plans, under the incremental and the
full-rebuild materialisers.
"""

import pytest

from repro.analysis.series import load_campaign, run_campaign
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.measurement.executor import ScanExecutor
from repro.netsim.network import FaultPlan
from repro.obs.monitor import CampaignMonitor

MONTHS = [0, 1, 2, 3]
KILL_AFTER = 2     # months observed before the simulated crash


def _timeline(scale=0.004, seed=7):
    return EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=scale, seed=seed)))


def _fault_factory(month):
    return FaultPlan.seeded(seed=1000 + month, rate=0.2)


class _Killed(Exception):
    """Stands in for SIGKILL: unwinds the campaign loop mid-run."""


class _CrashingMonitor(CampaignMonitor):
    """Observes normally, then dies after ``after`` months — *after*
    the month's checkpoint committed, like a real mid-campaign kill."""

    def __init__(self, after):
        super().__init__()
        self._after = after

    def observe_month(self, *args, **kwargs):
        super().observe_month(*args, **kwargs)
        if len(self.records) >= self._after:
            raise _Killed()


def _run(timeline, *, backend="serial", jobs=1, incremental=True,
         faults=False, state_dir=None, resume=False, monitor=None):
    return run_campaign(
        timeline, MONTHS, incremental=incremental,
        executor=ScanExecutor(backend=backend, jobs=jobs),
        monitor=monitor, state_dir=state_dir, resume=resume,
        fault_plan_factory=_fault_factory if faults else None)


@pytest.mark.parametrize("backend,jobs", [("serial", 1), ("threaded", 3)])
@pytest.mark.parametrize("faults", [False, True],
                         ids=["clean", "faulted"])
def test_kill_and_resume_is_byte_identical(tmp_path, backend, jobs, faults):
    reference_monitor = CampaignMonitor()
    reference = _run(_timeline(), backend=backend, jobs=jobs,
                     faults=faults, monitor=reference_monitor)

    state_dir = str(tmp_path)
    with pytest.raises(_Killed):
        _run(_timeline(), backend=backend, jobs=jobs, faults=faults,
             state_dir=state_dir, monitor=_CrashingMonitor(KILL_AFTER))

    resumed_monitor = CampaignMonitor()
    resumed = _run(_timeline(), backend=backend, jobs=jobs, faults=faults,
                   state_dir=state_dir, resume=True,
                   monitor=resumed_monitor)

    assert (resumed.store.canonical_bytes()
            == reference.store.canonical_bytes())
    assert resumed_monitor.to_jsonl() == reference_monitor.to_jsonl()
    assert (resumed_monitor.health().render()
            == reference_monitor.health().render())
    assert resumed.summaries == reference.summaries


def test_kill_and_resume_full_rebuild(tmp_path):
    reference = _run(_timeline(), incremental=False)
    with pytest.raises(_Killed):
        _run(_timeline(), incremental=False, state_dir=str(tmp_path),
             monitor=_CrashingMonitor(1))
    resumed = _run(_timeline(), incremental=False, state_dir=str(tmp_path),
                   resume=True)
    assert (resumed.store.canonical_bytes()
            == reference.store.canonical_bytes())


class _ForbiddenExecutor(ScanExecutor):
    def scan(self, *args, **kwargs):
        raise AssertionError("a fully committed campaign must not rescan")


def test_resume_with_everything_committed_rescans_nothing(tmp_path):
    state_dir = str(tmp_path)
    first = _run(_timeline(), state_dir=state_dir)
    again = run_campaign(_timeline(), MONTHS, executor=_ForbiddenExecutor(),
                         state_dir=state_dir, resume=True)
    assert again.store.canonical_bytes() == first.store.canonical_bytes()
    # Persisted per-month stats come back verbatim, checkpoint marker
    # included.
    for month in MONTHS:
        assert again.stats_by_month[month].checkpoints_written == 1
        assert (again.stats_by_month[month].domains_scanned
                == first.stats_by_month[month].domains_scanned)


def test_reusing_a_store_without_resume_is_refused(tmp_path):
    state_dir = str(tmp_path)
    _run(_timeline(), state_dir=state_dir)
    with pytest.raises(ValueError, match="resume=True"):
        _run(_timeline(), state_dir=state_dir)


def test_resuming_under_a_different_population_is_refused(tmp_path):
    state_dir = str(tmp_path)
    _run(_timeline(), state_dir=state_dir)
    with pytest.raises(ValueError, match="population"):
        _run(_timeline(seed=8), state_dir=state_dir, resume=True)


def test_load_campaign_matches_the_live_run(tmp_path):
    state_dir = str(tmp_path)
    live = _run(_timeline(), state_dir=state_dir)
    offline = load_campaign(state_dir)
    assert offline.store.canonical_bytes() == live.store.canonical_bytes()
    assert offline.summaries == live.summaries
    # The rebuilt timeline carries the persisted population config.
    assert (offline.timeline.config.population
            == _timeline().config.population)
    for month in MONTHS:
        assert (offline.stats_by_month[month].domains_scanned
                == live.stats_by_month[month].domains_scanned)
