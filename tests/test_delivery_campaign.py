"""The campaign-scale delivery engine and its supporting invariants.

The hard invariant under test mirrors the scan pipeline's: a delivery
campaign run serial and threaded must produce byte-identical delivery
ledgers, per-wave metric feeds, and health reports — clean and under a
seeded fault plan — and a campaign killed at a wave boundary must
resume to the byte-identical ledger an uninterrupted run writes.

The supporting property suites pin down the pieces the campaign leans
on: the retry queue's backoff/lifetime semantics for arbitrary
schedules, the RFC 8461 policy-cache ``max_age``/refresh semantics
under the virtual clock (including across a simulated restart), and
the canonicalisation of ``Message.recipient_domain``.
"""

import functools
import json
import os
from types import SimpleNamespace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clock import Clock, Duration, Instant
from repro.core.cache import CachedPolicy, PolicyCache
from repro.core.policy import Policy, PolicyMode
from repro.core.refresh import RefreshDaemon
from repro.dns.name import canonical_host
from repro.errors import StoreCorruption
from repro.measurement.delivery_campaign import (
    DeliveryCampaignConfig, load_delivery_ledger, read_delivery_manifest,
    run_delivery_campaign,
)
from repro.obs.exporters import prometheus_exposition
from repro.obs.monitor import DeliveryMonitor, DeliveryThresholds
from repro.smtp.delivery import DeliveryAttempt, DeliveryStatus, Message
from repro.smtp.queue import (
    DEFAULT_QUEUE_LIFETIME, DEFAULT_RETRY_SCHEDULE, MailQueue, QueueFull,
    QueueOutcome,
)

SCALE = 0.004
SEED = 11
MONTH = 3
FAULT_SEED = 4242

_CONFIG = dict(scale=SCALE, seed=SEED, month_index=MONTH, senders=40,
               messages_per_sender=5, backpressure=60)


@functools.lru_cache(maxsize=None)
def _campaign(backend: str, jobs: int = 0, fault_seed=None):
    config = DeliveryCampaignConfig(fault_seed=fault_seed,
                                    fault_rate=0.35, **_CONFIG)
    return run_delivery_campaign(config, backend=backend, jobs=jobs)


# ---------------------------------------------------------------------------
# Serial vs threaded differential (clean and fault-seeded)
# ---------------------------------------------------------------------------

class TestSerialThreadedParity:
    @pytest.mark.parametrize("fault_seed", [None, FAULT_SEED])
    def test_ledgers_byte_identical(self, fault_seed):
        serial = _campaign("serial", fault_seed=fault_seed)
        threaded = _campaign("threaded", jobs=3, fault_seed=fault_seed)
        assert serial.ledger_text == threaded.ledger_text
        assert serial.ledger_digest == threaded.ledger_digest
        assert serial.stats.comparable() == threaded.stats.comparable()
        assert threaded.stats.jobs == 3

    @pytest.mark.parametrize("fault_seed", [None, FAULT_SEED])
    def test_metrics_and_health_byte_identical(self, fault_seed):
        serial = _campaign("serial", fault_seed=fault_seed)
        threaded = _campaign("threaded", jobs=3, fault_seed=fault_seed)
        assert serial.monitor.to_jsonl() == threaded.monitor.to_jsonl()
        assert (prometheus_exposition(serial.total_registry)
                == prometheus_exposition(threaded.total_registry))
        assert (serial.health().render() == threaded.health().render())

    def test_every_message_finalises_exactly_once(self):
        result = _campaign("serial", fault_seed=FAULT_SEED)
        rows = [json.loads(line)
                for line in result.ledger_text.splitlines()]
        assert len(rows) == result.config.total_messages
        keys = {(row["sender"], row["seq"]) for row in rows}
        assert len(keys) == len(rows)
        assert (result.stats.delivered + result.stats.bounced
                == len(rows))
        for row in rows:
            assert row["outcome"] in ("delivered", "bounced")
            assert row["attempts"] == len(row["history"])
            assert row["completed"] >= row["enqueued"]
            if row["outcome"] == "delivered":
                assert row["mechanism"] in (
                    "opportunistic", "mta-sts", "dane")
                assert row["history"][-1] in (
                    "delivered", "delivered-plaintext")

    def test_fault_plan_flows_into_queue_retries(self):
        clean = _campaign("serial")
        faulted = _campaign("serial", fault_seed=FAULT_SEED)
        assert faulted.stats.faults_injected > 0
        assert clean.stats.faults_injected == 0
        # transient connect faults force retry attempts beyond the
        # clean campaign's one-attempt deliveries
        assert faulted.stats.attempts > clean.stats.attempts
        assert faulted.stats.queue_depth_peak > 0
        histories = [json.loads(line)["history"]
                     for line in faulted.ledger_text.splitlines()]
        recovered = [h for h in histories
                     if len(h) > 1 and h[-1] == "delivered"
                     and "unreachable" in h]
        assert recovered, "no message recovered from a transient fault"

    def test_wave_membership_respects_backpressure(self):
        result = _campaign("serial", fault_seed=FAULT_SEED)
        for record in result.monitor.records:
            assert (record.metrics.get("deliver.queue_depth")
                    <= result.config.backpressure)
        submitted = sum(r.metrics.get("deliver.submitted")
                        for r in result.monitor.records)
        assert submitted == result.config.total_messages

    def test_sender_taxonomy_reaches_the_wire(self):
        """The §6.2 profile mix is visible in the delivery mechanisms:
        most messages go out opportunistically, some under MTA-STS."""
        result = _campaign("serial")
        registry = result.total_registry
        opportunistic = registry.get("mech.opportunistic")
        mta_sts = registry.get("mech.mta-sts")
        assert opportunistic > mta_sts > 0


# ---------------------------------------------------------------------------
# Durability and resume
# ---------------------------------------------------------------------------

class TestDurableResume:
    def _config(self, **overrides):
        merged = dict(_CONFIG, fault_seed=FAULT_SEED, fault_rate=0.35)
        merged.update(overrides)
        return DeliveryCampaignConfig(**merged)

    def test_crash_at_wave_boundary_resumes_byte_identical(self, tmp_path):
        config = self._config()
        reference = _campaign("serial", fault_seed=FAULT_SEED)
        state = str(tmp_path / "state")
        partial = run_delivery_campaign(config, backend="serial",
                                        state_dir=state, max_waves=3)
        assert partial.stats.waves == 3
        resumed = run_delivery_campaign(config, backend="threaded",
                                        jobs=3, state_dir=state,
                                        resume=True)
        assert resumed.ledger_text == reference.ledger_text
        assert resumed.monitor.to_jsonl() == reference.monitor.to_jsonl()
        assert (resumed.health().render() == reference.health().render())
        assert load_delivery_ledger(state) == reference.ledger_text

    def test_committed_state_verifies_and_loads(self, tmp_path):
        config = self._config()
        state = str(tmp_path / "state")
        result = run_delivery_campaign(config, backend="serial",
                                       state_dir=state)
        manifest = read_delivery_manifest(state)
        assert manifest is not None
        assert manifest["config"] == config.to_dict()
        assert len(manifest["waves"]) == result.stats.waves
        assert load_delivery_ledger(state) == result.ledger_text
        # resuming a finished campaign is a no-op continuation
        again = run_delivery_campaign(config, backend="serial",
                                      state_dir=state, resume=True)
        assert again.ledger_text == result.ledger_text

    def test_resume_refuses_foreign_config(self, tmp_path):
        state = str(tmp_path / "state")
        run_delivery_campaign(self._config(), backend="serial",
                              state_dir=state, max_waves=1)
        other = self._config(messages_per_sender=7)
        with pytest.raises(StoreCorruption, match="different"):
            run_delivery_campaign(other, backend="serial",
                                  state_dir=state, resume=True)

    def test_corrupted_shard_is_detected(self, tmp_path):
        state = str(tmp_path / "state")
        run_delivery_campaign(self._config(), backend="serial",
                              state_dir=state, max_waves=2)
        manifest = read_delivery_manifest(state)
        shard = os.path.join(state, manifest["waves"][0]["shard"])
        with open(shard, "a", encoding="utf-8") as handle:
            handle.write("{}\n")
        with pytest.raises(StoreCorruption):
            load_delivery_ledger(state)
        with pytest.raises(StoreCorruption):
            run_delivery_campaign(self._config(), backend="serial",
                                  state_dir=state, resume=True)

    def test_foreign_manifest_kind_is_rejected(self, tmp_path):
        state = tmp_path / "state"
        state.mkdir()
        (state / "manifest.json").write_text(
            json.dumps({"schema_version": 1, "kind": "snapshot-store"}),
            encoding="utf-8")
        with pytest.raises(StoreCorruption, match="kind"):
            read_delivery_manifest(str(state))


# ---------------------------------------------------------------------------
# Campaign plumbing: progress, validation, monitor round-trips
# ---------------------------------------------------------------------------

class TestCampaignPlumbing:
    def test_progress_heartbeats(self):
        events = []
        config = DeliveryCampaignConfig(**_CONFIG)
        result = run_delivery_campaign(config, backend="threaded",
                                       jobs=2, progress=events.append)
        assert events and events[-1].final
        assert events[-1].domains_done == result.config.total_messages
        assert events[-1].backend == "deliver-threaded"
        done = [event.domains_done for event in events]
        assert done == sorted(done)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DeliveryCampaignConfig(senders=0)
        with pytest.raises(ValueError):
            DeliveryCampaignConfig(messages_per_sender=0)
        with pytest.raises(ValueError):
            DeliveryCampaignConfig(backpressure=0)
        with pytest.raises(ValueError):
            DeliveryCampaignConfig(wakeup_seconds=0)
        with pytest.raises(ValueError):
            DeliveryCampaignConfig(fault_rate=1.5)
        with pytest.raises(ValueError):
            run_delivery_campaign(DeliveryCampaignConfig(**_CONFIG),
                                  backend="process")

    def test_monitor_feed_round_trips(self):
        result = _campaign("serial", fault_seed=FAULT_SEED)
        monitor = DeliveryMonitor.from_jsonl(
            result.monitor.to_jsonl(),
            backpressure=result.config.backpressure)
        assert monitor.to_jsonl() == result.monitor.to_jsonl()
        assert monitor.health().render() == result.health().render()

    def test_backpressure_invariant_alerts(self):
        monitor = DeliveryMonitor(backpressure=10)
        from repro.trace import MetricsRegistry
        registry = MetricsRegistry()
        registry.count("deliver.queue_depth", 11)
        registry.count("deliver.finalized", 0)
        monitor.observe_wave(0, "2024-01-01", registry)
        report = monitor.health()
        assert report.level == "ALERT"
        assert any(f.metric == "backpressure-violated"
                   for f in report.findings)

    def test_thresholds_fire_on_bad_cumulative_rates(self):
        from repro.trace import MetricsRegistry
        monitor = DeliveryMonitor(DeliveryThresholds(
            bounce_rate_alert=0.10, plaintext_rate_warn=0.10))
        registry = MetricsRegistry()
        registry.count("deliver.finalized", 100)
        registry.count("deliver.delivered", 80)
        registry.count("deliver.delivered_plaintext", 40)
        registry.count("deliver.bounced", 20)
        registry.count("deliver.attempts", 100)
        monitor.observe_wave(0, "2024-01-01", registry)
        report = monitor.health()
        metrics = {finding.metric for finding in report.findings}
        assert "bounce-rate" in metrics
        assert "plaintext-fallback" in metrics


# ---------------------------------------------------------------------------
# Satellite: recipient_domain canonicalisation (ẞ / İ regressions)
# ---------------------------------------------------------------------------

class TestRecipientDomainCanonicalisation:
    def test_casefold_not_lower(self):
        # ẞ (LATIN CAPITAL LETTER SHARP S) casefolds to "ss";
        # str.lower() maps it to ß and would desynchronise the
        # delivery route from the policy matcher's casefolded view.
        assert Message("a@b", "user@STRAẞE.example").recipient_domain \
            == "strasse.example"
        assert "ß" not in Message("a@b",
                                  "user@STRAẞE.example").recipient_domain
        # İ (LATIN CAPITAL LETTER I WITH DOT ABOVE) casefolds to
        # "i" + COMBINING DOT ABOVE — two code points, not lower()'s
        # language-dependent single "i̇".
        domain = Message("a@b", "user@İstanbul.example").recipient_domain
        assert domain == "İstanbul.example".casefold()
        assert domain == canonical_host("İstanbul.example")

    def test_parity_with_canonical_host(self):
        for raw in ("Example.COM.", "  mail.example.org  ",
                    "MX.Example.Se", "ẞ.example"):
            assert Message("a@b", f"user@{raw}").recipient_domain \
                == canonical_host(raw)

    def test_malformed_recipients_are_unroutable(self):
        from repro.ecosystem.world import World
        from repro.smtp.delivery import SendingMta

        assert Message("a@b", "user@.").recipient_domain == ""
        assert Message("a@b", "user@").recipient_domain == ""
        world = World(start=Instant.from_date(2024, 1, 1))
        mta = SendingMta("sender.example", world.network, world.resolver,
                         world.trust_store, world.clock)
        outcome = mta.send(Message("a@sender.example", "user@."))
        assert outcome.status is DeliveryStatus.NO_MX
        assert "unroutable" in outcome.detail


# ---------------------------------------------------------------------------
# Satellite: queue property tests
# ---------------------------------------------------------------------------

class ScriptedSender:
    """Returns the scripted status per call (last one repeats) and
    records the virtual instant and attempt ordinal of every call."""

    identity = "scripted.example"

    def __init__(self, statuses, clock):
        self._statuses = list(statuses)
        self._clock = clock
        self.call_instants = []
        self.call_attempts = []

    def send(self, message, *, attempt=0):
        index = min(len(self.call_instants), len(self._statuses) - 1)
        self.call_instants.append(self._clock.now())
        self.call_attempts.append(attempt)
        return DeliveryAttempt(message, self._statuses[index])


_TEMPORARY_STATUSES = st.sampled_from(
    [DeliveryStatus.UNREACHABLE, DeliveryStatus.REFUSED_BY_POLICY])
_FINAL_STATUSES = st.sampled_from(
    [DeliveryStatus.DELIVERED, DeliveryStatus.DELIVERED_PLAINTEXT,
     DeliveryStatus.NO_MX, DeliveryStatus.REJECTED_BY_SERVER,
     DeliveryStatus.UNREACHABLE])
_SCHEDULES = st.lists(
    st.integers(min_value=60, max_value=48 * 3600).map(Duration),
    min_size=0, max_size=10)
_LIFETIMES = st.integers(min_value=3600,
                         max_value=6 * 24 * 3600).map(Duration)


class TestQueueProperties:
    @settings(max_examples=60, deadline=None)
    @given(prefix=st.lists(_TEMPORARY_STATUSES, max_size=12),
           final=_FINAL_STATUSES, schedule=_SCHEDULES,
           lifetime=_LIFETIMES)
    def test_retry_instants_and_attempt_bounds(self, prefix, final,
                                               schedule, lifetime):
        clock = Clock(Instant.from_date(2024, 1, 1))
        sender = ScriptedSender(prefix + [final], clock)
        queue = MailQueue(sender, clock, retry_schedule=schedule,
                          lifetime=lifetime)
        entry = queue.submit(Message("a@scripted.example", "u@x.example"))
        queue.drain(max_steps=len(schedule) + 2)

        # The queue always terminates: delivered or bounced.
        assert entry.outcome is not QueueOutcome.QUEUED
        # Total attempts never exceed the schedule's budget.
        assert 1 <= entry.attempts <= len(schedule) + 1
        assert entry.attempts == len(sender.call_instants)
        assert entry.history == [
            (prefix + [final])[min(i, len(prefix))]
            for i in range(entry.attempts)]
        # Retry instants are strictly increasing and follow the
        # schedule exactly (drain wakes at the precise retry instant).
        instants = sender.call_instants
        for earlier, later in zip(instants, instants[1:]):
            assert later > earlier
        for index in range(1, entry.attempts):
            assert (instants[index] - instants[index - 1]
                    == schedule[index - 1])
        # Every attempt stayed within the queue lifetime.
        for instant in instants:
            assert instant - entry.enqueued_at <= lifetime
        # The queue passes the retry ordinal through.
        assert sender.call_attempts == list(range(entry.attempts))

    @settings(max_examples=40, deadline=None)
    @given(prefix=st.lists(_TEMPORARY_STATUSES, max_size=12),
           final=_FINAL_STATUSES, schedule=_SCHEDULES,
           lifetime=_LIFETIMES,
           extra_steps=st.integers(min_value=1, max_value=5))
    def test_no_attempt_after_finalisation(self, prefix, final, schedule,
                                           lifetime, extra_steps):
        clock = Clock(Instant.from_date(2024, 1, 1))
        sender = ScriptedSender(prefix + [final], clock)
        queue = MailQueue(sender, clock, retry_schedule=schedule,
                          lifetime=lifetime)
        entry = queue.submit(Message("a@scripted.example", "u@x.example"))
        queue.drain(max_steps=len(schedule) + 2)
        attempts_at_finalisation = entry.attempts
        assert entry.outcome is not QueueOutcome.QUEUED
        for _ in range(extra_steps):
            clock.advance(Duration(24 * 3600))
            queue.run_due()
        assert entry.attempts == attempts_at_finalisation
        assert queue.next_wakeup() is None

    @settings(max_examples=40, deadline=None)
    @given(count=st.integers(min_value=2, max_value=20))
    def test_default_schedule_bounces_within_lifetime(self, count):
        """Under the default schedule every ever-failing entry bounces and
        no retry is ever scheduled past DEFAULT_QUEUE_LIFETIME."""
        clock = Clock(Instant.from_date(2024, 1, 1))
        sender = ScriptedSender([DeliveryStatus.UNREACHABLE], clock)
        queue = MailQueue(sender, clock)
        entries = [queue.submit(Message("a@s.example", f"u{i}@x.example"))
                   for i in range(count)]
        queue.drain(max_steps=len(DEFAULT_RETRY_SCHEDULE) + 2)
        for entry in entries:
            assert entry.outcome is QueueOutcome.BOUNCED
            assert entry.attempts <= len(DEFAULT_RETRY_SCHEDULE) + 1
        for instant in sender.call_instants:
            assert (instant - entries[0].enqueued_at
                    <= DEFAULT_QUEUE_LIFETIME)


class TestQueueExtensions:
    def _queue(self, statuses, **kwargs):
        clock = Clock(Instant.from_date(2024, 1, 1))
        sender = ScriptedSender(statuses, clock)
        return MailQueue(sender, clock, **kwargs), sender, clock

    def test_capacity_backpressure(self):
        queue, _, _ = self._queue([DeliveryStatus.UNREACHABLE],
                                  capacity=2)
        assert queue.capacity == 2
        queue.submit(Message("a@s.example", "u1@x.example"))
        assert queue.has_capacity()
        queue.submit(Message("a@s.example", "u2@x.example"))
        assert not queue.has_capacity()
        with pytest.raises(QueueFull, match="at capacity"):
            queue.submit(Message("a@s.example", "u3@x.example"))
        # a finalised entry frees a slot
        queue._sender._statuses = [DeliveryStatus.DELIVERED]
        clock = queue._clock
        clock.advance(DEFAULT_RETRY_SCHEDULE[0])
        queue.run_due()
        assert queue.has_capacity()

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="positive"):
            self._queue([DeliveryStatus.DELIVERED], capacity=0)

    def test_next_wakeup_granularity_rounds_up(self):
        queue, _, clock = self._queue([DeliveryStatus.UNREACHABLE])
        queue.submit(Message("a@s.example", "u@x.example"))
        exact = queue.next_wakeup()
        assert exact == clock.now() + DEFAULT_RETRY_SCHEDULE[0]
        batched = queue.next_wakeup(granularity=Duration(3600))
        assert batched >= exact
        assert batched.epoch_seconds % 3600 == 0
        assert batched.epoch_seconds - exact.epoch_seconds < 3600
        # granularity <= 1s degenerates to the exact instant
        assert queue.next_wakeup(granularity=Duration(1)) == exact

    def test_on_attempt_observer_and_tags(self):
        observed = []
        clock = Clock(Instant.from_date(2024, 1, 1))
        sender = ScriptedSender([DeliveryStatus.DELIVERED], clock)
        queue = MailQueue(sender, clock,
                          on_attempt=lambda entry, attempt:
                          observed.append((entry.tag, attempt.status)))
        queue.submit(Message("a@s.example", "u@x.example"), tag=17)
        assert observed == [(17, DeliveryStatus.DELIVERED)]

    def test_plain_send_signature_still_works(self):
        class LegacySender:
            def __init__(self):
                self.calls = 0

            def send(self, message):
                self.calls += 1
                return DeliveryAttempt(message, DeliveryStatus.DELIVERED)

        clock = Clock(Instant.from_date(2024, 1, 1))
        sender = LegacySender()
        queue = MailQueue(sender, clock)
        entry = queue.submit(Message("a@s.example", "u@x.example"))
        assert entry.outcome is QueueOutcome.DELIVERED
        assert sender.calls == 1


# ---------------------------------------------------------------------------
# Satellite: cache + refresh property tests (virtual clock)
# ---------------------------------------------------------------------------

def _policy(max_age: int) -> Policy:
    return Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                  max_age=max_age, mx_patterns=("mx.example.com",))


class StubFetcher:
    """A PolicyFetcher stand-in with a scriptable record id/policy."""

    def __init__(self, record_id="id0001", max_age=86_400):
        self.record_id = record_id
        self.policy = _policy(max_age)
        self.record_available = True
        self.fetch_ok = True
        self.lookups = 0
        self.fetches = 0

    def lookup_record(self, domain):
        self.lookups += 1
        record = (SimpleNamespace(id=self.record_id)
                  if self.record_available else None)
        return SimpleNamespace(record=record)

    def fetch_policy(self, domain, even_if_record_invalid=True):
        self.fetches += 1
        if self.fetch_ok:
            return SimpleNamespace(policy=self.policy, failed_stage=None)
        return SimpleNamespace(policy=None,
                               failed_stage=SimpleNamespace(value="https"))


class TestCacheProperties:
    @settings(max_examples=60, deadline=None)
    @given(max_age=st.integers(min_value=1, max_value=1_000_000),
           elapsed=st.integers(min_value=0, max_value=2_000_000))
    def test_cache_never_serves_past_max_age(self, max_age, elapsed):
        clock = Clock(Instant.from_date(2024, 1, 1))
        cache = PolicyCache(clock)
        cache.store("recipient.example", _policy(max_age), "id0001")
        clock.advance(Duration(elapsed))
        entry = cache.get("recipient.example")
        if elapsed < max_age:      # RFC 8461: lifetime capped AT max_age
            assert entry is not None
            assert entry.fresh_at(clock.now())
        else:
            assert entry is None
            # the stale entry was evicted, not just hidden
            assert cache.peek("recipient.example") is None

    @settings(max_examples=60, deadline=None)
    @given(max_age=st.integers(min_value=1, max_value=1_000_000),
           elapsed=st.integers(min_value=0, max_value=2_000_000),
           restart_after=st.integers(min_value=0, max_value=2_000_000))
    def test_restart_never_extends_max_age(self, max_age, elapsed,
                                           restart_after):
        """Rehydrating a persisted cache preserves ``fetched_at``: an
        entry is fresh after the restart iff it would have been fresh
        without one."""
        clock = Clock(Instant.from_date(2024, 1, 1))
        cache = PolicyCache(clock)
        cache.store("recipient.example", _policy(max_age), "id0001")
        clock.advance(Duration(restart_after))
        persisted = cache.to_dict()

        restarted_clock = Clock(clock.now())   # simulated new process
        rehydrated = PolicyCache.from_dict(persisted, restarted_clock)
        restarted_clock.advance(Duration(elapsed))
        entry = rehydrated.get("recipient.example")
        total = restart_after + elapsed
        assert (entry is not None) == (total < max_age)
        assert rehydrated.to_dict()["store_count"] \
            == persisted["store_count"]

    @settings(max_examples=40, deadline=None)
    @given(max_age=st.integers(min_value=2, max_value=1_000_000))
    def test_serialisation_round_trips(self, max_age):
        clock = Clock(Instant.from_date(2024, 1, 1))
        cache = PolicyCache(clock)
        cache.store("b.example", _policy(max_age), "id0002")
        cache.store("a.example", _policy(max_age), "id0001")
        cache.get("a.example")
        data = cache.to_dict()
        rehydrated = PolicyCache.from_dict(data, Clock(clock.now()))
        assert rehydrated.to_dict() == data
        domains = [entry["domain"] for entry in data["entries"]]
        assert domains == sorted(domains)
        entry = CachedPolicy.from_dict(data["entries"][0])
        assert entry.policy == _policy(max_age)

    @settings(max_examples=60, deadline=None)
    @given(max_age=st.integers(min_value=10, max_value=1_000_000),
           window=st.integers(min_value=1, max_value=1_000_000))
    def test_refresh_before_expiry_revalidates_unchanged_id(
            self, max_age, window):
        """Within the refresh window and with an unchanged record id,
        the daemon re-stores the cached policy (restarting the max_age
        clock, per RFC 8461) without refetching the body."""
        clock = Clock(Instant.from_date(2024, 1, 1))
        cache = PolicyCache(clock)
        fetcher = StubFetcher(record_id="id0007", max_age=max_age)
        cache.store("recipient.example", fetcher.policy, "id0007")
        daemon = RefreshDaemon(cache, fetcher, clock,
                               refresh_window=Duration(window))
        # age the entry to just inside the refresh horizon
        advance = max(0, max_age - window)
        clock.advance(Duration(advance))
        results = daemon.run_once()
        assert [r.action for r in results] == ["revalidated"]
        assert fetcher.fetches == 0
        entry = cache.peek("recipient.example")
        assert entry.record_id == "id0007"
        assert entry.fetched_at == clock.now()     # clock restarted
        # outside the horizon nothing is due
        assert not daemon.due_entries() or window >= max_age

    @settings(max_examples=40, deadline=None)
    @given(max_age=st.integers(min_value=1, max_value=1_000_000))
    def test_expiry_forces_refetch(self, max_age):
        clock = Clock(Instant.from_date(2024, 1, 1))
        cache = PolicyCache(clock)
        cache.store("recipient.example", _policy(max_age), "id0001")
        clock.advance(Duration(max_age + 1))
        assert cache.get("recipient.example") is None
        # needs_refresh treats the expired entry as absent: any live
        # record id obliges a refetch
        assert cache.needs_refresh("recipient.example", "id0001")

    def test_refresh_handles_id_change_and_missing_record(self):
        clock = Clock(Instant.from_date(2024, 1, 1))
        cache = PolicyCache(clock)
        fetcher = StubFetcher(record_id="id0001")
        cache.store("recipient.example", _policy(86_400), "id0001")
        daemon = RefreshDaemon(cache, fetcher, clock,
                               refresh_window=Duration(86_400 * 2))
        # id changed -> full refetch
        fetcher.record_id = "id0002"
        assert [r.action for r in daemon.run_once()] == ["refreshed"]
        assert cache.peek("recipient.example").record_id == "id0002"
        assert fetcher.fetches == 1
        # record vanished -> skipped, cached policy left to age out
        fetcher.record_available = False
        assert [r.action for r in daemon.run_once()] == ["skipped"]
        assert cache.peek("recipient.example") is not None

    def test_refresh_survives_restart(self):
        """The fetch → refresh → expiry lifecycle continues correctly
        across a simulated restart (cache rehydration)."""
        clock = Clock(Instant.from_date(2024, 1, 1))
        cache = PolicyCache(clock)
        fetcher = StubFetcher(record_id="id0001", max_age=86_400)
        cache.store("recipient.example", fetcher.policy, "id0001")
        clock.advance(Duration(80_000))
        persisted = cache.to_dict()

        restarted_clock = Clock(clock.now())
        rehydrated = PolicyCache.from_dict(persisted, restarted_clock)
        daemon = RefreshDaemon(rehydrated, fetcher, restarted_clock)
        # entry is 80000s old with 6400s left: inside the daily window
        assert [r.action for r in daemon.run_once()] == ["revalidated"]
        entry = rehydrated.peek("recipient.example")
        assert entry.fetched_at == restarted_clock.now()


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCliDeliver:
    _ARGS = ["campaign", "deliver", "--scale", str(SCALE),
             "--seed", str(SEED), "--month", str(MONTH),
             "--senders", "12", "--messages-per-sender", "3",
             "--backpressure", "20", "--fault-seed", str(FAULT_SEED),
             "--fault-rate", "0.35"]

    def test_serial_and_threaded_artifacts_byte_identical(
            self, capsys, tmp_path):
        from repro.cli import main
        artifacts = {}
        for backend, jobs in (("serial", "1"), ("threaded", "0")):
            ledger = tmp_path / f"{backend}.jsonl"
            metrics = tmp_path / f"{backend}-metrics.jsonl"
            assert main(self._ARGS + [
                "--backend", backend, "--jobs", jobs,
                "--ledger-out", str(ledger),
                "--metrics-out", str(metrics)]) == 0
            out = capsys.readouterr().out
            assert "delivery:" in out
            assert "ledger sha256" in out
            artifacts[backend] = (ledger.read_text(encoding="utf-8"),
                                  metrics.read_text(encoding="utf-8"))
        assert artifacts["serial"] == artifacts["threaded"]

    def test_resume_requires_state_dir(self, capsys):
        from repro.cli import main
        assert main(["campaign", "deliver", "--resume"]) == 2
        assert "--resume requires" in capsys.readouterr().err

    def test_threshold_flags_drive_exit_code(self, capsys):
        from repro.cli import main
        # an absurdly strict bounce bound alerts on the faulted run
        assert main(self._ARGS + ["--bounce-rate-alert", "0.0"]) == 1
        out = capsys.readouterr().out
        assert "ALERT" in out

    def test_state_dir_commits_and_resumes(self, capsys, tmp_path):
        from repro.cli import main
        state = tmp_path / "state"
        assert main(self._ARGS + ["--state-dir", str(state)]) == 0
        first = capsys.readouterr().out
        assert main(self._ARGS + ["--state-dir", str(state),
                                  "--resume"]) == 0
        second = capsys.readouterr().out
        digest = [line for line in first.splitlines()
                  if "ledger sha256" in line]
        assert digest and digest == [
            line for line in second.splitlines()
            if "ledger sha256" in line]

    def test_plain_campaign_subcommand_still_routes(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["campaign", "--scale", "0.01"])
        assert args.handler.__name__ == "_cmd_campaign"
        args = build_parser().parse_args(["campaign", "deliver"])
        assert args.handler.__name__ == "_cmd_campaign_deliver"
