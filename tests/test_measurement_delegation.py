"""Tests for the Table-2 delegation census and opt-out probing (§5)."""

import pytest

from repro.core.policy import Policy, PolicyMode
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.providers import (
    OptOutBehavior, default_email_providers, table2_providers,
)
from repro.measurement.delegation import (
    delegation_census, identify_provider, probe_opted_out, table2_rows,
)
from repro.measurement.scanner import Scanner


@pytest.fixture
def providers():
    return {p.name: p for p in table2_providers()}


class TestIdentifyProvider:
    def test_cname_target_sld(self, world, providers):
        deploy_domain(world, DomainSpec(domain="cust.com",
                                        policy_provider=providers["URIports"]))
        snap = Scanner(world).scan_domain("cust.com", 0)
        assert identify_provider(snap) == "uriports.com"

    def test_self_hosted_has_no_provider(self, world, simple_domain):
        snap = Scanner(world).scan_domain("example.com", 0)
        assert identify_provider(snap) is None


class TestCensus:
    def test_counts_and_order(self, world, providers):
        for i in range(5):
            deploy_domain(world, DomainSpec(
                domain=f"a{i}.com", policy_provider=providers["Tutanota"],
                email_provider=next(
                    p for p in default_email_providers()
                    if p.name == "Tutanota")))
        for i in range(3):
            deploy_domain(world, DomainSpec(
                domain=f"b{i}.com", policy_provider=providers["Sendmarc"]))
        scanner = Scanner(world)
        snaps = [scanner.scan_domain(f"a{i}.com", 0) for i in range(5)]
        snaps += [scanner.scan_domain(f"b{i}.com", 0) for i in range(3)]
        census = delegation_census(snaps)
        assert census[0]["provider_sld"] == "tutanota.de"
        assert census[0]["domains"] == 5
        assert census[1]["provider_sld"] == "sdmarc.net"
        assert census[1]["domains"] == 3

    def test_table2_rows_flags(self, world, providers):
        deploy_domain(world, DomainSpec(
            domain="x.com", policy_provider=providers["Mailhardener"]))
        deploy_domain(world, DomainSpec(
            domain="y.com", policy_provider=providers["DMARCReport"]))
        scanner = Scanner(world)
        snaps = [scanner.scan_domain(d, 0) for d in ("x.com", "y.com")]
        rows = {r["provider"]: r
                for r in table2_rows(delegation_census(snaps), providers)}
        assert rows["Mailhardener"]["optout_nxdomain"]
        assert not rows["Mailhardener"]["optout_reissues_cert"]
        assert rows["DMARCReport"]["optout_reissues_cert"]
        assert rows["DMARCReport"]["optout_policy_update"] == "empty-file"


class TestOptOutProbes:
    def _opted_out_customer(self, world, provider, domain):
        deployed = deploy_domain(world, DomainSpec(
            domain=domain, policy_provider=provider))
        provider.customer_opts_out(world, domain)
        world.resolver.flush_cache()
        return deployed

    def test_nxdomain_observation(self, world, providers):
        provider = providers["PowerDMARC"]
        self._opted_out_customer(world, provider, "gone.com")
        observation = probe_opted_out(world, provider, "gone.com")
        assert not observation.policy_resolves
        assert observation.effective_mode == "unreachable"

    def test_empty_file_observation(self, world, providers):
        provider = providers["DMARCReport"]
        self._opted_out_customer(world, provider, "empty.com")
        observation = probe_opted_out(world, provider, "empty.com")
        assert observation.cert_valid          # cert keeps renewing
        assert observation.policy_body == ""
        assert not observation.policy_parse_ok
        assert observation.effective_mode == "none"   # parse error ~ none

    def test_stale_policy_observation(self, world, providers):
        provider = providers["Sendmarc"]
        deployed = deploy_domain(world, DomainSpec(
            domain="stale.com", policy_provider=provider,
            policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                          max_age=86400, mx_patterns=("mail.stale.com",))))
        provider.customer_opts_out(world, "stale.com")
        world.resolver.flush_cache()
        observation = probe_opted_out(world, provider, "stale.com")
        assert observation.cert_valid
        assert observation.policy_parse_ok
        assert observation.effective_mode == "enforce"   # delivery risk

    def test_no_provider_follows_best_practice(self, providers):
        # §5's summary: none of the eight implement the §2.6 removal.
        for provider in providers.values():
            assert provider.opt_out in (
                OptOutBehavior.NXDOMAIN,
                OptOutBehavior.REISSUE_CERT_STALE_POLICY,
                OptOutBehavior.REISSUE_CERT_EMPTY_POLICY,
                OptOutBehavior.REJECT_MAIL_STALE_POLICY)
