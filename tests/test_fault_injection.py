"""The deterministic fault-injection layer: fault schedules, the retry
policy's exact backoff arithmetic, ``connect_with_retries`` semantics,
and the cache-hygiene rules (transient verdicts must never be served
stale after an endpoint recovers)."""

import pytest

from repro.clock import SECOND, Clock, Instant
from repro.dns.records import RRType
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.errors import (
    ConnectionRefused, ConnectionReset, ConnectionTimeout, DnsError,
)
from repro.netsim.ip import IpAddress
from repro.netsim.network import FaultKind, FaultPlan, FaultSpec, Network
from repro.netsim.retry import RetryPolicy, connect_with_retries

pytestmark = pytest.mark.faults

IP = IpAddress.parse("10.1.2.3")
PORT = 25


@pytest.fixture
def net():
    network = Network()
    network.register(IP, PORT, app="the-app", description="smtp:mx.example")
    return network


def _plan(*specs: FaultSpec) -> FaultPlan:
    return FaultPlan().add(IP, PORT, *specs)


# -- FaultSpec schedules --------------------------------------------------

class TestFaultSchedules:
    def test_refuse_first_n_attempts_then_recovers(self, net):
        net.install_fault_plan(_plan(FaultSpec(FaultKind.REFUSE, count=2)))
        for attempt in range(2):
            with pytest.raises(ConnectionRefused) as err:
                net.connect(IP, PORT, attempt=attempt)
            assert err.value.transient is True
        assert net.connect(IP, PORT, attempt=2) == "the-app"
        assert net.fault_plan.injections == 2
        assert net.fault_plan.injected_by_kind == {"refuse": 2}

    def test_timeout_fault_raises_transient_timeout(self, net):
        net.install_fault_plan(_plan(FaultSpec(FaultKind.TIMEOUT)))
        with pytest.raises(ConnectionTimeout) as err:
            net.connect(IP, PORT, attempt=0)
        assert err.value.transient is True
        assert net.connect(IP, PORT, attempt=1) == "the-app"

    def test_reset_carries_bytes_delivered(self, net):
        net.install_fault_plan(
            _plan(FaultSpec(FaultKind.RESET, after_bytes=512)))
        with pytest.raises(ConnectionReset) as err:
            net.connect(IP, PORT, attempt=0)
        assert err.value.transient is True
        assert err.value.bytes_delivered == 512

    def test_slow_start_only_fires_past_the_budget(self, net):
        net.install_fault_plan(
            _plan(FaultSpec(FaultKind.SLOW_START, latency=10.0)))
        # Slow but affordable: the connection succeeds.
        assert net.connect(IP, PORT, attempt=0, timeout=30.0) == "the-app"
        # Slower than the remaining budget: surfaces as a timeout.
        with pytest.raises(ConnectionTimeout) as err:
            net.connect(IP, PORT, attempt=0, timeout=5.0)
        assert err.value.transient is True
        # No budget given (non-retrying caller): never fires.
        assert net.connect(IP, PORT, attempt=0) == "the-app"

    def test_flap_follows_the_simulated_clock(self):
        clock = Clock(Instant(epoch_seconds=0))
        network = Network(clock=clock)
        network.register(IP, PORT, app="the-app",
                         description="smtp:mx.example")
        period = 100
        network.install_fault_plan(
            _plan(FaultSpec(FaultKind.FLAP, period=period)))
        # phase 0: down first — and the attempt index is irrelevant.
        for attempt in (0, 1, 7):
            with pytest.raises(ConnectionTimeout):
                network.connect(IP, PORT, attempt=attempt)
        clock.advance(SECOND * period)
        assert network.connect(IP, PORT) == "the-app"
        clock.advance(SECOND * period)
        with pytest.raises(ConnectionTimeout):
            network.connect(IP, PORT)

    def test_description_keyed_faults_survive_readdressing(self, net):
        plan = FaultPlan().add_description(
            "smtp:mx.example", FaultSpec(FaultKind.REFUSE, count=99))
        net.install_fault_plan(plan)
        with pytest.raises(ConnectionRefused):
            net.connect(IP, PORT, attempt=0)
        # The same logical service on a different IP faults identically.
        other_ip = IpAddress.parse("10.9.9.9")
        net.register(other_ip, PORT, app="the-app",
                     description="smtp:mx.example")
        with pytest.raises(ConnectionRefused):
            net.connect(other_ip, PORT, attempt=0)

    def test_uninstall_restores_clean_fabric(self, net):
        net.install_fault_plan(_plan(FaultSpec(FaultKind.REFUSE, count=99)))
        with pytest.raises(ConnectionRefused):
            net.connect(IP, PORT, attempt=0)
        net.install_fault_plan(None)
        assert net.connect(IP, PORT, attempt=0) == "the-app"
        assert net.faults_injected == 0   # counter lives on the plan

    def test_static_refusals_are_not_transient(self, net):
        """Hard failures from the fabric itself stay non-transient."""
        net.install_fault_plan(_plan())   # empty plan installed
        unbound = IpAddress.parse("10.1.2.4")
        net.register_host(unbound)
        with pytest.raises(ConnectionRefused) as err:
            net.connect(unbound, PORT)
        assert getattr(err.value, "transient", False) is False


# -- seeded plan determinism ----------------------------------------------

DESCRIPTIONS = [f"smtp:mx{i}.example.com" for i in range(200)]


class TestSeededPlans:
    def test_same_seed_same_schedule(self):
        a = FaultPlan.seeded(seed=77, rate=0.3)
        b = FaultPlan.seeded(seed=77, rate=0.3)
        for description in DESCRIPTIONS:
            assert (a.specs_for("10.0.0.1", 25, description)
                    == b.specs_for("10.0.0.2", 25, description))

    def test_schedule_independent_of_query_order(self):
        a = FaultPlan.seeded(seed=77, rate=0.3)
        b = FaultPlan.seeded(seed=77, rate=0.3)
        forward = [a.specs_for("", 25, d) for d in DESCRIPTIONS]
        backward = [b.specs_for("", 25, d) for d in reversed(DESCRIPTIONS)]
        assert forward == list(reversed(backward))

    def test_different_seeds_differ(self):
        a = FaultPlan.seeded(seed=1, rate=0.3)
        b = FaultPlan.seeded(seed=2, rate=0.3)
        assert any(a.specs_for("", 25, d) != b.specs_for("", 25, d)
                   for d in DESCRIPTIONS)

    def test_rate_bounds_the_faulted_fraction(self):
        plan = FaultPlan.seeded(seed=5, rate=0.25)
        faulted = sum(bool(plan.specs_for("", 25, d)) for d in DESCRIPTIONS)
        assert 0.10 * len(DESCRIPTIONS) < faulted < 0.45 * len(DESCRIPTIONS)

    def test_zero_rate_and_blank_description_never_fault(self):
        plan = FaultPlan.seeded(seed=5, rate=0.0)
        assert all(not plan.specs_for("", 25, d) for d in DESCRIPTIONS)
        assert not FaultPlan.seeded(seed=5, rate=1.0).specs_for("", 25, "")

    def test_kinds_restriction_honoured(self):
        plan = FaultPlan.seeded(seed=5, rate=1.0,
                                kinds=(FaultKind.FLAP,))
        for description in DESCRIPTIONS[:50]:
            specs = plan.specs_for("", 25, description)
            assert specs and all(s.kind is FaultKind.FLAP for s in specs)
            assert all(s.period > 0 for s in specs)


# -- RetryPolicy backoff arithmetic ---------------------------------------

class TestBackoff:
    def test_pure_exponential_without_jitter(self):
        policy = RetryPolicy(max_attempts=6, jitter=0.0, max_delay=2.0)
        assert policy.backoff_sequence("k") == [0.25, 0.5, 1.0, 2.0, 2.0]

    def test_exact_jittered_sequence_under_default_seed(self):
        policy = RetryPolicy()   # seed=0, jitter=0.5
        assert policy.backoff_sequence(
            "smtp:mail.example.com:10.30.0.1") == pytest.approx(
            [0.28462973254167123, 0.7291933008786278])

    def test_exact_jittered_sequence_under_seed_42(self):
        policy = RetryPolicy(seed=42)
        assert policy.backoff_sequence(
            "smtp:mail.example.com:10.30.0.1") == pytest.approx(
            [0.25427215789425506, 0.6850812803522123])

    def test_jitter_is_a_pure_function_of_seed_key_attempt(self):
        policy = RetryPolicy()
        assert policy.backoff("a", 1) == policy.backoff("a", 1)
        assert policy.backoff("a", 1) != policy.backoff("b", 1)
        assert policy.backoff("a", 0) != policy.backoff("a", 1)

    def test_jitter_stays_within_the_band(self):
        policy = RetryPolicy(jitter=0.5)
        for attempt, raw in enumerate((0.25, 0.5)):
            for key in ("x", "y", "z"):
                delay = policy.backoff(key, attempt)
                assert raw * 0.5 <= delay <= raw * 1.5


# -- connect_with_retries -------------------------------------------------

class TestConnectWithRetries:
    def test_recovers_within_the_attempt_budget(self, net):
        net.install_fault_plan(_plan(FaultSpec(FaultKind.REFUSE, count=2)))
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        app = connect_with_retries(net, IP, PORT, policy=policy, key="op")
        assert app == "the-app"
        assert net.retried_connects == 2
        assert net.backoff_seconds == pytest.approx(0.25 + 0.5)

    def test_exhaustion_reraises_the_transient_error(self, net):
        net.install_fault_plan(_plan(FaultSpec(FaultKind.REFUSE, count=9)))
        policy = RetryPolicy(max_attempts=3, jitter=0.0)
        with pytest.raises(ConnectionRefused) as err:
            connect_with_retries(net, IP, PORT, policy=policy, key="op")
        assert err.value.transient is True
        assert net.connect_count == 3
        # No backoff is charged after the final, losing attempt.
        assert net.backoff_seconds == pytest.approx(0.25 + 0.5)

    def test_budget_exhaustion_stops_before_attempts_run_out(self, net):
        net.install_fault_plan(_plan(FaultSpec(FaultKind.REFUSE, count=9)))
        policy = RetryPolicy(max_attempts=5, base_delay=10.0, jitter=0.0,
                             max_delay=60.0, timeout_budget=15.0)
        with pytest.raises(ConnectionRefused):
            connect_with_retries(net, IP, PORT, policy=policy, key="op")
        # attempt 0 (delay 10 charged), attempt 1 (delay 20 overruns).
        assert net.connect_count == 2

    def test_single_attempt_policy_never_backs_off(self, net):
        net.install_fault_plan(_plan(FaultSpec(FaultKind.TIMEOUT)))
        with pytest.raises(ConnectionTimeout):
            connect_with_retries(net, IP, PORT,
                                 policy=RetryPolicy(max_attempts=1))
        assert net.connect_count == 1
        assert net.backoff_seconds == 0.0

    def test_hard_failure_exhausts_without_transient_flag(self, net):
        """A deterministically-closed port retries, then fails hard."""
        closed = IpAddress.parse("10.1.2.5")
        net.register_host(closed)
        with pytest.raises(ConnectionRefused) as err:
            connect_with_retries(net, closed, PORT,
                                 policy=RetryPolicy(max_attempts=3))
        assert getattr(err.value, "transient", False) is False
        assert net.connect_count == 3


# -- cache hygiene under transient failures -------------------------------

class TestTransientCacheHygiene:
    def test_probe_cache_skips_transient_then_serves_recovery(
            self, world, simple_domain):
        probe = world.smtp_probe
        probe.cache_enabled = True
        world.network.install_fault_plan(
            FaultPlan().add_description(
                "smtp:mail.example.com",
                FaultSpec(FaultKind.REFUSE, count=99)))

        first = probe.probe_host("mail.example.com")
        assert first.transient and not first.reachable
        second = probe.probe_host("mail.example.com")
        assert second.transient
        assert second is not first          # not served from the memo
        assert probe.cache_hits == 0
        assert probe.probes_performed == 2

        world.network.install_fault_plan(None)   # endpoint recovers
        recovered = probe.probe_host("mail.example.com")
        assert recovered.reachable and not recovered.transient
        # The settled verdict memoizes as usual.
        assert probe.probe_host("mail.example.com") is recovered
        assert probe.cache_hits == 1

    def test_hard_failures_still_memoize(self, world, simple_domain):
        """Only *transient* verdicts bypass the memo: deterministic
        unreachability is a settled outcome and caches normally."""
        from repro.netsim.network import TcpBehavior
        from repro.smtp.server import SMTP_PORT
        probe = world.smtp_probe
        probe.cache_enabled = True
        address = world.resolver.resolve_address("mail.example.com")[0]
        world.network.set_behavior(address, SMTP_PORT, TcpBehavior.REFUSE)
        first = probe.probe_host("mail.example.com")
        assert not first.reachable and not first.transient
        assert probe.probe_host("mail.example.com") is first
        assert probe.cache_hits == 1

    def test_resolver_does_not_negatively_cache_transients(
            self, world, simple_domain):
        resolver = world.resolver
        resolver.flush_cache()
        world.network.install_fault_plan(
            FaultPlan().add_description(
                "dns:ns.example.com",
                FaultSpec(FaultKind.TIMEOUT, count=99)))
        answer, error = resolver.resolve_detailed("mail.example.com",
                                                  RRType.A)
        assert answer is None
        assert isinstance(error, DnsError)
        assert error.transient is True

        world.network.install_fault_plan(None)   # nameserver recovers
        answer, error = resolver.resolve_detailed("mail.example.com",
                                                  RRType.A)
        assert error is None
        assert answer is not None and answer.records

    def test_scan_during_faults_marks_transient_not_misconfigured(
            self, world, simple_domain):
        from repro.measurement.scanner import Scanner
        from repro.measurement.taxonomy import primary_bucket
        world.network.install_fault_plan(
            FaultPlan().add_description(
                "smtp:mail.example.com",
                FaultSpec(FaultKind.REFUSE, count=99)))
        snapshot = Scanner(world).scan_domain("example.com", 0)
        assert snapshot.any_transient
        assert primary_bucket(snapshot) == "transient"

        world.network.install_fault_plan(None)
        clean = Scanner(world).scan_domain("example.com", 0)
        assert not clean.any_transient
        assert primary_bucket(clean) == "ok"


# -- recovered == never-faulty --------------------------------------------

def test_recovery_within_budget_is_indistinguishable():
    """A domain whose endpoints fault once but recover inside the retry
    budget must produce byte-identical observations to a domain that
    never faulted at all — the acceptance bar for the retry layer."""
    from repro.measurement.scanner import Scanner

    def build():
        from repro.ecosystem.world import World
        world = World()
        deploy_domain(world, DomainSpec(domain="example.com"))
        return world

    clean_world, faulty_world = build(), build()
    plan = FaultPlan()
    for description in ("smtp:mail.example.com",
                        "https:www.example.com",
                        "dns:ns.example.com"):
        plan.add_description(description,
                             FaultSpec(FaultKind.REFUSE, count=1))
    faulty_world.network.install_fault_plan(plan)

    clean = Scanner(clean_world).scan_domain("example.com", 0)
    faulted = Scanner(faulty_world).scan_domain("example.com", 0)
    assert faulty_world.network.faults_injected > 0
    assert faulty_world.network.retried_connects > 0
    assert faulted.to_dict() == clean.to_dict()


# -- the transient taxonomy dimension -------------------------------------

def _snapshot(**overrides):
    from repro.measurement.snapshots import DomainSnapshot
    fields = dict(domain="d.example", tld="example", month_index=0,
                  instant=Instant(epoch_seconds=0))
    fields.update(overrides)
    return DomainSnapshot(**fields)


class TestTransientTaxonomy:
    def test_categorize_adds_transient_for_sts_snapshot(self):
        from repro.errors import MisconfigCategory
        from repro.measurement.taxonomy import categorize
        snap = _snapshot(sts_like=True, record_valid=True,
                         policy_transient=True)
        assert MisconfigCategory.TRANSIENT in categorize(snap)

    def test_categorize_marks_transient_non_sts_snapshots_too(self):
        from repro.errors import MisconfigCategory
        from repro.measurement.taxonomy import categorize
        snap = _snapshot(dns_transient=True)
        assert categorize(snap) == [MisconfigCategory.TRANSIENT]
        assert categorize(_snapshot()) == []

    def test_primary_bucket_priority_order(self):
        from repro.measurement.taxonomy import primary_bucket
        assert primary_bucket(_snapshot()) == "not-sts"
        assert primary_bucket(
            _snapshot(sts_like=True, record_valid=True)) == "ok"
        broken = _snapshot(sts_like=True, record_valid=False)
        assert primary_bucket(broken) == "dns-record"
        # transient trumps every misconfiguration category.
        broken.dns_transient = True
        assert primary_bucket(broken) == "transient"

    def test_primary_bucket_values_are_all_enumerated(self):
        from repro.errors import MisconfigCategory
        from repro.measurement.taxonomy import PRIMARY_BUCKETS
        assert set(PRIMARY_BUCKETS) == (
            {c.value for c in MisconfigCategory} | {"not-sts", "ok"})

    def test_transient_mx_observation_marks_snapshot(self):
        from repro.measurement.snapshots import MxObservation
        snap = _snapshot(sts_like=True)
        snap.mx_observations.append(MxObservation(hostname="mx.d.example"))
        assert not snap.any_transient
        snap.mx_observations.append(
            MxObservation(hostname="mx2.d.example", transient=True))
        assert snap.any_transient

    def test_summary_counts_transients_and_excludes_them(self):
        from repro.measurement.taxonomy import snapshot_summary
        healthy = _snapshot(sts_like=True, record_valid=True)
        noisy = _snapshot(domain="noisy.example", sts_like=True,
                          record_valid=False, policy_transient=True)
        dark = _snapshot(domain="dark.example", dns_transient=True)
        summary = snapshot_summary([healthy, noisy, dark], verdicts={})
        assert summary.transient == 2
        # Only the settled STS snapshot is attributed.
        assert summary.total_sts == 1
        assert summary.misconfigured == 0
        assert not summary.category_counts

    def test_summary_without_faults_reports_zero_transient(self):
        from repro.measurement.taxonomy import snapshot_summary
        summary = snapshot_summary(
            [_snapshot(sts_like=True, record_valid=True)], verdicts={})
        assert summary.transient == 0
        assert summary.total_sts == 1


# -- FaultSpec.fires edge cases -------------------------------------------

class TestFaultSpecFires:
    def test_attempt_scoped_boundary(self):
        spec = FaultSpec(FaultKind.REFUSE, count=3)
        assert [spec.fires(a, 0) for a in range(5)] == [
            True, True, True, False, False]

    def test_attempt_scoped_ignores_the_clock(self):
        spec = FaultSpec(FaultKind.TIMEOUT, count=1)
        assert spec.fires(0, 0) and spec.fires(0, 10**9)

    def test_flap_with_zero_period_never_fires(self):
        assert not FaultSpec(FaultKind.FLAP, period=0).fires(0, 0)

    def test_flap_phase_inverts_the_wave(self):
        down_first = FaultSpec(FaultKind.FLAP, period=10, phase=0)
        up_first = FaultSpec(FaultKind.FLAP, period=10, phase=1)
        for now in (0, 5, 10, 25, 30):
            assert down_first.fires(0, now) != up_first.fires(0, now)

    def test_flap_square_wave_alternates_per_period(self):
        spec = FaultSpec(FaultKind.FLAP, period=10, phase=0)
        wave = [spec.fires(0, now) for now in range(0, 40, 10)]
        assert wave == [True, False, True, False]


# -- ScanStats fault counters ---------------------------------------------

class TestScanStatsFaultCounters:
    def test_merge_sums_the_fault_counters(self):
        from repro.measurement.executor import ScanStats
        a = ScanStats(connect_retries=3, faults_injected=5,
                      retry_backoff_seconds=1.5, transient_domains=2)
        b = ScanStats(connect_retries=1, faults_injected=2,
                      retry_backoff_seconds=0.5, transient_domains=1)
        a.merge(b)
        assert a.connect_retries == 4
        assert a.faults_injected == 7
        assert a.retry_backoff_seconds == pytest.approx(2.0)
        assert a.transient_domains == 3

    def test_render_table_lists_the_fault_lines(self):
        from repro.measurement.executor import ScanStats
        table = ScanStats(connect_retries=12, faults_injected=34,
                          retry_backoff_seconds=5.5,
                          transient_domains=6).render_table()
        assert "connect retries" in table and "12" in table
        assert "faults injected" in table and "34" in table
        assert "transient domains" in table
        assert "retry backoff" in table and "(virtual)" in table

    def test_as_dict_carries_the_fault_counters(self):
        from repro.measurement.executor import ScanStats
        data = ScanStats(faults_injected=9).as_dict()
        for key in ("connect_retries", "faults_injected",
                    "retry_backoff_seconds", "transient_domains"):
            assert key in data
        assert data["faults_injected"] == 9


# -- world wiring ---------------------------------------------------------

class TestWorldWiring:
    def test_network_shares_the_world_clock(self, world):
        assert world.network.clock is world.clock

    def test_custom_retry_policy_threads_through(self):
        from repro.ecosystem.world import World
        policy = RetryPolicy(max_attempts=1)
        world = World(retry_policy=policy)
        assert world.retry_policy is policy
        deploy_domain(world, DomainSpec(domain="example.com"))
        world.network.install_fault_plan(
            FaultPlan().add_description(
                "smtp:mail.example.com",
                FaultSpec(FaultKind.REFUSE, count=1)))
        # One attempt only: a single-shot fault is fatal under this
        # policy, where the default three-attempt policy recovers.
        result = world.smtp_probe.probe_host("mail.example.com")
        assert result.transient and not result.reachable
        assert world.network.retried_connects == 0

    def test_retried_connects_counts_only_retries(self, net):
        net.connect(IP, PORT, attempt=0)
        assert net.connect_count == 1
        assert net.retried_connects == 0
        net.connect(IP, PORT, attempt=1)
        assert net.connect_count == 2
        assert net.retried_connects == 1


# -- transient propagation through the fetch pipeline ---------------------

class TestFetchTransientPropagation:
    def test_policy_fetch_tcp_fault_sets_transient(self, world,
                                                   simple_domain):
        from repro.core.fetch import PolicyFetcher
        # The policy host is virtual-hosted on the domain's web server,
        # so the listener's stable description is the server's name.
        world.network.install_fault_plan(
            FaultPlan().add_description(
                "https:www.example.com",
                FaultSpec(FaultKind.TIMEOUT, count=99)))
        result = PolicyFetcher(
            world.resolver, world.https_client).fetch_policy("example.com")
        assert result.failed_stage is not None
        assert result.transient is True

    def test_policy_dns_fault_sets_dns_transient(self, world,
                                                 simple_domain):
        from repro.core.fetch import PolicyFetcher
        world.resolver.flush_cache()
        world.network.install_fault_plan(
            FaultPlan().add_description(
                "dns:ns.example.com",
                FaultSpec(FaultKind.TIMEOUT, count=99)))
        result = PolicyFetcher(
            world.resolver, world.https_client).fetch_policy("example.com")
        assert result.dns_transient is True
        assert result.transient is True

    def test_clean_fetch_is_not_transient(self, world, simple_domain):
        from repro.core.fetch import PolicyFetcher
        result = PolicyFetcher(
            world.resolver, world.https_client).fetch_policy("example.com")
        assert result.failed_stage is None
        assert result.transient is False


# -- CLI surface ----------------------------------------------------------

class TestCliFaultOptions:
    def test_parser_defaults(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["audit"])
        assert args.fault_seed is None
        assert args.fault_rate == pytest.approx(0.2)

    def test_parser_accepts_fault_options(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["audit", "--fault-seed", "7", "--fault-rate", "0.4"])
        assert args.fault_seed == 7
        assert args.fault_rate == pytest.approx(0.4)
