"""Focused tests for smaller paths not covered elsewhere: fetch-result
derivations, entity-verdict semantics, error taxonomy completeness,
and queue introspection."""

import pytest

from repro.core.fetch import PolicyFetchResult
from repro.core.record import evaluate_txt_rrset
from repro.errors import (
    ManagingEntity, MisconfigCategory, MismatchClass, PolicyFetchStage,
    StsRecordError, TlsFailure,
)
from repro.measurement.classify import EntityVerdict
from repro.pki.validation import ValidationResult, classify_failure


class TestPolicyFetchResultDerivations:
    def test_empty_result_is_not_sts(self):
        result = PolicyFetchResult(domain="x.com")
        result.record_eval = evaluate_txt_rrset([])
        assert not result.sts_enabled
        assert result.record is None
        assert result.failed_stage is None
        assert not result.fully_valid

    def test_record_error_surfaces(self):
        result = PolicyFetchResult(domain="x.com")
        result.record_eval = evaluate_txt_rrset(["v=STSv1; id=ab cd;"])
        assert result.sts_enabled
        assert result.record_error is StsRecordError.INVALID_ID

    def test_no_fetch_with_sts_record_counts_as_dns_stage(self):
        # A result whose HTTPS stage never ran (the fetcher bailed out)
        # reports the DNS stage for an STS-enabled domain.
        result = PolicyFetchResult(domain="x.com")
        result.record_eval = evaluate_txt_rrset(["v=STSv1; id=1;"])
        assert result.failed_stage is PolicyFetchStage.DNS


class TestEntityVerdict:
    def test_paper_tutanota_example(self):
        # §4.5.1's worked example: mail.tutanota.de vs
        # mta-sts.tutanota.com share the label 'tutanota'.
        verdict = EntityVerdict(
            domain="customer.com",
            mx=ManagingEntity.THIRD_PARTY,
            policy=ManagingEntity.THIRD_PARTY,
            mx_provider_sld="tutanota.de",
            policy_provider_sld="tutanota.com")
        assert verdict.both_outsourced
        assert verdict.same_provider

    def test_different_providers(self):
        verdict = EntityVerdict(
            domain="customer.com",
            mx=ManagingEntity.THIRD_PARTY,
            policy=ManagingEntity.THIRD_PARTY,
            mx_provider_sld="google.com",
            policy_provider_sld="dmarcinput.com")
        assert verdict.both_outsourced
        assert not verdict.same_provider

    def test_self_managed_is_not_outsourced(self):
        verdict = EntityVerdict(domain="x.com",
                                mx=ManagingEntity.SELF_MANAGED,
                                policy=ManagingEntity.THIRD_PARTY)
        assert not verdict.both_outsourced
        assert not verdict.same_provider

    def test_missing_slds_never_same(self):
        verdict = EntityVerdict(domain="x.com",
                                mx=ManagingEntity.THIRD_PARTY,
                                policy=ManagingEntity.THIRD_PARTY)
        assert not verdict.same_provider


class TestErrorTaxonomyCompleteness:
    def test_every_tls_failure_classifies(self):
        for failure in TlsFailure:
            result = ValidationResult.fail(failure, "x")
            assert classify_failure(result)    # no KeyError for any class

    def test_enum_values_are_stable_identifiers(self):
        # Snapshot schemas persist these strings; lock them down.
        assert MisconfigCategory.POLICY_RETRIEVAL.value == "policy-retrieval"
        assert MismatchClass.THREE_LD.value == "3ld-plus-mismatch"
        assert PolicyFetchStage.SYNTAX.value == "policy-syntax"
        assert StsRecordError.MULTIPLE_RECORDS.value == "multiple-records"

    def test_valid_result_classifies_as_valid(self):
        assert classify_failure(ValidationResult.ok()) == "valid"


class TestQueueIntrospection:
    def test_next_wakeup_and_pending(self, world, simple_domain):
        from repro.netsim.network import TcpBehavior
        from repro.smtp.delivery import Message, SendingMta
        from repro.smtp.queue import MailQueue
        from repro.smtp.server import SMTP_PORT

        mx = simple_domain.mx_hosts[0]
        world.network.set_behavior(mx.ip, SMTP_PORT, TcpBehavior.TIMEOUT)
        sender = SendingMta("q.net", world.network, world.resolver,
                            world.trust_store, world.clock)
        queue = MailQueue(sender, world.clock)
        assert queue.next_wakeup() is None
        entry = queue.submit(Message("a@q.net", "b@example.com"))
        assert queue.pending() == [entry]
        wakeup = queue.next_wakeup()
        assert wakeup is not None and wakeup > world.clock.now()

    def test_drain_empty_queue_is_noop(self, world):
        from repro.smtp.delivery import SendingMta
        from repro.smtp.queue import MailQueue
        sender = SendingMta("q.net", world.network, world.resolver,
                            world.trust_store, world.clock)
        before = world.clock.now()
        MailQueue(sender, world.clock).drain()
        assert world.clock.now() == before


class TestRecordRendering:
    def test_render_includes_extensions(self):
        from repro.core.record import StsRecord
        record = StsRecord("STSv1", "20240101", (("ext", "v"),))
        assert record.render() == "v=STSv1; id=20240101; ext=v;"

    def test_mx_observation_defaults(self):
        from repro.measurement.snapshots import MxObservation
        observation = MxObservation(hostname="mx.x.com")
        assert not observation.cert_valid
        assert observation.failure_class == ""
