"""Tests for TLSRPT record parsing and lookup (Appendix B)."""

import pytest

from repro.core.tlsrpt import TlsRptRecord, lookup_tlsrpt, parse_tlsrpt_record
from repro.dns.name import DnsName
from repro.dns.records import TxtRecord
from repro.ecosystem.deployment import DomainSpec, deploy_domain


class TestParsing:
    def test_mailto_rua(self):
        record = parse_tlsrpt_record(
            "v=TLSRPTv1; rua=mailto:tls@example.com")
        assert record is not None
        assert record.rua == ("mailto:tls@example.com",)

    def test_https_rua(self):
        record = parse_tlsrpt_record(
            "v=TLSRPTv1; rua=https://reports.example.com/v1")
        assert record is not None

    def test_multiple_rua(self):
        record = parse_tlsrpt_record(
            "v=TLSRPTv1; rua=mailto:a@x.com,https://y.com/r")
        assert len(record.rua) == 2

    def test_render_round_trip(self):
        record = TlsRptRecord("TLSRPTv1", ("mailto:a@x.com",))
        assert parse_tlsrpt_record(record.render()) == record

    @pytest.mark.parametrize("bad", [
        "v=TLSRPTv2; rua=mailto:a@x.com",       # wrong version
        "rua=mailto:a@x.com",                   # no version
        "v=TLSRPTv1;",                          # no rua
        "v=TLSRPTv1; rua=",                     # empty rua
        "v=TLSRPTv1; rua=ftp://x.com",          # bad scheme
        "v=TLSRPTv1; rua=mailto:not-an-email",  # malformed address
    ])
    def test_invalid_records(self, bad):
        assert parse_tlsrpt_record(bad) is None


class TestLookup:
    def test_found_via_dns(self, world):
        from repro.core.tlsrpt import TlsRptRecord
        deploy_domain(world, DomainSpec(
            domain="rpt.com",
            tlsrpt=TlsRptRecord("TLSRPTv1", ("mailto:tls@rpt.com",))))
        record = lookup_tlsrpt(world.resolver, "rpt.com")
        assert record is not None
        assert record.rua == ("mailto:tls@rpt.com",)

    def test_absent(self, world, simple_domain):
        assert lookup_tlsrpt(world.resolver, "example.com") is None

    def test_multiple_records_invalid(self, world, simple_domain):
        name = DnsName.parse("_smtp._tls.example.com")
        simple_domain.zone.add(TxtRecord(name, 300,
                                         "v=TLSRPTv1; rua=mailto:a@x.com"))
        simple_domain.zone.add(TxtRecord(name, 300,
                                         "v=TLSRPTv1; rua=mailto:b@x.com"))
        assert lookup_tlsrpt(world.resolver, "example.com") is None
