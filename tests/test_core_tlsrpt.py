"""Tests for TLSRPT record parsing and lookup (Appendix B)."""

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tlsrpt import TlsRptRecord, lookup_tlsrpt, parse_tlsrpt_record
from repro.dns.name import DnsName, canonical_host
from repro.dns.records import TxtRecord
from repro.ecosystem.deployment import DomainSpec, deploy_domain


class TestParsing:
    def test_mailto_rua(self):
        record = parse_tlsrpt_record(
            "v=TLSRPTv1; rua=mailto:tls@example.com")
        assert record is not None
        assert record.rua == ("mailto:tls@example.com",)

    def test_https_rua(self):
        record = parse_tlsrpt_record(
            "v=TLSRPTv1; rua=https://reports.example.com/v1")
        assert record is not None

    def test_multiple_rua(self):
        record = parse_tlsrpt_record(
            "v=TLSRPTv1; rua=mailto:a@x.com,https://y.com/r")
        assert len(record.rua) == 2

    def test_duplicate_rua_fields_accumulate(self):
        # RFC 8460 allows one rua field, but real records repeat it;
        # the parser folds every rua field's URIs into one list.
        record = parse_tlsrpt_record(
            "v=TLSRPTv1; rua=mailto:a@x.com; rua=mailto:b@y.com")
        assert record is not None
        assert record.rua == ("mailto:a@x.com", "mailto:b@y.com")

    def test_render_round_trip(self):
        record = TlsRptRecord("TLSRPTv1", ("mailto:a@x.com",))
        assert parse_tlsrpt_record(record.render()) == record

    @pytest.mark.parametrize("bad", [
        "v=TLSRPTv2; rua=mailto:a@x.com",       # wrong version
        "rua=mailto:a@x.com",                   # no version
        "v=TLSRPTv1;",                          # no rua
        "v=TLSRPTv1; rua=",                     # empty rua
        "v=TLSRPTv1; rua=ftp://x.com",          # bad scheme
        "v=TLSRPTv1; rua=mailto:not-an-email",  # malformed address
        # empty items inside the URI list
        "v=TLSRPTv1; rua=mailto:a@x.com,",
        "v=TLSRPTv1; rua=,mailto:a@x.com",
        "v=TLSRPTv1; rua=mailto:a@x.com,,https://y.com/r",
        # the version tag is case-sensitive (RFC 8460 §3: "v=TLSRPTv1")
        "V=TLSRPTv1; rua=mailto:a@x.com",
        "v=tlsrptv1; rua=mailto:a@x.com",
    ])
    def test_invalid_records(self, bad):
        assert parse_tlsrpt_record(bad) is None


# Comma- and semicolon-free URI components, so every generated URI
# survives the record's own list syntax.
_label = st.text(alphabet=string.ascii_lowercase + string.digits,
                 min_size=1, max_size=8)
_domain = st.lists(_label, min_size=2, max_size=3).map(".".join)
_local = st.text(alphabet=string.ascii_lowercase + string.digits + ".-_",
                 min_size=1, max_size=12)
_mailto = st.builds(lambda local, dom: f"mailto:{local}@{dom}",
                    _local, _domain)
_https = _domain.map(lambda dom: f"https://{dom}/v1")


class TestRenderParseProperty:
    @given(st.lists(st.one_of(_mailto, _https), min_size=1, max_size=4))
    def test_render_parse_round_trip(self, uris):
        record = TlsRptRecord("TLSRPTv1", tuple(uris))
        assert parse_tlsrpt_record(record.render()) == record


class TestLookup:
    def test_found_via_dns(self, world):
        from repro.core.tlsrpt import TlsRptRecord
        deploy_domain(world, DomainSpec(
            domain="rpt.com",
            tlsrpt=TlsRptRecord("TLSRPTv1", ("mailto:tls@rpt.com",))))
        record = lookup_tlsrpt(world.resolver, "rpt.com")
        assert record is not None
        assert record.rua == ("mailto:tls@rpt.com",)

    def test_absent(self, world, simple_domain):
        assert lookup_tlsrpt(world.resolver, "example.com") is None

    def test_multiple_records_invalid(self, world, simple_domain):
        name = DnsName.parse("_smtp._tls.example.com")
        simple_domain.zone.add(TxtRecord(name, 300,
                                         "v=TLSRPTv1; rua=mailto:a@x.com"))
        simple_domain.zone.add(TxtRecord(name, 300,
                                         "v=TLSRPTv1; rua=mailto:b@x.com"))
        assert lookup_tlsrpt(world.resolver, "example.com") is None

    # -- canonical_host keying (ẞ / İ regressions) ---------------------

    def test_sharp_s_casefolds_to_published_name(self, world):
        # ẞ casefolds to "ss" while str.lower() keeps it as "ß": the
        # lookup must fold exactly as canonical_host() does or a ẞ
        # recipient domain misses its published record.
        deploy_domain(world, DomainSpec(
            domain="strasse.example",
            tlsrpt=TlsRptRecord("TLSRPTv1",
                                ("mailto:tls@strasse.example",))))
        record = lookup_tlsrpt(world.resolver, "STRAẞE.example.")
        assert record is not None
        assert record.rua == ("mailto:tls@strasse.example",)

    def test_dotted_capital_i_absent_not_crash(self, world, simple_domain):
        # İ casefolds to "i" + COMBINING DOT ABOVE — a label no LDH
        # zone can hold, so no such domain can publish a record.  The
        # lookup must fold it the same way the delivery path does and
        # answer "absent" instead of raising out of DnsName.parse.
        assert canonical_host("İstanbul.example") == \
            "İstanbul.example".casefold()
        assert lookup_tlsrpt(world.resolver, "İSTANBUL.example") is None

    def test_lookup_accepts_dnsname(self, world):
        deploy_domain(world, DomainSpec(
            domain="byname.example",
            tlsrpt=TlsRptRecord("TLSRPTv1",
                                ("mailto:tls@byname.example",))))
        record = lookup_tlsrpt(world.resolver,
                               DnsName.parse("ByName.Example."))
        assert record is not None
