"""Unit tests for DNS names, eSLD derivation, and edit distance."""

import pytest

from repro.dns.name import (
    DnsName, effective_sld, levenshtein, registrable_part, second_label,
)


class TestParsing:
    def test_simple_name(self):
        name = DnsName.parse("mail.example.com")
        assert name.labels == ("mail", "example", "com")

    def test_lowercased(self):
        assert DnsName.parse("MAIL.Example.COM").text == "mail.example.com"

    def test_trailing_dot_stripped(self):
        assert DnsName.parse("example.com.").text == "example.com"

    def test_underscore_labels(self):
        assert DnsName.parse("_mta-sts.example.com").labels[0] == "_mta-sts"

    def test_wildcard_label(self):
        assert DnsName.parse("*.example.com").labels[0] == "*"

    @pytest.mark.parametrize("bad", ["", ".", "a..b", "-leading.example.com",
                                     "trailing-.example.com",
                                     "a" * 64 + ".com"])
    def test_invalid_names(self, bad):
        with pytest.raises(ValueError):
            DnsName.parse(bad)

    def test_try_parse_returns_none(self):
        assert DnsName.try_parse("a..b") is None
        assert DnsName.try_parse("ok.example.com") is not None

    def test_total_length_limit(self):
        label = "a" * 60
        too_long = ".".join([label] * 5)
        with pytest.raises(ValueError):
            DnsName.parse(too_long)


class TestArithmetic:
    def test_parent(self):
        assert DnsName.parse("a.b.c").parent().text == "b.c"

    def test_parent_of_tld_fails(self):
        with pytest.raises(ValueError):
            DnsName.parse("com").parent()

    def test_child(self):
        assert DnsName.parse("example.com").child("mail").text == \
            "mail.example.com"

    def test_subdomain_relations(self):
        apex = DnsName.parse("example.com")
        sub = DnsName.parse("a.b.example.com")
        assert sub.is_subdomain_of(apex)
        assert apex.is_subdomain_of(apex)
        assert sub.strictly_under(apex)
        assert not apex.strictly_under(apex)
        assert not apex.is_subdomain_of(sub)

    def test_not_subdomain_of_partial_label(self):
        assert not DnsName.parse("notexample.com").is_subdomain_of(
            DnsName.parse("example.com"))

    def test_tld(self):
        assert DnsName.parse("mail.example.se").tld() == "se"


class TestEffectiveSld:
    def test_plain_tld(self):
        assert effective_sld("mail.example.com").text == "example.com"

    def test_name_is_already_sld(self):
        assert effective_sld("example.com").text == "example.com"

    def test_bare_tld_has_no_sld(self):
        assert effective_sld("com") is None

    def test_multi_label_suffix(self):
        assert effective_sld("www.example.co.uk").text == "example.co.uk"

    def test_bare_multi_label_suffix(self):
        assert effective_sld("co.uk") is None

    def test_registrable_part_falls_back(self):
        assert registrable_part("com") == "com"
        assert registrable_part("deep.sub.example.org") == "example.org"

    def test_second_label(self):
        # §4.5.1: 'tutanota' from both mail.tutanota.de and
        # mta-sts.tutanota.com identifies the shared provider.
        assert second_label("mail.tutanota.de") == "tutanota"
        assert second_label("mta-sts.tutanota.com") == "tutanota"


class TestLevenshtein:
    def test_identical(self):
        assert levenshtein("abc", "abc") == 0

    def test_single_edit(self):
        assert levenshtein("mail", "mial") == 2   # transposition = 2 edits
        assert levenshtein("mail", "mall") == 1
        assert levenshtein("mail", "mails") == 1
        assert levenshtein("mail", "ail") == 1

    def test_known_distance(self):
        assert levenshtein("kitten", "sitting") == 3

    def test_cap_short_circuits(self):
        assert levenshtein("a" * 50, "b" * 50, cap=3) == 4

    def test_cap_exact_boundary(self):
        assert levenshtein("abc", "abd", cap=1) == 1

    def test_length_difference_beyond_cap(self):
        assert levenshtein("a", "a" * 10, cap=3) == 4

    def test_symmetry(self):
        assert levenshtein("flaw", "lawn") == levenshtein("lawn", "flaw")


class TestCanonicalHost:
    def test_basic_canonicalisation(self):
        from repro.dns.name import canonical_host
        assert canonical_host(" MX1.Example.COM. ") == "mx1.example.com"
        assert canonical_host(DnsName.parse("A.B.C")) == "a.b.c"

    def test_casefold_not_lower(self):
        from repro.dns.name import canonical_host
        # Dotted capital I and sharp s have case mappings that
        # str.lower() and str.casefold() disagree on; every comparison
        # site must fold the same way, so the helper pins casefold.
        assert canonical_host("ẞ.example") == "ss.example"
        assert canonical_host("İ.example") == "İ".casefold() + ".example"

    def test_empty_label_guard(self):
        from repro.dns.name import canonical_host
        assert canonical_host("a..b") == ""
        assert canonical_host(".") == ""
        assert canonical_host("") == ""
        assert canonical_host("   ") == ""

    def test_parse_matches_canonical_host(self):
        from repro.dns.name import canonical_host
        for text in ("MX1.Example.COM.", "  a.b  ", "X_Y.example"):
            assert DnsName.parse(text).text == canonical_host(text)
