"""Tests for the §4.6 key-takeaway computation."""

import pytest

from repro.analysis.series import run_campaign
from repro.analysis.takeaways import Takeaway, compute_takeaways
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig


@pytest.fixture(scope="module")
def campaign():
    timeline = EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=0.01, seed=5)))
    return run_campaign(timeline, months=[0, 11])


class TestTakeaways:
    def test_three_takeaways(self, campaign):
        takeaways = compute_takeaways(campaign)
        assert len(takeaways) == 3

    def test_all_hold_on_the_synthetic_ecosystem(self, campaign):
        for takeaway in compute_takeaways(campaign):
            assert takeaway.holds, takeaway.render()

    def test_evidence_is_quantitative(self, campaign):
        for takeaway in compute_takeaways(campaign):
            assert "%" in takeaway.evidence or "/" in takeaway.evidence

    def test_render(self, campaign):
        text = compute_takeaways(campaign)[0].render()
        assert "HOLDS" in text
        assert "policy-server" in text

    def test_broken_claim_detected(self, campaign):
        # Zero out the final summary's MX stats: takeaway 2 breaks.
        summary = campaign.latest_summary()
        saved = dict(summary.mx_invalid_by_entity)
        try:
            summary.mx_invalid_by_entity["self-managed"] = 0
            takeaways = compute_takeaways(campaign)
            assert not takeaways[1].holds
        finally:
            summary.mx_invalid_by_entity.update(saved)
