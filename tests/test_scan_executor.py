"""Tests for the scan execution subsystem: deterministic sharded
backends, the memoization caches, incremental world materialisation,
and the per-stage instrumentation."""

import pytest

from repro.clock import HOUR
from repro.dns.records import RRType
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.providers import default_email_providers
from repro.ecosystem.timeline import (
    EcosystemTimeline, IncrementalMaterializer, TimelineConfig,
)
from repro.errors import NxDomain
from repro.measurement.executor import (
    ScanExecutor, ScanStats, partition_domains,
)
from repro.measurement.scanner import Scanner
from repro.measurement.snapshots import SnapshotStore
from repro.pki.validation import (
    chain_cache_stats, flush_chain_cache, reset_chain_cache_stats,
    validate_chain_cached,
)


# -- partitioning ---------------------------------------------------------

class TestPartitioning:
    def test_covers_all_disjoint_and_ordered(self):
        domains = [f"d{i}.example" for i in range(17)]
        shards = partition_domains(domains, 4)
        assert len(shards) == 4
        merged = [d for shard in shards for d in shard]
        assert merged == sorted(domains)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_deterministic_under_input_order_and_case(self):
        domains = ["B.example", "a.example.", "c.example"]
        expected = partition_domains(sorted(domains), 2)
        assert partition_domains(reversed(sorted(domains)), 2) == expected
        assert expected[0][0] == "a.example"

    def test_duplicates_collapse(self):
        shards = partition_domains(["x.example", "X.EXAMPLE."], 3)
        assert sum(len(s) for s in shards) == 1

    def test_excess_shards_clamp_to_domain_count(self):
        shards = partition_domains(["only.example"], 8)
        assert shards == [["only.example"]]
        assert partition_domains([], 4) == [[]]


# -- ScanStats ------------------------------------------------------------

class TestScanStats:
    def test_merge_sums_counters(self):
        a = ScanStats(domains_scanned=3, dns_queries=10, smtp_probes=4,
                      scan_seconds=1.5, months=1)
        b = ScanStats(domains_scanned=2, dns_queries=5, smtp_probes=1,
                      scan_seconds=0.5, months=1)
        a.merge(b)
        assert a.domains_scanned == 5
        assert a.dns_queries == 15
        assert a.smtp_probes == 5
        assert a.scan_seconds == pytest.approx(2.0)
        assert a.months == 2

    def test_as_dict_and_render(self):
        stats = ScanStats(backend="threaded", jobs=4, domains_scanned=7)
        data = stats.as_dict()
        assert data["backend"] == "threaded"
        assert data["domains_scanned"] == 7
        table = stats.render_table()
        assert "threaded" in table
        assert "domains scanned" in table

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            ScanExecutor(backend="processes")
        with pytest.raises(ValueError):
            ScanExecutor(jobs=0)


# -- backend determinism --------------------------------------------------

@pytest.mark.parametrize("seed", [11, 4242])
def test_serial_and_threaded_snapshots_byte_identical(seed):
    timeline = EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=0.004, seed=seed)))
    month = len(timeline.scan_instants) - 1
    materialized = timeline.materialize(month)
    domains = materialized.deployed.keys()

    serial, _ = ScanExecutor(backend="serial").scan(
        materialized.world, domains, month)
    threaded, _ = ScanExecutor(backend="threaded", jobs=3).scan(
        materialized.world, domains, month)

    # The executor must also agree with a plain, cache-free Scanner.
    reference = SnapshotStore()
    Scanner(materialized.world).scan_all(sorted(domains), month, reference)

    assert serial.canonical_bytes() == threaded.canonical_bytes()
    assert serial.canonical_bytes() == reference.canonical_bytes()


# -- incremental materialisation -----------------------------------------

def _comparable(snapshot):
    """Snapshot content modulo concrete IP values.

    Incremental materialisation reuses one world across months, so
    addresses are allocated in a different order than a from-scratch
    build; every field the analyses read must still match exactly, and
    address *counts* must agree."""
    data = snapshot.to_dict()
    data["apex_addresses"] = len(data["apex_addresses"])
    data["policy_host_addresses"] = len(data["policy_host_addresses"])
    for obs in data["mx_observations"]:
        obs["addresses"] = len(obs["addresses"])
    return data


class TestIncrementalEquivalence:
    def test_every_month_matches_full_rebuild(self):
        config = TimelineConfig(PopulationConfig(scale=0.004, seed=7))
        full_timeline = EcosystemTimeline(config)
        inc_timeline = EcosystemTimeline(config)
        incremental = IncrementalMaterializer(inc_timeline)
        executor = ScanExecutor()

        for month in range(len(full_timeline.scan_instants)):
            full = full_timeline.materialize(month)
            inc = incremental.materialize(month)
            assert sorted(full.deployed) == sorted(inc.deployed)
            assert full.instant.epoch_seconds == inc.instant.epoch_seconds

            full_store, _ = executor.scan(
                full.world, full.deployed.keys(), month,
                instant=full.instant)
            inc_store, _ = executor.scan(
                inc.world, inc.deployed.keys(), month,
                instant=inc.instant)
            full_rows = [_comparable(s) for s in full_store.month(month)]
            inc_rows = [_comparable(s) for s in inc_store.month(month)]
            assert full_rows == inc_rows, f"month {month} diverged"

    def test_full_rebuild_escape_hatch(self):
        config = TimelineConfig(PopulationConfig(scale=0.004, seed=7))
        incremental = IncrementalMaterializer(EcosystemTimeline(config))
        incremental.materialize(0)
        first = incremental.materialize(1)
        rebuilt = incremental.materialize(1, full_rebuild=True)
        assert rebuilt.world is not first.world
        assert sorted(rebuilt.deployed) == sorted(first.deployed)

    def test_backwards_month_forces_full_build(self):
        config = TimelineConfig(PopulationConfig(scale=0.004, seed=7))
        incremental = IncrementalMaterializer(EcosystemTimeline(config))
        incremental.materialize(2)
        earlier = incremental.materialize(1)
        assert earlier.month_index == 1


# -- executor statistics --------------------------------------------------

class TestExecutorStats:
    def test_counters_populated(self, world):
        provider = default_email_providers()[0]
        for name in ("one.example", "two.example"):
            deploy_domain(world, DomainSpec(domain=name,
                                            email_provider=provider))
        store, stats = ScanExecutor().scan(
            world, ["one.example", "two.example"], 0)
        assert stats.domains_scanned == 2
        assert len(store.month(0)) == 2
        assert stats.dns_queries > 0
        assert stats.policy_fetches == 2
        assert stats.smtp_probes > 0
        assert stats.scan_seconds > 0
        # Both domains share the provider's MX farm: the second domain's
        # probes must be memo hits, not fresh SMTP dialogues.
        assert stats.smtp_probe_cache_hits >= len(provider.mx_hostnames)

    def test_probe_cache_disabled_outside_executor(self, world,
                                                   simple_domain):
        assert not world.smtp_probe.cache_enabled
        world.smtp_probe.probe_host("mail.example.com")
        world.smtp_probe.probe_host("mail.example.com")
        assert world.smtp_probe.cache_hits == 0

        ScanExecutor().scan(world, ["example.com"], 0)
        assert not world.smtp_probe.cache_enabled  # restored after scan


# -- SMTP probe memoization ----------------------------------------------

class TestProbeCache:
    def test_cache_hit_and_flush(self, world, simple_domain):
        probe = world.smtp_probe
        probe.cache_enabled = True
        first = probe.probe_host("mail.example.com")
        second = probe.probe_host("mail.example.com")
        assert second is first
        assert probe.cache_hits == 1
        probe.flush_cache()
        third = probe.probe_host("mail.example.com")
        assert third is not first
        stats = probe.cache_stats()
        assert stats["cache_hits"] == 1
        assert 0.0 < stats["hit_rate"] < 1.0


# -- PKIX chain-validation cache -----------------------------------------

class TestChainCache:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        flush_chain_cache()
        reset_chain_cache_stats()
        yield
        flush_chain_cache()
        reset_chain_cache_stats()

    def test_repeat_validation_hits(self, world):
        cert = world.issue_cert(["mail.example.com"])
        now = world.now()
        first = validate_chain_cached(cert, "mail.example.com",
                                      world.trust_store, now)
        second = validate_chain_cached(cert, "mail.example.com",
                                       world.trust_store, now)
        assert first.valid and second.valid
        assert chain_cache_stats()["cache_hits"] == 1

    def test_revocation_changes_key(self, world):
        cert = world.issue_cert(["mail.example.com"])
        now = world.now()
        assert validate_chain_cached(cert, "mail.example.com",
                                     world.trust_store, now).valid
        revoked = world.ca.revoke(cert)
        result = validate_chain_cached(revoked, "mail.example.com",
                                       world.trust_store, now)
        assert not result.valid
        assert chain_cache_stats()["cache_hits"] == 0

    def test_trust_store_mutation_invalidates(self, world):
        cert = world.issue_cert(["mail.example.com"])
        now = world.now()
        assert validate_chain_cached(cert, "mail.example.com",
                                     world.trust_store, now).valid
        world.trust_store.remove_root(world.ca.root)
        result = validate_chain_cached(cert, "mail.example.com",
                                       world.trust_store, now)
        assert not result.valid
        assert chain_cache_stats()["cache_hits"] == 0

    def test_hostname_part_of_key(self, world):
        cert = world.issue_cert(["*.example.com"])
        now = world.now()
        assert validate_chain_cached(cert, "mail.example.com",
                                     world.trust_store, now).valid
        assert not validate_chain_cached(cert, "mail.other.org",
                                         world.trust_store, now).valid
        assert chain_cache_stats()["cache_hits"] == 0


# -- resolver instrumentation --------------------------------------------

class TestResolverStats:
    def test_negative_cache_hits_counted(self, world, simple_domain):
        resolver = world.resolver
        resolver.reset_stats()
        resolver.flush_cache()
        for _ in range(2):
            with pytest.raises(NxDomain):
                resolver.resolve("nope.example.com", RRType.A)
        stats = resolver.cache_stats()
        assert stats["negative_cache_hits"] == 1
        assert stats["cache_hits"] >= stats["negative_cache_hits"]
        assert stats["queries"] >= 1

    def test_positive_hits_not_counted_as_negative(self, world,
                                                   simple_domain):
        resolver = world.resolver
        resolver.reset_stats()
        resolver.flush_cache()
        resolver.resolve("mail.example.com", RRType.A)
        resolver.resolve("mail.example.com", RRType.A)
        stats = resolver.cache_stats()
        assert stats["cache_hits"] >= 1
        assert stats["negative_cache_hits"] == 0


# -- Scanner instant threading -------------------------------------------

class TestScanAllInstant:
    def test_one_instant_per_month(self, world, simple_domain):
        deploy_domain(world, DomainSpec(domain="second.example"))
        instant = world.now()
        world.clock.advance(HOUR)
        store = SnapshotStore()
        Scanner(world).scan_all(["example.com", "second.example"], 0,
                                store, instant=instant)
        stamps = {s.instant.epoch_seconds for s in store.month(0)}
        assert stamps == {instant.epoch_seconds}

    def test_defaults_to_world_now(self, world, simple_domain):
        store = SnapshotStore()
        Scanner(world).scan_all(["example.com"], 0, store)
        (snap,) = store.month(0)
        assert snap.instant.epoch_seconds == world.now().epoch_seconds
