"""Unit tests for the simulated network fabric and IP model."""

import pytest

from repro.errors import ConnectionRefused, ConnectionTimeout
from repro.netsim.ip import IpAddress, IpPool
from repro.netsim.network import Network, TcpBehavior


class TestIpAddress:
    def test_v4_construction(self):
        assert IpAddress.v4(10, 1, 2, 3).text == "10.1.2.3"

    def test_v4_range_check(self):
        with pytest.raises(ValueError):
            IpAddress.v4(10, 0, 0, 256)

    def test_parse_v4(self):
        ip = IpAddress.parse("192.0.2.7")
        assert ip.family == 4

    def test_parse_v6(self):
        assert IpAddress.parse("2001:db8::1").family == 6

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            IpAddress.parse("10.0.0")
        with pytest.raises(ValueError):
            IpAddress.parse("10.0.0.999")

    def test_same_slash24(self):
        a = IpAddress.parse("10.1.2.3")
        b = IpAddress.parse("10.1.2.99")
        c = IpAddress.parse("10.1.3.3")
        assert a.same_slash24(b)
        assert not a.same_slash24(c)
        assert not a.same_slash24(IpAddress.v6(1))


class TestIpPool:
    def test_unique_allocations(self):
        pool = IpPool()
        ips = pool.allocate_block(1000)
        assert len({ip.text for ip in ips}) == 1000

    def test_pools_do_not_collide(self):
        a = IpPool(base_second_octet=10)
        b = IpPool(base_second_octet=20)
        assert a.allocate().text != b.allocate().text

    def test_never_allocates_dot_zero(self):
        pool = IpPool()
        for ip in pool.allocate_block(600):
            assert not ip.text.endswith(".0")


class TestNetwork:
    def test_connect_to_listener(self):
        network = Network()
        app = object()
        ip = IpAddress.v4(10, 0, 0, 1)
        network.register(ip, 443, app)
        assert network.connect(ip, 443) is app

    def test_unallocated_ip_times_out(self):
        network = Network()
        with pytest.raises(ConnectionTimeout):
            network.connect(IpAddress.v4(10, 0, 0, 9), 25)

    def test_known_host_closed_port_refuses(self):
        network = Network()
        ip = IpAddress.v4(10, 0, 0, 1)
        network.register(ip, 443, object())
        with pytest.raises(ConnectionRefused):
            network.connect(ip, 25)

    def test_behavior_refuse(self):
        network = Network()
        ip = IpAddress.v4(10, 0, 0, 1)
        network.register(ip, 443, object())
        network.set_behavior(ip, 443, TcpBehavior.REFUSE)
        with pytest.raises(ConnectionRefused):
            network.connect(ip, 443)

    def test_behavior_timeout(self):
        network = Network()
        ip = IpAddress.v4(10, 0, 0, 1)
        network.register(ip, 443, object())
        network.set_behavior(ip, 443, TcpBehavior.TIMEOUT)
        with pytest.raises(ConnectionTimeout):
            network.connect(ip, 443)

    def test_unregister(self):
        network = Network()
        ip = IpAddress.v4(10, 0, 0, 1)
        network.register(ip, 443, object())
        network.unregister(ip, 443)
        with pytest.raises(ConnectionRefused):
            network.connect(ip, 443)

    def test_register_host_without_listener(self):
        network = Network()
        ip = IpAddress.v4(10, 0, 0, 2)
        network.register_host(ip)
        with pytest.raises(ConnectionRefused):
            network.connect(ip, 80)

    def test_rebind_replaces(self):
        network = Network()
        ip = IpAddress.v4(10, 0, 0, 1)
        network.register(ip, 443, "old")
        network.register(ip, 443, "new")
        assert network.connect(ip, 443) == "new"

    def test_connect_count(self):
        network = Network()
        ip = IpAddress.v4(10, 0, 0, 1)
        network.register(ip, 443, object())
        network.connect(ip, 443)
        try:
            network.connect(ip, 80)
        except ConnectionRefused:
            pass
        assert network.connect_count == 2
