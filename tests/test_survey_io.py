"""Tests for survey CSV import/export."""

import pytest

from repro.survey.analysis import analyze
from repro.survey.io import export_csv, import_csv
from repro.survey.synthesize import synthesize_respondents


class TestRoundTrip:
    def test_export_import_preserves_answers(self):
        original = synthesize_respondents()
        loaded = import_csv(export_csv(original))
        assert len(loaded) == len(original)
        by_rid = {r.rid: r for r in loaded}
        for respondent in original:
            restored = by_rid[respondent.rid]
            for qid, value in respondent.answers.items():
                assert str(restored.get(qid)) == str(value), qid

    def test_analysis_identical_after_round_trip(self):
        original = analyze(synthesize_respondents())
        loaded = analyze(import_csv(export_csv(synthesize_respondents())))
        assert loaded.heard_of_mta_sts == original.heard_of_mta_sts
        assert loaded.deployed == original.deployed
        assert loaded.bottleneck_complexity == \
            original.bottleneck_complexity
        assert loaded.demographics == original.demographics

    def test_unanswered_cells_stay_unanswered(self):
        loaded = import_csv("rid,heard_mta_sts\n1,yes\n2,\n")
        assert loaded[0].get("heard_mta_sts") == "yes"
        assert loaded[1].get("heard_mta_sts") is None


class TestValidation:
    def test_empty_csv(self):
        with pytest.raises(ValueError):
            import_csv("")

    def test_missing_rid_column(self):
        with pytest.raises(ValueError):
            import_csv("name,heard\nx,yes\n")

    def test_ragged_row(self):
        with pytest.raises(ValueError):
            import_csv("rid,a,b\n1,x\n")

    def test_non_integer_rid(self):
        with pytest.raises(ValueError):
            import_csv("rid,a\nfoo,x\n")

    def test_blank_lines_skipped(self):
        loaded = import_csv("rid,a\n1,x\n\n2,y\n")
        assert [r.rid for r in loaded] == [1, 2]
