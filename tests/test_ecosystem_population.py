"""Tests for the population generator and the longitudinal timeline."""

import pytest

from repro.clock import Instant
from repro.core.policy import PolicyMode
from repro.ecosystem.misconfig import RETRIEVAL_BLOCKING, Fault
from repro.ecosystem.population import (
    LUCIDGROW_MONTH, PORKBUN_MONTH, PopulationConfig, ScheduledFault,
    TABLE1, generate_population,
)
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.ecosystem.tranco import TrancoRanking


@pytest.fixture(scope="module")
def population():
    return generate_population(PopulationConfig(scale=0.02))


@pytest.fixture(scope="module")
def timeline():
    return EcosystemTimeline(TimelineConfig(PopulationConfig(scale=0.02)))


class TestScheduledFault:
    def test_persistent_window(self):
        fault = ScheduledFault(Fault.POLICY_HTTP_404, start_month=3)
        assert not fault.active(2)
        assert fault.active(3)
        assert fault.active(10)

    def test_transient_window(self):
        fault = ScheduledFault(Fault.POLICY_TLS_SELF_SIGNED, 7, 8)
        assert not fault.active(6)
        assert fault.active(7)
        assert not fault.active(8)


class TestPopulation:
    def test_all_four_tlds_present(self, population):
        assert set(population) == {"com", "net", "org", "se"}

    def test_scaled_sizes_track_table1(self, population):
        for tld, pop in population.items():
            base = round(TABLE1[tld]["sts_domains"] * 0.02)
            # Event cohorts may add to .com and .org.
            assert len(pop.plans) >= base

    def test_com_dominates(self, population):
        assert len(population["com"].plans) > \
            4 * len(population["org"].plans)

    def test_deterministic_given_seed(self):
        a = generate_population(PopulationConfig(scale=0.01, seed=1))
        b = generate_population(PopulationConfig(scale=0.01, seed=1))
        assert ([p.name for p in a["com"].plans]
                == [p.name for p in b["com"].plans])
        assert ([len(p.faults) for p in a["com"].plans]
                == [len(p.faults) for p in b["com"].plans])

    def test_seed_changes_population(self):
        a = generate_population(PopulationConfig(scale=0.01, seed=1))
        b = generate_population(PopulationConfig(scale=0.01, seed=2))
        assert ([len(p.faults) for p in a["com"].plans]
                != [len(p.faults) for p in b["com"].plans])

    def test_at_most_one_blocking_fault_per_domain(self, population):
        for pop in population.values():
            for plan in pop.plans:
                blocking = [f for f in plan.faults
                            if f.fault in RETRIEVAL_BLOCKING]
                assert len(blocking) <= 1, plan.name

    def test_tutanota_customers_bundle_email(self, population):
        for pop in population.values():
            for plan in pop.plans:
                if plan.policy_provider == "Tutanota":
                    assert plan.email_provider == "Tutanota"

    def test_porkbun_cohort_exists(self, population):
        porkbun = [p for p in population["com"].plans
                   if p.name.startswith("pb")]
        assert porkbun
        for plan in porkbun:
            faults = {f.fault for f in plan.faults}
            assert Fault.POLICY_TLS_CN_MISMATCH in faults
            assert all(f.start_month == PORKBUN_MONTH for f in plan.faults)

    def test_lucidgrow_cohort_transient_enforce(self, population):
        lucid = [p for p in population["com"].plans
                 if p.email_provider == "Lucidgrow"]
        assert lucid
        for plan in lucid:
            assert plan.mode is PolicyMode.ENFORCE
            fault = plan.faults[0]
            assert fault.fault is Fault.MISMATCH_3LD
            assert (fault.start_month, fault.end_month) == \
                (LUCIDGROW_MONTH, LUCIDGROW_MONTH + 1)

    def test_laura_norman_unique_same_provider_typo(self, population):
        laura = [p for p in population["com"].plans
                 if p.name == "laura-norman.com"]
        assert len(laura) == 1
        assert laura[0].policy_provider == "Tutanota"
        assert laura[0].faults[0].fault is Fault.MISMATCH_TYPO

    def test_outdated_policy_never_starts_at_month_zero(self, population):
        for pop in population.values():
            for plan in pop.plans:
                for fault in plan.faults:
                    if fault.fault is Fault.OUTDATED_POLICY:
                        assert fault.start_month >= 1

    def test_tlsrpt_assignment_plausible(self, population):
        plans = [p for pop in population.values() for p in pop.plans]
        with_rpt = [p for p in plans if p.tlsrpt_week is not None]
        assert 0.5 < len(with_rpt) / len(plans) < 0.9


class TestTimeline:
    def test_scan_instants_cover_paper_window(self, timeline):
        dates = [i.date_string() for i in timeline.scan_instants]
        assert dates[0] == "2023-11-07"
        assert dates[-1] == "2024-09-29"
        assert len(dates) == 12

    def test_adoption_series_rises(self, timeline):
        series = timeline.adoption_series("com")
        first_count = series[0][1]
        last_count = series[-1][1]
        assert 2.5 <= last_count / max(1, first_count) <= 6.0

    def test_org_spike_in_january(self, timeline):
        series = timeline.adoption_series("org")
        by_date = {i.date_string(): count for i, count, _ in series}
        before = max(v for d, v in by_date.items() if d < "2023-12-25")
        week_of_spike = [v for d, v in by_date.items()
                         if "2023-12-29" <= d <= "2024-01-12"]
        assert max(week_of_spike) - before >= \
            round(461 * 0.02) - 2

    def test_table1_rows(self, timeline):
        rows = {r["tld"]: r for r in timeline.table1_rows()}
        assert set(rows) == {"com", "net", "org", "se"}
        # .org has the highest adoption share, .com the lowest-ish (paper).
        assert rows["org"]["sts_percent"] > rows["com"]["sts_percent"]
        for row in rows.values():
            assert 0 < row["sts_percent"] < 1.0

    def test_materialize_respects_adoption(self, timeline):
        early = timeline.materialize(0)
        late = timeline.materialize(11)
        assert len(late.deployed) > len(early.deployed)

    def test_tlsrpt_series_shape(self, timeline):
        series = timeline.tlsrpt_series("com")
        _, first_mx_pct, first_sts_pct = series[0]
        _, last_mx_pct, last_sts_pct = series[-1]
        assert last_mx_pct > first_mx_pct
        assert last_sts_pct > first_sts_pct
        assert 55 <= last_sts_pct <= 85     # the ~72% anchor


class TestTranco:
    def test_top_bin_near_paper_value(self):
        ranking = TrancoRanking(list_size=200_000, bin_size=10_000)
        assert 0.9 <= ranking.top_bin_percent() <= 1.5

    def test_bottom_bin_near_paper_value(self):
        ranking = TrancoRanking(list_size=200_000, bin_size=10_000)
        assert 0.2 <= ranking.bottom_bin_percent() <= 0.65

    def test_monotone_decay_of_probability(self):
        ranking = TrancoRanking(list_size=1000, bin_size=100)
        probs = [ranking.adoption_probability(r)
                 for r in (1, 250, 500, 750, 1000)]
        assert probs == sorted(probs, reverse=True)

    def test_binned_output_shape(self):
        ranking = TrancoRanking(list_size=50_000, bin_size=10_000)
        bins = ranking.binned_adoption()
        assert len(bins) == 5
        assert bins[0][0] == 0

    def test_deterministic(self):
        a = TrancoRanking(list_size=10_000, bin_size=1_000, seed=5)
        b = TrancoRanking(list_size=10_000, bin_size=1_000, seed=5)
        assert a.binned_adoption() == b.binned_adoption()
