"""Tests for the analysis helpers: rendering and series assembly."""

import pytest

from repro.analysis.report import format_percent, render_series, render_table
from repro.analysis.series import run_campaign
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig


class TestRenderTable:
    def test_alignment_and_header(self):
        rows = [{"name": "alpha", "value": 1.5},
                {"name": "beta-longer", "value": 22}]
        text = render_table(rows, ["name", "value"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert lines[3].startswith("alpha")
        assert "1.50" in lines[3]        # floats rendered with 2 decimals
        assert "22" in lines[4]

    def test_empty_rows(self):
        assert "(empty)" in render_table([], ["a"], title="X")

    def test_missing_keys_render_blank(self):
        text = render_table([{"a": 1}], ["a", "b"])
        assert text    # does not raise


class TestRenderSeries:
    def test_bars_scale(self):
        text = render_series([("w1", 2.0), ("w2", 4.0)], bar_scale=2)
        lines = text.splitlines()
        assert lines[0].count("#") == 4
        assert lines[1].count("#") == 8

    def test_title_prepended(self):
        text = render_series([("x", 1.0)], title="Series")
        assert text.splitlines()[0] == "Series"

    def test_format_percent(self):
        assert format_percent(12.345) == "12.3%"
        assert format_percent(12.345, 2) == "12.35%"


class TestCampaignAnalysis:
    @pytest.fixture(scope="class")
    def small_campaign(self):
        timeline = EcosystemTimeline(
            TimelineConfig(PopulationConfig(scale=0.005, seed=3)))
        return run_campaign(timeline, months=[0, 11])

    def test_figure4_rows_have_dates(self, small_campaign):
        rows = small_campaign.figure4_series()
        assert [r["month_index"] for r in rows] == [0, 11]
        assert rows[0]["date"] == "2023-11-07"
        assert rows[1]["date"] == "2024-09-29"

    def test_figure5_percentages_bounded(self, small_campaign):
        for entity in ("self-managed", "third-party", "unclassified"):
            for row in small_campaign.figure5_series(entity):
                for stage in ("dns", "tcp", "tls", "http",
                              "policy-syntax", "any"):
                    assert 0.0 <= row[stage] <= 100.0

    def test_figure7_counts_consistent(self, small_campaign):
        for row in small_campaign.figure7_series():
            assert row["enforce_invalid"] <= row["all_invalid"]

    def test_campaign_summaries_match_store(self, small_campaign):
        summary = small_campaign.latest_summary()
        assert summary.total_sts == sum(
            1 for s in small_campaign.store.latest() if s.sts_like)

    def test_verdicts_cover_every_domain(self, small_campaign):
        month = small_campaign.store.latest_month()
        verdicts = small_campaign.verdicts_by_month[month]
        domains = {s.domain for s in small_campaign.store.month(month)}
        assert set(verdicts) == domains
