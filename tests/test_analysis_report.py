"""Tests for the analysis helpers: rendering and series assembly."""

import pytest

from repro.analysis.report import (
    format_percent, render_drift_table, render_series, render_table,
    render_trace_summary,
)
from repro.analysis.series import run_campaign
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig


class TestRenderTable:
    def test_alignment_and_header(self):
        rows = [{"name": "alpha", "value": 1.5},
                {"name": "beta-longer", "value": 22}]
        text = render_table(rows, ["name", "value"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert lines[3].startswith("alpha")
        assert "1.50" in lines[3]        # floats rendered with 2 decimals
        assert "22" in lines[4]

    def test_empty_rows(self):
        assert "(empty)" in render_table([], ["a"], title="X")

    def test_missing_keys_render_blank(self):
        text = render_table([{"a": 1}], ["a", "b"])
        assert text    # does not raise


class TestRenderSeries:
    def test_bars_scale(self):
        text = render_series([("w1", 2.0), ("w2", 4.0)], bar_scale=2)
        lines = text.splitlines()
        assert lines[0].count("#") == 4
        assert lines[1].count("#") == 8

    def test_title_prepended(self):
        text = render_series([("x", 1.0)], title="Series")
        assert text.splitlines()[0] == "Series"

    def test_format_percent(self):
        assert format_percent(12.345) == "12.3%"
        assert format_percent(12.345, 2) == "12.35%"


class TestRenderTraceSummary:
    def test_empty_report_has_explicit_notice(self):
        # Regression: summarising a trace with zero recorded spans used
        # to produce a bare "(empty)" table with no explanation.
        from repro.trace import TraceReport
        text = render_trace_summary(TraceReport())
        assert "no spans recorded" in text
        assert "zero domains scanned" in text

    def test_zero_domain_scan_end_to_end(self):
        from repro.measurement.executor import ScanExecutor
        timeline = EcosystemTimeline(
            TimelineConfig(PopulationConfig(scale=0.002, seed=3)))
        materialized = timeline.materialize(0)
        executor = ScanExecutor(trace=True)
        _, stats = executor.scan(materialized.world, [], 0,
                                 instant=materialized.instant)
        assert stats.domains_scanned == 0
        assert "no spans recorded" in render_trace_summary(
            executor.last_trace)


class TestRenderDriftTable:
    def test_empty_rows(self):
        assert "no monthly records" in render_drift_table([])

    def test_first_month_has_no_deltas(self):
        rows = [{"month": 0, "domains": 100, "transient_rate": 0.01,
                 "dns_hit_rate": 0.4, "smtp_hit_rate": 0.3,
                 "retries_per_domain": 0.02, "backoff_millis": 120},
                {"month": 1, "domains": 110, "transient_rate": 0.02,
                 "transient_jump": 0.01, "max_bucket_shift": 0.03,
                 "dns_hit_rate": 0.4, "smtp_hit_rate": 0.3,
                 "retries_per_domain": 0.02, "backoff_millis": 130}]
        text = render_drift_table(rows)
        assert "month-over-month scan health" in text
        lines = text.splitlines()
        assert lines[-2].startswith("m00")
        assert "-" in lines[-2]            # missing deltas render as "-"
        assert "+1.00%" in lines[-1]


class TestCampaignAnalysis:
    @pytest.fixture(scope="class")
    def small_campaign(self):
        timeline = EcosystemTimeline(
            TimelineConfig(PopulationConfig(scale=0.005, seed=3)))
        return run_campaign(timeline, months=[0, 11])

    def test_figure4_rows_have_dates(self, small_campaign):
        rows = small_campaign.figure4_series()
        assert [r["month_index"] for r in rows] == [0, 11]
        assert rows[0]["date"] == "2023-11-07"
        assert rows[1]["date"] == "2024-09-29"

    def test_figure5_percentages_bounded(self, small_campaign):
        for entity in ("self-managed", "third-party", "unclassified"):
            for row in small_campaign.figure5_series(entity):
                for stage in ("dns", "tcp", "tls", "http",
                              "policy-syntax", "any"):
                    assert 0.0 <= row[stage] <= 100.0

    def test_figure7_counts_consistent(self, small_campaign):
        for row in small_campaign.figure7_series():
            assert row["enforce_invalid"] <= row["all_invalid"]

    def test_campaign_summaries_match_store(self, small_campaign):
        summary = small_campaign.latest_summary()
        assert summary.total_sts == sum(
            1 for s in small_campaign.store.latest() if s.sts_like)

    def test_verdicts_cover_every_domain(self, small_campaign):
        month = small_campaign.store.latest_month()
        verdicts = small_campaign.verdicts_by_month[month]
        domains = {s.domain for s in small_campaign.store.month(month)}
        assert set(verdicts) == domains
