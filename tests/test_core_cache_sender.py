"""Tests for the TOFU policy cache and the MTA-STS-compliant sender."""

import pytest

from repro.clock import DAY, Duration, HOUR
from repro.core.cache import PolicyCache
from repro.core.dane import DaneValidator
from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode
from repro.core.sender import MtaStsSender, SenderPolicyConfig
from repro.dns.name import DnsName
from repro.dns.records import RRType, TlsaRecord
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.smtp.delivery import DeliveryStatus, Message


def make_policy(mode=PolicyMode.ENFORCE, max_age=86400,
                patterns=("mail.example.com",)):
    return Policy(version="STSv1", mode=mode, max_age=max_age,
                  mx_patterns=patterns)


class TestPolicyCache:
    def test_store_and_get(self, world):
        cache = PolicyCache(world.clock)
        cache.store("example.com", make_policy(), "id1")
        entry = cache.get("example.com")
        assert entry is not None
        assert entry.record_id == "id1"

    def test_expiry_by_max_age(self, world):
        cache = PolicyCache(world.clock)
        cache.store("example.com", make_policy(max_age=3600), "id1")
        world.clock.advance(Duration(3601))
        assert cache.get("example.com") is None
        assert len(cache) == 0

    def test_fresh_until_max_age(self, world):
        # RFC 8461 caps lifetime at max_age: last fresh second is
        # fetched_at + max_age - 1; at exactly max_age the entry expires.
        cache = PolicyCache(world.clock)
        cache.store("example.com", make_policy(max_age=3600), "id1")
        world.clock.advance(Duration(3599))
        assert cache.get("example.com") is not None
        world.clock.advance(Duration(1))
        assert cache.get("example.com") is None

    def test_casefold_keying(self, world):
        # ẞ and İ casefold differently from .lower(); the cache must
        # key exactly as canonical_host() does, or a ẞ/İ sender domain
        # would cache under a key the matcher and scanner never read.
        cache = PolicyCache(world.clock)
        cache.store("STRAẞE.example.", make_policy(), "id1")
        assert cache.get("strasse.example") is not None
        cache.store("İSTANBUL.example", make_policy(), "id2")
        assert cache.get("i̇stanbul.example") is not None
        assert cache.needs_refresh("strasse.example", "id1") is False
        cache.evict("STRASSE.example")
        assert cache.peek("strasse.example") is None

    def test_refresh_probes_do_not_count_hits(self, world):
        # RefreshDaemon freshness probes must not inflate hit_count:
        # the delivery engine reports it as the cache hit-rate metric.
        cache = PolicyCache(world.clock)
        cache.store("example.com", make_policy(), "id1")
        assert cache.hit_count == 0
        for _ in range(5):
            cache.needs_refresh("example.com", "id1")
        assert cache.hit_count == 0
        cache.get("example.com")
        assert cache.hit_count == 1

    def test_refresh_on_id_change(self, world):
        cache = PolicyCache(world.clock)
        cache.store("example.com", make_policy(), "id1")
        assert not cache.needs_refresh("example.com", "id1")
        assert cache.needs_refresh("example.com", "id2")

    def test_missing_record_keeps_cached_policy(self, world):
        # The §2.6 hazard: removing the record does NOT evict caches.
        cache = PolicyCache(world.clock)
        cache.store("example.com", make_policy(), "id1")
        assert not cache.needs_refresh("example.com", None)

    def test_unknown_domain_needs_refresh(self, world):
        cache = PolicyCache(world.clock)
        assert cache.needs_refresh("example.com", "id1")

    def test_case_insensitive_domains(self, world):
        cache = PolicyCache(world.clock)
        cache.store("Example.COM", make_policy(), "id1")
        assert cache.get("example.com") is not None

    def test_evict_and_flush(self, world):
        cache = PolicyCache(world.clock)
        cache.store("a.com", make_policy(), "1")
        cache.store("b.com", make_policy(), "1")
        cache.evict("a.com")
        assert cache.get("a.com") is None
        cache.flush()
        assert len(cache) == 0


@pytest.fixture
def sender(world, fetcher):
    return MtaStsSender("sender.example.net", world.network, world.resolver,
                        world.trust_store, world.clock, fetcher)


class TestMtaStsSender:
    def test_delivers_to_healthy_domain(self, world, sender, simple_domain):
        attempt = sender.send(Message("a@s.net", "b@example.com"))
        assert attempt.delivered
        assert sender.last_mechanism == "mta-sts"
        assert sender.cache.get("example.com") is not None

    def test_enforce_refuses_mx_mismatch(self, world, sender):
        deployed = deploy_domain(world, DomainSpec(
            domain="strict.com", policy=make_policy(
                patterns=("mail.strict.com",))))
        apply_fault(world, deployed, Fault.MISMATCH_DOMAIN)
        attempt = sender.send(Message("a@s.net", "b@strict.com"))
        assert attempt.status is DeliveryStatus.REFUSED_BY_POLICY

    def test_testing_mode_delivers_despite_mismatch(self, world, sender):
        deployed = deploy_domain(world, DomainSpec(
            domain="testing.com", policy=make_policy(
                mode=PolicyMode.TESTING, patterns=("mail.testing.com",))))
        apply_fault(world, deployed, Fault.MISMATCH_DOMAIN)
        attempt = sender.send(Message("a@s.net", "b@testing.com"))
        assert attempt.delivered
        assert any(e.action == "testing-mismatch" for e in sender.events)

    def test_enforce_refuses_bad_certificate(self, world, sender):
        deployed = deploy_domain(world, DomainSpec(
            domain="badcert.com", policy=make_policy(
                patterns=("mail.badcert.com",))))
        apply_fault(world, deployed, Fault.MX_CERT_SELF_SIGNED,
                    mx_index=None)
        attempt = sender.send(Message("a@s.net", "b@badcert.com"))
        assert attempt.status is DeliveryStatus.REFUSED_BY_POLICY

    def test_none_mode_is_opportunistic(self, world, sender):
        deployed = deploy_domain(world, DomainSpec(
            domain="nonemode.com", policy=make_policy(
                mode=PolicyMode.NONE, patterns=())))
        apply_fault(world, deployed, Fault.MX_CERT_SELF_SIGNED,
                    mx_index=None)
        attempt = sender.send(Message("a@s.net", "b@nonemode.com"))
        assert attempt.delivered

    def test_no_policy_is_opportunistic(self, world, sender):
        deploy_domain(world, DomainSpec(domain="plain.com",
                                        deploy_sts=False))
        attempt = sender.send(Message("a@s.net", "b@plain.com"))
        assert attempt.delivered
        assert sender.last_mechanism == "opportunistic"

    def test_cached_policy_survives_policy_server_outage(self, world,
                                                         sender,
                                                         simple_domain):
        # First send caches the policy...
        sender.send(Message("a@s.net", "b@example.com"))
        # ...then the policy server breaks; a fresh cache still applies.
        apply_fault(world, simple_domain, Fault.POLICY_HTTP_404)
        world.resolver.flush_cache()
        attempt = sender.send(Message("a@s.net", "b@example.com"))
        assert attempt.delivered
        assert sender.last_mechanism == "mta-sts"

    def test_cached_enforce_policy_blocks_after_abrupt_breakage(
            self, world, fetcher):
        deployed = deploy_domain(world, DomainSpec(
            domain="abrupt.com",
            policy=make_policy(patterns=("mail.abrupt.com",),
                               max_age=7 * 86400)))
        sender = MtaStsSender("s.net", world.network, world.resolver,
                              world.trust_store, world.clock, fetcher)
        sender.send(Message("a@s.net", "b@abrupt.com"))
        # The domain abruptly migrates MX without updating anything and
        # the new MX has a bad certificate.
        apply_fault(world, deployed, Fault.MX_CERT_SELF_SIGNED,
                    mx_index=None)
        world.resolver.flush_cache()
        attempt = sender.send(Message("a@s.net", "b@abrupt.com"))
        assert attempt.status is DeliveryStatus.REFUSED_BY_POLICY

    def test_record_id_bump_triggers_refetch(self, world, fetcher,
                                             simple_domain):
        sender = MtaStsSender("s.net", world.network, world.resolver,
                              world.trust_store, world.clock, fetcher)
        sender.send(Message("a@s.net", "b@example.com"))
        assert sender.cache.get("example.com").policy.mode is \
            PolicyMode.TESTING
        # Publish an updated policy + a new record id.
        new_policy = make_policy(mode=PolicyMode.ENFORCE,
                                 patterns=("mail.example.com",))
        from repro.core.policy import render_policy
        simple_domain.set_policy_text(render_policy(new_policy))
        simple_domain.set_record("v=STSv1; id=20990101;")
        world.resolver.flush_cache()
        sender.send(Message("a@s.net", "b@example.com"))
        assert sender.cache.get("example.com").policy.mode is \
            PolicyMode.ENFORCE

    def test_validation_disabled_sender(self, world, fetcher):
        deployed = deploy_domain(world, DomainSpec(
            domain="ignored.com", policy=make_policy(
                patterns=("mail.ignored.com",))))
        apply_fault(world, deployed, Fault.MX_CERT_SELF_SIGNED,
                    mx_index=None)
        sender = MtaStsSender(
            "s.net", world.network, world.resolver, world.trust_store,
            world.clock, fetcher,
            config=SenderPolicyConfig(validate_mta_sts=False))
        attempt = sender.send(Message("a@s.net", "b@ignored.com"))
        assert attempt.delivered     # opportunistic: bad cert accepted


class TestDanePrecedence:
    def _dane_domain(self, world, *, sts_cert_invalid: bool):
        deployed = deploy_domain(world, DomainSpec(
            domain="dual.com",
            policy=make_policy(patterns=("mail.dual.com",))))
        mx = deployed.mx_hosts[0]
        if sts_cert_invalid:
            apply_fault(world, deployed, Fault.MX_CERT_SELF_SIGNED,
                        mx_index=None)
        cert = mx.tls.select_certificate(mx.hostname)
        deployed.zone.add(TlsaRecord(
            DnsName.parse(f"_25._tcp.{mx.hostname}"), 3600, 3, 1, 1,
            cert.spki_fingerprint()))
        world.dnssec.sign_zone("dual.com")
        return deployed

    def make_sender(self, world, fetcher, prefer_sts=False):
        return MtaStsSender(
            "s.net", world.network, world.resolver, world.trust_store,
            world.clock, fetcher,
            config=SenderPolicyConfig(validate_mta_sts=True,
                                      validate_dane=True,
                                      prefer_mta_sts_over_dane=prefer_sts),
            dane=DaneValidator(world.resolver, world.dnssec))

    def test_dane_takes_precedence(self, world, fetcher):
        # The MX cert is self-signed (MTA-STS would refuse) but matches
        # the TLSA record: DANE-first senders deliver.
        self._dane_domain(world, sts_cert_invalid=True)
        sender = self.make_sender(world, fetcher)
        attempt = sender.send(Message("a@s.net", "b@dual.com"))
        assert attempt.delivered
        assert sender.last_mechanism == "dane"

    def test_milter_bug_prefers_mta_sts(self, world, fetcher):
        self._dane_domain(world, sts_cert_invalid=True)
        sender = self.make_sender(world, fetcher, prefer_sts=True)
        attempt = sender.send(Message("a@s.net", "b@dual.com"))
        # MTA-STS path sees the self-signed cert and refuses: the bug
        # turns a deliverable message into a refusal.
        assert attempt.status is DeliveryStatus.REFUSED_BY_POLICY
        assert sender.last_mechanism == "mta-sts"
