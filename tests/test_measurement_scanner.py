"""Tests for the scanner, snapshot store, and entity classification."""

import pytest

from repro.core.policy import Policy, PolicyMode
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.ecosystem.providers import default_email_providers, table2_providers
from repro.errors import ManagingEntity
from repro.measurement.classify import EntityClassifier
from repro.measurement.scanner import Scanner
from repro.measurement.snapshots import SnapshotStore


class TestScanner:
    def test_healthy_snapshot(self, world, simple_domain):
        snap = Scanner(world).scan_domain("example.com", 0)
        assert snap.sts_like
        assert snap.record_valid
        assert snap.policy_fetch_stage is None
        assert snap.policy_mode == "testing"
        assert snap.mx_patterns == ["mail.example.com"]
        assert snap.mx_hostnames == ["mail.example.com"]
        assert snap.mx_observations[0].cert_valid
        assert snap.consistent
        assert not snap.tlsrpt_present

    def test_non_sts_snapshot(self, world):
        deploy_domain(world, DomainSpec(domain="plain.com",
                                        deploy_sts=False))
        snap = Scanner(world).scan_domain("plain.com", 0)
        assert not snap.sts_like
        assert snap.mx_hostnames      # MX still scanned

    def test_fault_surfaces_in_snapshot(self, world, simple_domain):
        apply_fault(world, simple_domain, Fault.POLICY_TLS_EXPIRED)
        snap = Scanner(world).scan_domain("example.com", 0)
        assert snap.policy_fetch_stage == "tls"
        assert snap.policy_tls_failure == "expired"

    def test_ns_and_cname_recorded(self, world):
        provider = table2_providers()[1]
        deploy_domain(world, DomainSpec(domain="deleg.com",
                                        policy_provider=provider))
        snap = Scanner(world).scan_domain("deleg.com", 0)
        assert snap.policy_host_cname == "deleg-com.mta-sts.dmarcinput.com"
        assert snap.ns_hostnames == ["ns1.deleg.com", "ns2.deleg.com"]

    def test_scan_all_fills_store(self, world, simple_domain):
        deploy_domain(world, DomainSpec(domain="second.com"))
        store = Scanner(world).scan_all(["example.com", "second.com"], 3)
        assert len(store) == 2
        assert store.months() == [3]
        assert store.get(3, "example.com") is not None


class TestSnapshotStore:
    def test_history_ordered(self, world, simple_domain):
        scanner = Scanner(world)
        store = SnapshotStore()
        for month in (0, 1, 2):
            store.add(scanner.scan_domain("example.com", month))
        history = store.domain_history("example.com")
        assert [s.month_index for s in history] == [0, 1, 2]
        assert store.latest_month() == 2

    def test_empty_store_raises(self):
        with pytest.raises(ValueError):
            SnapshotStore().latest_month()


class TestEntityClassifier:
    def _scan_fleet(self, world, specs):
        for spec in specs:
            deploy_domain(world, spec)
        scanner = Scanner(world)
        snaps = [scanner.scan_domain(spec.domain, 0) for spec in specs]
        return snaps, EntityClassifier(snaps, third_party_min=10)

    def test_self_managed_all_around(self, world):
        specs = [DomainSpec(domain=f"self{i}.com") for i in range(3)]
        snaps, classifier = self._scan_fleet(world, specs)
        verdict = classifier.classify(snaps[0])
        assert verdict.mx is ManagingEntity.SELF_MANAGED
        assert verdict.policy is ManagingEntity.SELF_MANAGED
        assert verdict.dns is ManagingEntity.SELF_MANAGED

    def test_provider_customers_classified_third_party(self, world):
        google = default_email_providers()[0]
        provider = table2_providers()[1]
        specs = [DomainSpec(domain=f"cust{i}.com", email_provider=google,
                            policy_provider=provider)
                 for i in range(12)]
        snaps, classifier = self._scan_fleet(world, specs)
        verdict = classifier.classify(snaps[0])
        assert verdict.mx is ManagingEntity.THIRD_PARTY
        assert verdict.mx_provider_sld == "google.com"
        assert verdict.policy is ManagingEntity.THIRD_PARTY
        assert verdict.policy_provider_sld == "dmarcinput.com"

    def test_cname_alone_implies_third_party(self, world):
        # Even a tiny provider is third-party when reached via CNAME.
        provider = table2_providers()[7]    # OnDMARC, single customer
        specs = [DomainSpec(domain="lonely.com", policy_provider=provider)]
        snaps, classifier = self._scan_fleet(world, specs)
        assert classifier.classify(snaps[0]).policy is \
            ManagingEntity.THIRD_PARTY

    def test_same_provider_detection_tutanota_pattern(self, world):
        tutanota_policy = table2_providers()[0]
        tutanota_mail = next(p for p in default_email_providers()
                             if p.name == "Tutanota")
        specs = [DomainSpec(domain=f"tuta{i}.com",
                            email_provider=tutanota_mail,
                            policy_provider=tutanota_policy)
                 for i in range(12)]
        snaps, classifier = self._scan_fleet(world, specs)
        verdict = classifier.classify(snaps[0])
        assert verdict.both_outsourced
        assert verdict.same_provider   # 'tutanota' label on both sides

    def test_different_providers_detected(self, world):
        google = default_email_providers()[0]
        provider = table2_providers()[1]
        specs = [DomainSpec(domain=f"mix{i}.com", email_provider=google,
                            policy_provider=provider)
                 for i in range(12)]
        snaps, classifier = self._scan_fleet(world, specs)
        verdict = classifier.classify(snaps[0])
        assert verdict.both_outsourced
        assert not verdict.same_provider

    def test_popular_but_single_admin_group_is_self(self, world):
        # The mxascen pattern: many domains, one MX, one policy IP,
        # A-record (not CNAME) policy hosting.
        from repro.ecosystem.providers import (
            OptOutBehavior, PolicyHostProvider,
        )
        mxascen = next(p for p in default_email_providers()
                       if p.name == "MxAscen")
        farm = PolicyHostProvider(
            name="policyfarm", sld="policyfarm.mxascen.com",
            cname_pattern="{dash}.policyfarm.mxascen.com",
            opt_out=OptOutBehavior.NXDOMAIN, delegate_via_cname=False)
        specs = [DomainSpec(domain=f"asc{i}.com", email_provider=mxascen,
                            policy_provider=farm)
                 for i in range(12)]
        snaps, classifier = self._scan_fleet(world, specs)
        verdict = classifier.classify(snaps[0])
        assert verdict.mx is ManagingEntity.SELF_MANAGED
        assert verdict.policy is ManagingEntity.SELF_MANAGED

    def test_mid_size_host_unclassified(self, world):
        from repro.ecosystem.providers import (
            OptOutBehavior, PolicyHostProvider,
        )
        boutique = PolicyHostProvider(
            name="boutique", sld="boutique.host",
            cname_pattern="{dash}.boutique.host",
            opt_out=OptOutBehavior.NXDOMAIN, delegate_via_cname=False)
        # 7 domains with differing MX sets on one policy IP: above the
        # self threshold (5), below the third-party one (10).
        specs = [DomainSpec(domain=f"bq{i}.com", policy_provider=boutique)
                 for i in range(7)]
        snaps, classifier = self._scan_fleet(world, specs)
        assert classifier.classify(snaps[0]).policy is \
            ManagingEntity.UNCLASSIFIED
