"""Closed-loop repair tests: inject → scan → plan → apply → rescan.

Every injectable fault class must map to a repair plan whose
application makes the domain scan clean again — the proof that the
error taxonomy is actionable, not just descriptive.
"""

import pytest

from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.measurement.repair import apply_repairs, plan_repairs
from repro.measurement.scanner import Scanner
from repro.measurement.taxonomy import categorize

REPAIRABLE_FAULTS = [
    Fault.RECORD_MISSING_ID,
    Fault.RECORD_INVALID_ID,
    Fault.RECORD_BAD_VERSION,
    Fault.RECORD_DUPLICATE,
    Fault.POLICY_DNS_UNRESOLVABLE,
    Fault.POLICY_TCP_CLOSED,
    Fault.POLICY_TCP_TIMEOUT,
    Fault.POLICY_TLS_CN_MISMATCH,
    Fault.POLICY_TLS_SELF_SIGNED,
    Fault.POLICY_TLS_EXPIRED,
    Fault.POLICY_TLS_NO_CERT,
    Fault.POLICY_HTTP_404,
    Fault.POLICY_HTTP_500,
    Fault.POLICY_SYNTAX_BAD_MX,
    Fault.POLICY_SYNTAX_EMPTY,
    Fault.POLICY_SYNTAX_MISSING_MODE,
    Fault.MX_CERT_CN_MISMATCH,
    Fault.MX_CERT_SELF_SIGNED,
    Fault.MX_CERT_EXPIRED,
    Fault.MISMATCH_TLD,
    Fault.MISMATCH_DOMAIN,
    Fault.MISMATCH_3LD,
    Fault.MISMATCH_TYPO,
    Fault.OUTDATED_POLICY,
]


class TestClosedLoop:
    @pytest.mark.parametrize("fault", REPAIRABLE_FAULTS,
                             ids=lambda f: f.value)
    def test_plan_and_apply_heals_every_fault(self, world, fault):
        domain = f"heal-{fault.value.replace('_', '-')}.com"
        deployed = deploy_domain(world, DomainSpec(domain=domain))
        apply_fault(world, deployed, fault, mx_index=None)
        world.resolver.flush_cache()

        scanner = Scanner(world)
        broken = scanner.scan_domain(domain, 0)
        assert categorize(broken), f"{fault.value} produced no error"

        actions = plan_repairs(broken)
        assert actions, f"{fault.value}: no repair plan"
        applied = apply_repairs(world, deployed, actions, broken)
        assert applied, f"{fault.value}: nothing applicable"

        world.resolver.flush_cache()
        healed = scanner.scan_domain(domain, 1)
        assert categorize(healed) == [], (
            f"{fault.value}: still broken after {applied}: "
            f"{categorize(healed)}")


class TestPlanContents:
    def test_healthy_domain_needs_nothing(self, world, simple_domain):
        snap = Scanner(world).scan_domain("example.com", 0)
        assert plan_repairs(snap) == []

    def test_non_sts_domain_needs_nothing(self, world):
        deploy_domain(world, DomainSpec(domain="plain.com",
                                        deploy_sts=False))
        snap = Scanner(world).scan_domain("plain.com", 0)
        assert plan_repairs(snap) == []

    def test_priorities_order_policy_before_mx(self, world, simple_domain):
        apply_fault(world, simple_domain, Fault.POLICY_HTTP_404)
        apply_fault(world, simple_domain, Fault.MX_CERT_EXPIRED)
        snap = Scanner(world).scan_domain("example.com", 0)
        actions = plan_repairs(snap)
        assert actions[0].component == "policy-host"
        assert any(a.action == "fix-mx-certificate" for a in actions)

    def test_typo_suggestion_names_actual_mx(self, world, simple_domain):
        apply_fault(world, simple_domain, Fault.MISMATCH_TYPO)
        world.resolver.flush_cache()
        snap = Scanner(world).scan_domain("example.com", 0)
        action = next(a for a in plan_repairs(snap)
                      if a.action == "sync-mx-patterns")
        assert "mail.example.com" in action.description

    def test_render_is_operator_readable(self, world, simple_domain):
        apply_fault(world, simple_domain, Fault.POLICY_TLS_EXPIRED)
        snap = Scanner(world).scan_domain("example.com", 0)
        text = plan_repairs(snap)[0].render()
        assert "mta-sts.example.com" in text
        assert text.startswith("1.")
