"""Campaign health monitoring: threshold triggering, drift rows, feed
(de)serialisation, and the ``campaign`` / ``monitor`` CLI surface.

The two load-bearing scenarios come straight from the acceptance
criteria: a clean 12-month campaign must evaluate all-OK with the
default thresholds, and a fault-plan-induced transient spike in a
later month must surface as an ALERT naming that month."""

from __future__ import annotations

import json

import pytest

from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import (
    EcosystemTimeline, IncrementalMaterializer, TimelineConfig,
)
from repro.measurement.executor import ScanExecutor, ScanStats
from repro.measurement.snapshots import SnapshotStore
from repro.netsim.network import FaultPlan
from repro.obs.monitor import (
    ALERT, OK, WARN, CampaignMonitor, MonthRecord, Thresholds,
    build_month_registry,
)

SCALE = 0.003
SEED = 1789


def make_stats(**overrides) -> ScanStats:
    """A plausible clean scan month, overridable per test."""
    values = dict(domains_scanned=1000, dns_queries=4000,
                  dns_cache_hits=2000, dns_negative_cache_hits=100,
                  policy_fetches=800, smtp_probes=1500,
                  smtp_probe_cache_hits=700, pkix_validations=900,
                  pkix_cache_hits=400, connect_retries=30,
                  faults_injected=0, transient_domains=0,
                  retry_backoff_seconds=1.5)
    values.update(overrides)
    return ScanStats(**values)


def observe(monitor: CampaignMonitor, month: int, **overrides):
    return monitor.observe_month(month, f"2024-{month + 1:02d}-01",
                                 make_stats(**overrides))


class TestMonthRecord:
    def test_derived_signals(self):
        record = MonthRecord(0, "2024-01-01", build_month_registry(
            make_stats(transient_domains=20, connect_retries=500)))
        assert record.domains() == 1000
        assert record.transient_rate() == pytest.approx(0.02)
        assert record.retries_per_domain() == pytest.approx(0.5)
        # hits / (misses + hits)
        assert record.cache_hit_rate("dns") == pytest.approx(2000 / 6000)
        assert record.cache_hit_rate("smtp") == pytest.approx(700 / 2200)

    def test_backoff_recorded_as_integer_millis(self):
        record = MonthRecord(0, "2024-01-01", build_month_registry(
            make_stats(retry_backoff_seconds=1.2345)))
        assert record.metrics.get("net.backoff_millis") == 1234

    def test_zero_domains_are_safe(self):
        record = MonthRecord(0, "2024-01-01",
                             build_month_registry(ScanStats()))
        assert record.transient_rate() == 0.0
        assert record.retries_per_domain() == 0.0
        assert record.cache_hit_rate("dns") == 0.0


class TestThresholds:
    def test_clean_months_all_ok(self):
        monitor = CampaignMonitor()
        for month in range(3):
            observe(monitor, month)
        report = monitor.health()
        assert report.ok()
        assert len(report.findings) == 3
        assert all(f.level == OK for f in report.findings)

    def test_absolute_transient_rate_alerts(self):
        monitor = CampaignMonitor()
        observe(monitor, 0)
        observe(monitor, 1, transient_domains=50)   # 5% > 2%
        report = monitor.health()
        assert report.level == ALERT
        metrics = {f.metric for f in report.at_level(ALERT)}
        assert "transient-rate" in metrics
        assert all(f.month_index == 1 for f in report.at_level(ALERT))

    def test_transient_jump_alerts_below_absolute_bound(self):
        monitor = CampaignMonitor()
        observe(monitor, 0)
        observe(monitor, 1, transient_domains=15)   # 1.5% < 2% absolute
        report = monitor.health()
        metrics = {f.metric for f in report.at_level(ALERT)}
        assert metrics == {"transient-rate-jump"}

    def test_cache_collapse_warns(self):
        monitor = CampaignMonitor()
        observe(monitor, 0, dns_queries=4000, dns_cache_hits=6000)
        observe(monitor, 1, dns_queries=9500, dns_cache_hits=500)
        report = monitor.health()
        assert report.level == WARN
        assert {f.metric for f in report.at_level(WARN)} == {
            "dns-cache-collapse"}

    def test_retry_spike_warns(self):
        monitor = CampaignMonitor()
        observe(monitor, 0, connect_retries=0)
        observe(monitor, 1, connect_retries=700)    # +0.7/domain > 0.5
        report = monitor.health()
        assert {f.metric for f in report.at_level(WARN)} == {"retry-spike"}

    def test_bucket_shift_warns(self):
        monitor = CampaignMonitor()
        first = build_month_registry(make_stats())
        first.count("taxonomy.ok", 1000)
        second = build_month_registry(make_stats())
        second.count("taxonomy.ok", 800)
        second.count("taxonomy.not-sts", 200)       # 20% shift > 15%
        monitor.add_record(MonthRecord(0, "2024-01-01", first))
        monitor.add_record(MonthRecord(1, "2024-02-01", second))
        report = monitor.health()
        metrics = {f.metric for f in report.at_level(WARN)}
        assert metrics == {"taxonomy-shift:not-sts", "taxonomy-shift:ok"}

    def test_thresholds_are_configurable(self):
        lax = Thresholds(transient_rate_alert=0.5,
                         transient_jump_alert=0.5)
        monitor = CampaignMonitor(lax)
        observe(monitor, 0)
        observe(monitor, 1, transient_domains=50)
        assert monitor.health().ok()

    def test_thresholds_as_dict(self):
        data = Thresholds().as_dict()
        assert set(data) == {
            "transient_rate_alert", "transient_jump_alert",
            "cache_hit_drop_warn", "bucket_shift_warn",
            "retry_jump_warn"}

    def test_report_render_and_as_dict(self):
        monitor = CampaignMonitor()
        observe(monitor, 0)
        observe(monitor, 1, transient_domains=50)
        report = monitor.health()
        text = report.render()
        assert text.startswith("campaign health: ALERT")
        assert "m01" in text
        data = report.as_dict()
        assert data["level"] == ALERT
        assert any(f["metric"] == "transient-rate"
                   for f in data["findings"])


class TestCleanCampaign:
    """The acceptance-criterion scenario: a full clean campaign is
    all-OK under the default thresholds."""

    @pytest.fixture(scope="class")
    def monitored(self):
        from repro.analysis.series import run_campaign
        timeline = EcosystemTimeline(
            TimelineConfig(PopulationConfig(scale=SCALE, seed=SEED)))
        monitor = CampaignMonitor()
        analysis = run_campaign(timeline, monitor=monitor)
        return monitor, analysis

    def test_twelve_months_observed(self, monitored):
        monitor, analysis = monitored
        assert [r.month_index for r in monitor.records] == list(range(12))
        for record in monitor.records:
            month_stats = analysis.stats_by_month[record.month_index]
            assert record.domains() == month_stats.domains_scanned

    def test_all_ok(self, monitored):
        monitor, _ = monitored
        report = monitor.health()
        assert report.ok(), report.render()
        assert len(report.findings) == 12

    def test_drift_rows(self, monitored):
        monitor, _ = monitored
        rows = monitor.drift()
        assert len(rows) == 12
        assert "transient_jump" not in rows[0]
        assert all("transient_jump" in row for row in rows[1:])
        assert all(0.0 <= row["dns_hit_rate"] <= 1.0 for row in rows)

    def test_feed_round_trips(self, monitored):
        monitor, _ = monitored
        rebuilt = CampaignMonitor.from_jsonl(monitor.to_jsonl())
        assert [r.metrics.to_dict() for r in rebuilt.records] == [
            r.metrics.to_dict() for r in monitor.records]
        assert rebuilt.health().as_dict() == monitor.health().as_dict()
        assert rebuilt.drift() == monitor.drift()

    def test_write_jsonl_atomic(self, monitored, tmp_path):
        monitor, _ = monitored
        path = tmp_path / "metrics.jsonl"
        assert monitor.write_jsonl(str(path)) == 12
        rebuilt = CampaignMonitor.from_jsonl(
            path.read_text(encoding="utf-8"))
        assert len(rebuilt.records) == 12


class TestFaultSpike:
    """A fault plan installed mid-campaign must surface as an ALERT on
    exactly the poisoned month."""

    def test_injected_spike_alerts(self):
        timeline = EcosystemTimeline(
            TimelineConfig(PopulationConfig(scale=SCALE, seed=SEED)))
        materializer = IncrementalMaterializer(timeline)
        executor = ScanExecutor()
        monitor = CampaignMonitor()
        store = SnapshotStore()
        for month in range(4):
            materialized = materializer.materialize(month)
            if month == 3:
                materialized.world.network.install_fault_plan(
                    FaultPlan.seeded(seed=7, rate=0.5))
            _, stats = executor.scan(
                materialized.world, materialized.deployed.keys(), month,
                store, materialized.instant)
            monitor.observe_month(
                month, materialized.instant.date_string(), stats,
                store.month(month), build_stats=materialized.build_stats)

        report = monitor.health()
        assert report.level == ALERT, report.render()
        alerts = report.at_level(ALERT)
        assert {f.month_index for f in alerts} == {3}
        assert "transient-rate" in {f.metric for f in alerts}
        # The months before the plan landed stay clean.
        clean = [f for f in report.findings if f.month_index < 3]
        assert all(f.level == OK for f in clean)


class TestLiveFeed:
    def test_observed_months_appended_as_they_complete(self, tmp_path):
        path = tmp_path / "live.jsonl"
        monitor = CampaignMonitor(jsonl_path=str(path))
        observe(monitor, 0)
        assert len(path.read_text(encoding="utf-8").splitlines()) == 1
        observe(monitor, 1)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert lines == monitor.to_jsonl_lines()
        for line in lines:
            assert json.loads(line)["type"] == "month"


class TestCliMonitor:
    def write_feed(self, tmp_path, *, spike: bool) -> str:
        monitor = CampaignMonitor()
        observe(monitor, 0)
        observe(monitor, 1,
                transient_domains=50 if spike else 0)
        path = tmp_path / "feed.jsonl"
        monitor.write_jsonl(str(path))
        return str(path)

    def test_clean_feed_exits_zero(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["monitor", self.write_feed(tmp_path,
                                                spike=False)]) == 0
        out = capsys.readouterr().out
        assert "month-over-month scan health" in out
        assert "campaign health: OK" in out

    def test_alerting_feed_exits_one(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["monitor", self.write_feed(tmp_path,
                                                spike=True)]) == 1
        assert "ALERT" in capsys.readouterr().out

    def test_empty_feed_exits_one(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        assert main(["monitor", str(path)]) == 1

    def test_threshold_arguments_validated(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit) as excinfo:
            main(["monitor", "feed.jsonl",
                  "--transient-rate-alert", "1.5"])
        assert excinfo.value.code == 2
        assert "--transient-rate-alert" in capsys.readouterr().err


class TestCliCampaign:
    def test_campaign_writes_feed_and_reports(self, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "metrics.jsonl"
        assert main(["campaign", "--scale", "0.002",
                     "--seed", str(SEED),
                     "--metrics-out", str(path)]) == 0
        out = capsys.readouterr().out
        assert "month-over-month scan health" in out
        assert "campaign health: OK" in out
        records = path.read_text(encoding="utf-8").splitlines()
        assert len(records) == 12
        rebuilt = CampaignMonitor.from_jsonl("\n".join(records))
        assert rebuilt.health().ok()
