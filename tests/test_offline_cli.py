"""Tests for the offline zone assessment and the CLI."""

import pytest

from repro.cli import main
from repro.errors import MismatchClass
from repro.measurement.offline import assess_zone

GOOD_ZONE = """\
$ORIGIN example.com.
$TTL 3600
@        IN SOA ns1.example.com. hostmaster.example.com. 1
@        IN NS ns1.example.com.
@        IN MX 10 mail
mail     IN A 10.1.2.3
mta-sts  IN A 10.1.2.4
_mta-sts IN TXT "v=STSv1; id=20240101;"
"""

GOOD_POLICY = ("version: STSv1\nmode: enforce\nmx: mail.example.com\n"
               "max_age: 604800\n")


class TestOfflineAssessment:
    def test_healthy_zone_and_policy(self):
        assessment = assess_zone(GOOD_ZONE, "example.com", GOOD_POLICY)
        assert assessment.ok, [f.render() for f in assessment.findings]
        assert assessment.record_valid
        assert assessment.consistent
        assert assessment.mx_hostnames == ["mail.example.com"]

    def test_missing_record(self):
        zone = GOOD_ZONE.replace(
            '_mta-sts IN TXT "v=STSv1; id=20240101;"\n', "")
        assessment = assess_zone(zone, "example.com")
        assert any("no MTA-STS TXT record" in f.message
                   for f in assessment.errors)

    def test_invalid_record_id(self):
        zone = GOOD_ZONE.replace("id=20240101", "id=2024-01-01")
        assessment = assess_zone(zone, "example.com")
        assert not assessment.record_valid
        assert any("invalid-id" in f.message for f in assessment.errors)

    def test_missing_policy_host(self):
        zone = GOOD_ZONE.replace("mta-sts  IN A 10.1.2.4\n", "")
        assessment = assess_zone(zone, "example.com")
        assert any(f.component == "policy-host" for f in assessment.errors)

    def test_cname_delegation_noted(self):
        zone = GOOD_ZONE.replace(
            "mta-sts  IN A 10.1.2.4",
            "mta-sts  IN CNAME customer.mta-sts.provider.net.")
        assessment = assess_zone(zone, "example.com", GOOD_POLICY)
        assert assessment.ok
        assert any("delegated via CNAME" in f.message
                   for f in assessment.findings)

    def test_enforce_mismatch_is_an_error(self):
        policy = GOOD_POLICY.replace("mail.example.com",
                                     "mx.oldprovider.net")
        assessment = assess_zone(GOOD_ZONE, "example.com", policy)
        assert not assessment.ok
        assert assessment.consistent is False
        assert assessment.mismatch_class is MismatchClass.DOMAIN
        assert any("refuse to deliver" in f.message
                   for f in assessment.errors)

    def test_testing_mismatch_is_a_warning(self):
        policy = (GOOD_POLICY.replace("enforce", "testing")
                  .replace("mail.example.com", "mx.oldprovider.net"))
        assessment = assess_zone(GOOD_ZONE, "example.com", policy)
        assert assessment.ok      # warnings only
        assert assessment.consistent is False

    def test_stale_pattern_warning(self):
        policy = GOOD_POLICY.replace(
            "mx: mail.example.com\n",
            "mx: mail.example.com\nmx: mx.retired-provider.net\n")
        assessment = assess_zone(GOOD_ZONE, "example.com", policy)
        assert assessment.ok
        assert any("stale" in f.message for f in assessment.findings)

    def test_implicit_mx_fallback(self):
        zone = GOOD_ZONE.replace("@        IN MX 10 mail\n",
                                 "@        IN A 10.1.2.9\n")
        assessment = assess_zone(zone, "example.com")
        assert assessment.mx_hostnames == ["example.com"]
        assert any("implicit MX" in f.message for f in assessment.findings)

    def test_unparseable_zone(self):
        assessment = assess_zone("@ IN SRV broken", "example.com")
        assert not assessment.ok

    def test_wrong_domain_for_zone(self):
        assessment = assess_zone(GOOD_ZONE, "other.org")
        assert not assessment.ok


class TestCli:
    def test_lint_record_ok(self, capsys):
        assert main(["lint-record", "v=STSv1; id=20240101;"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_lint_record_invalid(self, capsys):
        assert main(["lint-record", "v=STSv1; id=bad-id;"]) == 1
        assert "invalid-id" in capsys.readouterr().out

    def test_lint_policy(self, tmp_path, capsys):
        good = tmp_path / "policy.txt"
        good.write_text(GOOD_POLICY)
        assert main(["lint-policy", str(good)]) == 0
        assert "mode=enforce" in capsys.readouterr().out
        bad = tmp_path / "bad.txt"
        bad.write_text("mode: nonsense\n")
        assert main(["lint-policy", str(bad)]) == 1

    def test_check_zone(self, tmp_path, capsys):
        zone_file = tmp_path / "example.com.zone"
        zone_file.write_text(GOOD_ZONE)
        policy_file = tmp_path / "policy.txt"
        policy_file.write_text(GOOD_POLICY)
        code = main(["check-zone", str(zone_file), "example.com",
                     "--policy", str(policy_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no errors found" in out

    def test_check_zone_reports_errors(self, tmp_path, capsys):
        zone_file = tmp_path / "bad.zone"
        zone_file.write_text(GOOD_ZONE.replace("id=20240101", "id=x y"))
        assert main(["check-zone", str(zone_file), "example.com"]) == 1

    def test_plan_removal(self, capsys):
        assert main(["plan-removal", "example.com", "604800"]) == 0
        out = capsys.readouterr().out
        assert "mode=none" in out or "publish-policy" in out
        assert "wait" in out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "94.7%" in out
        assert "respondents: 117" in out

    def test_audit_small(self, capsys):
        assert main(["audit", "--scale", "0.002", "--month", "0"]) == 0
        out = capsys.readouterr().out
        assert "misconfigured" in out

    def test_audit_with_repair_plans(self, capsys):
        assert main(["audit", "--scale", "0.003", "--month", "11",
                     "--show-repairs", "2"]) == 0
        out = capsys.readouterr().out
        assert "repair plan for" in out
        assert "[policy-host]" in out or "[policy]" in out \
            or "[record]" in out or "[mx]" in out
