"""Unit tests for MTA-STS policy parsing (RFC 8461 §3.2)."""

import pytest

from repro.core.policy import (
    MAX_POLICY_AGE, Policy, PolicyMode, check_policy_text, parse_policy,
    render_policy,
)
from repro.errors import PolicyError, PolicySyntaxError

VALID = ("version: STSv1\r\n"
         "mode: enforce\r\n"
         "mx: mail.example.com\r\n"
         "mx: *.example.net\r\n"
         "max_age: 604800\r\n")


class TestParseValid:
    def test_full_policy(self):
        policy = parse_policy(VALID)
        assert policy.version == "STSv1"
        assert policy.mode is PolicyMode.ENFORCE
        assert policy.max_age == 604800
        assert policy.mx_patterns == ("mail.example.com", "*.example.net")

    def test_lf_line_endings_accepted(self):
        policy = parse_policy(VALID.replace("\r\n", "\n"))
        assert policy.mode is PolicyMode.ENFORCE

    def test_testing_mode(self):
        text = VALID.replace("enforce", "testing")
        assert parse_policy(text).mode is PolicyMode.TESTING

    def test_none_mode_needs_no_mx(self):
        policy = parse_policy("version: STSv1\nmode: none\nmax_age: 86400\n")
        assert policy.mode is PolicyMode.NONE
        assert policy.mx_patterns == ()

    def test_mx_patterns_lowercased(self):
        text = VALID.replace("mail.example.com", "MAIL.Example.COM")
        assert "mail.example.com" in parse_policy(text).mx_patterns

    def test_max_age_capped_at_one_year(self):
        text = VALID.replace("604800", str(MAX_POLICY_AGE * 10))
        assert parse_policy(text).max_age == MAX_POLICY_AGE

    def test_unknown_keys_ignored(self):
        text = VALID + "future_field: hello\r\n"
        assert parse_policy(text).mode is PolicyMode.ENFORCE

    def test_requires_delivery_refusal(self):
        assert parse_policy(VALID).requires_delivery_refusal()
        testing = parse_policy(VALID.replace("enforce", "testing"))
        assert not testing.requires_delivery_refusal()

    def test_render_round_trips(self):
        policy = parse_policy(VALID)
        assert parse_policy(render_policy(policy)) == policy


class TestParseErrors:
    @pytest.mark.parametrize("mutation, expected", [
        (lambda t: "", PolicySyntaxError.EMPTY_FILE),
        (lambda t: "   \r\n \r\n", PolicySyntaxError.EMPTY_FILE),
        (lambda t: t.replace("version: STSv1\r\n", ""),
         PolicySyntaxError.MISSING_VERSION),
        (lambda t: t.replace("STSv1", "STSv2"),
         PolicySyntaxError.BAD_VERSION),
        (lambda t: t.replace("mode: enforce\r\n", ""),
         PolicySyntaxError.MISSING_MODE),
        (lambda t: t.replace("enforce", "enfroce"),
         PolicySyntaxError.INVALID_MODE),
        (lambda t: t.replace("max_age: 604800\r\n", ""),
         PolicySyntaxError.MISSING_MAX_AGE),
        (lambda t: t.replace("604800", "a while"),
         PolicySyntaxError.INVALID_MAX_AGE),
    ])
    def test_single_fault(self, mutation, expected):
        with pytest.raises(PolicyError) as excinfo:
            parse_policy(mutation(VALID))
        assert excinfo.value.kind is expected

    def test_enforce_without_mx_patterns(self):
        text = ("version: STSv1\r\nmode: enforce\r\nmax_age: 86400\r\n")
        with pytest.raises(PolicyError) as excinfo:
            parse_policy(text)
        assert excinfo.value.kind is PolicySyntaxError.NO_MX_PATTERNS

    @pytest.mark.parametrize("bad_pattern", [
        "postmaster@example.com",     # email address (§4.3.3)
        "mail.example.com.",          # trailing dot (§4.3.3)
        "",                           # empty pattern (§4.3.3)
        "mx.*.example.com",           # wildcard not leftmost
        "*.",                         # bare wildcard
        "*.*.example.com",            # double wildcard
        "mail server.example.com",    # embedded space
    ])
    def test_invalid_mx_patterns(self, bad_pattern):
        text = VALID.replace("mail.example.com", bad_pattern)
        check = check_policy_text(text)
        assert PolicySyntaxError.INVALID_MX_PATTERN in check.errors

    def test_duplicate_scalar_key(self):
        text = VALID + "mode: testing\r\n"
        check = check_policy_text(text)
        assert PolicySyntaxError.DUPLICATE_KEY in check.errors

    def test_line_without_separator(self):
        check = check_policy_text(VALID + "garbage line\r\n")
        assert PolicySyntaxError.MALFORMED_LINE in check.errors


class TestLenientCheck:
    def test_collects_multiple_errors(self):
        check = check_policy_text("mode: nonsense\nmax_age: never\n")
        kinds = set(check.errors)
        assert PolicySyntaxError.MISSING_VERSION in kinds
        assert PolicySyntaxError.INVALID_MODE in kinds
        assert PolicySyntaxError.INVALID_MAX_AGE in kinds
        assert check.policy is None

    def test_valid_policy_has_no_errors(self):
        check = check_policy_text(VALID)
        assert check.valid
        assert check.errors == []

    def test_empty_file_is_the_dmarcreport_case(self):
        # §5: an empty policy file parses as an error that senders
        # treat like mode=none.
        check = check_policy_text("")
        assert check.errors == [PolicySyntaxError.EMPTY_FILE]


class TestMaxAgeValidation:
    """Regressions: ``str.isdigit`` accepts non-ASCII digits, and the
    RFC 8461 upper bound used to be clamped silently."""

    def test_arabic_indic_digits_rejected(self):
        # "١٢٣".isdigit() is True and int("١٢٣") == 123, so the old
        # check silently accepted a max_age no operator ever wrote.
        check = check_policy_text(VALID.replace("604800", "١٢٣"))
        assert PolicySyntaxError.INVALID_MAX_AGE in check.errors

    def test_superscript_digits_rejected_not_crashed(self):
        # "²".isdigit() is True but int("²") raises ValueError — the
        # old code path crashed instead of reporting a syntax error.
        check = check_policy_text(VALID.replace("604800", "²³"))
        assert PolicySyntaxError.INVALID_MAX_AGE in check.errors

    def test_fullwidth_digits_rejected(self):
        check = check_policy_text(VALID.replace("604800", "１２３"))
        assert PolicySyntaxError.INVALID_MAX_AGE in check.errors

    def test_over_bound_max_age_warns_and_clamps(self):
        from repro.errors import PolicyWarning
        check = check_policy_text(
            VALID.replace("604800", str(MAX_POLICY_AGE + 1)))
        assert check.valid
        assert check.policy.max_age == MAX_POLICY_AGE
        assert check.warnings == [PolicyWarning.MAX_AGE_OVER_BOUND]
        assert str(MAX_POLICY_AGE + 1) in check.warning_details[0]

    def test_in_bound_max_age_has_no_warning(self):
        check = check_policy_text(VALID)
        assert check.valid
        assert check.warnings == []
        boundary = check_policy_text(
            VALID.replace("604800", str(MAX_POLICY_AGE)))
        assert boundary.valid
        assert boundary.warnings == []
        assert boundary.policy.max_age == MAX_POLICY_AGE


class TestDuplicateKeys:
    """RFC 8461 regression: repeated scalar keys must be flagged."""

    @pytest.mark.parametrize("dupe", ["version: STSv1",
                                      "mode: testing",
                                      "max_age: 100"])
    def test_duplicate_scalar_key_flagged(self, dupe):
        check = check_policy_text(VALID + dupe + "\r\n")
        assert PolicySyntaxError.DUPLICATE_KEY in check.errors

    def test_strict_parse_raises_duplicate_key(self):
        with pytest.raises(PolicyError) as excinfo:
            parse_policy(VALID + "mode: testing\r\n")
        assert excinfo.value.kind is PolicySyntaxError.DUPLICATE_KEY

    def test_repeated_mx_keys_are_legal(self):
        # mx is the one key RFC 8461 allows (requires) to repeat.
        assert check_policy_text(VALID).valid
