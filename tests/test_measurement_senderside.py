"""Tests for the sender-side validation testbed (§6)."""

import pytest

from repro.measurement.senderside import (
    SENDER_COUNT, SenderProfile, SenderSideTestbed,
    synthesize_sender_population,
)


@pytest.fixture(scope="module")
def testbed():
    from repro.ecosystem.world import World
    return SenderSideTestbed(World())


class TestPopulationSynthesis:
    def test_count(self):
        profiles = synthesize_sender_population()
        assert len(profiles) == SENDER_COUNT

    def test_marginals_near_paper(self):
        profiles = synthesize_sender_population()
        total = len(profiles)
        tls = sum(p.uses_tls for p in profiles)
        sts = sum(p.validates_mta_sts for p in profiles)
        dane = sum(p.validates_dane for p in profiles)
        both = sum(p.validates_mta_sts and p.validates_dane
                   for p in profiles)
        prefer = sum(p.prefers_sts_over_dane for p in profiles)
        assert abs(tls / total - 0.946) < 0.02
        assert abs(sts / total - 0.196) < 0.03
        assert abs(dane / total - 0.298) < 0.03
        assert 0.05 < both / total < 0.13         # ~203/2394
        assert prefer <= both

    def test_deterministic(self):
        a = synthesize_sender_population(seed=3)
        b = synthesize_sender_population(seed=3)
        assert [(p.validates_mta_sts, p.validates_dane) for p in a] == \
            [(p.validates_mta_sts, p.validates_dane) for p in b]


class TestProbes:
    def test_opportunistic_sender_delivers_everywhere(self, testbed):
        profile = SenderProfile(identity="opportunistic.example")
        outcome = testbed.run_probe(profile)
        assert outcome.delivered_to_sts_trap
        assert outcome.delivered_to_dane_trap
        assert outcome.delivered_to_pkix_trap
        inferred = outcome.classify()
        assert not inferred["validates_mta_sts"]
        assert not inferred["validates_dane"]

    def test_sts_validator_refuses_trap(self, testbed):
        profile = SenderProfile(identity="sts.example",
                                validates_mta_sts=True)
        outcome = testbed.run_probe(profile)
        assert not outcome.delivered_to_sts_trap
        assert outcome.delivered_to_pkix_trap   # no policy -> opportunistic
        assert outcome.classify()["validates_mta_sts"]

    def test_dane_validator_refuses_trap(self, testbed):
        profile = SenderProfile(identity="dane.example",
                                validates_dane=True)
        outcome = testbed.run_probe(profile)
        assert not outcome.delivered_to_dane_trap
        assert outcome.delivered_to_sts_trap
        assert outcome.classify()["validates_dane"]

    def test_pkix_always_sender_distinguished(self, testbed):
        profile = SenderProfile(identity="pkix.example", require_pkix=True)
        outcome = testbed.run_probe(profile)
        assert not outcome.delivered_to_pkix_trap
        inferred = outcome.classify()
        assert inferred["pkix_always"]
        assert not inferred["validates_mta_sts"]

    def test_correct_precedence_refuses_conflict(self, testbed):
        profile = SenderProfile(identity="both.example",
                                validates_mta_sts=True,
                                validates_dane=True)
        outcome = testbed.run_probe(profile)
        assert outcome.delivered_to_conflict_probe_mechanism == ""

    def test_milter_bug_delivers_conflict_via_sts(self, testbed):
        profile = SenderProfile(identity="buggy.example",
                                validates_mta_sts=True,
                                validates_dane=True,
                                prefers_sts_over_dane=True)
        outcome = testbed.run_probe(profile)
        assert outcome.delivered_to_conflict_probe_mechanism == "mta-sts"


class TestCampaign:
    def test_small_campaign_aggregates(self, testbed):
        profiles = [
            SenderProfile("opp1.example"),
            SenderProfile("opp2.example"),
            SenderProfile("sts.example", validates_mta_sts=True),
            SenderProfile("dane.example", validates_dane=True),
            SenderProfile("both.example", validates_mta_sts=True,
                          validates_dane=True),
            SenderProfile("bug.example", validates_mta_sts=True,
                          validates_dane=True, prefers_sts_over_dane=True),
            SenderProfile("pkix.example", require_pkix=True),
            SenderProfile("plain.example", uses_tls=False),
        ]
        report = testbed.run_campaign(profiles)
        assert report["senders"] == 8
        assert report["tls"] == 7
        assert report["mta_sts_validators"] == 3
        assert report["dane_validators"] == 3
        assert report["both_validators"] == 2
        assert report["prefer_sts_over_dane"] == 1
        assert report["pkix_always"] == 1
