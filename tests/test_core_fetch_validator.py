"""Integration tests for policy discovery/fetch and the full validator."""

import pytest

from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.ecosystem.providers import table2_providers
from repro.errors import (
    MisconfigCategory, PolicyFetchStage, StsRecordError, TlsFailure,
)


class TestFetcher:
    def test_healthy_domain(self, world, fetcher, simple_domain):
        result = fetcher.fetch_policy("example.com")
        assert result.sts_enabled
        assert result.record is not None
        assert result.policy is not None
        assert result.failed_stage is None
        assert result.fully_valid

    def test_no_sts_domain(self, world, fetcher):
        deploy_domain(world, DomainSpec(domain="plain.com",
                                        deploy_sts=False))
        result = fetcher.fetch_policy("plain.com")
        assert not result.sts_enabled
        assert result.failed_stage is None

    def test_lookup_record_only_does_no_https(self, world, fetcher,
                                              simple_domain):
        result = fetcher.lookup_record("example.com")
        assert result.record is not None
        assert result.fetch is None

    def test_broken_record_still_fetches(self, world, fetcher,
                                          simple_domain):
        apply_fault(world, simple_domain, Fault.RECORD_INVALID_ID)
        world.resolver.flush_cache()
        result = fetcher.fetch_policy("example.com")
        assert result.record is None
        assert result.record_error is StsRecordError.INVALID_ID
        assert result.policy is not None    # scanner-mode fetch happened

    def test_cname_recorded(self, world, fetcher):
        provider = table2_providers()[1]    # DMARCReport
        deploy_domain(world, DomainSpec(domain="delegated.com",
                                        policy_provider=provider))
        result = fetcher.fetch_policy("delegated.com")
        assert result.policy_host_cname == \
            provider.canonical_host_for("delegated.com")
        assert result.fully_valid

    @pytest.mark.parametrize("fault, stage, tls_failure", [
        (Fault.POLICY_DNS_UNRESOLVABLE, PolicyFetchStage.DNS, None),
        (Fault.POLICY_TCP_CLOSED, PolicyFetchStage.TCP, None),
        (Fault.POLICY_TCP_TIMEOUT, PolicyFetchStage.TCP, None),
        (Fault.POLICY_TLS_CN_MISMATCH, PolicyFetchStage.TLS,
         TlsFailure.HOSTNAME_MISMATCH),
        (Fault.POLICY_TLS_SELF_SIGNED, PolicyFetchStage.TLS,
         TlsFailure.SELF_SIGNED),
        (Fault.POLICY_TLS_EXPIRED, PolicyFetchStage.TLS, TlsFailure.EXPIRED),
        (Fault.POLICY_TLS_NO_CERT, PolicyFetchStage.TLS,
         TlsFailure.NO_CERTIFICATE),
        (Fault.POLICY_HTTP_404, PolicyFetchStage.HTTP, None),
        (Fault.POLICY_HTTP_500, PolicyFetchStage.HTTP, None),
        (Fault.POLICY_SYNTAX_EMPTY, PolicyFetchStage.SYNTAX, None),
        (Fault.POLICY_SYNTAX_BAD_MX, PolicyFetchStage.SYNTAX, None),
    ])
    def test_every_figure5_stage(self, world, fetcher, simple_domain,
                                 fault, stage, tls_failure):
        apply_fault(world, simple_domain, fault)
        world.resolver.flush_cache()
        result = fetcher.fetch_policy("example.com")
        assert result.failed_stage is stage
        if tls_failure is not None:
            assert result.tls_failure is tls_failure


class TestValidator:
    def test_healthy_assessment(self, world, validator, simple_domain):
        assessment = validator.assess("example.com")
        assert assessment.sts_enabled
        assert not assessment.misconfigured
        assert assessment.misconfig_categories() == []
        assert not assessment.delivery_failure_expected

    def test_record_category(self, world, validator, simple_domain):
        apply_fault(world, simple_domain, Fault.RECORD_MISSING_ID)
        world.resolver.flush_cache()
        assessment = validator.assess("example.com")
        assert MisconfigCategory.DNS_RECORD in assessment.misconfig_categories()

    def test_policy_category(self, world, validator, simple_domain):
        apply_fault(world, simple_domain, Fault.POLICY_HTTP_404)
        assessment = validator.assess("example.com")
        assert MisconfigCategory.POLICY_RETRIEVAL in \
            assessment.misconfig_categories()

    def test_mx_cert_category(self, world, validator, simple_domain):
        apply_fault(world, simple_domain, Fault.MX_CERT_EXPIRED)
        assessment = validator.assess("example.com")
        assert MisconfigCategory.MX_CERTIFICATE in \
            assessment.misconfig_categories()
        assert assessment.mx_probe.any_invalid_cert
        assert assessment.mx_probe.failure_classes() == ["expired"]

    def test_inconsistency_category(self, world, validator, simple_domain):
        apply_fault(world, simple_domain, Fault.MISMATCH_DOMAIN)
        assessment = validator.assess("example.com")
        assert MisconfigCategory.INCONSISTENCY in \
            assessment.misconfig_categories()
        assert assessment.uncovered_mx == ["mail.example.com"]

    def test_multiple_categories_coexist(self, world, validator,
                                         simple_domain):
        apply_fault(world, simple_domain, Fault.RECORD_INVALID_ID)
        apply_fault(world, simple_domain, Fault.MX_CERT_SELF_SIGNED)
        world.resolver.flush_cache()
        categories = validator.assess("example.com").misconfig_categories()
        assert MisconfigCategory.DNS_RECORD in categories
        assert MisconfigCategory.MX_CERTIFICATE in categories

    def test_enforce_mismatch_predicts_delivery_failure(self, world,
                                                        validator):
        deployed = deploy_domain(world, DomainSpec(
            domain="strict.com",
            policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                          max_age=86400, mx_patterns=("mail.strict.com",))))
        apply_fault(world, deployed, Fault.MISMATCH_DOMAIN)
        assessment = validator.assess("strict.com")
        assert assessment.delivery_failure_expected

    def test_testing_mismatch_does_not_fail_delivery(self, world, validator,
                                                     simple_domain):
        apply_fault(world, simple_domain, Fault.MISMATCH_DOMAIN)
        assessment = validator.assess("example.com")
        assert not assessment.delivery_failure_expected    # testing mode

    def test_enforce_all_invalid_mx_fails_delivery(self, world, validator):
        deployed = deploy_domain(world, DomainSpec(
            domain="strict2.com",
            policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                          max_age=86400, mx_patterns=("mail.strict2.com",))))
        apply_fault(world, deployed, Fault.MX_CERT_SELF_SIGNED, mx_index=None)
        assessment = validator.assess("strict2.com")
        assert assessment.delivery_failure_expected

    def test_enforce_partial_invalid_mx_survives(self, world, validator):
        deployed = deploy_domain(world, DomainSpec(
            domain="strict3.com", self_mx_count=2,
            policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                          max_age=86400,
                          mx_patterns=("mx1.strict3.com",
                                       "mx2.strict3.com"))))
        apply_fault(world, deployed, Fault.MX_CERT_SELF_SIGNED, mx_index=0)
        assessment = validator.assess("strict3.com")
        assert assessment.mx_probe.partially_invalid_cert
        assert not assessment.delivery_failure_expected

    def test_unretrievable_policy_cannot_fail_delivery(self, world,
                                                       validator):
        deployed = deploy_domain(world, DomainSpec(
            domain="strict4.com",
            policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                          max_age=86400, mx_patterns=("mail.strict4.com",))))
        apply_fault(world, deployed, Fault.POLICY_HTTP_404)
        assessment = validator.assess("strict4.com")
        assert assessment.misconfigured
        assert not assessment.delivery_failure_expected

    def test_3ld_mismatch(self, world, validator, simple_domain):
        apply_fault(world, simple_domain, Fault.MISMATCH_3LD)
        assessment = validator.assess("example.com")
        assert not assessment.consistent
        assert assessment.policy.mx_patterns == ("mta-sts.mail.example.com",)
