"""Tests for the questionnaire model, synthesis, and analysis (§7)."""

import pytest

from repro.survey.analysis import analyze
from repro.survey.questionnaire import Questionnaire, build_questionnaire
from repro.survey.synthesize import Respondent, synthesize_respondents


@pytest.fixture(scope="module")
def questionnaire():
    return build_questionnaire()


@pytest.fixture(scope="module")
def respondents():
    return synthesize_respondents()


@pytest.fixture(scope="module")
def findings(respondents):
    return analyze(respondents)


class TestQuestionnaire:
    def test_all_pages_covered(self, questionnaire):
        pages = {q.page for q in questionnaire.questions}
        assert pages == set(range(1, 16)) - {3, 4} | {3, 4}

    def test_refusing_consent_ends_survey(self, questionnaire):
        walk = questionnaire.walk({"consent_participate": "no"})
        assert walk == [1]

    def test_never_heard_ends_survey(self, questionnaire):
        walk = questionnaire.walk({
            "consent_participate": "yes", "consent_publication": "yes",
            "heard_mta_sts": "no"})
        assert walk == [1, 2, 3]

    def test_not_deployed_jumps_to_page_10(self, questionnaire):
        walk = questionnaire.walk({
            "consent_participate": "yes", "consent_publication": "yes",
            "heard_mta_sts": "yes", "deployed_mta_sts": "no",
            "heard_dane": "yes", "validates_outbound": "yes"})
        assert 10 in walk
        assert 5 not in walk and 9 not in walk

    def test_self_managed_policy_host_skips_provider_pages(
            self, questionnaire):
        walk = questionnaire.walk({
            "consent_participate": "yes", "consent_publication": "yes",
            "heard_mta_sts": "yes", "deployed_mta_sts": "yes",
            "policy_host_management": "self-managed",
            "heard_dane": "yes", "validates_outbound": "yes"})
        assert 8 not in walk and 9 not in walk
        assert 11 in walk

    def test_dane_unknown_skips_comparison(self, questionnaire):
        walk = questionnaire.walk({
            "consent_participate": "yes", "consent_publication": "yes",
            "heard_mta_sts": "yes", "deployed_mta_sts": "no",
            "heard_dane": "no", "validates_outbound": "yes"})
        assert 12 not in walk
        assert 13 in walk

    def test_no_outbound_validation_ends(self, questionnaire):
        walk = questionnaire.walk({
            "consent_participate": "yes", "consent_publication": "yes",
            "heard_mta_sts": "yes", "deployed_mta_sts": "no",
            "heard_dane": "no", "validates_outbound": "no"})
        assert walk[-1] == 13

    def test_unknown_question_raises(self, questionnaire):
        with pytest.raises(KeyError):
            questionnaire.question("nope")


class TestSynthesis:
    def test_respondent_count(self, respondents):
        assert len(respondents) == 117

    def test_branch_consistency(self, questionnaire, respondents):
        # Nobody answers a question on a page their walk never visits.
        for respondent in respondents:
            reachable = set(questionnaire.reachable_questions(
                respondent.answers))
            for qid in respondent.answers:
                question = next(
                    (q for q in questionnaire.questions if q.qid == qid),
                    None)
                if question is None:
                    continue    # derived keys (e.g. dane_no_tlsa grids)
                assert qid in reachable, (respondent.rid, qid)

    def test_only_deployed_answer_deployment_pages(self, respondents):
        for respondent in respondents:
            if respondent.get("why_adopt") is not None:
                assert respondent.get("deployed_mta_sts") == "yes"
            if respondent.get("why_not_deployed") is not None:
                assert respondent.get("deployed_mta_sts") == "no"


class TestFindingsMatchPaper:
    def test_awareness(self, findings):
        count, denominator, percent = findings.heard_of_mta_sts
        assert (count, denominator) == (89, 94)
        assert round(percent, 1) == 94.7

    def test_deployment(self, findings):
        count, denominator, percent = findings.deployed
        assert (count, denominator) == (50, 88)
        assert round(percent, 1) == 56.8

    def test_motivation(self, findings):
        count, denominator, percent = findings.motivation_downgrade
        assert (count, denominator) == (34, 42)
        assert round(percent, 1) == 81.0
        assert findings.trust_web_pki == 9
        assert findings.favored_over_dane == 10

    def test_requirements(self, findings):
        assert findings.customer_demand[:2] == (13, 41)
        assert round(findings.customer_demand[2], 1) == 31.7
        assert findings.regulation[:2] == (14, 41)
        assert round(findings.regulation[2], 1) == 34.1
        assert findings.reputation_large_providers == 5

    def test_bottlenecks(self, findings):
        assert findings.bottleneck_complexity[:2] == (21, 43)
        assert round(findings.bottleneck_complexity[2], 1) == 48.8
        assert findings.bottleneck_dane_secure[:2] == (17, 43)
        assert findings.bottleneck_no_need[:2] == (5, 43)

    def test_non_deployers(self, findings):
        assert findings.not_deployed_use_dane[:2] == (15, 33)
        assert round(findings.not_deployed_use_dane[2], 1) == 45.5
        assert findings.not_deployed_too_complicated[:2] == (9, 33)

    def test_management(self, findings):
        assert findings.mgmt_https_hard[:2] == (8, 41)
        assert findings.mgmt_updates_hard[:2] == (11, 41)

    def test_update_sequence(self, findings):
        assert findings.update_never[:2] == (15, 42)
        assert findings.update_txt_first[:2] == (10, 42)

    def test_dane_comparison(self, findings):
        assert findings.heard_dane[:2] == (78, 79)
        assert round(findings.heard_dane[2], 1) == 98.7
        assert findings.dane_no_tlsa[0] == 26
        assert round(findings.dane_no_tlsa[2], 1) == 33.3
        assert findings.dane_no_dnssec == 10
        assert findings.dane_superior[0] == 51
        assert round(findings.dane_superior[2], 1) == 72.9

    def test_demographics_figure11(self, findings):
        assert sum(findings.demographics.values()) == 92
        assert findings.demographics["<10"] == 22
        above_500 = (findings.demographics["500-1k"]
                     + findings.demographics[">1k"])
        assert above_500 == 36
        assert sum(findings.demographics_deployed.values()) == 50
        # Larger operators deploy more (Figure 11's visual message).
        assert findings.demographics_deployed[">1k"] > \
            findings.demographics_deployed["<10"]
