"""Fine-grained tests of timeline materialisation: the per-month worlds
must reflect the fault schedules and event cohorts exactly."""

import pytest

from repro.core.fetch import PolicyFetcher
from repro.ecosystem.population import (
    DMARC_SPIKE_MONTH, LUCIDGROW_MONTH, PopulationConfig,
)
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.errors import PolicyFetchStage


@pytest.fixture(scope="module")
def timeline():
    return EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=0.01, seed=11)))


def _fetch(snapshot, domain):
    fetcher = PolicyFetcher(snapshot.world.resolver,
                            snapshot.world.https_client)
    return fetcher.fetch_policy(domain)


class TestEventMaterialisation:
    def test_dmarc_spike_only_in_june(self, timeline):
        spiked = [plan for plan in timeline.all_plans()
                  if any(f.start_month == DMARC_SPIKE_MONTH
                         and f.end_month == DMARC_SPIKE_MONTH + 1
                         for f in plan.faults)]
        assert spiked, "spike cohort missing"
        target = spiked[0].name

        june = timeline.materialize(DMARC_SPIKE_MONTH)
        result = _fetch(june, target)
        assert result.failed_stage is PolicyFetchStage.TLS

        july = timeline.materialize(DMARC_SPIKE_MONTH + 1)
        result = _fetch(july, target)
        assert result.failed_stage is None

    def test_lucidgrow_mismatch_only_in_january(self, timeline):
        lucid = [p for p in timeline.all_plans()
                 if p.email_provider == "Lucidgrow"]
        assert lucid
        target = lucid[0].name

        january = timeline.materialize(LUCIDGROW_MONTH)
        result = _fetch(january, target)
        mx = january.deployed[target].mx_record_hostnames()
        from repro.core.matching import policy_covers_mx
        assert not any(policy_covers_mx(result.policy, m) for m in mx)

        february = timeline.materialize(LUCIDGROW_MONTH + 1)
        result = _fetch(february, target)
        mx = february.deployed[target].mx_record_hostnames()
        assert any(policy_covers_mx(result.policy, m) for m in mx)

    def test_porkbun_absent_before_august(self, timeline):
        early = timeline.materialize(0)
        assert not any(name.startswith("pb") for name in early.deployed)
        final = timeline.materialize(11)
        porkbun = [name for name in final.deployed
                   if name.startswith("pb")]
        assert porkbun
        # Their policy hosts present CN-mismatched certificates.
        result = _fetch(final, porkbun[0])
        assert result.failed_stage is PolicyFetchStage.TLS

    def test_laura_norman_present_throughout(self, timeline):
        for month in (0, 11):
            snapshot = timeline.materialize(month)
            assert "laura-norman.com" in snapshot.deployed


class TestMaterialisationInvariants:
    def test_deployed_matches_adoption(self, timeline):
        snapshot = timeline.materialize(5)
        week = timeline.week_of(snapshot.instant)
        expected = {p.name for p in timeline.all_plans()
                    if p.adopted_by_week(week)}
        assert set(snapshot.deployed) == expected

    def test_every_deployed_domain_resolves_record(self, timeline):
        snapshot = timeline.materialize(0)
        fetcher = PolicyFetcher(snapshot.world.resolver,
                                snapshot.world.https_client)
        sample = sorted(snapshot.deployed)[:40]
        for domain in sample:
            result = fetcher.lookup_record(domain)
            assert result.sts_enabled, domain

    def test_worlds_are_independent(self, timeline):
        a = timeline.materialize(0)
        b = timeline.materialize(0)
        assert a.world is not b.world
        # Mutating one world leaves the other intact.
        domain = sorted(a.deployed)[0]
        a.deployed[domain].remove_record()
        assert _fetch(b, domain).sts_enabled

    def test_plans_in_snapshot_metadata(self, timeline):
        snapshot = timeline.materialize(3)
        assert set(snapshot.plans) == set(snapshot.deployed)
