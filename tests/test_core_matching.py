"""Unit tests for mx pattern matching (RFC 8461 §4.1)."""

import pytest

from repro.core.matching import (
    mx_pattern_matches, policy_covers_mx, uncovered_mx_hosts,
    unused_patterns,
)
from repro.core.policy import Policy, PolicyMode


class TestExactMatching:
    def test_identical(self):
        assert mx_pattern_matches("mail.example.com", "mail.example.com")

    def test_case_insensitive(self):
        assert mx_pattern_matches("MAIL.example.com", "mail.EXAMPLE.com")

    def test_trailing_dot_ignored(self):
        assert mx_pattern_matches("mail.example.com", "mail.example.com.")
        assert mx_pattern_matches("mail.example.com.", "mail.example.com")

    def test_different_hosts(self):
        assert not mx_pattern_matches("mail.example.com", "mx.example.com")

    def test_empty_inputs(self):
        assert not mx_pattern_matches("", "mail.example.com")
        assert not mx_pattern_matches("mail.example.com", "")


class TestWildcardMatching:
    def test_wildcard_matches_one_label(self):
        assert mx_pattern_matches("*.example.com", "mx1.example.com")

    def test_wildcard_does_not_match_apex(self):
        assert not mx_pattern_matches("*.example.com", "example.com")

    def test_wildcard_does_not_cross_labels(self):
        assert not mx_pattern_matches("*.example.com", "a.b.example.com")

    def test_wildcard_requires_nonempty_label(self):
        assert not mx_pattern_matches("*.example.com", ".example.com")

    def test_bare_wildcard_invalid(self):
        assert not mx_pattern_matches("*.", "example.com")


class TestPolicyCoverage:
    def make_policy(self, *patterns):
        return Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                      max_age=86400, mx_patterns=patterns)

    def test_any_pattern_suffices(self):
        policy = self.make_policy("a.example.com", "*.example.net")
        assert policy_covers_mx(policy, "mx.example.net")
        assert policy_covers_mx(policy, "a.example.com")
        assert not policy_covers_mx(policy, "b.example.com")

    def test_sequence_of_patterns_accepted(self):
        assert policy_covers_mx(["mail.example.com"], "mail.example.com")

    def test_uncovered_hosts(self):
        policy = self.make_policy("mail.example.com")
        uncovered = uncovered_mx_hosts(
            policy, ["mail.example.com", "backup.example.com"])
        assert uncovered == ["backup.example.com"]

    def test_unused_patterns_finds_stale_entries(self):
        # A migrated domain: patterns list the old provider's hosts.
        policy = self.make_policy("mx.oldhost.net", "mail.example.com")
        stale = unused_patterns(policy, ["mail.example.com"])
        assert stale == ["mx.oldhost.net"]

    def test_all_patterns_used(self):
        policy = self.make_policy("*.example.com")
        assert unused_patterns(policy, ["mx1.example.com"]) == []


class TestCanonicalisationParity:
    """Pattern matching and DNS parsing must canonicalise identically
    (the shared ``canonical_host`` helper is the fix)."""

    def test_case_and_dot_insensitive_match(self):
        assert mx_pattern_matches("MAIL.Example.COM.", "mail.example.com")
        assert mx_pattern_matches("mail.example.com", " MAIL.EXAMPLE.COM. ")

    def test_sharp_s_folds_like_dns_name(self):
        from repro.dns.name import canonical_host
        # lower() keeps "ẞ" as "ß" while DnsName.parse casefolds to
        # "ss"; with a shared helper both sides agree.
        assert mx_pattern_matches("straẞe.example", "strasse.example")
        assert canonical_host("straẞe.example") == "strasse.example"

    def test_empty_label_hosts_never_match(self):
        assert not mx_pattern_matches("a..b", "a..b")
        assert not mx_pattern_matches("*.example.com", "mx..example.com")
