"""Unit tests for the TLS handshake simulation and the HTTPS stack."""

import pytest

from repro.clock import Clock, Instant
from repro.dns.name import DnsName
from repro.dns.records import ARecord, CnameRecord
from repro.dns.resolver import Resolver
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.errors import PolicyFetchStage, TlsError, TlsFailure
from repro.netsim.ip import IpAddress, IpPool
from repro.netsim.network import Network, TcpBehavior
from repro.pki.ca import CertificateAuthority, TrustStore
from repro.pki.certificate import CertTemplate, make_self_signed
from repro.tls.handshake import TlsEndpoint, handshake
from repro.web.client import HttpsClient
from repro.web.server import (
    HTTPS_PORT, HttpResponse, WebServer, WELL_KNOWN_STS_PATH,
)


@pytest.fixture
def clock():
    return Clock(Instant.parse("2024-06-01"))


@pytest.fixture
def ca(clock):
    return CertificateAuthority("CA", clock)


@pytest.fixture
def store(ca):
    return TrustStore([ca.root])


class TestTlsEndpoint:
    def test_sni_selects_exact_certificate(self, ca):
        endpoint = TlsEndpoint()
        a = ca.issue(CertTemplate(["a.example.com"]))
        b = ca.issue(CertTemplate(["b.example.com"]))
        endpoint.install("a.example.com", a)
        endpoint.install("b.example.com", b)
        assert handshake(endpoint, "b.example.com").certificate is b

    def test_wildcard_pattern_selection(self, ca):
        endpoint = TlsEndpoint()
        cert = ca.issue(CertTemplate(["*.example.com"]))
        endpoint.install("*.example.com", cert)
        assert handshake(endpoint, "xyz.example.com").certificate is cert

    def test_default_certificate_fallback(self, ca):
        endpoint = TlsEndpoint()
        default = ca.issue(CertTemplate(["shared.host.net"]))
        endpoint.install("shared.host.net", default, default=True)
        session = handshake(endpoint, "unrelated.org")
        assert session.certificate is default

    def test_strict_sni_alerts(self, ca):
        endpoint = TlsEndpoint(strict_sni=True)
        endpoint.install("a.example.com",
                         ca.issue(CertTemplate(["a.example.com"])))
        with pytest.raises(TlsError) as excinfo:
            handshake(endpoint, "b.example.com")
        assert excinfo.value.failure is TlsFailure.NO_CERTIFICATE

    def test_alert_for_specific_sni(self, ca):
        # The DMARCReport pattern: shared host, one customer's name
        # gets a fatal alert.
        endpoint = TlsEndpoint()
        endpoint.install("*.host.net", ca.issue(CertTemplate(["*.host.net"])),
                         default=True)
        endpoint.alert_for("mta-sts.customer.com")
        with pytest.raises(TlsError) as excinfo:
            handshake(endpoint, "mta-sts.customer.com")
        assert excinfo.value.failure is TlsFailure.NO_CERTIFICATE

    def test_install_clears_alert(self, ca):
        endpoint = TlsEndpoint()
        endpoint.alert_for("x.com")
        endpoint.install("x.com", ca.issue(CertTemplate(["x.com"])))
        assert handshake(endpoint, "x.com").certificate is not None

    def test_no_tls_support(self):
        endpoint = TlsEndpoint(enabled=False)
        with pytest.raises(TlsError) as excinfo:
            handshake(endpoint, "x.com")
        assert excinfo.value.failure is TlsFailure.NO_TLS_SUPPORT

    def test_validation_inline(self, ca, store, clock):
        endpoint = TlsEndpoint()
        endpoint.install("x.com", ca.issue(CertTemplate(["y.com"])),
                         default=True)
        with pytest.raises(TlsError) as excinfo:
            handshake(endpoint, "x.com", trust_store=store, now=clock.now())
        assert excinfo.value.failure is TlsFailure.HOSTNAME_MISMATCH

    def test_retrieval_mode_skips_validation(self, ca, clock):
        endpoint = TlsEndpoint()
        endpoint.install("x.com", make_self_signed(CertTemplate(["x.com"]),
                                                   clock.now()), default=True)
        session = handshake(endpoint, "x.com")
        assert session.certificate.self_signed
        assert not session.validated

    def test_validation_requires_now(self, ca, store):
        endpoint = TlsEndpoint()
        endpoint.install("x.com", ca.issue(CertTemplate(["x.com"])))
        with pytest.raises(ValueError):
            handshake(endpoint, "x.com", trust_store=store)


@pytest.fixture
def https_world(clock, ca, store):
    network = Network()
    pool = IpPool()
    ns = AuthoritativeServer("ns", pool.allocate(), network)
    zone = Zone(apex=DnsName.parse("example.com"))
    web_ip = IpAddress.v4(10, 20, 0, 1)
    zone.add(ARecord(DnsName.parse("mta-sts.example.com"), 300, web_ip))
    ns.add_zone(zone)
    resolver = Resolver(network, clock)
    resolver.delegate("example.com", [ns.ip])
    web = WebServer("policy", web_ip, network)
    cert = ca.issue(CertTemplate(["mta-sts.example.com"]))
    web.tls.install("mta-sts.example.com", cert, default=True)
    web.host_policy("example.com",
                    "version: STSv1\nmode: testing\nmx: m.example.com\n"
                    "max_age: 86400\n")
    client = HttpsClient(network, resolver, store, clock)
    return network, resolver, web, client, zone


class TestHttpsClient:
    def test_successful_fetch(self, https_world):
        *_, client, _ = https_world
        outcome = client.fetch("mta-sts.example.com", WELL_KNOWN_STS_PATH)
        assert outcome.ok
        assert "STSv1" in outcome.body

    def test_dns_failure_stage(self, https_world):
        *_, client, _ = https_world
        outcome = client.fetch("mta-sts.ghost.com", WELL_KNOWN_STS_PATH)
        assert outcome.failed_stage is PolicyFetchStage.DNS

    def test_tcp_failure_stage(self, https_world):
        network, resolver, web, client, zone = https_world
        network.set_behavior(web.ip, HTTPS_PORT, TcpBehavior.REFUSE)
        outcome = client.fetch("mta-sts.example.com", WELL_KNOWN_STS_PATH)
        assert outcome.failed_stage is PolicyFetchStage.TCP

    def test_tls_failure_stage(self, https_world, clock):
        network, resolver, web, client, zone = https_world
        bad = make_self_signed(CertTemplate(["mta-sts.example.com"]),
                               clock.now())
        web.tls.install("mta-sts.example.com", bad)
        outcome = client.fetch("mta-sts.example.com", WELL_KNOWN_STS_PATH)
        assert outcome.failed_stage is PolicyFetchStage.TLS
        assert outcome.tls_failure is TlsFailure.SELF_SIGNED

    def test_http_404_stage(self, https_world):
        network, resolver, web, client, zone = https_world
        web.unhost_policy("example.com")
        outcome = client.fetch("mta-sts.example.com", WELL_KNOWN_STS_PATH)
        assert outcome.failed_stage is PolicyFetchStage.HTTP
        assert outcome.status == 404

    def test_redirect_is_an_error(self, https_world):
        # RFC 8461 §3.3: senders MUST NOT follow redirects.
        network, resolver, web, client, zone = https_world
        web.set_route("mta-sts.example.com", WELL_KNOWN_STS_PATH,
                      HttpResponse(301, "moved"))
        outcome = client.fetch("mta-sts.example.com", WELL_KNOWN_STS_PATH)
        assert outcome.failed_stage is PolicyFetchStage.HTTP

    def test_cname_chased_to_provider(self, https_world, ca, clock):
        network, resolver, web, client, zone = https_world
        # Delegate customer.example.com's policy host via CNAME to the
        # same web server.
        zone.add(CnameRecord(DnsName.parse("mta-sts.delegated.example.com"),
                             300, DnsName.parse("mta-sts.example.com")))
        cert = ca.issue(CertTemplate(["mta-sts.delegated.example.com"]))
        web.tls.install("mta-sts.delegated.example.com", cert)
        web.set_route("mta-sts.delegated.example.com", WELL_KNOWN_STS_PATH,
                      HttpResponse.ok("version: STSv1\nmode: none\n"
                                      "max_age: 60\n"))
        outcome = client.fetch("mta-sts.delegated.example.com",
                               WELL_KNOWN_STS_PATH)
        assert outcome.ok
        assert "none" in outcome.body


class TestWebServer:
    def test_vhost_routing(self, https_world):
        *_, web, client, zone = https_world
        web.set_route("other.example.com", "/x", HttpResponse.ok("hi"))
        assert web.handle("other.example.com", "/x").body == "hi"
        assert web.handle("other.example.com", "/y").status == 404

    def test_hosted_policy_domains(self, https_world):
        network, resolver, web, client, zone = https_world
        assert web.hosted_policy_domains() == ["example.com"]

    def test_request_counter(self, https_world):
        network, resolver, web, client, zone = https_world
        before = web.request_count
        client.fetch("mta-sts.example.com", WELL_KNOWN_STS_PATH)
        assert web.request_count == before + 1
