"""Shared fixtures: a small wired world and common deployments."""

from __future__ import annotations

import pytest

from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode
from repro.core.validator import MtaStsValidator
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.world import World


@pytest.fixture
def world() -> World:
    return World()


@pytest.fixture
def fetcher(world) -> PolicyFetcher:
    return PolicyFetcher(world.resolver, world.https_client)


@pytest.fixture
def validator(world, fetcher) -> MtaStsValidator:
    return MtaStsValidator(world.resolver, fetcher, world.smtp_probe)


@pytest.fixture
def enforce_policy() -> Policy:
    return Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                  max_age=86400, mx_patterns=("mail.example.com",))


@pytest.fixture
def simple_domain(world):
    """A correctly configured self-managed domain."""
    return deploy_domain(world, DomainSpec(domain="example.com"))
