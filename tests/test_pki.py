"""Unit tests for the simulated PKI: certificates, CAs, validation, ACME."""

import pytest

from repro.clock import DAY, Clock, Instant
from repro.errors import TlsFailure
from repro.pki.acme import AcmeChallengeError, AcmeService
from repro.pki.ca import CertificateAuthority, TrustStore
from repro.pki.certificate import (
    CertTemplate, hostname_matches, make_self_signed,
)
from repro.pki.validation import classify_failure, validate_chain, verify_hostname


@pytest.fixture
def clock():
    return Clock(Instant.parse("2024-01-01"))


@pytest.fixture
def ca(clock):
    return CertificateAuthority("Test CA", clock)


@pytest.fixture
def store(ca):
    return TrustStore([ca.root])


class TestHostnameMatching:
    def test_exact(self):
        assert hostname_matches("mail.example.com", "mail.example.com")

    def test_case_and_dots(self):
        assert hostname_matches("Mail.Example.COM.", "mail.example.com")

    def test_wildcard_single_label(self):
        assert hostname_matches("*.example.com", "mta-sts.example.com")
        assert not hostname_matches("*.example.com", "a.b.example.com")
        assert not hostname_matches("*.example.com", "example.com")

    def test_empty(self):
        assert not hostname_matches("", "example.com")


class TestCertificates:
    def test_issued_cert_validates(self, ca, store, clock):
        cert = ca.issue(CertTemplate(["mail.example.com"]))
        result = validate_chain(cert, "mail.example.com", store, clock.now())
        assert result.valid

    def test_san_takes_precedence_over_cn(self, ca):
        cert = ca.issue(CertTemplate(["a.example.com", "b.example.com"]))
        assert cert.covers_hostname("b.example.com")
        assert not cert.covers_hostname("c.example.com")

    def test_cn_fallback_when_no_san(self, ca, clock):
        from dataclasses import replace
        cert = ca.issue(CertTemplate(["mail.example.com"]))
        cn_only = replace(cert, san=())
        assert cn_only.covers_hostname("mail.example.com")

    def test_hostname_mismatch(self, ca, store, clock):
        cert = ca.issue(CertTemplate(["example.com"]))
        result = validate_chain(cert, "mta-sts.example.com", store,
                                clock.now())
        assert not result.valid
        assert result.failure is TlsFailure.HOSTNAME_MISMATCH
        assert classify_failure(result) == "cn-mismatch"

    def test_expired(self, ca, store, clock):
        cert = ca.issue(CertTemplate(["x.com"], lifetime_days=30),
                        backdate_days=60)
        result = validate_chain(cert, "x.com", store, clock.now())
        assert result.failure is TlsFailure.EXPIRED
        assert classify_failure(result) == "expired"

    def test_not_yet_valid(self, ca, store, clock):
        cert = ca.issue(CertTemplate(["x.com"]), backdate_days=-10)
        result = validate_chain(cert, "x.com", store, clock.now())
        assert result.failure is TlsFailure.NOT_YET_VALID

    def test_self_signed(self, store, clock):
        cert = make_self_signed(CertTemplate(["x.com"]), clock.now())
        result = validate_chain(cert, "x.com", store, clock.now())
        assert result.failure is TlsFailure.SELF_SIGNED
        assert classify_failure(result) == "self-signed"

    def test_trusted_self_signed_root_pattern(self, clock, store):
        # A self-signed cert explicitly added as a root is trusted.
        from dataclasses import replace
        cert = make_self_signed(CertTemplate(["private.corp"]), clock.now())
        root_like = replace(cert, is_ca=True)
        store.add_root(root_like)
        result = validate_chain(root_like, "private.corp", store, clock.now())
        assert result.valid

    def test_untrusted_issuer(self, clock, store):
        other_ca = CertificateAuthority("Rogue CA", Clock(clock.now()))
        cert = other_ca.issue(CertTemplate(["x.com"]))
        result = validate_chain(cert, "x.com", store, clock.now())
        assert result.failure is TlsFailure.UNTRUSTED_ROOT

    def test_revoked(self, ca, store, clock):
        cert = ca.revoke(ca.issue(CertTemplate(["x.com"])))
        result = validate_chain(cert, "x.com", store, clock.now())
        assert result.failure is TlsFailure.REVOKED

    def test_missing_certificate(self, store, clock):
        result = validate_chain(None, "x.com", store, clock.now())
        assert result.failure is TlsFailure.NO_CERTIFICATE

    def test_verify_hostname_only(self, ca):
        cert = ca.issue(CertTemplate(["*.example.com"]))
        assert verify_hostname(cert, "mta-sts.example.com").valid
        assert not verify_hostname(cert, "other.org").valid

    def test_signature_binds_issuer(self, ca, store, clock):
        from dataclasses import replace
        cert = ca.issue(CertTemplate(["x.com"]))
        tampered = replace(cert, san=("y.com",), subject_cn="y.com")
        result = validate_chain(tampered, "y.com", store, clock.now())
        assert not result.valid

    def test_fingerprints_stable_and_distinct(self, ca):
        a = ca.issue(CertTemplate(["a.com"]))
        b = ca.issue(CertTemplate(["b.com"]))
        assert a.spki_fingerprint() != b.spki_fingerprint()
        assert a.cert_fingerprint() == a.cert_fingerprint()


class TestTrustStore:
    def test_add_requires_ca(self, ca, clock):
        with pytest.raises(ValueError):
            TrustStore([ca.issue(CertTemplate(["leaf.com"]))])

    def test_remove_root(self, ca, store, clock):
        store.remove_root(ca.root)
        cert = ca.issue(CertTemplate(["x.com"]))
        assert not validate_chain(cert, "x.com", store, clock.now()).valid


class TestAcme:
    @pytest.fixture
    def acme_setup(self, clock, ca):
        from repro.dns.name import DnsName
        from repro.dns.records import ARecord
        from repro.dns.resolver import Resolver
        from repro.dns.server import AuthoritativeServer
        from repro.dns.zone import Zone
        from repro.netsim.ip import IpAddress, IpPool
        from repro.netsim.network import Network

        network = Network()
        pool = IpPool()
        server = AuthoritativeServer("ns", pool.allocate(), network)
        zone = Zone(apex=DnsName.parse("example.com"))
        zone.add(ARecord(DnsName.parse("mta-sts.example.com"), 300,
                         IpAddress.v4(10, 5, 5, 5)))
        server.add_zone(zone)
        resolver = Resolver(network, clock)
        resolver.delegate("example.com", [server.ip])
        return AcmeService(ca, resolver, clock)

    def test_issue_with_control(self, acme_setup):
        cert = acme_setup.issue_dv(["mta-sts.example.com"], {"10.5.5.5"})
        assert cert.covers_hostname("mta-sts.example.com")

    def test_issue_without_control_fails(self, acme_setup):
        with pytest.raises(AcmeChallengeError):
            acme_setup.issue_dv(["mta-sts.example.com"], {"10.6.6.6"})

    def test_unresolvable_name_fails(self, acme_setup):
        with pytest.raises(AcmeChallengeError):
            acme_setup.issue_dv(["mta-sts.ghost.com"], {"10.5.5.5"})

    def test_can_renew_tracks_dns(self, acme_setup):
        assert acme_setup.can_renew("mta-sts.example.com", {"10.5.5.5"})
        assert not acme_setup.can_renew("mta-sts.example.com", {"10.7.7.7"})
