"""Tests for deployment/removal procedures (RFC 8461, paper §2.6)."""

import pytest

from repro.clock import DAY, Duration
from repro.core.lifecycle import (
    LifecycleStep, StepKind, check_removal_sequence, plan_deployment,
    plan_removal,
)
from repro.core.policy import Policy, PolicyMode


@pytest.fixture
def enforce_policy():
    return Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                  max_age=14 * 86400, mx_patterns=("mail.example.com",))


class TestPlans:
    def test_deployment_policy_before_record(self, enforce_policy):
        plan = plan_deployment("example.com", enforce_policy)
        kinds = [s.kind for s in plan.steps]
        assert kinds.index(StepKind.PUBLISH_POLICY) < \
            kinds.index(StepKind.PUBLISH_RECORD)

    def test_removal_follows_rfc_order(self, enforce_policy):
        plan = plan_removal("example.com", enforce_policy)
        kinds = [s.kind for s in plan.steps]
        assert kinds == [StepKind.PUBLISH_POLICY, StepKind.BUMP_RECORD_ID,
                         StepKind.WAIT, StepKind.REMOVE_RECORD,
                         StepKind.REMOVE_POLICY, StepKind.REMOVE_POLICY_HOST]

    def test_removal_none_policy(self, enforce_policy):
        plan = plan_removal("example.com", enforce_policy)
        none_step = plan.steps[0]
        assert none_step.policy.mode is PolicyMode.NONE
        assert none_step.policy.max_age <= 86400

    def test_removal_wait_covers_previous_max_age(self, enforce_policy):
        plan = plan_removal("example.com", enforce_policy)
        wait = next(s for s in plan.steps if s.kind is StepKind.WAIT)
        assert wait.wait.seconds >= enforce_policy.max_age

    def test_removal_plan_passes_its_own_check(self, enforce_policy):
        plan = plan_removal("example.com", enforce_policy)
        check = check_removal_sequence(plan.steps, enforce_policy)
        assert check.compliant, check.problems


class TestRemovalLinting:
    def test_abrupt_removal_flagged(self, enforce_policy):
        steps = [LifecycleStep(StepKind.REMOVE_RECORD),
                 LifecycleStep(StepKind.REMOVE_POLICY)]
        check = check_removal_sequence(steps, enforce_policy)
        assert not check.compliant
        assert any("mode=none" in p for p in check.problems)
        assert any("before the waiting period" in p for p in check.problems)

    def test_missing_id_bump_flagged(self, enforce_policy):
        none_policy = Policy(version="STSv1", mode=PolicyMode.NONE,
                             max_age=86400, mx_patterns=())
        steps = [LifecycleStep(StepKind.PUBLISH_POLICY, policy=none_policy),
                 LifecycleStep(StepKind.WAIT,
                               wait=Duration(enforce_policy.max_age)),
                 LifecycleStep(StepKind.REMOVE_RECORD)]
        check = check_removal_sequence(steps, enforce_policy)
        assert any("bumping the record id" in p for p in check.problems)

    def test_short_wait_flagged(self, enforce_policy):
        none_policy = Policy(version="STSv1", mode=PolicyMode.NONE,
                             max_age=86400, mx_patterns=())
        steps = [LifecycleStep(StepKind.PUBLISH_POLICY, policy=none_policy),
                 LifecycleStep(StepKind.BUMP_RECORD_ID),
                 LifecycleStep(StepKind.WAIT, wait=DAY),
                 LifecycleStep(StepKind.REMOVE_RECORD)]
        check = check_removal_sequence(steps, enforce_policy)
        assert any("max_age" in p for p in check.problems)

    def test_cumulative_waits_count(self, enforce_policy):
        none_policy = Policy(version="STSv1", mode=PolicyMode.NONE,
                             max_age=86400, mx_patterns=())
        steps = [LifecycleStep(StepKind.PUBLISH_POLICY, policy=none_policy),
                 LifecycleStep(StepKind.BUMP_RECORD_ID),
                 LifecycleStep(StepKind.WAIT, wait=DAY * 7),
                 LifecycleStep(StepKind.WAIT, wait=DAY * 7),
                 LifecycleStep(StepKind.REMOVE_RECORD),
                 LifecycleStep(StepKind.REMOVE_POLICY),
                 LifecycleStep(StepKind.REMOVE_POLICY_HOST)]
        check = check_removal_sequence(steps, enforce_policy)
        assert check.compliant, check.problems
