"""Unit tests for the simulated DNSSEC chain and DANE validation."""

import pytest

from repro.core.dane import DaneValidator, TlsaVerdict, verify_dane
from repro.dns.dnssec import ChainStatus, DnssecAuthority, ZoneSigningState
from repro.dns.name import DnsName
from repro.dns.records import TlsaRecord
from repro.errors import DnssecBogus
from repro.pki.certificate import CertTemplate, make_self_signed
from repro.clock import Instant


def n(text):
    return DnsName.parse(text)


class TestDnssecChain:
    def test_fully_signed_chain_is_secure(self):
        authority = DnssecAuthority()
        authority.sign_zone("com")
        authority.sign_zone("example.com")
        assert authority.validate("mail.example.com") is ChainStatus.SECURE

    def test_unsigned_zone_is_insecure(self):
        authority = DnssecAuthority()
        authority.sign_zone("com")
        authority.set_state(ZoneSigningState(n("example.com"), signed=False))
        assert authority.validate("mail.example.com") is ChainStatus.INSECURE

    def test_missing_ds_is_insecure(self):
        authority = DnssecAuthority()
        authority.sign_zone("com")
        authority.sign_zone("example.com", publish_ds=False)
        assert authority.validate("example.com") is ChainStatus.INSECURE

    def test_ds_mismatch_is_bogus(self):
        authority = DnssecAuthority()
        authority.sign_zone("com")
        state = authority.sign_zone("example.com")
        state.ds_mismatch = True
        assert authority.validate("example.com") is ChainStatus.BOGUS

    def test_expired_signatures_are_bogus(self):
        authority = DnssecAuthority()
        authority.sign_zone("com")
        state = authority.sign_zone("example.com")
        state.signatures_expired = True
        assert authority.validate("mail.example.com") is ChainStatus.BOGUS

    def test_no_zones_at_all_is_insecure(self):
        authority = DnssecAuthority()
        assert authority.validate("example.com") is ChainStatus.INSECURE

    def test_below_insecure_delegation_never_bogus(self):
        authority = DnssecAuthority()
        authority.set_state(ZoneSigningState(n("com"), signed=False))
        state = authority.sign_zone("example.com")
        state.ds_mismatch = True
        assert authority.validate("example.com") is ChainStatus.INSECURE

    def test_require_secure_raises(self):
        authority = DnssecAuthority()
        authority.sign_zone("com")
        with pytest.raises(DnssecBogus):
            authority.require_secure("unsigned-zone.com")


class TestVerifyDane:
    def make_cert(self):
        return make_self_signed(CertTemplate(["mail.example.com"]),
                                Instant.parse("2024-01-01"))

    def tlsa(self, association, usage=3, selector=1):
        return TlsaRecord(n("_25._tcp.mail.example.com"), 3600, usage,
                          selector, 1, association)

    def test_dane_ee_spki_match(self):
        cert = self.make_cert()
        verdict = verify_dane([self.tlsa(cert.spki_fingerprint())], cert)
        assert verdict.matched
        assert verdict.detail == "DANE-EE match"

    def test_dane_ee_full_cert_match(self):
        cert = self.make_cert()
        record = self.tlsa(cert.cert_fingerprint(), selector=0)
        assert verify_dane([record], cert).matched

    def test_mismatch(self):
        cert = self.make_cert()
        verdict = verify_dane([self.tlsa("0" * 56)], cert)
        assert not verdict.matched
        assert verdict.usable_records == 1

    def test_dane_ta_matches_issuer(self):
        cert = self.make_cert()
        record = self.tlsa(cert.issuer_key.fingerprint(), usage=2)
        verdict = verify_dane([record], cert)
        assert verdict.matched
        assert verdict.detail == "DANE-TA match"

    def test_pkix_usages_unusable_for_smtp(self):
        cert = self.make_cert()
        records = [self.tlsa(cert.spki_fingerprint(), usage=0),
                   self.tlsa(cert.spki_fingerprint(), usage=1)]
        verdict = verify_dane(records, cert)
        assert not verdict.matched
        assert verdict.usable_records == 0

    def test_no_certificate(self):
        verdict = verify_dane([self.tlsa("ab")], None)
        assert not verdict.matched

    def test_any_matching_record_suffices(self):
        cert = self.make_cert()
        records = [self.tlsa("0" * 56),
                   self.tlsa(cert.spki_fingerprint())]
        assert verify_dane(records, cert).matched


class TestDaneValidator:
    def test_full_flow(self, world):
        from repro.ecosystem.deployment import DomainSpec, deploy_domain
        deployed = deploy_domain(world, DomainSpec(domain="dane.com",
                                                   deploy_sts=False))
        mx = deployed.mx_hosts[0]
        cert = mx.tls.select_certificate(mx.hostname)
        deployed.zone.add(TlsaRecord(
            n(f"_25._tcp.{mx.hostname}"), 3600, 3, 1, 1,
            cert.spki_fingerprint()))
        world.dnssec.sign_zone("dane.com")
        validator = DaneValidator(world.resolver, world.dnssec)
        assert validator.domain_has_dane("dane.com")
        verdict = validator.verify_mx(mx.hostname, cert)
        assert verdict.matched

    def test_insecure_chain_disables_dane(self, world):
        from repro.ecosystem.deployment import DomainSpec, deploy_domain
        deployed = deploy_domain(world, DomainSpec(domain="nodnssec.com",
                                                   deploy_sts=False))
        mx = deployed.mx_hosts[0]
        cert = mx.tls.select_certificate(mx.hostname)
        deployed.zone.add(TlsaRecord(
            n(f"_25._tcp.{mx.hostname}"), 3600, 3, 1, 1,
            cert.spki_fingerprint()))
        # zone not signed: TLSA unusable
        validator = DaneValidator(world.resolver, world.dnssec)
        assert not validator.domain_has_dane("nodnssec.com")
        assert not validator.verify_mx(mx.hostname, cert).matched

    def test_no_tlsa_records(self, world):
        from repro.ecosystem.deployment import DomainSpec, deploy_domain
        deployed = deploy_domain(world, DomainSpec(domain="plain.com",
                                                   deploy_sts=False))
        world.dnssec.sign_zone("plain.com")
        validator = DaneValidator(world.resolver, world.dnssec)
        assert not validator.domain_has_dane("plain.com")
