"""The scan-trace layer: determinism, metrics equality, CLI surface.

The load-bearing invariants:

* serial and threaded scans of identical worlds serialise to
  **byte-identical** JSONL traces;
* the trace's merged metric counters are exactly the counter-delta
  :class:`~repro.measurement.executor.ScanStats` the executor computes
  around the same scan;
* span ids are pure functions of (virtual instant, month, domain) —
  no wall time anywhere in a trace.
"""

from __future__ import annotations

import json

import pytest

from repro import trace
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.measurement.executor import ScanExecutor, ScanStats
from repro.netsim.network import FaultPlan

SCALE = 0.003
SEED = 1789

INT_STATS = (
    "domains_scanned", "dns_queries", "dns_cache_hits",
    "dns_negative_cache_hits", "policy_fetches", "smtp_probes",
    "smtp_probe_cache_hits", "pkix_validations", "pkix_cache_hits",
    "connect_retries", "faults_injected", "transient_domains",
)


def run_scan(backend, jobs, *, fault_seed=None, fault_rate=0.3,
             scale=SCALE, seed=SEED):
    """One traced scan over a **fresh** world (shared caches would
    otherwise leak state between the serial and threaded runs)."""
    timeline = EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=scale, seed=seed)))
    month = len(timeline.scan_instants) - 1
    materialized = timeline.materialize(month)
    if fault_seed is not None:
        materialized.world.network.install_fault_plan(
            FaultPlan.seeded(seed=fault_seed, rate=fault_rate))
    executor = ScanExecutor(backend=backend, jobs=jobs, trace=True)
    store, stats = executor.scan(
        materialized.world, materialized.deployed.keys(), month,
        instant=materialized.instant)
    return executor.last_trace, stats, store


class TestByteIdentity:
    def test_serial_and_threaded_traces_identical(self):
        report_serial, _, store_serial = run_scan("serial", 1)
        report_threaded, _, store_threaded = run_scan("threaded", 7)
        assert report_serial.to_jsonl() == report_threaded.to_jsonl()
        assert (store_serial.canonical_bytes()
                == store_threaded.canonical_bytes())

    def test_identical_under_fault_injection(self):
        report_serial, stats_serial, _ = run_scan(
            "serial", 1, fault_seed=7)
        report_threaded, stats_threaded, _ = run_scan(
            "threaded", 8, fault_seed=7)
        assert stats_serial.faults_injected > 0
        assert stats_serial.transient_domains > 0
        assert report_serial.to_jsonl() == report_threaded.to_jsonl()
        for name in INT_STATS:
            assert (getattr(stats_serial, name)
                    == getattr(stats_threaded, name)), name

    def test_repeated_runs_identical(self):
        first, _, _ = run_scan("threaded", 5, fault_seed=3)
        second, _, _ = run_scan("threaded", 5, fault_seed=3)
        assert first.to_jsonl() == second.to_jsonl()


class TestMetricsEqualStats:
    """The trace registry is a *view* over the same scan the legacy
    counter-delta stats measure; the two must agree exactly."""

    @pytest.mark.parametrize("backend,jobs,fault_seed", [
        ("serial", 1, None),
        ("threaded", 6, None),
        ("serial", 1, 11),
        ("threaded", 6, 11),
    ])
    def test_counters_match(self, backend, jobs, fault_seed):
        report, stats, _ = run_scan(backend, jobs, fault_seed=fault_seed)
        view = ScanStats.from_metrics(
            report.metrics, backend=backend, jobs=jobs)
        for name in INT_STATS:
            assert getattr(view, name) == getattr(stats, name), name
        # Backoff: the registry keeps integer microseconds, the legacy
        # network counter a float sum — equal to rounding.
        assert (abs(view.retry_backoff_seconds
                    - stats.retry_backoff_seconds) < 1e-3)


class TestJsonlFormat:
    def test_record_layout(self):
        report, stats, _ = run_scan("serial", 1)
        lines = report.to_jsonl().splitlines()
        records = [json.loads(line) for line in lines]
        kinds = [record["type"] for record in records]
        # domains, then resources, then exactly one trailing metrics
        # record — and the sections are internally sorted.
        assert kinds == (["domain"] * kinds.count("domain")
                         + ["resource"] * kinds.count("resource")
                         + ["metrics"])
        domains = [(r["month"], r["domain"]) for r in records
                   if r["type"] == "domain"]
        assert domains == sorted(domains)
        assert len(domains) == stats.domains_scanned
        resources = [r["key"] for r in records if r["type"] == "resource"]
        assert resources == sorted(resources)
        metrics = records[-1]
        assert metrics["counters"]["scan.domains"] == stats.domains_scanned

    def test_span_ids_deterministic(self):
        report, _, _ = run_scan("serial", 1)
        (month, domain) = sorted(report.domain_spans)[0]
        span = report.domain_spans[(month, domain)]
        import hashlib
        seed = f"{report.instant_epoch}:{month}:{domain}"
        expected = hashlib.sha256(seed.encode()).hexdigest()[:16]
        assert span.span_id == expected
        for index, child in enumerate(span.children, start=1):
            assert child.span_id.startswith(expected + ".")

    def test_write_jsonl_round_trips(self, tmp_path):
        report, _, _ = run_scan("serial", 1)
        path = tmp_path / "trace.jsonl"
        count = report.write_jsonl(str(path))
        assert count == len(report.to_jsonl().splitlines())
        assert path.read_text(encoding="utf-8") == report.to_jsonl()


class TestExplain:
    def test_explain_renders_tree_and_resources(self):
        report, _, _ = run_scan("serial", 1)
        domain = sorted(key[1] for key in report.domain_spans)[0]
        text = report.explain(domain)
        assert f"scan [{domain}]" in text
        assert "verdict" in text
        for stage in ("dns", "policy"):
            assert stage in text

    def test_unknown_domain(self):
        report, _, _ = run_scan("serial", 1)
        assert "no trace recorded" in report.explain("absent.example")

    def test_trace_summary_aggregates(self):
        from repro.analysis.report import render_trace_summary
        report, stats, _ = run_scan("serial", 1, fault_seed=5)
        text = render_trace_summary(report)
        assert "scan verdicts" in text
        assert "trace counters" in text
        assert "retry backoff" in text
        assert f"{stats.domains_scanned} domains" in text


class TestDisabledTracing:
    def test_no_report_and_no_recording(self):
        timeline = EcosystemTimeline(
            TimelineConfig(PopulationConfig(scale=0.002, seed=SEED)))
        month = len(timeline.scan_instants) - 1
        materialized = timeline.materialize(month)
        executor = ScanExecutor(backend="serial")
        store, stats = executor.scan(
            materialized.world, materialized.deployed.keys(), month)
        assert executor.last_trace is None
        assert trace.current_tracer() is None
        assert stats.domains_scanned > 0


class TestTracePrimitives:
    def test_micros(self):
        assert trace.micros(0.25) == 250_000
        assert trace.micros(0.0) == 0

    def test_histogram_merge_order_independent(self):
        samples = [trace.micros(s) for s in
                   (0.05, 0.3, 0.9, 2.5, 70.0, 0.3)]
        one = trace.Histogram()
        for sample in samples:
            one.observe_micros(sample)
        two = trace.Histogram()
        for sample in reversed(samples):
            two.observe_micros(sample)
        assert one.to_dict() == two.to_dict()
        assert one.observations == len(samples)
        assert one.counts[-1] == 1  # the 70s overflow sample

    def test_registry_merge(self):
        left, right = trace.MetricsRegistry(), trace.MetricsRegistry()
        left.count("x", 2)
        right.count("x", 3)
        right.count("y")
        right.observe("h", 100)
        left.merge(right)
        assert left.get("x") == 5
        assert left.get("y") == 1
        assert left.histograms["h"].total_micros == 100

    def test_bind_restores_previous(self):
        outer, inner = trace.Tracer(), trace.Tracer()
        with trace.bind(outer):
            assert trace.current_tracer() is outer
            with trace.bind(inner):
                assert trace.current_tracer() is inner
            assert trace.current_tracer() is outer
        assert trace.current_tracer() is None

    def test_helpers_noop_without_tracer(self):
        trace.count("nothing")
        trace.event("nothing", detail=1)
        with trace.child_span("x") as span:
            assert span is None
        with trace.resource_span("k", "x") as span:
            assert span is None

    def test_resource_span_keeps_first_recording(self):
        tracer = trace.Tracer()
        with trace.bind(tracer):
            with tracer.resource("net:k", "connect", "k"):
                trace.event("attempt", n=0)
            with tracer.resource("net:k", "connect", "k"):
                trace.event("attempt", n=0)
                trace.event("extra")
        assert len(tracer.resource_spans) == 1
        assert len(tracer.resource_spans["net:k"].events) == 1


class TestCliTrace:
    def test_audit_trace_and_explain(self, tmp_path, capsys):
        from repro.cli import main
        out_path = tmp_path / "trace.jsonl"
        assert main(["audit", "--scale", "0.002", "--seed", str(SEED),
                     "--trace", str(out_path),
                     "--explain", "domain000001.com"]) == 0
        out = capsys.readouterr().out
        assert "scan [domain000001.com]" in out
        lines = out_path.read_text(encoding="utf-8").splitlines()
        assert json.loads(lines[-1])["type"] == "metrics"
        assert json.loads(lines[0])["type"] == "domain"


class TestCliValidation:
    @pytest.mark.parametrize("argv", [
        ["audit", "--jobs", "-4"],
        ["audit", "--jobs", "two"],
        ["audit", "--fault-rate", "1.5"],
        ["audit", "--fault-rate", "-0.1"],
        ["audit", "--fault-rate", "lots"],
    ])
    def test_bad_arguments_exit_2(self, argv, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--jobs" in err or "--fault-rate" in err

    def test_valid_bounds_accepted(self):
        from repro.cli import build_parser
        parser = build_parser()
        args = parser.parse_args(
            ["audit", "--jobs", "4", "--fault-rate", "0.0"])
        assert args.jobs == 4
        assert args.fault_rate == 0.0
        args = parser.parse_args(["audit", "--fault-rate", "1.0"])
        assert args.fault_rate == 1.0

    def test_jobs_zero_means_auto_detect(self):
        import os

        from repro.cli import _resolve_jobs, build_parser
        parser = build_parser()
        args = parser.parse_args(["audit", "--jobs", "0"])
        assert args.jobs == 0
        assert _resolve_jobs(0, "serial") == 1
        assert _resolve_jobs(0, "threaded") == (os.cpu_count() or 1)
        assert _resolve_jobs(0, "process") == (os.cpu_count() or 1)
        assert _resolve_jobs(3, "process") == 3
