"""End-to-end TLSRPT pipeline (RFC 8460) over the delivery campaign.

The tentpole invariants under test:

* a campaign run with ``tlsrpt=True`` produces **byte-identical**
  received-report JSONL and ingestion-monitor window JSONL between the
  serial and threaded backends, clean and fault-seeded;
* a poisoned reporting window raises an ALERT on exactly that window
  while a clean campaign stays all-OK;
* the verdict feed closes the loop: received reports drive
  notifications (``run_from_verdicts``) and executable repairs
  (``plan_repairs_from_verdict`` + ``apply_repairs``) with no rescan;
* the CLI round-trips: ``campaign deliver --tlsrpt-out`` writes the
  artifacts and ``repro tlsrpt`` re-ingests them to the byte-identical
  monitor feed.
"""

import functools
import os

import pytest

from repro.clock import DAY, Instant
from repro.cli import main
from repro.core.policy import Policy, PolicyMode
from repro.core.reporting import ReportAggregator, ReportCollector
from repro.core.sender import MtaStsSender
from repro.core.tlsrpt import (
    FailureDetail, PolicySummary, ResultType, TlsRptRecord, TlsRptReport,
)
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.measurement.delivery_campaign import (
    DeliveryCampaignConfig, run_delivery_campaign,
)
from repro.measurement.notify import DisclosureCampaign
from repro.measurement.repair import apply_repairs, plan_repairs_from_verdict
from repro.obs.monitor import ALERT, OK, WARN
from repro.obs.tlsrpt_monitor import TlsRptMonitor, TlsRptThresholds
from repro.smtp.delivery import Message

FAULT_SEED = 4242

_CONFIG = dict(scale=0.004, seed=11, month_index=3, senders=30,
               messages_per_sender=4, backpressure=60, tlsrpt=True)


@functools.lru_cache(maxsize=None)
def _campaign(backend: str, jobs: int = 0, fault_seed=None):
    config = DeliveryCampaignConfig(fault_seed=fault_seed,
                                    fault_rate=0.35, **_CONFIG)
    return run_delivery_campaign(config, backend=backend, jobs=jobs)


# ---------------------------------------------------------------------------
# Serial vs threaded differential (clean and fault-seeded)
# ---------------------------------------------------------------------------

class TestBackendParity:
    @pytest.mark.parametrize("fault_seed", [None, FAULT_SEED])
    def test_report_jsonl_byte_identical(self, fault_seed):
        serial = _campaign("serial", fault_seed=fault_seed)
        threaded = _campaign("threaded", jobs=3, fault_seed=fault_seed)
        assert serial.tlsrpt_reports_jsonl == threaded.tlsrpt_reports_jsonl
        assert serial.stats.comparable() == threaded.stats.comparable()

    @pytest.mark.parametrize("fault_seed", [None, FAULT_SEED])
    def test_monitor_jsonl_and_health_byte_identical(self, fault_seed):
        serial = _campaign("serial", fault_seed=fault_seed)
        threaded = _campaign("threaded", jobs=3, fault_seed=fault_seed)
        assert (serial.tlsrpt_monitor.to_jsonl()
                == threaded.tlsrpt_monitor.to_jsonl())
        assert (serial.tlsrpt_monitor.health().render()
                == threaded.tlsrpt_monitor.health().render())
        assert (serial.tlsrpt_aggregator.census()
                == threaded.tlsrpt_aggregator.census())

    def test_message_ledger_still_byte_identical(self):
        serial = _campaign("serial", fault_seed=FAULT_SEED)
        threaded = _campaign("threaded", jobs=3, fault_seed=FAULT_SEED)
        assert serial.ledger_text == threaded.ledger_text


class TestCampaignReporting:
    def test_reports_flow_end_to_end(self):
        result = _campaign("serial")
        stats = result.stats
        assert stats.reports_generated > 0
        assert stats.reports_delivered > 0
        # Every report the queues delivered landed in a swept mailbox.
        assert stats.reports_received == stats.reports_delivered
        assert stats.reports_received == len(result.tlsrpt_reports)
        assert stats.report_attempts >= stats.reports_delivered
        # The materialised world publishes TLSRPT for only a share of
        # recipients (Figure 12): the rest have no rua endpoint.
        assert stats.reports_missing_endpoint > 0

    def test_reports_are_canonically_ordered_and_parseable(self):
        result = _campaign("serial")
        keys = [(r.policy_domain, r.organization_name, r.report_id)
                for r in result.tlsrpt_reports]
        assert keys == sorted(keys)
        for line in result.tlsrpt_reports_jsonl.splitlines():
            report = TlsRptReport.from_json(line)
            assert report.policies

    def test_clean_campaign_is_all_ok(self):
        result = _campaign("serial")
        report = result.tlsrpt_monitor.health()
        assert report.findings
        assert all(f.level == OK for f in report.findings)

    def test_census_counts_real_failures(self):
        census = _campaign("serial").tlsrpt_aggregator.census()
        assert census["malformed"] == 0
        assert census["sessions"] == (census["successful_sessions"]
                                      + census["failed_sessions"])
        assert census["failed_sessions"] > 0
        assert ResultType.STARTTLS_NOT_SUPPORTED.value in \
            census["failures_by_result_type"]

    def test_tlsrpt_rejects_state_dir(self, tmp_path):
        config = DeliveryCampaignConfig(**_CONFIG)
        with pytest.raises(ValueError, match="durable state"):
            run_delivery_campaign(config, state_dir=str(tmp_path))

    def test_disabled_by_default(self):
        config = DeliveryCampaignConfig(scale=0.004, seed=11)
        assert config.tlsrpt is False


# ---------------------------------------------------------------------------
# The ingestion monitor
# ---------------------------------------------------------------------------

def _window_report(start: Instant, policy_domain: str, org: str,
                   successes: int, failures) -> TlsRptReport:
    details = [FailureDetail(rtype, "mx." + policy_domain, count)
               for rtype, count in failures]
    summary = PolicySummary(
        policy_type="sts", policy_domain=policy_domain,
        total_successful_sessions=successes,
        total_failed_sessions=sum(count for _, count in failures),
        failure_details=details)
    return TlsRptReport(
        organization_name=org, contact_info=f"tls@{org}",
        report_id=f"{start.date_string()}-{policy_domain}-{org}",
        window_start=start, window_end=start + DAY, policies=[summary])


class TestTlsRptMonitor:
    def test_alert_pins_exactly_the_poisoned_window(self):
        base = Instant(0)
        monitor = TlsRptMonitor()
        monitor.observe_reports([
            _window_report(base, "a.com", "relay.net", 10, []),
            _window_report(base + DAY, "a.com", "relay.net", 5,
                           [(ResultType.CERTIFICATE_EXPIRED, 5)]),
            _window_report(base + DAY + DAY, "a.com", "relay.net", 10, []),
        ])
        findings = monitor.health().findings
        assert [f.level for f in findings] == [OK, ALERT, OK]
        alert = findings[1]
        assert alert.month_index == 1
        assert alert.metric == "tlsrpt-failure-rate"

    def test_warn_band(self):
        base = Instant(0)
        monitor = TlsRptMonitor()
        monitor.observe_reports([
            _window_report(base, "a.com", "relay.net", 4,
                           [(ResultType.VALIDATION_FAILURE, 1)]),
        ])
        findings = monitor.health().findings
        assert [f.level for f in findings] == [WARN]

    def test_thresholds_configurable(self):
        base = Instant(0)
        monitor = TlsRptMonitor(TlsRptThresholds(failure_rate_warn=0.01,
                                                 failure_rate_alert=0.05))
        monitor.observe_reports([
            _window_report(base, "a.com", "relay.net", 9,
                           [(ResultType.VALIDATION_FAILURE, 1)]),
        ])
        assert monitor.health().findings[0].level == ALERT

    def test_jsonl_round_trip(self):
        monitor = _campaign("serial").tlsrpt_monitor
        rebuilt = TlsRptMonitor.from_jsonl(monitor.to_jsonl())
        assert rebuilt.to_jsonl() == monitor.to_jsonl()
        assert rebuilt.health().render() == monitor.health().render()
        assert rebuilt.failing_mtas() == monitor.failing_mtas()

    def test_failing_mtas_aggregate_across_windows(self):
        base = Instant(0)
        monitor = TlsRptMonitor()
        monitor.observe_reports([
            _window_report(base, "a.com", "big.relay", 0,
                           [(ResultType.CERTIFICATE_EXPIRED, 3)]),
            _window_report(base + DAY, "a.com", "big.relay", 0,
                           [(ResultType.CERTIFICATE_EXPIRED, 2)]),
            _window_report(base, "b.com", "small.relay", 0,
                           [(ResultType.VALIDATION_FAILURE, 1)]),
        ])
        assert monitor.failing_mtas() == [("big.relay", 5),
                                          ("small.relay", 1)]

    def test_verdict_feed_sorted_and_filtered(self):
        base = Instant(0)
        monitor = TlsRptMonitor()
        monitor.observe_reports([
            _window_report(base, "b.com", "relay.net", 0,
                           [(ResultType.VALIDATION_FAILURE, 1)]),
            _window_report(base, "a.com", "relay.net", 0,
                           [(ResultType.CERTIFICATE_EXPIRED, 4),
                            (ResultType.STARTTLS_NOT_SUPPORTED, 2)]),
        ])
        verdicts = monitor.verdicts(min_failed_sessions=2)
        assert [(v.policy_domain, v.result_type, v.failed_sessions)
                for v in verdicts] == [
            ("a.com", ResultType.CERTIFICATE_EXPIRED, 4),
            ("a.com", ResultType.STARTTLS_NOT_SUPPORTED, 2),
        ]


class TestAggregator:
    def test_malformed_counted_not_raised(self):
        aggregator = ReportAggregator()
        assert aggregator.ingest("{not json") is None
        assert aggregator.ingest("{}") is None
        assert aggregator.malformed == 2
        assert aggregator.census()["reports"] == 0

    def test_by_domain_keyed_canonically(self):
        base = Instant(0)
        aggregator = ReportAggregator()
        aggregator.ingest(_window_report(
            base, "strasse.example", "relay.net", 1, []).to_canonical_json())
        assert "strasse.example" in aggregator.by_domain


# ---------------------------------------------------------------------------
# The report-driven loop: verdicts -> notifications -> repairs -> clean
# ---------------------------------------------------------------------------

class TestVerdictClosedLoop:
    def _broken_recipient(self, world):
        recipient = deploy_domain(world, DomainSpec(
            domain="loop.com",
            policy=Policy(version="STSv1", mode=PolicyMode.TESTING,
                          max_age=86400, mx_patterns=("mail.loop.com",)),
            tlsrpt=TlsRptRecord("TLSRPTv1",
                                ("mailto:tls-reports@loop.com",))))
        apply_fault(world, recipient, Fault.MX_CERT_SELF_SIGNED)
        return recipient

    def _send_and_collect(self, world, fetcher):
        collector = ReportCollector("relay.net", "tls@relay.net",
                                    world.clock)
        sender = MtaStsSender("relay.net", world.network, world.resolver,
                              world.trust_store, world.clock, fetcher,
                              reporter=collector)
        assert sender.send(Message("a@relay.net", "b@loop.com")).delivered
        return collector.close_window()

    def test_reports_drive_repairs_to_clean(self, world, fetcher):
        recipient = self._broken_recipient(world)
        monitor = TlsRptMonitor()
        monitor.observe_reports(self._send_and_collect(world, fetcher))
        verdicts = monitor.verdicts()
        assert any(v.result_type is ResultType.CERTIFICATE_NOT_TRUSTED
                   for v in verdicts)

        actions = plan_repairs_from_verdict(verdicts)
        assert any(a.action == "fix-mx-certificate" for a in actions)
        applied = apply_repairs(world, recipient, actions)
        assert "fix-mx-certificate" in applied

        # Post-repair sessions carry no failure details: the loop
        # closed on received reports alone, no rescan involved.
        post = self._send_and_collect(world, fetcher)
        assert post[0].policies[0].total_failed_sessions == 0

    def test_verdicts_drive_notifications(self, world, fetcher):
        recipient = self._broken_recipient(world)
        monitor = TlsRptMonitor()
        monitor.observe_reports(self._send_and_collect(world, fetcher))
        campaign = DisclosureCampaign(world, extra_bounce_rate=0.0)
        report = campaign.run_from_verdicts(monitor.verdicts())
        assert report.notified == 1
        assert report.delivered == 1
        bodies = [m.body for host in recipient.mx_hosts
                  for m in host.mailbox
                  if m.recipient == "postmaster@loop.com"]
        assert any(ResultType.CERTIFICATE_NOT_TRUSTED.value in body
                   for body in bodies)

    def test_dedup_one_action_per_domain_and_verb(self):
        from repro.obs.tlsrpt_monitor import TlsRptVerdict
        verdicts = [
            TlsRptVerdict("x.com", ResultType.CERTIFICATE_EXPIRED, 3),
            TlsRptVerdict("x.com", ResultType.CERTIFICATE_NOT_TRUSTED, 2),
            TlsRptVerdict("x.com", ResultType.STS_POLICY_INVALID, 1),
        ]
        actions = plan_repairs_from_verdict(verdicts)
        assert [a.action for a in actions] == ["fix-policy-syntax",
                                               "fix-mx-certificate"]


# Satellite: the notification body's fallback chain (operator
# precedence — a domain with no syntax errors gets the fetch-stage or
# generic body, never a bare prefix).
class TestNotifyBodyFallbacks:
    def _notify(self, world, simple_domain, **fields):
        from types import SimpleNamespace
        snapshot = SimpleNamespace(domain="example.com",
                                   policy_syntax_errors=[],
                                   policy_fetch_stage="", **{})
        for key, value in fields.items():
            setattr(snapshot, key, value)
        campaign = DisclosureCampaign(world, extra_bounce_rate=0.0)
        assert campaign.notify(snapshot).delivered
        return simple_domain.mx_hosts[0].mailbox[-1].body

    def test_syntax_errors_win(self, world, simple_domain):
        body = self._notify(world, simple_domain,
                            policy_syntax_errors=["bad mode", "bad mx"],
                            policy_fetch_stage="http")
        assert body.endswith("bad mode, bad mx")

    def test_fetch_stage_when_no_syntax_errors(self, world, simple_domain):
        body = self._notify(world, simple_domain,
                            policy_fetch_stage="http")
        assert body.endswith("misconfigured: http")

    def test_generic_fallback(self, world, simple_domain):
        body = self._notify(world, simple_domain)
        assert body.endswith("see details")


# ---------------------------------------------------------------------------
# CLI: campaign deliver --tlsrpt-out / repro tlsrpt
# ---------------------------------------------------------------------------

_CLI_ARGS = ["campaign", "deliver", "--scale", "0.004", "--senders", "20",
             "--messages-per-sender", "3", "--backpressure", "40"]


class TestCli:
    def test_deliver_writes_artifacts_and_tlsrpt_reingests(self, tmp_path,
                                                           capsys):
        out = tmp_path / "tlsrpt"
        assert main(_CLI_ARGS + ["--tlsrpt-out", str(out)]) == 0
        reports_path = out / "reports.jsonl"
        monitor_path = out / "monitor.jsonl"
        assert reports_path.exists() and monitor_path.exists()
        assert "tlsrpt:" in capsys.readouterr().out

        rebuilt = tmp_path / "monitor2.jsonl"
        assert main(["tlsrpt", str(out),
                     "--monitor-out", str(rebuilt)]) == 0
        output = capsys.readouterr().out
        assert "report(s) covering" in output
        # Re-ingesting the saved reports reproduces the campaign's
        # monitor feed byte for byte.
        assert rebuilt.read_text() == monitor_path.read_text()

    def test_deliver_alert_exit_code(self, tmp_path, capsys):
        out = tmp_path / "tlsrpt"
        # A floor-zero alert threshold turns any failed session into an
        # ALERT window; the clean campaign has a few (plaintext tail).
        assert main(_CLI_ARGS + ["--tlsrpt-out", str(out),
                    "--tlsrpt-failure-rate-alert", "0.0"]) == 1
        capsys.readouterr()
        assert main(["tlsrpt", str(out),
                     "--failure-rate-alert", "0.0"]) == 1
        capsys.readouterr()

    def test_tlsrpt_out_refuses_state_dir(self, tmp_path, capsys):
        assert main(_CLI_ARGS + ["--tlsrpt-out", str(tmp_path / "t"),
                    "--state-dir", str(tmp_path / "s")]) == 2
        assert "--state-dir" in capsys.readouterr().err

    def test_tlsrpt_missing_reports(self, tmp_path, capsys):
        assert main(["tlsrpt", str(tmp_path)]) == 2
        assert "no TLSRPT reports" in capsys.readouterr().err

    def test_tlsrpt_accepts_file_path(self, tmp_path, capsys):
        path = tmp_path / "reports.jsonl"
        report = _window_report(Instant(0), "a.com", "relay.net", 3,
                                [(ResultType.CERTIFICATE_EXPIRED, 1)])
        path.write_text(report.to_canonical_json() + "\n",
                        encoding="utf-8")
        assert main(["tlsrpt", str(path)]) == 0
        assert "certificate-expired" in capsys.readouterr().out
