"""Tests for SMTP TLS Reporting (RFC 8460) — generation and delivery."""

import json

import pytest

from repro.clock import DAY, Duration
from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode
from repro.core.reporting import (
    FailureDetail, PolicySummary, ReportCollector, ReportInbox,
    ReportSubmitter, ResultType, TlsReport, result_type_for_fetch_stage,
    result_type_for_tls_failure,
)
from repro.core.sender import MtaStsSender
from repro.core.tlsrpt import TlsRptRecord
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.smtp.delivery import Message, SendingMta


class TestReportModel:
    def make_report(self, world):
        detail = FailureDetail(ResultType.CERTIFICATE_EXPIRED,
                               "mail.example.com", 3)
        summary = PolicySummary(
            policy_type="sts", policy_domain="example.com",
            policy_strings=("version: STSv1", "mode: enforce"),
            total_successful_sessions=10, total_failed_sessions=3,
            failure_details=[detail])
        return TlsReport(
            organization_name="relay.net", contact_info="tls@relay.net",
            report_id="r1", window_start=world.now(),
            window_end=world.now() + DAY, policies=[summary])

    def test_json_round_trip(self, world):
        report = self.make_report(world)
        parsed = TlsReport.from_json(report.to_json())
        assert parsed.report_id == "r1"
        assert parsed.policies[0].total_failed_sessions == 3
        assert parsed.policies[0].failure_details[0].result_type is \
            ResultType.CERTIFICATE_EXPIRED

    def test_json_is_rfc8460_shaped(self, world):
        body = json.loads(self.make_report(world).to_json())
        assert body["organization-name"] == "relay.net"
        assert "date-range" in body
        policy_block = body["policies"][0]
        assert policy_block["policy"]["policy-type"] == "sts"
        assert policy_block["summary"][
            "total-failure-session-count"] == 3

    def test_result_type_mappings(self):
        # A TLS failure at the policy host is RFC 8460 §4.3's dedicated
        # sts-webpki-invalid, not a generic fetch error.
        assert result_type_for_fetch_stage("tls") is \
            ResultType.STS_WEBPKI_INVALID
        assert result_type_for_fetch_stage("http") is \
            ResultType.STS_POLICY_FETCH_ERROR
        assert result_type_for_fetch_stage("policy-syntax") is \
            ResultType.STS_POLICY_INVALID
        assert result_type_for_tls_failure("hostname-mismatch") is \
            ResultType.CERTIFICATE_HOST_MISMATCH
        assert result_type_for_tls_failure("self-signed") is \
            ResultType.CERTIFICATE_NOT_TRUSTED


class TestCollector:
    def test_window_rollup(self, world):
        collector = ReportCollector("relay.net", "tls@relay.net",
                                    world.clock)
        collector.record_policy("example.com", "sts", ("mode: enforce",))
        collector.record_success("example.com")
        collector.record_success("example.com")
        collector.record_failure("example.com",
                                 ResultType.CERTIFICATE_EXPIRED,
                                 "mail.example.com")
        collector.record_failure("example.com",
                                 ResultType.CERTIFICATE_EXPIRED,
                                 "mail.example.com")
        world.clock.advance(DAY + Duration(1))
        assert collector.window_expired()
        reports = collector.close_window()
        assert len(reports) == 1
        summary = reports[0].policies[0]
        assert summary.total_successful_sessions == 2
        assert summary.total_failed_sessions == 2
        assert summary.failure_details[0].failed_session_count == 2

    def test_idle_domains_skipped(self, world):
        collector = ReportCollector("relay.net", "tls@relay.net",
                                    world.clock)
        collector.record_policy("quiet.com", "sts", ())
        assert collector.close_window() == []

    def test_window_resets(self, world):
        collector = ReportCollector("relay.net", "tls@relay.net",
                                    world.clock)
        collector.record_success("a.com")
        collector.close_window()
        assert collector.close_window() == []


class TestSubmitter:
    def test_mailto_submission(self, world):
        inboxed = deploy_domain(world, DomainSpec(
            domain="reports.com",
            tlsrpt=TlsRptRecord("TLSRPTv1",
                                ("mailto:tls-reports@reports.com",))))
        collector = ReportCollector("relay.net", "tls@relay.net",
                                    world.clock)
        collector.record_policy("reports.com", "sts", ())
        collector.record_success("reports.com")
        report = collector.close_window()[0]

        mail = SendingMta("relay.net", world.network, world.resolver,
                          world.trust_store, world.clock)
        submitter = ReportSubmitter(world.resolver, mail_transport=mail)
        results = submitter.submit_report(report)
        assert results[0].delivered
        stored = inboxed.mx_hosts[0].mailbox
        assert stored and "report-id" in stored[0].body

    def test_https_submission(self, world):
        deploy_domain(world, DomainSpec(
            domain="httpsrpt.com",
            tlsrpt=TlsRptRecord(
                "TLSRPTv1", ("https://collector.example/v1",))))
        inbox = ReportInbox("httpsrpt.com")
        collector = ReportCollector("relay.net", "x@relay.net", world.clock)
        collector.record_policy("httpsrpt.com", "sts", ())
        collector.record_success("httpsrpt.com")
        report = collector.close_window()[0]
        submitter = ReportSubmitter(
            world.resolver,
            https_inboxes={"https://collector.example/v1": inbox})
        results = submitter.submit_report(report)
        assert results[0].delivered
        assert inbox.received[0].policies[0].policy_domain == "httpsrpt.com"

    def test_no_tlsrpt_record(self, world, simple_domain):
        collector = ReportCollector("relay.net", "x@relay.net", world.clock)
        collector.record_success("example.com")
        report = collector.close_window()[0]
        submitter = ReportSubmitter(world.resolver)
        results = submitter.submit_report(report)
        assert not results[0].delivered
        assert "no TLSRPT record" in results[0].detail

    def test_malformed_submission_rejected(self):
        inbox = ReportInbox("x.com")
        assert not inbox.submit("{not json")
        assert not inbox.submit("{}")
        assert inbox.received == []


class TestSenderIntegration:
    def _reporting_sender(self, world, fetcher):
        collector = ReportCollector("relay.net", "tls@relay.net",
                                    world.clock)
        sender = MtaStsSender("relay.net", world.network, world.resolver,
                              world.trust_store, world.clock, fetcher,
                              reporter=collector)
        return sender, collector

    def test_success_sessions_reported(self, world, fetcher, simple_domain):
        sender, collector = self._reporting_sender(world, fetcher)
        sender.send(Message("a@relay.net", "b@example.com"))
        report = collector.close_window()[0]
        summary = report.policies[0]
        assert summary.policy_domain == "example.com"
        assert summary.policy_type == "sts"
        assert summary.total_successful_sessions == 1
        assert summary.policy_strings    # the fetched policy lines

    def test_certificate_failures_reported(self, world, fetcher):
        deployed = deploy_domain(world, DomainSpec(
            domain="badmx.com",
            policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                          max_age=86400, mx_patterns=("mail.badmx.com",))))
        apply_fault(world, deployed, Fault.MX_CERT_EXPIRED, mx_index=None)
        sender, collector = self._reporting_sender(world, fetcher)
        sender.send(Message("a@relay.net", "b@badmx.com"))
        report = collector.close_window()[0]
        details = report.policies[0].failure_details
        assert any(d.result_type is ResultType.CERTIFICATE_EXPIRED
                   for d in details)
        assert report.policies[0].total_failed_sessions >= 1

    def test_policy_fetch_errors_reported(self, world, fetcher,
                                          simple_domain):
        apply_fault(world, simple_domain, Fault.POLICY_HTTP_404)
        sender, collector = self._reporting_sender(world, fetcher)
        sender.send(Message("a@relay.net", "b@example.com"))
        report = collector.close_window()[0]
        details = report.policies[0].failure_details
        assert any(d.result_type is ResultType.STS_POLICY_FETCH_ERROR
                   for d in details)

    def test_end_to_end_report_loop(self, world, fetcher):
        """Sender observes failures at a recipient that publishes
        TLSRPT, and the recipient receives the JSON report by mail."""
        recipient = deploy_domain(world, DomainSpec(
            domain="loop.com",
            policy=Policy(version="STSv1", mode=PolicyMode.TESTING,
                          max_age=86400, mx_patterns=("mail.loop.com",)),
            tlsrpt=TlsRptRecord("TLSRPTv1", ("mailto:tlsrpt@loop.com",))))
        apply_fault(world, recipient, Fault.MX_CERT_SELF_SIGNED)
        sender, collector = self._reporting_sender(world, fetcher)
        # Testing mode: delivery proceeds despite the bad certificate.
        assert sender.send(Message("a@relay.net", "b@loop.com")).delivered

        mail = SendingMta("relay.net", world.network, world.resolver,
                          world.trust_store, world.clock)
        submitter = ReportSubmitter(world.resolver, mail_transport=mail)
        for report in collector.close_window():
            results = submitter.submit_report(report)
            assert all(r.delivered for r in results)
        bodies = [m.body for m in recipient.mx_hosts[0].mailbox
                  if "report-id" in m.body]
        assert bodies
        parsed = TlsReport.from_json(bodies[0])
        assert parsed.policies[0].total_failed_sessions >= 1
        assert parsed.policies[0].total_successful_sessions >= 1
