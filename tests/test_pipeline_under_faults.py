"""Pipeline stress/differential tests under deterministic fault plans.

The fault layer's contract with the scan pipeline:

* serial and threaded backends stay byte-identical under any FaultPlan
  seed (fault decisions are pure functions of the operation, never of
  thread interleaving);
* a 12-month incremental campaign matches a from-scratch rebuild even
  when endpoints flap between months (description-keyed schedules are
  portable across worlds whose IP allocation order differs);
* domains that recover within the retry budget classify identically to
  domains that never faulted;
* ``audit --fault-seed`` surfaces nonzero retry/fault counters.
"""

import os

import pytest

from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import (
    EcosystemTimeline, IncrementalMaterializer, TimelineConfig,
)
from repro.measurement.executor import ScanExecutor
from repro.measurement.scanner import Scanner
from repro.measurement.snapshots import SnapshotStore
from repro.measurement.taxonomy import primary_bucket
from repro.netsim.network import FaultPlan

pytestmark = pytest.mark.faults


def _fault_seeds() -> list[int]:
    """The fixed default seeds, extended by the CI matrix variable."""
    seeds = [101, 202]
    env = os.environ.get("REPRO_FAULT_SEEDS", "")
    seeds += [int(s) for s in env.replace(",", " ").split() if s]
    return sorted(set(seeds))


# -- backend determinism under faults -------------------------------------

@pytest.mark.parametrize("fault_seed", _fault_seeds())
def test_serial_and_threaded_byte_identical_under_faults(fault_seed):
    timeline = EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=0.004, seed=11)))
    month = len(timeline.scan_instants) - 1
    materialized = timeline.materialize(month)
    domains = materialized.deployed.keys()
    materialized.world.network.install_fault_plan(
        FaultPlan.seeded(seed=fault_seed, rate=0.3))

    serial, serial_stats = ScanExecutor(backend="serial").scan(
        materialized.world, domains, month)
    threaded, _ = ScanExecutor(backend="threaded", jobs=3).scan(
        materialized.world, domains, month)
    # A plain cache-free Scanner must agree too: the memo caches must
    # not leak transient verdicts into later domains.
    reference = SnapshotStore()
    Scanner(materialized.world).scan_all(sorted(domains), month, reference)

    assert serial.canonical_bytes() == threaded.canonical_bytes()
    assert serial.canonical_bytes() == reference.canonical_bytes()


def test_scanning_twice_under_one_plan_is_stable():
    """Fault schedules keep no state across operations: re-scanning the
    same world under the same plan reproduces the same store."""
    timeline = EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=0.004, seed=11)))
    month = len(timeline.scan_instants) - 1
    materialized = timeline.materialize(month)
    domains = materialized.deployed.keys()
    materialized.world.network.install_fault_plan(
        FaultPlan.seeded(seed=303, rate=0.4))
    executor = ScanExecutor()
    first, _ = executor.scan(materialized.world, domains, month)
    second, _ = executor.scan(materialized.world, domains, month)
    assert first.canonical_bytes() == second.canonical_bytes()


# -- incremental campaign under flapping endpoints ------------------------

def _comparable(snapshot):
    """Snapshot content modulo concrete IP values (incremental worlds
    allocate addresses in a different order than fresh builds)."""
    data = snapshot.to_dict()
    data["apex_addresses"] = len(data["apex_addresses"])
    data["policy_host_addresses"] = len(data["policy_host_addresses"])
    for obs in data["mx_observations"]:
        obs["addresses"] = len(obs["addresses"])
    return data


def test_incremental_campaign_matches_full_rebuild_under_flapping():
    config = TimelineConfig(PopulationConfig(scale=0.004, seed=7))
    full_timeline = EcosystemTimeline(config)
    incremental = IncrementalMaterializer(EcosystemTimeline(config))
    executor = ScanExecutor()
    months = len(full_timeline.scan_instants)
    assert months >= 12
    transient_months = 0

    for month in range(months):
        full = full_timeline.materialize(month)
        inc = incremental.materialize(month)
        assert full.instant.epoch_seconds == inc.instant.epoch_seconds

        # Fresh-but-equivalent plans per world: schedules are derived
        # from (seed, description) alone, so both worlds fault the
        # same logical services — and the FLAP square wave, keyed to
        # the shared simulated clock, flips between months.
        for materialized in (full, inc):
            materialized.world.network.install_fault_plan(
                FaultPlan.seeded(seed=99, rate=0.3))
            # Materialization warms the DNS cache differently in the
            # two worlds (a full build just resolved every deployment;
            # the incremental world carries a month-old cache), and a
            # cached answer shields a query from a faulted nameserver.
            # Scans must face the fault plan from equal cache states.
            materialized.world.resolver.flush_cache()
        try:
            full_store, _ = executor.scan(
                full.world, full.deployed.keys(), month,
                instant=full.instant)
            inc_store, _ = executor.scan(
                inc.world, inc.deployed.keys(), month,
                instant=inc.instant)
        finally:
            # The plan must never fault world *materialization*: the
            # incremental path replays deployment traffic next month.
            for materialized in (full, inc):
                materialized.world.network.install_fault_plan(None)

        full_rows = [_comparable(s) for s in full_store.month(month)]
        inc_rows = [_comparable(s) for s in inc_store.month(month)]
        assert full_rows == inc_rows, f"month {month} diverged"
        if any(s.any_transient for s in full_store.month(month)):
            transient_months += 1

    # The plan actually bit: some months saw retry-exhausted faults.
    assert transient_months > 0


# -- recovery equivalence at pipeline level -------------------------------

def test_recovered_domains_classify_like_never_faulty():
    """Across a whole scan, every domain whose faults stayed within the
    retry budget must land in the same taxonomy bucket as in a clean
    scan of an identical world."""
    def materialize():
        timeline = EcosystemTimeline(
            TimelineConfig(PopulationConfig(scale=0.004, seed=23)))
        return timeline, timeline.materialize(
            len(timeline.scan_instants) - 1)

    _, clean = materialize()
    _, faulty = materialize()
    month = clean.month_index
    # count=1 schedules always recover inside the 3-attempt budget.
    from repro.netsim.network import FaultKind, FaultSpec
    plan = FaultPlan()
    for listener in faulty.world.network.listeners():
        if listener.description:
            plan.add_description(listener.description,
                                 FaultSpec(FaultKind.REFUSE, count=1))
    faulty.world.network.install_fault_plan(plan)

    executor = ScanExecutor()
    clean_store, clean_stats = executor.scan(
        clean.world, clean.deployed.keys(), month, instant=clean.instant)
    faulty_store, faulty_stats = executor.scan(
        faulty.world, faulty.deployed.keys(), month,
        instant=faulty.instant)

    assert faulty_stats.faults_injected > 0
    assert faulty_stats.connect_retries > 0
    assert faulty_stats.transient_domains == 0
    assert (clean_store.canonical_bytes()
            == faulty_store.canonical_bytes())
    for snap_clean, snap_faulty in zip(clean_store.month(month),
                                       faulty_store.month(month)):
        assert primary_bucket(snap_clean) == primary_bucket(snap_faulty)


# -- CLI integration ------------------------------------------------------

def test_audit_stats_surface_fault_counters(capsys):
    from repro.cli import main
    assert main(["audit", "--scale", "0.002", "--fault-seed", "7",
                 "--fault-rate", "0.5", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "transient (faulted)" in out

    def stat(label):
        for line in out.splitlines():
            if label in line:
                return int(line.split()[-1].replace(",", ""))
        raise AssertionError(f"{label!r} missing from stats:\n{out}")

    assert stat("faults injected") > 0
    assert stat("connect retries") > 0


def test_audit_without_faults_reports_zero_counters(capsys):
    from repro.cli import main
    assert main(["audit", "--scale", "0.002", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "transient (faulted)" not in out

    for line in out.splitlines():
        if "faults injected" in line or "connect retries" in line:
            assert int(line.split()[-1].replace(",", "")) == 0
