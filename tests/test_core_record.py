"""Unit tests for the _mta-sts TXT record parser (RFC 8461 §3.1)."""

import pytest

from repro.core.record import (
    StsRecord, evaluate_txt_rrset, parse_sts_record,
)
from repro.errors import RecordError, StsRecordError


class TestParseValid:
    def test_minimal_record(self):
        record = parse_sts_record("v=STSv1; id=20240101;")
        assert record.version == "STSv1"
        assert record.id == "20240101"
        assert record.extensions == ()

    def test_alphanumeric_id_with_letters(self):
        record = parse_sts_record("v=STSv1; id=abcDEF123;")
        assert record.id == "abcDEF123"

    def test_no_trailing_semicolon(self):
        record = parse_sts_record("v=STSv1; id=1")
        assert record.id == "1"

    def test_extension_fields_allowed(self):
        record = parse_sts_record("v=STSv1; id=5; ext=value;")
        assert record.extensions == (("ext", "value"),)

    def test_whitespace_tolerated_between_fields(self):
        record = parse_sts_record("v=STSv1;   id=20240101  ;")
        assert record.id == "20240101"

    def test_max_length_id(self):
        record = parse_sts_record(f"v=STSv1; id={'a' * 32};")
        assert len(record.id) == 32

    def test_render_round_trips(self):
        record = parse_sts_record("v=STSv1; id=42; foo=bar;")
        assert parse_sts_record(record.render()) == record


class TestParseErrors:
    def test_missing_id(self):
        with pytest.raises(RecordError) as excinfo:
            parse_sts_record("v=STSv1;")
        assert excinfo.value.kind is StsRecordError.MISSING_ID

    def test_hyphenated_id_rejected(self):
        # §4.3.2: 61% of broken records carry ids like 2024-01-01.
        with pytest.raises(RecordError) as excinfo:
            parse_sts_record("v=STSv1; id=2024-01-01;")
        assert excinfo.value.kind is StsRecordError.INVALID_ID

    def test_empty_id_rejected(self):
        with pytest.raises(RecordError) as excinfo:
            parse_sts_record("v=STSv1; id=;")
        assert excinfo.value.kind is StsRecordError.INVALID_ID

    def test_id_longer_than_32_rejected(self):
        with pytest.raises(RecordError) as excinfo:
            parse_sts_record(f"v=STSv1; id={'a' * 33};")
        assert excinfo.value.kind is StsRecordError.INVALID_ID

    def test_wrong_version_prefix(self):
        with pytest.raises(RecordError) as excinfo:
            parse_sts_record("v=STS1; id=1;")
        assert excinfo.value.kind is StsRecordError.BAD_VERSION

    def test_version_not_first(self):
        with pytest.raises(RecordError) as excinfo:
            parse_sts_record("id=1; v=STSv1;")
        assert excinfo.value.kind is StsRecordError.BAD_VERSION

    def test_the_in_the_wild_extension_error(self):
        # The §4.3.2 example: colon-separated policy fields in the record.
        with pytest.raises(RecordError) as excinfo:
            parse_sts_record("v=STSv1; id=1; mx: a.com; mode: testing;")
        assert excinfo.value.kind is StsRecordError.INVALID_EXTENSION

    def test_duplicate_id_field(self):
        with pytest.raises(RecordError) as excinfo:
            parse_sts_record("v=STSv1; id=1; id=2;")
        assert excinfo.value.kind is StsRecordError.INVALID_EXTENSION

    def test_field_without_equals(self):
        with pytest.raises(RecordError) as excinfo:
            parse_sts_record("v=STSv1; id=1; bogus;")
        assert excinfo.value.kind is StsRecordError.INVALID_EXTENSION

    def test_empty_extension_value(self):
        with pytest.raises(RecordError):
            parse_sts_record("v=STSv1; id=1; ext=;")


class TestRrsetEvaluation:
    def test_single_valid_record(self):
        result = evaluate_txt_rrset(["v=STSv1; id=1;"])
        assert result.valid
        assert result.signals_sts

    def test_empty_rrset(self):
        result = evaluate_txt_rrset([])
        assert not result.valid
        assert not result.signals_sts
        assert result.error is StsRecordError.MISSING

    def test_unrelated_txt_ignored(self):
        result = evaluate_txt_rrset(
            ["v=spf1 -all", "google-site-verification=xyz",
             "v=STSv1; id=1;"])
        assert result.valid
        assert result.sts_like_count == 1

    def test_multiple_sts_records_invalidate(self):
        # RFC 8461: more than one v=STSv1 record means no MTA-STS.
        result = evaluate_txt_rrset(["v=STSv1; id=1;", "v=STSv1; id=2;"])
        assert not result.valid
        assert result.error is StsRecordError.MULTIPLE_RECORDS
        assert result.signals_sts

    def test_broken_record_still_signals_sts(self):
        # The paper counts syntactically broken deployments as enabled.
        result = evaluate_txt_rrset(["v=STSv1; id=bad-id;"])
        assert not result.valid
        assert result.signals_sts
        assert result.error is StsRecordError.INVALID_ID

    def test_sts_like_lowercase_version(self):
        result = evaluate_txt_rrset(["v=stsv1; id=1;"])
        assert result.signals_sts
        assert not result.valid

    def test_only_spf_does_not_signal(self):
        result = evaluate_txt_rrset(["v=spf1 include:_spf.google.com ~all"])
        assert not result.signals_sts
