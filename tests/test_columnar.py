"""Object-vs-columnar identity for the analysis tier.

The contract under test: every figure series, census, summary,
metrics JSONL line and health report produced from per-field columns
(:mod:`repro.measurement.columnar`) is **byte-identical** to the one
produced by iterating :class:`DomainSnapshot` objects — on clean and
fault-seeded campaigns, over stores written by the serial and the
process scan backends.  The columnar path exists purely for speed;
any divergence is a bug in the port, never an acceptable tolerance.
"""

import json
import shutil

import pytest

from repro.analysis.series import load_campaign, run_campaign
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.errors import StoreCorruption
from repro.measurement.classify import EntityClassifier
from repro.measurement.columnar import (
    ColumnarStore, delegation_census_view, mismatch_census_view,
    snapshot_summary_view, taxonomy_census_view,
)
from repro.measurement.delegation import delegation_census
from repro.measurement.executor import ScanExecutor
from repro.measurement.inconsistency import mismatch_census
from repro.measurement.store_io import load_state, shard_name
from repro.measurement.taxonomy import primary_bucket, snapshot_summary
from repro.netsim.network import FaultPlan
from repro.obs.exporters import month_jsonl_line
from repro.obs.monitor import CampaignMonitor

MONTHS = [0, 1, 2]


def _timeline(scale=0.004, seed=7):
    return EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=scale, seed=seed)))


def _fault_factory(month):
    return FaultPlan.seeded(seed=1000 + month, rate=0.2)


def _campaign_state(tmp_path_factory, name, *, backend="serial", jobs=1,
                    faults=False):
    state_dir = str(tmp_path_factory.mktemp(name) / "state")
    run_campaign(_timeline(), MONTHS, state_dir=state_dir,
                 executor=ScanExecutor(backend=backend, jobs=jobs),
                 fault_plan_factory=_fault_factory if faults else None)
    return state_dir


@pytest.fixture(scope="module")
def clean_state(tmp_path_factory):
    return _campaign_state(tmp_path_factory, "clean")


@pytest.fixture(scope="module")
def faulted_state(tmp_path_factory):
    return _campaign_state(tmp_path_factory, "faulted", faults=True)


@pytest.fixture(scope="module")
def process_state(tmp_path_factory):
    # The process backend owns its materialisation (scan_population),
    # so commit month by month the way ``audit --save`` does.
    from repro.ecosystem.timeline import population_to_dict
    from repro.measurement.store_io import commit_month
    state_dir = str(tmp_path_factory.mktemp("process") / "state")
    population = PopulationConfig(scale=0.004, seed=7)
    executor = ScanExecutor(backend="process", jobs=2)
    for month in MONTHS:
        result = executor.scan_population(
            population, month, fault_seed=1000 + month, fault_rate=0.2)
        commit_month(state_dir, result.store, month,
                     date=result.instant.date_string(),
                     stats=result.stats.as_dict(),
                     build_stats=result.build_stats,
                     population=population_to_dict(population))
    return state_dir


@pytest.fixture(scope="module", params=["clean", "faulted", "process"])
def any_state(request, clean_state, faulted_state, process_state):
    return {"clean": clean_state, "faulted": faulted_state,
            "process": process_state}[request.param]


def _figure_dump(analysis):
    """Every figure series + Table 2, serialised exactly as the CI
    identity job writes them (sort_keys, default=str)."""
    payload = {
        "figure4": analysis.figure4_series(),
        "figure5_self": analysis.figure5_series("self-managed"),
        "figure5_third": analysis.figure5_series("third-party"),
        "figure6_self": analysis.figure6_series("self-managed"),
        "figure6_third": analysis.figure6_series("third-party"),
        "figure7": analysis.figure7_series(),
        "figure8": analysis.figure8_series(),
        "figure9": analysis.figure9_series(),
        "figure10": analysis.figure10_series(),
        "table2": analysis.table2_census(),
    }
    return json.dumps(payload, sort_keys=True, default=str, indent=1)


class TestFigureIdentity:
    def test_all_figures_byte_identical(self, any_state):
        via_objects = load_campaign(any_state)
        via_columns = load_campaign(any_state, columnar=True)
        assert _figure_dump(via_objects) == _figure_dump(via_columns)

    def test_summaries_and_stats_identical(self, any_state):
        via_objects = load_campaign(any_state)
        via_columns = load_campaign(any_state, columnar=True)
        assert via_objects.summaries == via_columns.summaries
        assert via_objects.stats_by_month == via_columns.stats_by_month
        assert via_objects.latest_summary() == via_columns.latest_summary()


class TestCensusIdentity:
    """Each ported aggregation against its object-path original,
    month by month, on the snapshots actually decoded from disk."""

    def test_census_views_match_object_functions(self, any_state):
        state = load_state(any_state)
        cstore = ColumnarStore.from_state_dir(any_state)
        for month in cstore.months():
            snapshots = state.store.month(month)
            view = cstore.month_view(month)
            verdicts = EntityClassifier(snapshots).classify_all()
            assert (snapshot_summary_view(view)
                    == snapshot_summary(snapshots, verdicts))
            census = {}
            for snap in snapshots:
                bucket = primary_bucket(snap)
                census[bucket] = census.get(bucket, 0) + 1
            assert {b: c for b, c in taxonomy_census_view(view).items()
                    if c} == census
            assert mismatch_census_view(view) == mismatch_census(snapshots)
            assert (delegation_census_view(view)
                    == delegation_census(snapshots))

    def test_from_store_matches_from_state_dir(self, faulted_state):
        state = load_state(faulted_state)
        from_disk = ColumnarStore.from_state_dir(faulted_state)
        from_memory = ColumnarStore.from_store(state.store)
        assert from_disk.months() == from_memory.months()
        for month in from_disk.months():
            a, b = from_disk.month_view(month), from_memory.month_view(month)
            assert snapshot_summary_view(a) == snapshot_summary_view(b)
            assert mismatch_census_view(a) == mismatch_census_view(b)
            assert delegation_census_view(a) == delegation_census_view(b)
            assert taxonomy_census_view(a) == taxonomy_census_view(b)


class TestMonitorIdentity:
    def test_feed_drift_and_health_identical(self, any_state):
        via_objects = CampaignMonitor.from_state(any_state)
        via_columns = CampaignMonitor.from_state(any_state, columnar=True)
        feed = lambda m: [month_jsonl_line(r.month_index, r.date, r.metrics)
                          for r in m.records]
        assert feed(via_objects) == feed(via_columns)
        assert via_objects.drift() == via_columns.drift()
        assert (via_objects.health().as_dict()
                == via_columns.health().as_dict())


class TestLazyLoading:
    def test_months_materialise_on_first_view(self, clean_state):
        cstore = ColumnarStore.from_state_dir(clean_state)
        assert cstore.loaded_months() == []
        assert cstore.months() == MONTHS
        cstore.month_view(MONTHS[1])
        assert cstore.loaded_months() == [MONTHS[1]]
        cstore.month_view(MONTHS[1])        # cached, not rebuilt
        assert cstore.loaded_months() == [MONTHS[1]]

    def test_month_subset_restricts_entries(self, clean_state):
        cstore = ColumnarStore.from_state_dir(clean_state,
                                              months=[MONTHS[0]])
        assert cstore.months() == [MONTHS[0]]


class TestCorruptionDetection:
    def test_flipped_shard_byte_raises(self, clean_state, tmp_path):
        corrupt = tmp_path / "state"
        shutil.copytree(clean_state, corrupt)
        shard = corrupt / shard_name(MONTHS[0])
        data = bytearray(shard.read_bytes())
        data[len(data) // 2] ^= 0x20
        shard.write_bytes(bytes(data))
        cstore = ColumnarStore.from_state_dir(str(corrupt))
        with pytest.raises(StoreCorruption):
            cstore.month_view(MONTHS[0])
        cstore.month_view(MONTHS[1])        # other months still load

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(StoreCorruption):
            ColumnarStore.from_state_dir(str(tmp_path))


class TestCliIdentity:
    def test_audit_load_stdout_identical(self, faulted_state, capsys):
        from repro.cli import main
        assert main(["audit", "--load", faulted_state, "--stats"]) == 0
        via_objects = capsys.readouterr().out
        assert main(["audit", "--load", faulted_state, "--stats",
                     "--columnar"]) == 0
        via_columns = capsys.readouterr().out
        assert via_objects == via_columns

    def test_audit_metrics_out_identical(self, faulted_state, tmp_path,
                                         capsys):
        from repro.cli import main
        a, b = tmp_path / "a.prom", tmp_path / "b.prom"
        assert main(["audit", "--load", faulted_state, "--month", "1",
                     "--metrics-out", str(a)]) == 0
        assert main(["audit", "--load", faulted_state, "--month", "1",
                     "--metrics-out", str(b), "--columnar"]) == 0
        capsys.readouterr()
        assert a.read_bytes() == b.read_bytes()

    def test_columnar_requires_load(self, capsys):
        from repro.cli import main
        assert main(["audit", "--columnar"]) == 2
        assert "--columnar requires --load" in capsys.readouterr().err

    def test_columnar_rejects_show_repairs(self, faulted_state, capsys):
        from repro.cli import main
        assert main(["audit", "--load", faulted_state, "--columnar",
                     "--show-repairs", "3"]) == 2
        assert "snapshot objects" in capsys.readouterr().err
