"""Property-based tests (hypothesis) on core invariants."""

import string

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.matching import mx_pattern_matches, policy_covers_mx
from repro.core.policy import (
    Policy, PolicyMode, check_policy_text, parse_policy, render_policy,
)
from repro.core.record import parse_sts_record
from repro.dns.name import DnsName, levenshtein
from repro.errors import RecordError
from repro.measurement.inconsistency import classify_mismatch

label = st.text(alphabet=string.ascii_lowercase + string.digits,
                min_size=1, max_size=10).filter(
    lambda s: not s.startswith("-") and not s.endswith("-"))

hostname = st.builds(
    lambda labels, tld: ".".join(labels + [tld]),
    st.lists(label, min_size=1, max_size=3),
    st.sampled_from(["com", "net", "org", "se"]))


class TestRecordProperties:
    @given(st.text(alphabet=string.ascii_letters + string.digits,
                   min_size=1, max_size=32))
    def test_any_alphanumeric_id_round_trips(self, record_id):
        record = parse_sts_record(f"v=STSv1; id={record_id};")
        assert record.id == record_id
        assert parse_sts_record(record.render()) == record

    @given(st.text(max_size=50))
    def test_parser_never_crashes(self, text):
        try:
            parse_sts_record(text)
        except RecordError:
            pass    # rejection is fine; other exceptions are not


class TestPolicyProperties:
    @given(st.lists(hostname, min_size=1, max_size=5, unique=True),
           st.sampled_from(list(PolicyMode)),
           st.integers(min_value=0, max_value=31_557_600))
    def test_render_parse_round_trip(self, hosts, mode, max_age):
        policy = Policy(version="STSv1", mode=mode, max_age=max_age,
                        mx_patterns=tuple(hosts))
        assert parse_policy(render_policy(policy)) == policy

    @given(st.text(max_size=200))
    @settings(max_examples=200)
    def test_lenient_checker_never_crashes(self, text):
        check = check_policy_text(text)
        # Invariant: valid <=> a policy exists and no errors collected.
        assert check.valid == (check.policy is not None
                               and not check.errors)


class TestMatchingProperties:
    @given(hostname)
    def test_exact_pattern_always_matches_itself(self, host):
        assert mx_pattern_matches(host, host)

    @given(hostname, label)
    def test_wildcard_matches_any_single_label_child(self, host, child):
        assert mx_pattern_matches(f"*.{host}", f"{child}.{host}")

    @given(hostname, label, label)
    def test_wildcard_never_matches_two_labels(self, host, a, b):
        assert not mx_pattern_matches(f"*.{host}", f"{a}.{b}.{host}")

    @given(hostname)
    def test_wildcard_never_matches_apex(self, host):
        assert not mx_pattern_matches(f"*.{host}", host)

    @given(st.lists(hostname, min_size=1, max_size=4), hostname)
    def test_coverage_is_any_of_matches(self, patterns, host):
        assert policy_covers_mx(patterns, host) == any(
            mx_pattern_matches(p, host) for p in patterns)


class TestLevenshteinProperties:
    @given(st.text(max_size=20), st.text(max_size=20))
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(st.text(max_size=20))
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(st.text(max_size=15), st.text(max_size=15), st.text(max_size=15))
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(st.text(max_size=20), st.text(max_size=20),
           st.integers(min_value=0, max_value=5))
    def test_cap_agrees_with_exact(self, a, b, cap):
        exact = levenshtein(a, b)
        capped = levenshtein(a, b, cap=cap)
        if exact <= cap:
            assert capped == exact
        else:
            assert capped == cap + 1


class TestDnsNameProperties:
    @given(st.lists(label, min_size=1, max_size=5))
    def test_parse_text_round_trip(self, labels):
        text = ".".join(labels)
        assume(sum(len(l) + 1 for l in labels) <= 254)
        name = DnsName.parse(text)
        assert name.text == text
        assert DnsName.parse(name.text) == name

    @given(st.lists(label, min_size=2, max_size=5))
    def test_parent_child_inverse(self, labels):
        text = ".".join(labels)
        assume(sum(len(l) + 1 for l in labels) <= 254)
        name = DnsName.parse(text)
        assert name.parent().child(name.labels[0]) == name

    @given(st.lists(label, min_size=1, max_size=4),
           st.lists(label, min_size=1, max_size=2))
    def test_subdomain_transitivity(self, base, extra):
        assume(sum(len(l) + 1 for l in base + extra) <= 250)
        parent = DnsName.parse(".".join(base))
        child = DnsName.parse(".".join(extra + base))
        assert child.is_subdomain_of(parent)


class TestMismatchClassifierProperties:
    @given(st.lists(hostname, min_size=1, max_size=3, unique=True),
           st.lists(hostname, min_size=1, max_size=3, unique=True))
    @settings(max_examples=150)
    def test_verdict_is_total_and_consistent(self, patterns, hosts):
        verdict = classify_mismatch(patterns, hosts)
        covered = any(policy_covers_mx(patterns, h) for h in hosts)
        assert verdict.mismatch == (not covered)
        if verdict.mismatch:
            assert verdict.mismatch_class is not None


@pytest.mark.faults
class TestFaultRobustnessProperties:
    """No fault plan may crash the scanner or leave a domain
    unclassifiable: the taxonomy stays total under arbitrary injected
    network faults."""

    #: One world shared across examples — fault plans are stateless,
    #: so installing/removing one leaves the world unchanged.
    _world = None
    _domains = ["example.com", "with-provider.net", "ghost.org"]

    @classmethod
    def _fixture_world(cls):
        if cls._world is None:
            from repro.ecosystem.deployment import DomainSpec, deploy_domain
            from repro.ecosystem.providers import default_email_providers
            from repro.ecosystem.world import World
            cls._world = World()
            deploy_domain(cls._world, DomainSpec(domain="example.com"))
            deploy_domain(cls._world, DomainSpec(
                domain="with-provider.net",
                email_provider=default_email_providers()[0]))
            # ghost.org is never deployed: the not-sts path.
        return cls._world

    @given(seed=st.integers(min_value=0, max_value=2**32),
           rate=st.floats(min_value=0.05, max_value=1.0),
           count=st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_every_domain_lands_in_exactly_one_bucket(self, seed, rate,
                                                      count):
        from repro.measurement.scanner import Scanner
        from repro.measurement.taxonomy import (
            PRIMARY_BUCKETS, primary_bucket,
        )
        from repro.netsim.network import FaultKind, FaultPlan, FaultSpec

        world = self._fixture_world()
        plan = FaultPlan.seeded(seed=seed, rate=rate)
        kind = list(FaultKind)[seed % len(FaultKind)]
        plan.add_description("smtp:mail.example.com",
                             FaultSpec(kind, count=count,
                                       latency=40.0, period=86400))
        world.network.install_fault_plan(plan)
        world.resolver.flush_cache()
        try:
            store = Scanner(world).scan_all(self._domains, 0)
        finally:
            world.network.install_fault_plan(None)
            world.resolver.flush_cache()

        assert len(store.month(0)) == len(self._domains)
        for snapshot in store.month(0):
            buckets = [b for b in PRIMARY_BUCKETS
                       if primary_bucket(snapshot) == b]
            assert len(buckets) == 1
            assert buckets[0] in PRIMARY_BUCKETS
