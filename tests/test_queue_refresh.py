"""Tests for the retrying mail queue and the policy refresh daemon."""

import pytest

from repro.clock import DAY, Duration, HOUR
from repro.core.fetch import PolicyFetcher
from repro.core.policy import Policy, PolicyMode, render_policy
from repro.core.refresh import RefreshDaemon
from repro.core.sender import MtaStsSender
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.smtp.delivery import DeliveryStatus, Message, SendingMta
from repro.smtp.queue import MailQueue, QueueOutcome


@pytest.fixture
def plain_sender(world):
    return SendingMta("queue.relay.net", world.network, world.resolver,
                      world.trust_store, world.clock)


class TestMailQueue:
    def test_immediate_delivery(self, world, plain_sender, simple_domain):
        queue = MailQueue(plain_sender, world.clock)
        entry = queue.submit(Message("a@q.net", "b@example.com"))
        assert entry.outcome is QueueOutcome.DELIVERED
        assert entry.attempts == 1
        assert queue.delivered_count == 1

    def test_permanent_failure_bounces(self, world, plain_sender):
        queue = MailQueue(plain_sender, world.clock)
        entry = queue.submit(Message("a@q.net", "b@nonexistent.org"))
        assert entry.outcome is QueueOutcome.BOUNCED
        assert entry.last_status is DeliveryStatus.NO_MX

    def test_temporary_failure_retries(self, world, plain_sender,
                                       simple_domain):
        from repro.netsim.network import TcpBehavior
        from repro.smtp.server import SMTP_PORT
        mx = simple_domain.mx_hosts[0]
        world.network.set_behavior(mx.ip, SMTP_PORT, TcpBehavior.TIMEOUT)
        queue = MailQueue(plain_sender, world.clock)
        entry = queue.submit(Message("a@q.net", "b@example.com"))
        assert entry.active
        assert entry.last_status is DeliveryStatus.UNREACHABLE
        # The MX comes back; the retry delivers.
        world.network.set_behavior(mx.ip, SMTP_PORT, TcpBehavior.ACCEPT)
        world.clock.advance(Duration(15 * 60))
        queue.run_due()
        assert entry.outcome is QueueOutcome.DELIVERED
        assert entry.attempts == 2

    def test_not_retried_before_schedule(self, world, plain_sender,
                                         simple_domain):
        from repro.netsim.network import TcpBehavior
        from repro.smtp.server import SMTP_PORT
        mx = simple_domain.mx_hosts[0]
        world.network.set_behavior(mx.ip, SMTP_PORT, TcpBehavior.TIMEOUT)
        queue = MailQueue(plain_sender, world.clock)
        entry = queue.submit(Message("a@q.net", "b@example.com"))
        world.clock.advance(Duration(60))
        assert queue.run_due() == []     # too early
        assert entry.attempts == 1

    def test_exhausted_schedule_bounces(self, world, plain_sender,
                                        simple_domain):
        from repro.netsim.network import TcpBehavior
        from repro.smtp.server import SMTP_PORT
        mx = simple_domain.mx_hosts[0]
        world.network.set_behavior(mx.ip, SMTP_PORT, TcpBehavior.TIMEOUT)
        queue = MailQueue(plain_sender, world.clock,
                          retry_schedule=(Duration(60), Duration(60)))
        entry = queue.submit(Message("a@q.net", "b@example.com"))
        queue.drain()
        assert entry.outcome is QueueOutcome.BOUNCED
        assert entry.attempts == 3      # initial + 2 retries

    def test_lifetime_cap(self, world, plain_sender, simple_domain):
        from repro.netsim.network import TcpBehavior
        from repro.smtp.server import SMTP_PORT
        mx = simple_domain.mx_hosts[0]
        world.network.set_behavior(mx.ip, SMTP_PORT, TcpBehavior.TIMEOUT)
        queue = MailQueue(plain_sender, world.clock,
                          retry_schedule=(DAY, DAY, DAY, DAY, DAY, DAY),
                          lifetime=Duration(2 * 86_400))
        entry = queue.submit(Message("a@q.net", "b@example.com"))
        queue.drain()
        assert entry.outcome is QueueOutcome.BOUNCED
        assert entry.attempts <= 4

    def test_policy_refusal_retried_until_policy_fixed(self, world,
                                                       fetcher,
                                                       simple_domain):
        """The lucidgrow pattern: an enforce-mode mismatch bounces until
        the provider fixes the policy, then the queued mail flows."""
        policy = Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                        max_age=3600, mx_patterns=("mail.example.com",))
        simple_domain.spec.policy = policy      # the injector keeps mode
        simple_domain.set_policy_text(render_policy(policy))
        apply_fault(world, simple_domain, Fault.MISMATCH_DOMAIN)
        world.resolver.flush_cache()
        sender = MtaStsSender("relay.net", world.network, world.resolver,
                              world.trust_store, world.clock, fetcher)
        queue = MailQueue(sender, world.clock)
        entry = queue.submit(Message("a@q.net", "b@example.com"))
        assert entry.active
        assert entry.last_status is DeliveryStatus.REFUSED_BY_POLICY
        # The provider fixes the mx patterns; the cached bad policy
        # expires (max_age 1h) before the next retries finish.
        simple_domain.set_policy_text(render_policy(policy))
        simple_domain.set_record("v=STSv1; id=fixed1;")
        world.resolver.flush_cache()
        queue.drain()
        assert entry.outcome is QueueOutcome.DELIVERED

    def test_greylisted_mx_delivers_via_retry(self, world, plain_sender,
                                              simple_domain):
        mx = simple_domain.mx_hosts[0]
        mx.greylist_first_contact = True
        queue = MailQueue(plain_sender, world.clock)
        entry = queue.submit(Message("a@q.net", "b@example.com"))
        # The SendingMta itself retries EHLO once after greylisting, so
        # even first contact succeeds; the queue records one attempt.
        assert entry.outcome is QueueOutcome.DELIVERED
        assert entry.attempts == 1


class TestRefreshDaemon:
    def _prime(self, world, fetcher, max_age=3 * 86_400):
        deployed = deploy_domain(world, DomainSpec(
            domain="fresh.com",
            policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                          max_age=max_age,
                          mx_patterns=("mail.fresh.com",))))
        sender = MtaStsSender("relay.net", world.network, world.resolver,
                              world.trust_store, world.clock, fetcher)
        sender.send(Message("a@r.net", "b@fresh.com"))
        assert sender.cache.get("fresh.com") is not None
        return deployed, sender

    def test_not_due_before_window(self, world, fetcher):
        _, sender = self._prime(world, fetcher)
        daemon = RefreshDaemon(sender.cache, fetcher, world.clock)
        assert daemon.due_entries() == []

    def test_revalidation_restarts_clock(self, world, fetcher):
        _, sender = self._prime(world, fetcher)
        daemon = RefreshDaemon(sender.cache, fetcher, world.clock)
        world.clock.advance(Duration(2 * 86_400 + 3600))   # inside window
        results = daemon.run_once()
        assert [r.action for r in results] == ["revalidated"]
        # The entry is fresh again for a full max_age.
        world.clock.advance(Duration(2 * 86_400))
        assert sender.cache.get("fresh.com") is not None

    def test_refresh_picks_up_new_policy(self, world, fetcher):
        deployed, sender = self._prime(world, fetcher)
        daemon = RefreshDaemon(sender.cache, fetcher, world.clock)
        new_policy = Policy(version="STSv1", mode=PolicyMode.TESTING,
                            max_age=86_400,
                            mx_patterns=("mail.fresh.com",))
        deployed.set_policy_text(render_policy(new_policy))
        deployed.set_record("v=STSv1; id=v2;")
        world.resolver.flush_cache()
        world.clock.advance(Duration(2 * 86_400 + 3600))
        results = daemon.run_once()
        assert [r.action for r in results] == ["refreshed"]
        assert sender.cache.get("fresh.com").policy.mode is \
            PolicyMode.TESTING

    def test_missing_record_lets_cache_age_out(self, world, fetcher):
        deployed, sender = self._prime(world, fetcher)
        daemon = RefreshDaemon(sender.cache, fetcher, world.clock)
        deployed.remove_record()
        world.resolver.flush_cache()
        world.clock.advance(Duration(2 * 86_400 + 3600))
        results = daemon.run_once()
        assert [r.action for r in results] == ["skipped"]
        world.clock.advance(Duration(86_400))
        assert sender.cache.get("fresh.com") is None    # aged out

    def test_fetch_failure_reported(self, world, fetcher):
        deployed, sender = self._prime(world, fetcher)
        daemon = RefreshDaemon(sender.cache, fetcher, world.clock)
        deployed.set_record("v=STSv1; id=v2;")
        apply_fault(world, deployed, Fault.POLICY_HTTP_404)
        world.resolver.flush_cache()
        world.clock.advance(Duration(2 * 86_400 + 3600))
        results = daemon.run_once()
        assert [r.action for r in results] == ["fetch-failed"]

    def test_run_until_keeps_rarely_mailed_domain_warm(self, world,
                                                       fetcher):
        from repro.clock import Instant
        _, sender = self._prime(world, fetcher)
        daemon = RefreshDaemon(sender.cache, fetcher, world.clock)
        end = world.clock.now() + Duration(30 * 86_400)
        daemon.run_until(end)
        # A month later — far beyond max_age — the policy is still hot.
        assert sender.cache.get("fresh.com") is not None
