"""Unit tests for simulated time."""

import pytest

from repro.clock import (
    DAY, HOUR, WEEK, Clock, Duration, Instant, monthly_instants,
    weekly_instants,
)


class TestInstant:
    def test_from_date(self):
        instant = Instant.from_date(2024, 9, 29)
        assert instant.date_string() == "2024-09-29"

    def test_parse_date(self):
        assert Instant.parse("2024-01-02").date_string() == "2024-01-02"

    def test_parse_datetime(self):
        instant = Instant.parse("2024-01-02T12:30:00")
        assert instant.to_datetime().hour == 12

    def test_ordering(self):
        assert Instant.parse("2021-09-09") < Instant.parse("2024-09-29")

    def test_add_duration(self):
        assert (Instant.parse("2024-01-01") + DAY).date_string() == "2024-01-02"

    def test_subtract_instants_gives_duration(self):
        span = Instant.parse("2024-01-08") - Instant.parse("2024-01-01")
        assert span == WEEK

    def test_subtract_duration(self):
        assert (Instant.parse("2024-01-02") - DAY).date_string() == "2024-01-01"

    def test_month_string(self):
        assert Instant.parse("2024-09-29").month_string() == "2024-09"


class TestDuration:
    def test_of_composite(self):
        assert Duration.of(weeks=1) == WEEK
        assert Duration.of(days=1, hours=1) == DAY + HOUR

    def test_multiplication(self):
        assert 7 * DAY == WEEK
        assert DAY * 7 == WEEK

    def test_negation(self):
        assert (-DAY).seconds == -86400


class TestClock:
    def test_advance(self):
        clock = Clock(Instant.parse("2024-01-01"))
        clock.advance(DAY)
        assert clock.now().date_string() == "2024-01-02"

    def test_advance_to(self):
        clock = Clock(Instant.parse("2024-01-01"))
        clock.advance_to(Instant.parse("2024-06-01"))
        assert clock.now().date_string() == "2024-06-01"

    def test_no_time_travel(self):
        clock = Clock(Instant.parse("2024-06-01"))
        with pytest.raises(ValueError):
            clock.advance_to(Instant.parse("2024-01-01"))
        with pytest.raises(ValueError):
            clock.advance(Duration(-1))


class TestCalendars:
    def test_weekly_instants_inclusive(self):
        instants = list(weekly_instants(Instant.parse("2024-01-01"),
                                        Instant.parse("2024-01-29")))
        assert len(instants) == 5
        assert instants[-1].date_string() == "2024-01-29"

    def test_monthly_instants_match_paper_scan_months(self):
        instants = list(monthly_instants(Instant.parse("2023-11-07"),
                                         Instant.parse("2024-09-29")))
        assert instants[0].date_string() == "2023-11-07"
        assert instants[1].date_string() == "2023-12-07"
        assert len(instants) == 11

    def test_monthly_clamps_to_short_months(self):
        instants = list(monthly_instants(Instant.parse("2024-01-31"),
                                         Instant.parse("2024-04-30")))
        assert [i.date_string() for i in instants] == [
            "2024-01-31", "2024-02-29", "2024-03-31", "2024-04-30"]
