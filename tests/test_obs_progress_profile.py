"""Scan progress heartbeats and wall-clock stage profiling.

Progress must report monotonically non-decreasing counters from both
backends (workers emit under the tracker lock); profiling must be a
strict no-op when disabled — same snapshot bytes, no report — because
the acceptance criteria cap its disabled overhead."""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis.report import render_profile
from repro.ecosystem.population import PopulationConfig
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.measurement.executor import ScanExecutor
from repro.obs.profile import STAGES, ProfileReport, StageProfiler
from repro.obs.progress import (
    ProgressEvent, ProgressPrinter, ProgressTracker,
)

SCALE = 0.003
SEED = 1789


def run_scan(backend, jobs, **executor_options):
    timeline = EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=SCALE, seed=SEED)))
    month = len(timeline.scan_instants) - 1
    materialized = timeline.materialize(month)
    executor = ScanExecutor(backend=backend, jobs=jobs,
                            **executor_options)
    store, stats = executor.scan(
        materialized.world, materialized.deployed.keys(), month,
        instant=materialized.instant)
    return executor, store, stats


class TestProgressOrdering:
    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1),
        ("threaded", 5),
    ])
    def test_counters_monotonic_and_complete(self, backend, jobs):
        events = []
        executor, _, stats = run_scan(backend, jobs,
                                      progress=events.append)
        assert len(events) >= 2

        done = shards = 0
        for event in events:
            assert event.domains_done >= done
            assert event.shards_done >= shards
            assert 0.0 <= event.percent <= 100.0
            assert event.backend == backend
            done, shards = event.domains_done, event.shards_done

        final = events[-1]
        assert final.final
        assert final.domains_done == final.domains_total
        assert final.domains_total == stats.domains_scanned
        assert final.shards_done == final.shards_total
        assert not any(event.final for event in events[:-1])

    def test_threaded_reports_one_shard_per_job(self):
        events = []
        run_scan("threaded", 5, progress=events.append)
        assert events[-1].shards_total == 5

    def test_heartbeat_every_domain(self):
        events = []
        _, _, stats = run_scan("serial", 1, progress=events.append,
                               heartbeat_every=1)
        # one per domain + one shard boundary + one final
        assert len(events) == stats.domains_scanned + 2

    def test_virtual_epoch_is_the_scan_instant(self):
        events = []
        timeline = EcosystemTimeline(
            TimelineConfig(PopulationConfig(scale=0.002, seed=SEED)))
        materialized = timeline.materialize(0)
        executor = ScanExecutor(progress=events.append)
        executor.scan(materialized.world, materialized.deployed.keys(),
                      0, instant=materialized.instant)
        assert all(event.virtual_epoch
                   == materialized.instant.epoch_seconds
                   for event in events)


class TestProgressTracker:
    def make(self, events, **overrides):
        options = dict(month_index=2, backend="serial",
                       domains_total=10, shards_total=1,
                       virtual_epoch=1700000000, heartbeat_every=2)
        options.update(overrides)
        return ProgressTracker(events.append, **options)

    def test_heartbeat_cadence(self):
        events = []
        tracker = self.make(events)
        for index in range(5):
            tracker.domain_done(f"d{index}")
        assert [event.domains_done for event in events] == [2, 4]
        tracker.shard_done()
        tracker.finish()
        assert events[-2].shards_done == 1
        assert events[-1].final

    def test_default_heartbeat_is_a_twentieth(self):
        events = []
        tracker = self.make(events, domains_total=100,
                            heartbeat_every=0)
        for index in range(5):
            tracker.domain_done(f"d{index}")
        assert len(events) == 1    # fires at 100 // 20 = 5

    def test_event_derivations(self):
        event = ProgressEvent(
            month_index=0, backend="serial", domains_total=100,
            domains_done=50, shards_total=1, shards_done=0,
            wall_elapsed_seconds=5.0, virtual_epoch=0)
        assert event.domains_per_second == pytest.approx(10.0)
        assert event.eta_seconds == pytest.approx(5.0)
        assert event.percent == pytest.approx(50.0)
        idle = ProgressEvent(
            month_index=0, backend="serial", domains_total=100,
            domains_done=0, shards_total=1, shards_done=0,
            wall_elapsed_seconds=1.0, virtual_epoch=0)
        assert idle.eta_seconds is None
        empty = ProgressEvent(
            month_index=0, backend="serial", domains_total=0,
            domains_done=0, shards_total=1, shards_done=0,
            wall_elapsed_seconds=0.0, virtual_epoch=0)
        assert empty.percent == 100.0


class TestProgressPrinter:
    def event(self, done, final=False):
        return ProgressEvent(
            month_index=3, backend="threaded", domains_total=200,
            domains_done=done, shards_total=4, shards_done=1,
            wall_elapsed_seconds=2.0, virtual_epoch=0, final=final)

    def test_non_tty_writes_one_line_per_event(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream)
        printer(self.event(50))
        printer(self.event(200, final=True))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "scan m03 [threaded] 50/200 domains" in lines[0]
        assert "dom/s" in lines[0]
        assert "eta" in lines[0]

    def test_tty_overwrites_in_place(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        printer = ProgressPrinter(stream)
        printer(self.event(50))
        printer(self.event(200, final=True))
        text = stream.getvalue()
        assert text.startswith("\r")
        assert text.count("\r") == 2
        assert text.endswith("\n")    # the final event closes the line


class TestProfiling:
    def test_disabled_profiling_is_a_no_op(self):
        executor_off, store_off, _ = run_scan("serial", 1)
        executor_on, store_on, _ = run_scan("serial", 1, profile=True)
        assert executor_off.last_profile is None
        assert executor_on.last_profile is not None
        assert store_off.canonical_bytes() == store_on.canonical_bytes()

    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1),
        ("threaded", 6),
    ])
    def test_profile_covers_every_domain(self, backend, jobs):
        executor, _, stats = run_scan(backend, jobs, profile=True)
        profile = executor.last_profile
        assert profile.domains_profiled == stats.domains_scanned
        assert set(profile.stage_seconds) <= set(STAGES)
        assert "dns" in profile.stage_seconds
        assert profile.stage_calls["dns"] == stats.domains_scanned
        assert len(profile.slowest) <= profile.top_n
        assert profile.slowest == sorted(profile.slowest, reverse=True)

    def test_report_merge_and_extend(self):
        first, second = StageProfiler(), StageProfiler()
        first.record_stage("dns", 0.5)
        first.record_domain("a.com", 0, 0.5)
        second.record_stage("dns", 0.25)
        second.record_stage("mx", 1.0)
        second.record_domain("b.com", 0, 1.25)
        merged = ProfileReport.merge([first, second], top_n=1)
        assert merged.stage_seconds["dns"] == pytest.approx(0.75)
        assert merged.stage_calls["dns"] == 2
        assert merged.domains_profiled == 2
        assert [d for _, _, d in merged.slowest] == ["b.com"]

        other = ProfileReport.merge([first], top_n=1)
        merged.extend(other)
        assert merged.domains_profiled == 3
        assert merged.stage_seconds["dns"] == pytest.approx(1.25)

    def test_to_dict_shape(self):
        executor, _, _ = run_scan("serial", 1, profile=True)
        data = executor.last_profile.to_dict()
        assert set(data) == {"domains_profiled", "total_seconds",
                             "stages", "slowest_domains"}
        for row in data["slowest_domains"]:
            assert set(row) == {"domain", "month", "seconds"}
        for stage in data["stages"].values():
            assert set(stage) == {"seconds", "calls"}

    def test_render_profile(self):
        executor, _, _ = run_scan("serial", 1, profile=True)
        text = render_profile(executor.last_profile)
        assert "wall-clock stage profile" in text
        assert "dns" in text
        assert "slowest domains:" in text
        assert "█" in text


class TestAuditStatsJson:
    def test_stats_json_is_machine_readable(self, capsys):
        from repro.cli import main
        assert main(["audit", "--scale", "0.002", "--seed", str(SEED),
                     "--stats", "--json"]) == 0
        out = capsys.readouterr().out
        data = json.loads(out)    # stdout is exactly one JSON document
        assert data["domains_scanned"] > 0
        assert data["backend"] == "serial"

    def test_json_requires_stats(self, capsys):
        from repro.cli import main
        assert main(["audit", "--scale", "0.002", "--json"]) == 2
        assert "--stats" in capsys.readouterr().err
