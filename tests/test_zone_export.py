"""Tests for zone export, re-import, and corpus auditing."""

import pytest

from repro.dns.name import DnsName
from repro.dns.records import RRType
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.measurement.zone_export import (
    audit_zone_corpus, export_world_zones, reimport_zones,
)


class TestExportRoundTrip:
    def test_deployed_domain_round_trips(self, world, simple_domain):
        texts = export_world_zones(world)
        assert "example.com" in texts
        zones = reimport_zones(texts)
        zone = zones["example.com"]
        apex = DnsName.parse("example.com")
        assert zone.lookup(apex, RRType.MX)
        assert zone.lookup(DnsName.parse("_mta-sts.example.com"),
                           RRType.TXT)
        original = world.server_for("example.com").zone_for(apex)
        assert zone.record_count() == original.record_count()

    def test_reverse_zone_round_trips(self, world):
        texts = export_world_zones(world)
        assert "in-addr.arpa" in texts
        zones = reimport_zones(texts)
        records = zones["in-addr.arpa"].all_records()
        assert any(r.rrtype is RRType.PTR for r in records)

    def test_rdata_preserved_exactly(self, world, simple_domain):
        texts = export_world_zones(world)
        zones = reimport_zones(texts)
        original = world.server_for("example.com").zone_for(
            DnsName.parse("example.com"))
        assert ({r.rdata_text() for r in zones["example.com"].all_records()}
                == {r.rdata_text() for r in original.all_records()})


class TestCorpusAudit:
    def test_corpus_defaults_to_sts_zones(self, world, simple_domain):
        deploy_domain(world, DomainSpec(domain="nosts.com",
                                        deploy_sts=False))
        result = audit_zone_corpus(export_world_zones(world))
        audited = {a.domain for a in result.assessments}
        assert "example.com" in audited
        assert "nosts.com" not in audited

    def test_healthy_corpus_clean(self, world, simple_domain):
        result = audit_zone_corpus(export_world_zones(world))
        assert result.assessed >= 1
        assert result.with_record_errors == 0
        assert result.with_policy_host_errors == 0

    def test_faults_visible_in_corpus(self, world, simple_domain):
        broken = deploy_domain(world, DomainSpec(domain="broken.com"))
        apply_fault(world, broken, Fault.RECORD_INVALID_ID)
        orphan = deploy_domain(world, DomainSpec(domain="orphan.com"))
        apply_fault(world, orphan, Fault.POLICY_DNS_UNRESOLVABLE)
        result = audit_zone_corpus(export_world_zones(world))
        assert result.with_record_errors == 1
        assert result.with_policy_host_errors == 1

    def test_explicit_domain_list(self, world, simple_domain):
        result = audit_zone_corpus(export_world_zones(world),
                                   domains=["example.com", "missing.org"])
        assert result.assessed == 1
