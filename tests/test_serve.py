"""The policy-checker service: TTL verdict cache, single-flight
deduplication, the seeded query mix, and the deterministic replay."""

import json
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clock import Clock, Duration, Instant
from repro.core.cache import TtlCache, ttl_fresh
from repro.measurement.serve import (
    QueryMixGenerator, ServeConfig, ServeStats, VerdictCache, run_serve,
    verdict_ttl,
)
from repro.obs.monitor import (
    ALERT, OK, WARN, ServeMonitor, ServeRecord, ServeThresholds,
)
from repro.trace import Histogram, MetricsRegistry


def make_clock() -> Clock:
    return Clock(Instant.parse("2024-01-01"))


SMALL = dict(scale=0.01, requests=4_000, batch_size=500, months=2,
             flash_every=4, flash_size=600, record_every=3)


@pytest.fixture(scope="module")
def small_result():
    return run_serve(ServeConfig(**SMALL))


# ---------------------------------------------------------------------------
# TtlCache semantics
# ---------------------------------------------------------------------------

class TestTtlCache:
    @given(st.integers(min_value=1, max_value=10_000),
           st.integers(min_value=0, max_value=20_000))
    def test_ttl_boundary(self, ttl, elapsed):
        clock = make_clock()
        cache = TtlCache(clock)
        cache.store("key", "value", ttl)
        clock.advance(Duration(elapsed))
        # RFC 8461 semantics shared with PolicyCache: last fresh at
        # ttl-1, expired at exactly ttl.
        assert (cache.get("key") is not None) == (elapsed < ttl)
        assert ttl_fresh(Instant.parse("2024-01-01"), ttl,
                         clock.now()) == (elapsed < ttl)

    def test_fresh_probe_counts_no_hit_but_evicts(self):
        clock = make_clock()
        cache = TtlCache(clock)
        cache.store("key", "value", 100)
        for _ in range(5):
            assert cache.fresh("key") is True
        assert cache.hit_count == 0
        assert cache.get("key") == "value"
        assert cache.hit_count == 1
        clock.advance(Duration(100))
        assert cache.fresh("key") is False
        assert cache.eviction_count == 1
        assert len(cache) == 0

    def test_peek_skips_eviction_and_counting(self):
        clock = make_clock()
        cache = TtlCache(clock)
        cache.store("key", "value", 10)
        clock.advance(Duration(10))
        assert cache.peek("key") == "value"    # stale but untouched
        assert len(cache) == 1
        assert cache.get("key") is None
        assert len(cache) == 0

    def test_explicit_evict_and_flush_count(self):
        clock = make_clock()
        cache = TtlCache(clock)
        cache.store("a", 1, 10)
        cache.store("b", 2, 10)
        cache.evict("a")
        cache.evict("missing")
        assert cache.eviction_count == 1
        cache.flush()
        assert cache.eviction_count == 2
        assert len(cache) == 0

    def test_rejects_non_positive_ttl(self):
        cache = TtlCache(make_clock())
        with pytest.raises(ValueError):
            cache.store("key", "value", 0)

    def test_expires_at(self):
        clock = make_clock()
        cache = TtlCache(clock)
        cache.store("key", "value", 3600)
        assert cache.expires_at("key") == clock.now() + Duration(3600)
        assert cache.expires_at("missing") is None


# ---------------------------------------------------------------------------
# Single-flight deduplication
# ---------------------------------------------------------------------------

class TestSingleFlight:
    def test_concurrent_requests_one_computation(self):
        cache = VerdictCache(make_clock())
        release = threading.Event()
        started = threading.Barrier(9)
        calls = []

        def compute(key):
            calls.append(key)
            release.wait(timeout=10)
            return f"verdict:{key}", 3600

        results = [None] * 8

        def request(index):
            started.wait(timeout=10)
            results[index] = cache.get_or_compute("EXAMPLE.com.",
                                                  compute)

        workers = [threading.Thread(target=request, args=(index,))
                   for index in range(8)]
        for worker in workers:
            worker.start()
        started.wait(timeout=10)   # all eight requesters are racing
        release.set()
        for worker in workers:
            worker.join(timeout=10)

        assert calls == ["example.com"]    # one canonicalised owner
        assert results == ["verdict:example.com"] * 8
        assert cache.computed_count == 1

    def test_failed_computation_is_not_cached(self):
        cache = VerdictCache(make_clock())
        attempts = []

        def failing(key):
            attempts.append(key)
            raise RuntimeError("scan failed")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("example.com", failing)
        # The flight is gone: the next requester owns a fresh attempt.
        assert cache.get_or_compute(
            "example.com", lambda key: ("ok", 60)) == "ok"
        assert attempts == ["example.com"]
        assert len(cache) == 1

    def test_casefold_keying(self):
        cache = VerdictCache(make_clock())
        cache.get_or_compute("STRAẞE.example.",
                             lambda key: (f"verdict:{key}", 3600))
        assert cache.lookup("strasse.example") == "verdict:strasse.example"
        assert cache.fresh("Strasse.Example") is True
        cache.evict("STRASSE.EXAMPLE")
        assert cache.fresh("strasse.example") is False

    def test_expiry_recomputes(self):
        clock = make_clock()
        cache = VerdictCache(clock)
        counter = []

        def compute(key):
            counter.append(key)
            return f"verdict#{len(counter)}", 100

        assert cache.get_or_compute("a.example", compute) == "verdict#1"
        clock.advance(Duration(99))
        assert cache.get_or_compute("a.example", compute) == "verdict#1"
        clock.advance(Duration(1))   # exactly ttl → expired
        assert cache.get_or_compute("a.example", compute) == "verdict#2"
        assert cache.eviction_count == 1


# ---------------------------------------------------------------------------
# Verdict TTLs
# ---------------------------------------------------------------------------

class TestVerdictTtl:
    def _snapshot(self, max_age):
        class Snap:
            policy_max_age = max_age
        return Snap()

    def test_policy_max_age_respected(self):
        assert verdict_ttl(self._snapshot(7_200), ttl_seconds=86_400,
                           min_ttl_seconds=3_600) == 7_200

    def test_clamped_into_bounds(self):
        assert verdict_ttl(self._snapshot(60), ttl_seconds=86_400,
                           min_ttl_seconds=3_600) == 3_600
        assert verdict_ttl(self._snapshot(10**8), ttl_seconds=86_400,
                           min_ttl_seconds=3_600) == 86_400

    def test_no_policy_uses_default(self):
        assert verdict_ttl(self._snapshot(None), ttl_seconds=86_400,
                           min_ttl_seconds=3_600) == 86_400
        assert verdict_ttl(self._snapshot(0), ttl_seconds=86_400,
                           min_ttl_seconds=3_600) == 86_400


# ---------------------------------------------------------------------------
# Query mix
# ---------------------------------------------------------------------------

class TestQueryMix:
    UNIVERSE = [f"domain{index}.example" for index in range(50)]

    def test_same_seed_same_sequence(self):
        one = QueryMixGenerator(self.UNIVERSE, 7, flash_every=3,
                                flash_size=10)
        two = QueryMixGenerator(self.UNIVERSE, 7, flash_every=3,
                                flash_size=10)
        for tick in range(12):
            assert one.batch(tick, 40) == two.batch(tick, 40)

    def test_different_seeds_differ(self):
        one = QueryMixGenerator(self.UNIVERSE, 7)
        two = QueryMixGenerator(self.UNIVERSE, 8)
        assert ([one.sample() for _ in range(80)]
                != [two.sample() for _ in range(80)])

    def test_zipf_head_dominates(self):
        mix = QueryMixGenerator(self.UNIVERSE, 7, zipf_s=1.2)
        draws = [mix.sample() for _ in range(2_000)]
        counts = sorted((draws.count(name) for name in set(draws)),
                        reverse=True)
        # The most popular domain outdraws the long tail decisively.
        assert counts[0] > 10 * counts[-1]

    def test_flash_crowd_cadence_and_shape(self):
        mix = QueryMixGenerator(self.UNIVERSE, 7, flash_every=4,
                                flash_size=25)
        for tick in range(8):
            requests, flash = mix.batch(tick, 10)
            if tick % 4 == 3:
                assert flash == 25 and len(requests) == 35
                target = requests[-1]
                assert requests[-25:] == [target] * 25
            else:
                assert flash == 0 and len(requests) == 10

    def test_canonicalised_universe(self):
        mix = QueryMixGenerator(["A.Example.", "b.example"], 1)
        assert sorted(mix.ranked) == ["a.example", "b.example"]

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            QueryMixGenerator([], 1)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------

class TestServeConfig:
    @pytest.mark.parametrize("overrides", [
        {"requests": 0}, {"batch_size": 0}, {"months": 0},
        {"month_index": -1}, {"min_ttl_seconds": 0},
        {"ttl_seconds": 10, "min_ttl_seconds": 60},
        {"zipf_s": 0.0}, {"flash_every": -1}, {"flash_size": -1},
        {"record_every": 0},
    ])
    def test_rejects_bad_values(self, overrides):
        with pytest.raises(ValueError):
            ServeConfig(**overrides)

    def test_round_trips_and_ignores_unknown_keys(self):
        config = ServeConfig(requests=123, flash_every=5)
        data = dict(config.to_dict(), stray="ignored")
        assert ServeConfig.from_dict(data) == config

    def test_ticks_round_up(self):
        assert ServeConfig(requests=1001, batch_size=500).ticks == 3

    def test_month_span_validated_against_timeline(self):
        config = ServeConfig(**dict(SMALL, month_index=400))
        with pytest.raises(ValueError, match="exceeds"):
            run_serve(config)


# ---------------------------------------------------------------------------
# The replay loop
# ---------------------------------------------------------------------------

class TestServeReplay:
    def test_accounting_is_complete(self, small_result):
        stats = small_result.stats
        assert (stats.computations + stats.hits + stats.collapsed
                == stats.requests)
        assert stats.requests >= SMALL["requests"]
        assert stats.flash_requests == stats.requests - SMALL["requests"]
        assert stats.computations == stats.requests - (
            stats.hits + stats.collapsed)
        assert stats.stampede_fanin_peak >= SMALL["flash_size"]
        assert stats.windows == len(small_result.monitor.records)

    def test_flash_crowds_collapse(self, small_result):
        # The single-flight cache turns every flash crowd into at most
        # one computation: collapsed requests dominate the flash load.
        assert small_result.stats.collapsed >= SMALL["flash_size"]

    def test_latency_histogram_covers_every_request(self, small_result):
        histogram = small_result.total_registry.histograms[
            "serve.latency"]
        assert histogram.observations == small_result.stats.requests
        assert small_result.p99_latency_seconds > 0.0

    def test_windows_sum_to_totals(self, small_result):
        totals = MetricsRegistry()
        for record in small_result.monitor.records:
            totals.merge(record.metrics)
        stats = small_result.stats
        assert totals.get("serve.requests") == stats.requests
        assert totals.get("serve.computations") == stats.computations
        assert totals.get("serve.hits") == stats.hits
        assert totals.get("serve.collapsed") == stats.collapsed
        assert totals.get("serve.evictions") == stats.evictions

    def test_serial_threaded_byte_identical(self, small_result):
        threaded = run_serve(ServeConfig(**SMALL), backend="threaded",
                             jobs=8)
        assert (threaded.monitor.to_jsonl()
                == small_result.monitor.to_jsonl())
        assert (threaded.stats.comparable()
                == small_result.stats.comparable())
        assert threaded.stats.backend == "threaded"

    def test_rerun_byte_identical(self, small_result):
        again = run_serve(ServeConfig(**SMALL))
        assert again.monitor.to_jsonl() == small_result.monitor.to_jsonl()

    def test_query_seed_changes_feed(self, small_result):
        other = run_serve(ServeConfig(**dict(SMALL, query_seed=1234)))
        assert (other.monitor.to_jsonl()
                != small_result.monitor.to_jsonl())

    def test_eviction_then_refetch_is_byte_identical(self, small_result):
        # Rebuild the same world at the same instant and verify a
        # cold recomputation reproduces a served verdict byte-for-byte.
        from repro.ecosystem.population import PopulationConfig
        from repro.ecosystem.timeline import (
            EcosystemTimeline, TimelineConfig,
        )
        from repro.measurement.scanner import Scanner
        from repro.measurement.serve import verdict_payload

        config = small_result.config
        timeline = EcosystemTimeline(TimelineConfig(PopulationConfig(
            scale=config.scale, seed=config.seed)))
        snapshot = timeline.materialize(config.month_index)
        scanner = Scanner(snapshot.world)
        domain = sorted(plan.name
                        for plan in timeline.all_plans())[0]
        cache = VerdictCache(snapshot.world.clock)

        def compute(key):
            scan = scanner.scan_domain(key, config.month_index,
                                       snapshot.instant)
            return verdict_payload(scan), 3600

        first = cache.get_or_compute(domain, compute)
        cache.evict(domain)
        assert cache.fresh(domain) is False
        second = cache.get_or_compute(domain, compute)
        assert first == second
        payload = json.loads(first)
        assert payload["domain"] == domain
        assert cache.computed_count == 2

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            run_serve(ServeConfig(**SMALL), backend="process")
        with pytest.raises(ValueError):
            run_serve(ServeConfig(**SMALL), backend="serial", jobs=4)
        with pytest.raises(ValueError):
            run_serve(ServeConfig(**SMALL), backend="threaded", jobs=0)

    def test_progress_reaches_total(self):
        seen = []
        run_serve(ServeConfig(**dict(SMALL, months=1)),
                  progress=lambda served, total: seen.append(
                      (served, total)))
        served, total = seen[-1]
        assert served >= total


# ---------------------------------------------------------------------------
# Service health
# ---------------------------------------------------------------------------

def make_window(window_index, *, requests=1_000, computations=100,
                hits=800, collapsed=100, fanin=50,
                latency_micros=()):
    registry = MetricsRegistry()
    registry.count("serve.requests", requests)
    registry.count("serve.computations", computations)
    registry.count("serve.hits", hits)
    registry.count("serve.collapsed", collapsed)
    registry.count("serve.stampede_fanin_peak", fanin)
    histogram = Histogram()
    for value in latency_micros:
        histogram.observe_micros(value)
    registry.histograms["serve.latency"] = histogram
    return ServeRecord(window_index, "2024-01-01", registry)


class TestServeMonitor:
    def test_clean_feed_is_ok(self):
        monitor = ServeMonitor()
        monitor.add_record(make_window(0))
        monitor.add_record(make_window(1))
        report = monitor.health()
        assert report.level == OK
        assert len(report.findings) == 2

    def test_hit_rate_floor_is_cumulative(self):
        monitor = ServeMonitor(ServeThresholds(hit_rate_floor_warn=0.5))
        # A cold window alone would fail the floor, but the warm
        # cumulative total carries it.
        monitor.add_record(make_window(
            0, requests=1_000, computations=100, hits=800,
            collapsed=100))
        monitor.add_record(make_window(
            1, requests=100, computations=100, hits=0, collapsed=0))
        report = monitor.health()
        assert report.level == OK

    def test_low_hit_rate_warns(self):
        monitor = ServeMonitor()
        monitor.add_record(make_window(
            0, requests=1_000, computations=900, hits=50, collapsed=50))
        report = monitor.health()
        assert report.level == WARN
        assert report.at_level(WARN)[0].metric == "hit-rate-floor"

    def test_p99_latency_alerts(self):
        monitor = ServeMonitor(ServeThresholds(p99_latency_alert=1.0))
        monitor.add_record(make_window(
            0, latency_micros=[4_000_000] * 10))
        report = monitor.health()
        assert report.level == ALERT
        assert report.at_level(ALERT)[0].metric == "p99-latency"

    def test_fanin_warns(self):
        monitor = ServeMonitor(ServeThresholds(fanin_warn=100))
        monitor.add_record(make_window(0, fanin=101))
        report = monitor.health()
        assert any(f.metric == "stampede-fanin"
                   for f in report.at_level(WARN))

    def test_jsonl_round_trip_preserves_health(self, small_result):
        monitor = ServeMonitor.from_jsonl(small_result.monitor.to_jsonl())
        assert monitor.to_jsonl() == small_result.monitor.to_jsonl()
        assert (monitor.health().as_dict()
                == small_result.monitor.health().as_dict())
        restored = monitor.records[0].metrics.histograms["serve.latency"]
        assert restored.quantile(0.99) == (
            small_result.monitor.records[0].p99_latency_seconds())

    def test_live_jsonl_feed(self, tmp_path):
        path = str(tmp_path / "serve.jsonl")
        monitor = ServeMonitor(jsonl_path=path)
        monitor.add_record(make_window(0))
        monitor.add_record(make_window(1))
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["month"] == 0


# ---------------------------------------------------------------------------
# Histogram quantiles
# ---------------------------------------------------------------------------

class TestHistogramQuantile:
    def test_empty_is_zero(self):
        assert Histogram().quantile(0.99) == 0.0

    def test_quantile_picks_bucket_bound(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        for _ in range(99):
            histogram.observe_micros(500_000)     # ≤ 1.0s
        histogram.observe_micros(3_000_000)       # ≤ 4.0s
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(0.99) == 1.0
        assert histogram.quantile(1.0) == 4.0

    def test_overflow_is_inf(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe_micros(5_000_000)
        assert histogram.quantile(0.5) == float("inf")

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(0.0)
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)


# ---------------------------------------------------------------------------
# ServeStats surface
# ---------------------------------------------------------------------------

class TestServeStats:
    def test_comparable_strips_wall_clock(self):
        stats = ServeStats(backend="threaded", jobs=8, requests=100,
                           hits=60, collapsed=20,
                           serve_seconds=1.5, world_build_seconds=2.0)
        comparable = stats.comparable()
        for key in ServeStats._NON_DETERMINISTIC:
            assert key not in comparable
        assert comparable["requests"] == 100

    def test_rates(self):
        stats = ServeStats(requests=100, hits=60, collapsed=20,
                           serve_seconds=2.0)
        assert stats.hit_rate == 0.8
        assert stats.requests_per_second == 50.0
        assert ServeStats().hit_rate == 0.0
        assert ServeStats().requests_per_second == 0.0

    def test_to_dict_includes_derived(self):
        data = ServeStats(requests=10, hits=5, collapsed=0,
                          serve_seconds=1.0).to_dict()
        assert data["hit_rate"] == 0.5
        assert data["requests_per_second"] == 10.0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestServeCli:
    def run_cli(self, argv):
        from repro.cli import main
        return main(argv)

    def test_serve_run_writes_metrics(self, tmp_path, capsys):
        metrics = tmp_path / "serve.jsonl"
        prom = tmp_path / "serve.prom"
        code = self.run_cli([
            "serve", "--scale", "0.01", "--requests", "1000",
            "--batch-size", "250", "--flash-every", "2",
            "--flash-size", "100",
            "--metrics-out", str(metrics), "--prom-out", str(prom)])
        assert code == 0
        output = capsys.readouterr().out
        assert "serve:" in output and "hit rate" in output
        lines = metrics.read_text(encoding="utf-8").splitlines()
        assert lines and all(json.loads(line)["type"] == "month"
                             for line in lines)
        assert "repro_serve_requests_total" in prom.read_text(
            encoding="utf-8")

    def test_serve_threaded_matches_serial(self, tmp_path):
        serial = tmp_path / "serial.jsonl"
        threaded = tmp_path / "threaded.jsonl"
        base = ["serve", "--scale", "0.01", "--requests", "1000",
                "--batch-size", "250"]
        assert self.run_cli(base + ["--metrics-out", str(serial)]) == 0
        assert self.run_cli(base + ["--backend", "threaded", "--jobs",
                                    "4", "--metrics-out",
                                    str(threaded)]) == 0
        assert serial.read_bytes() == threaded.read_bytes()

    def test_serve_month_span_error_is_usage_error(self, capsys):
        code = self.run_cli(["serve", "--scale", "0.01",
                             "--requests", "100", "--month", "400"])
        assert code == 2
        assert "exceeds" in capsys.readouterr().err

    def test_serve_rejects_bad_flags(self):
        with pytest.raises(SystemExit) as excinfo:
            self.run_cli(["serve", "--requests", "0"])
        assert excinfo.value.code == 2
        with pytest.raises(SystemExit) as excinfo:
            self.run_cli(["serve", "--zipf-s", "oops"])
        assert excinfo.value.code == 2
