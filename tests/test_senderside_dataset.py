"""Tests for the §6.1 dataset-shape synthesis (test log, dedup,
operator concentration)."""

import pytest

from repro.clock import Instant
from repro.measurement.senderside import (
    TEST_COUNT, latest_test_per_sender, operator_concentration,
    synthesize_sender_population, synthesize_test_log,
)


@pytest.fixture(scope="module")
def log():
    profiles = synthesize_sender_population()
    return synthesize_test_log(profiles)


class TestLogShape:
    def test_total_and_unique_counts(self, log):
        assert len(log) == TEST_COUNT                     # 3,806 tests
        senders = {t.sender_domain for t in log}
        assert len(senders) == 2_394                      # unique senders

    def test_every_sender_tested_at_least_once(self, log):
        from collections import Counter
        counts = Counter(t.sender_domain for t in log)
        assert min(counts.values()) >= 1
        assert max(counts.values()) >= 2      # re-testers exist

    def test_window_matches_paper(self, log):
        start = Instant.from_date(2023, 2, 1)
        end = Instant.from_date(2024, 11, 1)
        assert all(start <= t.timestamp <= end for t in log)

    def test_log_sorted_by_time(self, log):
        stamps = [t.timestamp for t in log]
        assert stamps == sorted(stamps)

    def test_deterministic(self):
        profiles = synthesize_sender_population()
        a = synthesize_test_log(profiles, seed=9)
        b = synthesize_test_log(profiles, seed=9)
        assert [(t.sender_domain, t.timestamp) for t in a] == \
            [(t.sender_domain, t.timestamp) for t in b]


class TestDedup:
    def test_latest_kept(self, log):
        latest = latest_test_per_sender(log)
        assert len(latest) == 2_394
        from collections import defaultdict
        by_sender = defaultdict(list)
        for test in log:
            by_sender[test.sender_domain].append(test)
        for sender, tests in list(by_sender.items())[:50]:
            assert latest[sender].timestamp == max(
                t.timestamp for t in tests)


class TestConcentration:
    def test_top10_share_near_paper(self, log):
        stats = operator_concentration(log)
        # Paper: the top 10 operators account for 60.7% of interactions.
        assert 0.5 <= stats["top_share"] <= 0.72

    def test_outlook_and_google_lead(self, log):
        stats = operator_concentration(log)
        leaders = [op for op, _ in stats["top_operators"][:2]]
        assert set(leaders) == {"outlook.com", "google.com"}

    def test_shares_match_weights(self, log):
        stats = operator_concentration(log)
        counts = dict(stats["top_operators"])
        total = stats["total_interactions"]
        assert abs(counts["outlook.com"] / total - 0.2631) < 0.03
        assert abs(counts["google.com"] / total - 0.2303) < 0.03
