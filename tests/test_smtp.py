"""Unit tests for MX hosts, the instrumented probe, and plain delivery."""

import pytest

from repro.clock import Clock, Instant
from repro.dns.name import DnsName
from repro.dns.records import ARecord, MxRecord
from repro.dns.resolver import Resolver
from repro.dns.server import AuthoritativeServer
from repro.dns.zone import Zone
from repro.netsim.ip import IpAddress, IpPool
from repro.netsim.network import Network
from repro.pki.ca import CertificateAuthority, TrustStore
from repro.pki.certificate import CertTemplate, make_self_signed
from repro.smtp.client import SmtpProbe
from repro.smtp.delivery import DeliveryStatus, Message, SendingMta
from repro.smtp.server import MxHost
from repro.tls.handshake import TlsEndpoint


@pytest.fixture
def env():
    network = Network()
    clock = Clock(Instant.parse("2024-06-01"))
    ca = CertificateAuthority("CA", clock)
    store = TrustStore([ca.root])
    pool = IpPool()
    ns = AuthoritativeServer("ns", pool.allocate(), network)
    zone = Zone(apex=DnsName.parse("example.com"))
    mx_ip = IpAddress.v4(10, 30, 0, 1)
    zone.add(MxRecord(DnsName.parse("example.com"), 3600, 10,
                      DnsName.parse("mail.example.com")))
    zone.add(ARecord(DnsName.parse("mail.example.com"), 3600, mx_ip))
    ns.add_zone(zone)
    resolver = Resolver(network, clock)
    resolver.delegate("example.com", [ns.ip])
    tls = TlsEndpoint()
    tls.install("mail.example.com",
                ca.issue(CertTemplate(["mail.example.com"])), default=True)
    mx = MxHost("mail.example.com", mx_ip, network, tls=tls)
    return network, clock, ca, store, resolver, zone, mx


class TestMxHost:
    def test_ehlo_advertises_starttls(self, env):
        *_, mx = env
        response = mx.ehlo("scanner.example.net")
        assert response.code == 250
        assert response.starttls_offered

    def test_ehlo_without_tls(self, env):
        *_, mx = env
        mx.tls.enabled = False
        assert not mx.ehlo("scanner").starttls_offered

    def test_helo_fallback(self, env):
        *_, mx = env
        mx.ehlo_supported = False
        assert mx.ehlo("scanner").code == 502
        helo = mx.helo("scanner")
        assert helo.code == 250
        assert not helo.starttls_offered

    def test_greylisting_clears_on_retry(self, env):
        *_, mx = env
        mx.greylist_first_contact = True
        assert mx.ehlo("scanner").code == 451
        assert mx.ehlo("scanner").code == 250

    def test_hide_starttls_from_unknown(self, env):
        *_, mx = env
        mx.hide_starttls_from_unknown = True
        assert not mx.ehlo("stranger").starttls_offered
        assert mx.ehlo("stranger").starttls_offered   # now known

    def test_accept_and_reject_message(self, env):
        *_, mx = env
        code, _ = mx.accept_message("a@b.c", "x@example.com", "hi",
                                    over_tls=True)
        assert code == 250
        assert mx.mailbox[0].over_tls
        mx.reject_all_mail = True   # the Tutanota opt-out behaviour
        code, _ = mx.accept_message("a@b.c", "x@example.com", "hi",
                                    over_tls=True)
        assert code == 550


class TestProbe:
    def make_probe(self, env, **kwargs):
        network, clock, ca, store, resolver, zone, mx = env
        return SmtpProbe(network, resolver, store, clock, **kwargs)

    def test_valid_host(self, env):
        probe = self.make_probe(env)
        result = probe.probe_host("mail.example.com")
        assert result.reachable
        assert result.starttls_offered
        assert result.cert_valid
        assert result.failure_class() == "valid"

    def test_unresolvable_host(self, env):
        probe = self.make_probe(env)
        result = probe.probe_host("mail.ghost.org")
        assert not result.reachable
        assert result.failure_class() == "unreachable"

    def test_self_signed_cert_detected(self, env):
        network, clock, ca, store, resolver, zone, mx = env
        mx.tls.install("mail.example.com",
                       make_self_signed(CertTemplate(["mail.example.com"]),
                                        clock.now()), default=True)
        result = self.make_probe(env).probe_host("mail.example.com")
        assert result.tls_established
        assert not result.cert_valid
        assert result.failure_class() == "self-signed"

    def test_cn_mismatch_detected(self, env):
        network, clock, ca, store, resolver, zone, mx = env
        mx.tls.install("mail.example.com",
                       ca.issue(CertTemplate(["legacy.example.com"])),
                       default=True)
        result = self.make_probe(env).probe_host("mail.example.com")
        assert result.failure_class() == "cn-mismatch"

    def test_greylist_retry(self, env):
        network, clock, ca, store, resolver, zone, mx = env
        mx.greylist_first_contact = True
        result = self.make_probe(env).probe_host("mail.example.com")
        assert result.greylisted
        assert result.starttls_offered    # retried and succeeded

    def test_greylist_no_retry(self, env):
        network, clock, ca, store, resolver, zone, mx = env
        mx.greylist_first_contact = True
        probe = self.make_probe(env, retry_greylist=False)
        result = probe.probe_host("mail.example.com")
        assert result.greylisted
        assert not result.starttls_offered

    def test_helo_fallback_recorded(self, env):
        network, clock, ca, store, resolver, zone, mx = env
        mx.ehlo_supported = False
        result = self.make_probe(env).probe_host("mail.example.com")
        assert result.used_helo_fallback
        assert result.failure_class() == "no-starttls"

    def test_probe_domain_walks_mx_rrset(self, env):
        probe = self.make_probe(env)
        results = probe.probe_domain("example.com")
        assert [r.mx_hostname for r in results] == ["mail.example.com"]

    def test_probe_domain_implicit_mx(self, env):
        network, clock, ca, store, resolver, zone, mx = env
        from repro.dns.records import RRType
        zone.remove(DnsName.parse("example.com"), RRType.MX)
        zone.add(ARecord(DnsName.parse("example.com"), 300, mx.ip))
        resolver.flush_cache()
        results = probe = self.make_probe(env).probe_domain("example.com")
        assert [r.mx_hostname for r in results] == ["example.com"]


class TestDelivery:
    def make_mta(self, env, **kwargs):
        network, clock, ca, store, resolver, zone, mx = env
        return SendingMta("sender.example.net", network, resolver, store,
                          clock, **kwargs)

    def test_delivers_over_tls(self, env):
        *_, mx = env
        mta = self.make_mta(env)
        attempt = mta.send(Message("a@sender.example.net", "b@example.com"))
        assert attempt.status is DeliveryStatus.DELIVERED
        assert mx.mailbox[0].over_tls

    def test_plaintext_when_no_starttls(self, env):
        *_, mx = env
        mx.tls.enabled = False
        attempt = self.make_mta(env).send(
            Message("a@s.net", "b@example.com"))
        assert attempt.status is DeliveryStatus.DELIVERED_PLAINTEXT
        assert not mx.mailbox[0].over_tls

    def test_no_mx_and_no_apex(self, env):
        attempt = self.make_mta(env).send(Message("a@s.net", "b@ghost.org"))
        assert attempt.status is DeliveryStatus.NO_MX

    def test_require_pkix_refuses_bad_cert(self, env):
        network, clock, ca, store, resolver, zone, mx = env
        mx.tls.install("mail.example.com",
                       make_self_signed(CertTemplate(["mail.example.com"]),
                                        clock.now()), default=True)
        mta = self.make_mta(env, require_pkix=True)
        attempt = mta.send(Message("a@s.net", "b@example.com"))
        assert attempt.status is DeliveryStatus.REFUSED_BY_POLICY

    def test_mx_preflight_gate(self, env):
        mta = self.make_mta(
            env, mx_preflight=lambda d, mx: (False, "blocked"))
        attempt = mta.send(Message("a@s.net", "b@example.com"))
        assert attempt.status is DeliveryStatus.REFUSED_BY_POLICY

    def test_security_gate_allows(self, env):
        mta = self.make_mta(
            env, security_gate=lambda d, mx, cert: (True, "ok"))
        attempt = mta.send(Message("a@s.net", "b@example.com"))
        assert attempt.delivered

    def test_server_rejection(self, env):
        *_, mx = env
        mx.reject_all_mail = True
        attempt = self.make_mta(env).send(Message("a@s.net", "b@example.com"))
        assert attempt.status is DeliveryStatus.REJECTED_BY_SERVER

    def test_mx_preference_order(self, env):
        network, clock, ca, store, resolver, zone, mx = env
        backup_ip = IpAddress.v4(10, 30, 0, 2)
        zone.add(MxRecord(DnsName.parse("example.com"), 3600, 5,
                          DnsName.parse("primary.example.com")))
        zone.add(ARecord(DnsName.parse("primary.example.com"), 3600,
                         backup_ip))
        tls = TlsEndpoint()
        tls.install("primary.example.com",
                    ca.issue(CertTemplate(["primary.example.com"])),
                    default=True)
        primary = MxHost("primary.example.com", backup_ip, network, tls=tls)
        resolver.flush_cache()
        mta = self.make_mta(env)
        assert mta.lookup_mx("example.com") == [
            "primary.example.com", "mail.example.com"]
        attempt = mta.send(Message("a@s.net", "b@example.com"))
        assert primary.mailbox and not mx.mailbox
