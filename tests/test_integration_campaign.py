"""End-to-end integration: timeline -> scanner -> analysis.

Runs a small-scale (but complete) measurement campaign and asserts the
paper's qualitative findings hold: the misconfiguration level, the
dominance of policy-server errors, self-managed vs third-party gaps,
the event spikes, and the Figure 9/10 relationships.
"""

import pytest

from repro.analysis.series import run_campaign
from repro.ecosystem.population import (
    DMARC_SPIKE_MONTH, LUCIDGROW_MONTH, PopulationConfig,
)
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig

SCALE = 0.02


@pytest.fixture(scope="module")
def campaign():
    timeline = EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=SCALE, seed=7)))
    # First, mid (around the lucidgrow and DMARCReport events), and
    # final months keep the test quick while covering the dynamics.
    months = [0, LUCIDGROW_MONTH, DMARC_SPIKE_MONTH, 11]
    return run_campaign(timeline, months=months)


class TestHeadlineNumbers:
    def test_misconfiguration_level(self, campaign):
        summary = campaign.latest_summary()
        # Paper: 29.6% misconfigured at the final snapshot.
        assert 18 <= summary.misconfigured_percent() <= 40

    def test_policy_errors_dominate(self, campaign):
        # Paper §4.6: 70-85% of errors are policy-server related.
        summary = campaign.latest_summary()
        policy = summary.category_counts["policy-retrieval"]
        total = sum(summary.category_counts.values())
        assert policy / total >= 0.6

    def test_some_delivery_failures_exist(self, campaign):
        summary = campaign.latest_summary()
        assert summary.delivery_failures > 0
        assert summary.delivery_failures < summary.misconfigured


class TestEntitySplits:
    def test_self_managed_policy_hosts_worse(self, campaign):
        rows = campaign.figure5_series("self-managed")
        third = campaign.figure5_series("third-party")
        # The self-managed error rate exceeds the third-party one in
        # every month (even through the June third-party spike), and by
        # a wide margin at the final snapshot (paper: 37.8% vs 4.9%).
        for self_row, third_row in zip(rows, third):
            assert self_row["any"] > third_row["any"]
        assert rows[-1]["any"] > 2 * third[-1]["any"]

    def test_tls_leads_policy_errors(self, campaign):
        row = campaign.figure5_series("self-managed")[-1]
        assert row["tls"] > row["tcp"]
        assert row["tls"] > row["http"]
        assert row["tls"] > row["dns"]

    def test_self_managed_mx_worse(self, campaign):
        self_rows = campaign.figure6_series("self-managed")
        third_rows = campaign.figure6_series("third-party")
        assert self_rows[-1]["invalid_pct"] > third_rows[-1]["invalid_pct"]
        # Roughly 4.4% vs 1%.
        assert 1.5 <= self_rows[-1]["invalid_pct"] <= 9
        assert third_rows[-1]["invalid_pct"] <= 3

    def test_all_invalid_dominated_by_self(self, campaign):
        row = campaign.figure7_series()[-1]
        assert row["all_invalid"] >= row["partially_invalid"]


class TestEvents:
    def test_lucidgrow_spike_in_3ld(self, campaign):
        # The January event adds the whole lucidgrow cohort to the 3LD+
        # class on top of the slowly-growing background.
        rows = {r["month_index"]: r for r in campaign.figure8_series()}
        jump = (rows[LUCIDGROW_MONTH]["3ld-plus-mismatch"]
                - rows[0]["3ld-plus-mismatch"])
        cohort = round(246 * SCALE)
        assert jump >= cohort

    def test_porkbun_raises_late_policy_errors(self, campaign):
        rows = campaign.figure5_series("self-managed")
        by_month = {r["month_index"]: r["any"] for r in rows}
        assert by_month[11] > by_month[0]

    def test_dmarc_spike_transient_for_third_party(self, campaign):
        rows = {r["month_index"]: r
                for r in campaign.figure5_series("third-party")}
        assert rows[DMARC_SPIKE_MONTH]["tls"] > rows[11]["tls"]


class TestInconsistency:
    def test_figure9_share_grows(self, campaign):
        series = campaign.figure9_series()
        # Later months explain more mismatches through history.
        assert series[-1]["percent"] > series[0]["percent"]
        assert series[-1]["candidates"] > 0

    def test_figure10_same_entity_nearly_immune(self, campaign):
        # Paper: 1 same-provider domain (laura-norman.com's typo) vs
        # 640 different-provider ones.  At test scale the absolute
        # counts are tiny; the invariant is that the same-entity side
        # never exceeds that single known domain.
        row = campaign.figure10_series()[-1]
        assert row["diff_total"] > 0 and row["same_total"] > 0
        assert row["same_bad"] <= 1
        assert row["diff_bad"] >= row["same_bad"]

    def test_enforce_exposure_nonzero(self, campaign):
        row = campaign.figure8_series()[-1]
        assert row["enforce"] >= 0


class TestDelegationCensus:
    def test_tutanota_and_dmarcreport_lead(self, campaign):
        census = campaign.table2_census()
        top_slds = [row["provider_sld"] for row in census[:4]]
        assert "tutanota.de" in top_slds
        assert "dmarcinput.com" in top_slds
