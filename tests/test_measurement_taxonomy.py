"""Tests for the error taxonomy and inconsistency classification."""

import pytest

from repro.core.policy import Policy, PolicyMode
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.errors import MisconfigCategory, MismatchClass
from repro.measurement.inconsistency import (
    classify_mismatch, classify_snapshot, mismatch_census,
)
from repro.measurement.scanner import Scanner
from repro.measurement.taxonomy import (
    categorize, delivery_failure_expected, snapshot_summary,
)


class TestClassifyMismatch:
    def test_matching_is_not_a_mismatch(self):
        verdict = classify_mismatch(["*.example.com"], ["mx.example.com"])
        assert not verdict.mismatch

    def test_typo_detected(self):
        verdict = classify_mismatch(["mial.example.com"],
                                    ["mail.example.com"])
        assert verdict.mismatch_class is MismatchClass.TYPO

    def test_tld_swap_is_not_a_typo(self):
        # Figure 8's rule: TLD mismatches do not qualify as typos.
        verdict = classify_mismatch(["mail.example.net"],
                                    ["mail.example.com"])
        assert verdict.mismatch_class is MismatchClass.TLD

    def test_3ld_mismatch(self):
        verdict = classify_mismatch(["mta-sts.mail.example.com"],
                                    ["mail.example.com"])
        assert verdict.mismatch_class is MismatchClass.THREE_LD

    def test_complete_domain_mismatch(self):
        verdict = classify_mismatch(["mx.oldprovider.net"],
                                    ["aspmx.l.google.com"])
        assert verdict.mismatch_class is MismatchClass.DOMAIN

    def test_wildcard_patterns_participate(self):
        verdict = classify_mismatch(["*.exampel.com"], ["mx.example.com"])
        assert verdict.mismatch_class is MismatchClass.TYPO

    def test_empty_inputs_no_verdict(self):
        assert not classify_mismatch([], ["mx.example.com"]).mismatch
        assert not classify_mismatch(["a.example.com"], []).mismatch

    def test_typo_precedence_over_3ld(self):
        # A pattern 1 edit away from the MX also shares the eSLD; the
        # typo class wins per the paper's ordering.
        verdict = classify_mismatch(["mai.example.com"],
                                    ["mail.example.com"])
        assert verdict.mismatch_class is MismatchClass.TYPO


class TestClassifyMismatchCanonicalisation:
    """classify_mismatch must fold hostnames exactly like every other
    host comparison in the pipeline (canonical_host / casefold), not
    ``str.lower``, which leaves U+1E9E ẞ and ß distinct from "ss"."""

    def test_casefold_covered_pattern_is_not_a_mismatch(self):
        # ẞ.casefold() == "ss": the pattern covers the MX once folded.
        verdict = classify_mismatch(["mail.STRAẞE.example"],
                                    ["mail.strasse.example"])
        assert not verdict.mismatch

    def test_sharp_s_esld_agrees_with_casefold(self):
        # Regression: lower() keeps ß, so the eSLDs "straße.example"
        # and "strasse.example" looked unrelated and this fell through
        # to DOMAIN instead of the 3LD+ class.
        verdict = classify_mismatch(["mta-sts.straẞe.example"],
                                    ["mail.strasse.example"])
        assert verdict.mismatch_class is MismatchClass.THREE_LD

    def test_sharp_s_typo_distance_uses_canonical_text(self):
        # "straẞe" folds to "strasse", one edit from "strasze"; under
        # lower() the ß survives and the distance inflates.
        verdict = classify_mismatch(["straẞe.example"],
                                    ["strasze.example"])
        assert verdict.mismatch_class is MismatchClass.TYPO
        assert "1 edits" in verdict.evidence

    def test_dotted_capital_i_parity_with_policy_matching(self):
        # İ and its folded spelling i+U+0307 are the same host both
        # here and in policy_covers_mx.
        verdict = classify_mismatch(["İmx.example.com"],
                                    ["i̇mx.example.com"])
        assert not verdict.mismatch

    def test_whitespace_and_root_dot_are_canonicalised(self):
        verdict = classify_mismatch(["mta-sts.example.com."],
                                    ["  mail.example.com.  "])
        assert verdict.mismatch_class is MismatchClass.THREE_LD

    def test_uncanonicalisable_names_are_ignored(self):
        # "a..b" has an empty label; canonical_host maps it to "" and
        # classification sees no usable hosts at all.
        assert not classify_mismatch(["mx.example.com"], ["a..b"]).mismatch
        assert not classify_mismatch(["a..b"], ["mx.example.com"]).mismatch


class TestCategorizeSnapshots:
    def scan(self, world, domain="example.com"):
        return Scanner(world).scan_domain(domain, 0)

    def test_healthy(self, world, simple_domain):
        assert categorize(self.scan(world)) == []

    @pytest.mark.parametrize("fault, category", [
        (Fault.RECORD_INVALID_ID, MisconfigCategory.DNS_RECORD),
        (Fault.POLICY_TLS_CN_MISMATCH, MisconfigCategory.POLICY_RETRIEVAL),
        (Fault.POLICY_SYNTAX_EMPTY, MisconfigCategory.POLICY_RETRIEVAL),
        (Fault.MX_CERT_EXPIRED, MisconfigCategory.MX_CERTIFICATE),
        (Fault.MISMATCH_DOMAIN, MisconfigCategory.INCONSISTENCY),
    ])
    def test_single_fault_maps_to_category(self, world, simple_domain,
                                           fault, category):
        apply_fault(world, simple_domain, fault)
        world.resolver.flush_cache()
        assert category in categorize(self.scan(world))

    def test_non_sts_domain_has_no_categories(self, world):
        deploy_domain(world, DomainSpec(domain="plain.com",
                                        deploy_sts=False))
        assert categorize(self.scan(world, "plain.com")) == []

    def test_delivery_failure_requires_enforce(self, world):
        deployed = deploy_domain(world, DomainSpec(
            domain="strict.com",
            policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                          max_age=86400, mx_patterns=("mail.strict.com",))))
        apply_fault(world, deployed, Fault.MISMATCH_DOMAIN)
        world.resolver.flush_cache()
        assert delivery_failure_expected(self.scan(world, "strict.com"))

    def test_summary_aggregates(self, world, simple_domain):
        broken = deploy_domain(world, DomainSpec(domain="broken.com"))
        apply_fault(world, broken, Fault.POLICY_HTTP_404)
        scanner = Scanner(world)
        snaps = [scanner.scan_domain("example.com", 0),
                 scanner.scan_domain("broken.com", 0)]
        summary = snapshot_summary(snaps)
        assert summary.total_sts == 2
        assert summary.misconfigured == 1
        assert summary.category_counts["policy-retrieval"] == 1
        assert summary.misconfigured_percent() == 50.0


class TestMismatchCensus:
    def test_census_counts_by_class(self, world):
        specs = {
            "typo.com": Fault.MISMATCH_TYPO,
            "tld.com": Fault.MISMATCH_TLD,
            "threeld.com": Fault.MISMATCH_3LD,
            "whole.com": Fault.MISMATCH_DOMAIN,
        }
        scanner = Scanner(world)
        snaps = []
        for domain, fault in specs.items():
            deployed = deploy_domain(world, DomainSpec(domain=domain))
            apply_fault(world, deployed, fault)
            snaps.append(scanner.scan_domain(domain, 0))
        census = mismatch_census(snaps)
        counts = census["counts"]
        assert counts[MismatchClass.TYPO] == 1
        assert counts[MismatchClass.TLD] == 1
        assert counts[MismatchClass.THREE_LD] == 1
        assert counts[MismatchClass.DOMAIN] == 1
