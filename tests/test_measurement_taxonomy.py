"""Tests for the error taxonomy and inconsistency classification."""

import pytest

from repro.core.policy import Policy, PolicyMode
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.errors import MisconfigCategory, MismatchClass
from repro.measurement.inconsistency import (
    classify_mismatch, classify_snapshot, mismatch_census,
)
from repro.measurement.scanner import Scanner
from repro.measurement.taxonomy import (
    categorize, delivery_failure_expected, snapshot_summary,
)


class TestClassifyMismatch:
    def test_matching_is_not_a_mismatch(self):
        verdict = classify_mismatch(["*.example.com"], ["mx.example.com"])
        assert not verdict.mismatch

    def test_typo_detected(self):
        verdict = classify_mismatch(["mial.example.com"],
                                    ["mail.example.com"])
        assert verdict.mismatch_class is MismatchClass.TYPO

    def test_tld_swap_is_not_a_typo(self):
        # Figure 8's rule: TLD mismatches do not qualify as typos.
        verdict = classify_mismatch(["mail.example.net"],
                                    ["mail.example.com"])
        assert verdict.mismatch_class is MismatchClass.TLD

    def test_3ld_mismatch(self):
        verdict = classify_mismatch(["mta-sts.mail.example.com"],
                                    ["mail.example.com"])
        assert verdict.mismatch_class is MismatchClass.THREE_LD

    def test_complete_domain_mismatch(self):
        verdict = classify_mismatch(["mx.oldprovider.net"],
                                    ["aspmx.l.google.com"])
        assert verdict.mismatch_class is MismatchClass.DOMAIN

    def test_wildcard_patterns_participate(self):
        verdict = classify_mismatch(["*.exampel.com"], ["mx.example.com"])
        assert verdict.mismatch_class is MismatchClass.TYPO

    def test_empty_inputs_no_verdict(self):
        assert not classify_mismatch([], ["mx.example.com"]).mismatch
        assert not classify_mismatch(["a.example.com"], []).mismatch

    def test_typo_precedence_over_3ld(self):
        # A pattern 1 edit away from the MX also shares the eSLD; the
        # typo class wins per the paper's ordering.
        verdict = classify_mismatch(["mai.example.com"],
                                    ["mail.example.com"])
        assert verdict.mismatch_class is MismatchClass.TYPO


class TestCategorizeSnapshots:
    def scan(self, world, domain="example.com"):
        return Scanner(world).scan_domain(domain, 0)

    def test_healthy(self, world, simple_domain):
        assert categorize(self.scan(world)) == []

    @pytest.mark.parametrize("fault, category", [
        (Fault.RECORD_INVALID_ID, MisconfigCategory.DNS_RECORD),
        (Fault.POLICY_TLS_CN_MISMATCH, MisconfigCategory.POLICY_RETRIEVAL),
        (Fault.POLICY_SYNTAX_EMPTY, MisconfigCategory.POLICY_RETRIEVAL),
        (Fault.MX_CERT_EXPIRED, MisconfigCategory.MX_CERTIFICATE),
        (Fault.MISMATCH_DOMAIN, MisconfigCategory.INCONSISTENCY),
    ])
    def test_single_fault_maps_to_category(self, world, simple_domain,
                                           fault, category):
        apply_fault(world, simple_domain, fault)
        world.resolver.flush_cache()
        assert category in categorize(self.scan(world))

    def test_non_sts_domain_has_no_categories(self, world):
        deploy_domain(world, DomainSpec(domain="plain.com",
                                        deploy_sts=False))
        assert categorize(self.scan(world, "plain.com")) == []

    def test_delivery_failure_requires_enforce(self, world):
        deployed = deploy_domain(world, DomainSpec(
            domain="strict.com",
            policy=Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                          max_age=86400, mx_patterns=("mail.strict.com",))))
        apply_fault(world, deployed, Fault.MISMATCH_DOMAIN)
        world.resolver.flush_cache()
        assert delivery_failure_expected(self.scan(world, "strict.com"))

    def test_summary_aggregates(self, world, simple_domain):
        broken = deploy_domain(world, DomainSpec(domain="broken.com"))
        apply_fault(world, broken, Fault.POLICY_HTTP_404)
        scanner = Scanner(world)
        snaps = [scanner.scan_domain("example.com", 0),
                 scanner.scan_domain("broken.com", 0)]
        summary = snapshot_summary(snaps)
        assert summary.total_sts == 2
        assert summary.misconfigured == 1
        assert summary.category_counts["policy-retrieval"] == 1
        assert summary.misconfigured_percent() == 50.0


class TestMismatchCensus:
    def test_census_counts_by_class(self, world):
        specs = {
            "typo.com": Fault.MISMATCH_TYPO,
            "tld.com": Fault.MISMATCH_TLD,
            "threeld.com": Fault.MISMATCH_3LD,
            "whole.com": Fault.MISMATCH_DOMAIN,
        }
        scanner = Scanner(world)
        snaps = []
        for domain, fault in specs.items():
            deployed = deploy_domain(world, DomainSpec(domain=domain))
            apply_fault(world, deployed, fault)
            snaps.append(scanner.scan_domain(domain, 0))
        census = mismatch_census(snaps)
        counts = census["counts"]
        assert counts[MismatchClass.TYPO] == 1
        assert counts[MismatchClass.TLD] == 1
        assert counts[MismatchClass.THREE_LD] == 1
        assert counts[MismatchClass.DOMAIN] == 1
