"""The canonical_host() sweep: lint + ẞ/İ keying regressions.

PRs 3, 5, 7, 8 and 9 each fixed the same bug class in a different
corner: a module normalising hostnames with ``.lower().rstrip(".")``
while the scanner casefolds via :func:`repro.dns.name.canonical_host`
(``ẞ`` lowercases to ``ß`` but casefolds to ``ss``; ``İ`` lowercases
to itself but casefolds to ``i`` + COMBINING DOT ABOVE).  This suite
pins the sweep shut: a grep-style lint over every module under
``src/repro`` plus behavioural regressions for the last six converts
(web routes, TLS SNI keying, PKI hostname matching, MITM victim
keying, FCrDNS claimed-name comparison, SMTP MX hostnames).
"""

import pathlib
import re

import pytest

from repro.dns.name import canonical_host
from repro.pki.certificate import hostname_matches

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"

# The only module allowed to spell hostname folding out by hand is the
# one that defines canonical_host() itself.
ALLOWED = {SRC_ROOT / "dns" / "name.py"}

LOWER_THEN_RSTRIP = re.compile(r"\.lower\(\)\.rstrip\(")
RSTRIP_THEN_LOWER = re.compile(r"\.rstrip\([^)]*\)\.lower\(\)")

MODULES = sorted(p for p in SRC_ROOT.rglob("*.py") if p not in ALLOWED)


@pytest.mark.parametrize(
    "module", MODULES, ids=[str(p.relative_to(SRC_ROOT)) for p in MODULES])
def test_no_handrolled_hostname_folding(module):
    source = module.read_text(encoding="utf-8")
    for pattern in (LOWER_THEN_RSTRIP, RSTRIP_THEN_LOWER):
        matches = [f"{module.relative_to(SRC_ROOT)}:"
                   f"{source[:m.start()].count(chr(10)) + 1}"
                   for m in pattern.finditer(source)]
        assert not matches, (
            f"hand-rolled hostname folding (use canonical_host): "
            f"{matches}")


def test_dns_name_still_defines_the_folding():
    # The lint above is only meaningful while the canonical
    # implementation actually lives in dns/name.py.
    source = (SRC_ROOT / "dns" / "name.py").read_text(encoding="utf-8")
    assert "def canonical_host" in source


class TestWebServerRouteKeying:
    @pytest.fixture
    def server(self, world):
        from repro.web.server import WebServer
        return WebServer("shared", world.fresh_ip("web"), world.network)

    def test_sharp_s_route_fetchable_casefolded(self, server):
        # ẞ lowercases to ß but casefolds to "ss": a route registered
        # under the uppercase form must answer the scanner's key.
        from repro.web.server import HttpResponse
        server.set_route("MTA-STS.STRAẞE.example.", "/x",
                         HttpResponse.ok("hit"))
        assert server.handle("mta-sts.strasse.example", "/x").body == "hit"
        server.remove_route("mta-sts.STRAẞE.example", "/x")
        assert server.handle("mta-sts.strasse.example", "/x").status == 404

    def test_dotted_i_route_keying(self, server):
        from repro.web.server import HttpResponse
        server.set_route("İSTANBUL.example.", "/x", HttpResponse.ok("hit"))
        key = canonical_host("İstanbul.example")
        assert server.handle(key, "/x").body == "hit"


class TestTlsSniKeying:
    def test_sharp_s_sni_selects_certificate(self, world):
        from repro.tls.handshake import TlsEndpoint, handshake
        endpoint = TlsEndpoint()
        cert = world.issue_cert(["strasse.example"])
        endpoint.install("STRAẞE.example.", cert)
        assert handshake(endpoint, "strasse.example").certificate is cert

    def test_dotted_i_alert_and_uninstall_keying(self, world):
        from repro.errors import TlsError
        from repro.tls.handshake import TlsEndpoint, handshake
        endpoint = TlsEndpoint()
        cert = world.issue_cert(["host.example"])
        endpoint.install("İSTANBUL.example", cert)
        assert (handshake(endpoint, canonical_host("İstanbul.example"))
                .certificate is cert)
        endpoint.alert_for("İSTANBUL.example.")
        with pytest.raises(TlsError):
            handshake(endpoint, canonical_host("İstanbul.example"))
        endpoint.uninstall("İSTANBUL.example")
        assert endpoint.select_certificate(
            canonical_host("İstanbul.example")) is None


class TestPkiHostnameMatching:
    def test_sharp_s_pattern_matches_casefolded_name(self):
        assert hostname_matches("STRAẞE.example.", "strasse.example")
        assert hostname_matches("strasse.example", "STRAẞE.example.")

    def test_dotted_i_pattern(self):
        assert hostname_matches("İSTANBUL.example",
                                canonical_host("İstanbul.example"))

    def test_wildcard_split_survives_canonicalisation(self):
        assert hostname_matches("*.STRAẞE.example.", "mail.strasse.example")
        assert not hostname_matches("*.STRAẞE.example",
                                    "a.b.strasse.example")
        assert not hostname_matches("*.STRAẞE.example", "strasse.example")


class TestMitmVictimKeying:
    """A MITM targeting ``EXAMPLE.COM.`` must intercept queries for
    ``example.com`` — the victim-slice keying bug the issue names."""

    def test_spoof_mx_keyed_by_canonical_victim(self, world):
        from repro.attacks import DnsSpoofer
        from repro.dns.records import RRType
        from repro.ecosystem.deployment import DomainSpec, deploy_domain
        deploy_domain(world, DomainSpec(domain="victim.com"))
        spoofer = DnsSpoofer(world.resolver)
        spoofer.spoof_mx("VICTIM.COM.", "mx.evil.net")
        answer = world.resolver.resolve("victim.com", RRType.MX)
        assert [r.exchange.text for r in answer.records] == ["mx.evil.net"]
        assert spoofer.spoofed_lookups >= 1

    def test_block_policy_host_keyed_by_canonical_victim(self, world):
        from repro.attacks import PolicyHostBlocker
        from repro.dns.records import RRType
        from repro.ecosystem.deployment import DomainSpec, deploy_domain
        deploy_domain(world, DomainSpec(domain="victim.com"))
        blocker = PolicyHostBlocker(world.resolver)
        blocker.block_policy_host("VICTIM.COM.")
        assert world.resolver.try_resolve("mta-sts.victim.com",
                                          RRType.A) is None
        assert blocker.blocked_lookups >= 1


class TestClaimedHostnameComparisons:
    def test_smtp_mx_hostname_is_canonicalised(self, world):
        from repro.smtp.server import MxHost
        host = MxHost("MAIL.STRAẞE.example.", world.fresh_ip("mx"),
                      world.network)
        assert host.hostname == "mail.strasse.example"

    def test_fcrdns_claimed_name_casefolds(self, world):
        from repro.dns.reverse import fcrdns_check
        from repro.ecosystem.deployment import DomainSpec, deploy_domain
        deployed = deploy_domain(world, DomainSpec(domain="example.com"))
        mx = deployed.mx_hosts[0]
        straight = fcrdns_check(world.resolver, mx.ip, mx.hostname)
        shouted = fcrdns_check(world.resolver, mx.ip,
                               mx.hostname.upper() + ".")
        assert shouted.passed == straight.passed
