"""Tests for historical MX matching (Figure 9) and disclosure (§4.7)."""

import pytest

from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.ecosystem.misconfig import Fault, apply_fault
from repro.measurement.historical import (
    domain_mismatch_candidates, historical_match_rate,
    historical_series, match_against_history,
)
from repro.measurement.notify import DisclosureCampaign
from repro.measurement.scanner import Scanner
from repro.measurement.snapshots import SnapshotStore


class TestHistoricalMatching:
    def test_migrated_domain_matches_history(self, world, simple_domain):
        scanner = Scanner(world)
        store = SnapshotStore()
        store.add(scanner.scan_domain("example.com", 0))
        # Month 1: the MX migrates; the policy keeps the old pattern.
        apply_fault(world, simple_domain, Fault.OUTDATED_POLICY)
        world.resolver.flush_cache()
        store.add(scanner.scan_domain("example.com", 1))

        current = store.get(1, "example.com")
        candidates = domain_mismatch_candidates([current])
        assert candidates == [current]
        match = match_against_history(store, current)
        assert match.matched
        assert match.matched_month == 0
        assert match.historical_mx == ("mail.example.com",)

    def test_never_matching_domain(self, world, simple_domain):
        scanner = Scanner(world)
        store = SnapshotStore()
        apply_fault(world, simple_domain, Fault.MISMATCH_DOMAIN)
        world.resolver.flush_cache()
        store.add(scanner.scan_domain("example.com", 0))
        store.add(scanner.scan_domain("example.com", 1))
        current = store.get(1, "example.com")
        assert not match_against_history(store, current).matched

    def test_rate_combines_both(self, world):
        migrated = deploy_domain(world, DomainSpec(domain="moved.com"))
        never = deploy_domain(world, DomainSpec(domain="never.com"))
        apply_fault(world, never, Fault.MISMATCH_DOMAIN)
        scanner = Scanner(world)
        store = SnapshotStore()
        for d in ("moved.com", "never.com"):
            store.add(scanner.scan_domain(d, 0))
        apply_fault(world, migrated, Fault.OUTDATED_POLICY)
        world.resolver.flush_cache()
        for d in ("moved.com", "never.com"):
            store.add(scanner.scan_domain(d, 1))
        rate = historical_match_rate(store, 1)
        assert rate["candidates"] == 2
        assert rate["matched"] == 1
        assert rate["percent"] == 50.0
        series = historical_series(store)
        assert [p["month_index"] for p in series] == [0, 1]

    def test_3ld_mismatch_not_a_candidate(self, world, simple_domain):
        apply_fault(world, simple_domain, Fault.MISMATCH_3LD)
        world.resolver.flush_cache()
        snap = Scanner(world).scan_domain("example.com", 0)
        assert domain_mismatch_candidates([snap]) == []


class TestDisclosure:
    def test_campaign_delivers_and_bounces(self, world):
        healthy = deploy_domain(world, DomainSpec(domain="fixable.com"))
        apply_fault(world, healthy, Fault.POLICY_HTTP_404)
        dead = deploy_domain(world, DomainSpec(domain="dead.com"))
        # dead.com's MX is unreachable entirely: bounce.
        from repro.netsim.network import TcpBehavior
        from repro.smtp.server import SMTP_PORT
        world.network.set_behavior(dead.mx_hosts[0].ip, SMTP_PORT,
                                   TcpBehavior.TIMEOUT)
        scanner = Scanner(world)
        snaps = [scanner.scan_domain("fixable.com", 0),
                 scanner.scan_domain("dead.com", 0)]
        campaign = DisclosureCampaign(world, extra_bounce_rate=0.0)
        report = campaign.run(snaps)
        assert report.notified == 2
        assert report.bounced == 1
        assert report.delivered == 1

    def test_remediation_rate_plausible(self, world):
        domains = []
        for i in range(120):
            deployed = deploy_domain(world, DomainSpec(domain=f"m{i}.com"))
            apply_fault(world, deployed, Fault.POLICY_HTTP_404)
            domains.append(f"m{i}.com")
        scanner = Scanner(world)
        snaps = [scanner.scan_domain(d, 0) for d in domains]
        report = DisclosureCampaign(world, seed=1).run(snaps)
        assert report.notified == 120
        # ~12% mailbox-level bounces, ~10% overall remediation.
        assert 0 < report.bounced < 40
        assert 0 < report.remediated < 30
