"""Property-based tests for the zone serializer/parser round trip and
the policy cache invariants."""

import string

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.clock import Clock, Duration, Instant
from repro.core.cache import PolicyCache
from repro.core.policy import Policy, PolicyMode
from repro.dns.name import DnsName
from repro.dns.records import (
    ARecord, CnameRecord, MxRecord, NsRecord, TxtRecord,
)
from repro.dns.zone import Zone, parse_master_file, serialize_zone
from repro.netsim.ip import IpAddress

label = st.text(alphabet=string.ascii_lowercase + string.digits,
                min_size=1, max_size=8)
subname = st.lists(label, min_size=0, max_size=2)
octet = st.integers(min_value=1, max_value=254)


@st.composite
def zones(draw):
    apex = DnsName.parse(draw(label) + ".com")
    zone = Zone(apex=apex)
    used_names = set()
    count = draw(st.integers(min_value=1, max_value=12))
    for index in range(count):
        labels = draw(subname)
        name = apex
        for part in labels:
            name = name.child(part)
        kind = draw(st.sampled_from(["a", "mx", "ns", "txt", "cname"]))
        if kind == "cname":
            # CNAMEs conflict with other data; use a dedicated label.
            name = apex.child(f"alias{index}")
            if name in used_names:
                continue
            zone.add(CnameRecord(name, 300,
                                 apex.child(draw(label))))
            used_names.add(name)
            continue
        if name in used_names and kind == "a":
            continue
        try:
            if kind == "a":
                zone.add(ARecord(name, 300, IpAddress.v4(
                    10, draw(octet), draw(octet), draw(octet))))
            elif kind == "mx":
                zone.add(MxRecord(name, 300,
                                  draw(st.integers(0, 99)),
                                  apex.child(draw(label))))
            elif kind == "ns":
                zone.add(NsRecord(name, 300, apex.child(draw(label))))
            else:
                zone.add(TxtRecord(name, 300,
                                   draw(st.text(
                                       alphabet=string.ascii_letters
                                       + string.digits + " =;.-",
                                       min_size=1, max_size=40)).strip()
                                   or "x"))
            used_names.add(name)
        except ValueError:
            pass    # CNAME conflicts are legitimate rejections
    assume(zone.record_count() > 0)
    return zone


class TestZoneRoundTrip:
    @given(zones())
    @settings(max_examples=80, deadline=None)
    def test_serialize_parse_preserves_rdata(self, zone):
        reparsed = parse_master_file(serialize_zone(zone))
        assert reparsed.apex == zone.apex
        original = {(r.name.text, r.rrtype.value, r.rdata_text())
                    for r in zone.all_records()}
        restored = {(r.name.text, r.rrtype.value, r.rdata_text())
                    for r in reparsed.all_records()}
        assert restored == original

    @given(zones())
    @settings(max_examples=30, deadline=None)
    def test_double_round_trip_is_fixed_point(self, zone):
        once = serialize_zone(parse_master_file(serialize_zone(zone)))
        twice = serialize_zone(parse_master_file(once))
        assert once == twice


class TestCacheProperties:
    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=0, max_value=20_000))
    def test_freshness_boundary(self, max_age, elapsed):
        clock = Clock(Instant.parse("2024-01-01"))
        cache = PolicyCache(clock)
        policy = Policy(version="STSv1", mode=PolicyMode.TESTING,
                        max_age=max_age, mx_patterns=("a.example.com",))
        cache.store("example.com", policy, "id1")
        clock.advance(Duration(elapsed))
        entry = cache.get("example.com")
        # RFC 8461: the cached lifetime is capped AT max_age
        assert (entry is not None) == (elapsed < max_age)

    @given(st.lists(st.sampled_from(
        ["a.com", "b.com", "c.com", "A.COM", "b.com."]),
        min_size=1, max_size=12))
    def test_store_count_tracks_calls_and_len_distinct(self, domains):
        clock = Clock(Instant.parse("2024-01-01"))
        cache = PolicyCache(clock)
        policy = Policy(version="STSv1", mode=PolicyMode.NONE,
                        max_age=1000, mx_patterns=())
        for domain in domains:
            cache.store(domain, policy, "x")
        assert cache.store_count == len(domains)
        normalized = {d.lower().rstrip(".") for d in domains}
        assert len(cache) == len(normalized)
