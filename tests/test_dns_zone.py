"""Unit tests for zones, records, and the master-file parser."""

import pytest

from repro.dns.name import DnsName
from repro.dns.records import (
    ARecord, CnameRecord, MxRecord, NsRecord, RRType, TlsaRecord, TxtRecord,
)
from repro.dns.zone import Zone, parse_master_file, serialize_zone
from repro.netsim.ip import IpAddress


def n(text: str) -> DnsName:
    return DnsName.parse(text)


class TestZone:
    def test_add_and_lookup(self):
        zone = Zone(apex=n("example.com"))
        record = ARecord(n("example.com"), 3600, IpAddress.v4(10, 0, 0, 1))
        zone.add(record)
        assert zone.lookup(n("example.com"), RRType.A) == [record]

    def test_out_of_zone_rejected(self):
        zone = Zone(apex=n("example.com"))
        with pytest.raises(ValueError):
            zone.add(ARecord(n("other.org"), 3600, IpAddress.v4(10, 0, 0, 1)))

    def test_cname_conflicts_with_data(self):
        zone = Zone(apex=n("example.com"))
        zone.add(ARecord(n("www.example.com"), 3600, IpAddress.v4(10, 0, 0, 1)))
        with pytest.raises(ValueError):
            zone.add(CnameRecord(n("www.example.com"), 3600, n("example.com")))

    def test_data_conflicts_with_cname(self):
        zone = Zone(apex=n("example.com"))
        zone.add(CnameRecord(n("www.example.com"), 3600, n("example.com")))
        with pytest.raises(ValueError):
            zone.add(ARecord(n("www.example.com"), 3600,
                             IpAddress.v4(10, 0, 0, 1)))

    def test_duplicate_cname_rejected(self):
        zone = Zone(apex=n("example.com"))
        zone.add(CnameRecord(n("www.example.com"), 3600, n("a.example.com")))
        with pytest.raises(ValueError):
            zone.add(CnameRecord(n("www.example.com"), 3600,
                                 n("b.example.com")))

    def test_replace_swaps_rrset(self):
        zone = Zone(apex=n("example.com"))
        zone.add(TxtRecord(n("_mta-sts.example.com"), 300, "v=STSv1; id=1;"))
        zone.replace(TxtRecord(n("_mta-sts.example.com"), 300,
                               "v=STSv1; id=2;"))
        records = zone.lookup(n("_mta-sts.example.com"), RRType.TXT)
        assert len(records) == 1
        assert records[0].text.endswith("id=2;")

    def test_remove_returns_count(self):
        zone = Zone(apex=n("example.com"))
        zone.add(MxRecord(n("example.com"), 3600, 10, n("mx1.example.com")))
        zone.add(MxRecord(n("example.com"), 3600, 20, n("mx2.example.com")))
        assert zone.remove(n("example.com"), RRType.MX) == 2
        assert zone.lookup(n("example.com"), RRType.MX) == []

    def test_name_exists_covers_empty_non_terminals(self):
        zone = Zone(apex=n("example.com"))
        zone.add(ARecord(n("a.b.example.com"), 3600, IpAddress.v4(10, 0, 0, 1)))
        assert zone.name_exists(n("b.example.com"))
        assert not zone.name_exists(n("c.example.com"))


MASTER = """\
$ORIGIN example.com.
$TTL 3600
@       IN SOA ns1.example.com. hostmaster.example.com. 42
@       IN NS ns1.example.com.
@       IN NS ns2.example.com.
@       300 IN MX 10 mail
mail    IN A 10.1.2.3
_mta-sts IN TXT "v=STSv1; id=20240101;"  ; the MTA-STS record
mta-sts IN CNAME mta-sts.provider.net.
_25._tcp.mail IN TLSA 3 1 1 abcdef0123456789
"""


class TestMasterFile:
    def test_parse_counts(self):
        zone = parse_master_file(MASTER)
        assert zone.apex.text == "example.com"
        assert zone.record_count() == 8

    def test_relative_and_absolute_names(self):
        zone = parse_master_file(MASTER)
        mx = zone.lookup(n("example.com"), RRType.MX)[0]
        assert mx.exchange.text == "mail.example.com"
        assert mx.ttl == 300
        a = zone.lookup(n("mail.example.com"), RRType.A)[0]
        assert a.address.text == "10.1.2.3"

    def test_quoted_txt_with_comment(self):
        zone = parse_master_file(MASTER)
        txt = zone.lookup(n("_mta-sts.example.com"), RRType.TXT)[0]
        assert txt.text == "v=STSv1; id=20240101;"

    def test_cross_zone_cname_target(self):
        zone = parse_master_file(MASTER)
        cname = zone.lookup(n("mta-sts.example.com"), RRType.CNAME)[0]
        assert cname.target.text == "mta-sts.provider.net"

    def test_tlsa_fields(self):
        zone = parse_master_file(MASTER)
        tlsa = zone.lookup(n("_25._tcp.mail.example.com"), RRType.TLSA)[0]
        assert (tlsa.usage, tlsa.selector, tlsa.matching_type) == (3, 1, 1)
        assert tlsa.association == "abcdef0123456789"

    def test_origin_argument(self):
        zone = parse_master_file("@ IN A 10.0.0.1\n", origin="test.org")
        assert zone.lookup(n("test.org"), RRType.A)

    def test_missing_origin_fails(self):
        with pytest.raises(ValueError):
            parse_master_file("@ IN A 10.0.0.1\n")

    def test_empty_file_fails(self):
        with pytest.raises(ValueError):
            parse_master_file("; only a comment\n", origin="x.com")

    def test_round_trip(self):
        zone = parse_master_file(MASTER)
        text = serialize_zone(zone)
        reparsed = parse_master_file(text)
        assert reparsed.record_count() == zone.record_count()
        assert {r.rdata_text() for r in reparsed.all_records()} == \
            {r.rdata_text() for r in zone.all_records()}

    def test_unsupported_type_fails(self):
        with pytest.raises(ValueError):
            parse_master_file("@ IN SRV 0 0 0 target\n", origin="x.com")
