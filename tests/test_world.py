"""Tests for the World harness itself."""

import pytest

from repro.clock import Instant
from repro.dns.dnssec import ChainStatus
from repro.dns.name import DnsName
from repro.dns.records import ARecord, RRType
from repro.dns.zone import Zone
from repro.ecosystem.world import DEFAULT_TLDS, World


class TestWorldWiring:
    def test_tld_servers_and_delegations(self, world):
        for tld in DEFAULT_TLDS:
            assert tld in world.tld_servers
            assert world.resolver.servers_for(
                DnsName.parse(f"x.{tld}"))

    def test_tlds_are_dnssec_signed(self, world):
        # The registries sign; individual zones opt in separately.
        for tld in ("com", "net", "org", "se"):
            state = world.dnssec.state_for(DnsName.parse(tld))
            assert state is not None and state.signed

    def test_custom_start_instant(self):
        start = Instant.parse("2024-06-08")
        world = World(start=start)
        assert world.now() == start

    def test_issue_cert_trusted(self, world):
        from repro.pki.validation import validate_chain
        cert = world.issue_cert(["a.example.com"])
        assert validate_chain(cert, "a.example.com", world.trust_store,
                              world.now()).valid

    def test_issue_cert_backdating(self, world):
        cert = world.issue_cert(["a.example.com"], lifetime_days=30,
                                backdate_days=60)
        assert cert.not_after < world.now()

    def test_fresh_ip_pools_distinct(self, world):
        dns_ip = world.fresh_ip("dns")
        web_ip = world.fresh_ip("web")
        mx_ip = world.fresh_ip("mx")
        assert len({dns_ip.text, web_ip.text, mx_ip.text}) == 3

    def test_fresh_ip_unknown_role(self, world):
        with pytest.raises(KeyError):
            world.fresh_ip("quantum")

    def test_host_zone_registers_delegation(self, world):
        zone = Zone(apex=DnsName.parse("hosted.org"))
        zone.add(ARecord(DnsName.parse("hosted.org"), 300,
                         world.fresh_ip("web")))
        server = world.host_zone(zone)
        assert world.server_for("hosted.org") is server
        answer = world.resolver.resolve("hosted.org", RRType.A)
        assert answer.records

    def test_scanner_identity_configured(self, world):
        assert world.smtp_probe.client_name == world.scanner_hostname
        assert world.smtp_probe.client_ip == world.scanner_ip
        addresses = world.resolver.resolve_address(world.scanner_hostname)
        assert world.scanner_ip in addresses

    def test_signed_domain_zone_chain(self, world):
        world.dnssec.sign_zone("secure.com")
        assert world.dnssec.validate("mail.secure.com") is \
            ChainStatus.SECURE
