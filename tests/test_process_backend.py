"""Process scan backend: determinism, exact stats merging, sharding.

The hard invariant under test: ``audit --backend process --jobs N``
must produce ``canonical_bytes()``, scan stats, and metrics output
byte-identical to ``--backend serial`` on the same seed — clean and
under seeded fault plans.  The supporting invariants: lazy shard-range
population slices union back to the full population exactly, and
shard-scoped world materialisation keeps exactly the shard's domains.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecosystem.population import (
    PopulationConfig, generate_population, iter_population,
    partition_names, shard_plans,
)
from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
from repro.measurement.executor import ScanExecutor
from repro.obs.exporters import prometheus_exposition
from repro.obs.monitor import build_month_registry
from repro.obs.progress import ProgressTracker

SCALE = 0.004
SEED = 11
MONTH = 3
FAULT_SEED = 4242

# Wall-clock fields and identity fields legitimately differ between
# backends; every counter must match exactly.
_NON_DETERMINISTIC = ("backend", "jobs", "world_build_seconds",
                      "scan_seconds")


def _comparable(stats) -> dict:
    data = stats.as_dict()
    for name in _NON_DETERMINISTIC:
        data.pop(name)
    return data


def _scan(backend: str, jobs: int = 1, fault_seed=None, **kwargs):
    executor = ScanExecutor(backend=backend, jobs=jobs, **kwargs)
    result = executor.scan_population(
        PopulationConfig(scale=SCALE, seed=SEED), MONTH,
        fault_seed=fault_seed)
    return executor, result


class TestSerialProcessParity:
    @pytest.mark.parametrize("fault_seed", [None, FAULT_SEED])
    def test_byte_identical_and_stats_exact(self, fault_seed):
        _, serial = _scan("serial", fault_seed=fault_seed)
        _, process = _scan("process", jobs=3, fault_seed=fault_seed)
        assert (serial.store.canonical_bytes()
                == process.store.canonical_bytes())
        assert _comparable(serial.stats) == _comparable(process.stats)
        assert serial.build_stats == process.build_stats
        assert process.stats.jobs == 3
        assert len(process.worker_peak_rss_kib) == 3
        assert all(rss > 0 for rss in process.worker_peak_rss_kib)

    def test_metrics_exposition_byte_identical(self):
        _, serial = _scan("serial", fault_seed=FAULT_SEED)
        _, process = _scan("process", jobs=2, fault_seed=FAULT_SEED)
        expositions = []
        for result in (serial, process):
            registry = build_month_registry(
                result.stats, result.store.month(MONTH))
            expositions.append(prometheus_exposition(
                registry, labels={"month": str(MONTH)}))
        assert expositions[0] == expositions[1]

    def test_merged_trace_counters_are_serial_exact(self):
        serial_exec, serial = _scan("serial", trace=True,
                                    fault_seed=FAULT_SEED)
        process_exec, process = _scan("process", jobs=3, trace=True,
                                      fault_seed=FAULT_SEED)
        serial_counters = serial_exec.last_trace.metrics.counters
        process_counters = process_exec.last_trace.metrics.counters
        for key in ("dns.queries", "dns.cache_hits",
                    "dns.negative_cache_hits", "smtp.probes",
                    "smtp.cache_hits", "pkix.validations",
                    "pkix.cache_hits", "net.connect_retries",
                    "net.faults_injected", "net.backoff_micros",
                    "scan.domains", "scan.transient_domains",
                    "policy.fetches"):
            assert process_counters.get(key, 0) \
                == serial_counters.get(key, 0), key
        # The trace carries one span tree per domain regardless of
        # which worker scanned it.
        assert (sorted(process_exec.last_trace.domain_spans)
                == sorted(serial_exec.last_trace.domain_spans))

    def test_process_profile_covers_every_domain(self):
        executor, result = _scan("process", jobs=2, profile=True)
        assert executor.last_profile is not None
        assert (executor.last_profile.domains_profiled
                == result.stats.domains_scanned)

    def test_scan_population_serial_matches_scan(self):
        """The population entry point is the same scan the world-level
        entry point runs."""
        timeline = EcosystemTimeline(TimelineConfig(
            PopulationConfig(scale=SCALE, seed=SEED)))
        materialized = timeline.materialize(MONTH)
        store, _ = ScanExecutor().scan(
            materialized.world, materialized.deployed.keys(), MONTH)
        _, result = _scan("serial")
        assert store.canonical_bytes() == result.store.canonical_bytes()


class TestProcessProgress:
    def test_heartbeats_cross_the_process_boundary(self):
        events = []
        executor = ScanExecutor(backend="process", jobs=2,
                                progress=events.append,
                                heartbeat_every=5)
        result = executor.scan_population(
            PopulationConfig(scale=SCALE, seed=SEED), MONTH)
        assert events, "no heartbeats received"
        final = events[-1]
        assert final.final
        assert final.domains_done == result.stats.domains_scanned
        assert final.shards_done == 2
        assert final.backend == "process"
        done = [e.domains_done for e in events]
        assert done == sorted(done)

    def test_tracker_advance_batches(self):
        events = []
        tracker = ProgressTracker(events.append, month_index=0,
                                  backend="process", domains_total=100,
                                  shards_total=1, virtual_epoch=0,
                                  heartbeat_every=10)
        tracker.advance(7)      # 0 -> 7: no boundary crossed
        assert not events
        tracker.advance(25)     # 7 -> 32: crossed (one emission)
        assert len(events) == 1
        assert events[-1].domains_done == 32
        tracker.advance(0)
        assert len(events) == 1


class TestValidation:
    def test_process_scan_requires_population_entry_point(self):
        timeline = EcosystemTimeline(TimelineConfig(
            PopulationConfig(scale=SCALE, seed=SEED)))
        materialized = timeline.materialize(MONTH)
        executor = ScanExecutor(backend="process", jobs=2)
        with pytest.raises(ValueError, match="scan_population"):
            executor.scan(materialized.world,
                          materialized.deployed.keys(), MONTH)

    def test_serial_no_longer_silently_clamps_jobs(self):
        with pytest.raises(ValueError, match="serial backend ignores"):
            ScanExecutor(backend="serial", jobs=2)
        # jobs=1 on serial stays fine; parallel backends accept any N.
        assert ScanExecutor(backend="serial", jobs=1).jobs == 1
        assert ScanExecutor(backend="process", jobs=4).jobs == 4

    def test_shard_argument_validation(self):
        timeline = EcosystemTimeline(TimelineConfig(
            PopulationConfig(scale=SCALE, seed=SEED)))
        with pytest.raises(ValueError):
            timeline.materialize(MONTH, shard=(0, 0))
        with pytest.raises(ValueError):
            timeline.materialize(MONTH, shard=(2, 2))
        with pytest.raises(ValueError):
            shard_plans(PopulationConfig(scale=SCALE, seed=SEED), 3, 3)
        with pytest.raises(ValueError):
            shard_plans(PopulationConfig(scale=SCALE, seed=SEED), 0, 0)


class TestShardMaterialisation:
    def test_shards_partition_the_full_deployment(self):
        config = PopulationConfig(scale=SCALE, seed=SEED)
        timeline = EcosystemTimeline(TimelineConfig(config))
        full = timeline.materialize(MONTH)
        count = 3
        shard_domains = []
        for index in range(count):
            shard = EcosystemTimeline(TimelineConfig(config)).materialize(
                MONTH, shard=(index, count))
            # every worker reports the same (serial-shaped) build churn
            assert shard.build_stats == full.build_stats
            shard_domains.append(sorted(shard.deployed))
        union = [d for domains in shard_domains for d in domains]
        assert sorted(union) == sorted(full.deployed)
        assert len(union) == len(set(union))
        assert shard_domains == partition_names(full.deployed, count)

    def test_out_of_shard_infrastructure_is_released(self):
        config = PopulationConfig(scale=SCALE, seed=SEED)
        full = EcosystemTimeline(TimelineConfig(config)).materialize(MONTH)
        shard = EcosystemTimeline(TimelineConfig(config)).materialize(
            MONTH, shard=(0, 4))
        assert len(shard.deployed) < len(full.deployed)
        # undeploy withdrew the out-of-shard zones: their MTA-STS TXT
        # records no longer resolve in the shard world.
        from repro.dns.name import DnsName
        from repro.dns.records import RRType
        gone = sorted(set(full.deployed) - set(shard.deployed))[0]
        assert shard.world.resolver.try_resolve(
            DnsName.parse(f"_mta-sts.{gone}"), RRType.TXT) is None


class TestLazyPopulationSharding:
    @settings(max_examples=12, deadline=None)
    @given(scale=st.sampled_from([0.001, 0.002, 0.004]),
           seed=st.integers(min_value=0, max_value=2**32 - 1),
           shards=st.integers(min_value=1, max_value=7))
    def test_shard_union_is_byte_identical_to_full_generation(
            self, scale, seed, shards):
        """The union of the lazy shard-range slices equals the full
        ``generate_population`` output — for arbitrary (scale, seed,
        shard count)."""
        config = PopulationConfig(scale=scale, seed=seed)
        full = sorted(iter_population(config), key=lambda p: p.name)
        pieces = [shard_plans(config, index, shards)
                  for index in range(shards)]
        union = sorted((plan for piece in pieces for plan in piece),
                       key=lambda p: p.name)
        assert [p.name for p in union] == [p.name for p in full]
        assert union == full  # plan-level equality, not just names
        # each piece is canonical-contiguous and they are disjoint
        names = [[p.name for p in piece] for piece in pieces]
        assert names == partition_names((p.name for p in full), shards)

    def test_iter_population_matches_generate_population(self):
        config = PopulationConfig(scale=SCALE, seed=SEED)
        populations = generate_population(config)
        flat = [plan for population in populations.values()
                for plan in population.plans]
        assert list(iter_population(config)) == flat


class TestCliProcessBackend:
    def test_audit_process_jobs_auto(self, capsys, tmp_path):
        from repro.cli import main
        metrics = {}
        for backend, jobs in (("serial", "1"), ("process", "0")):
            out = tmp_path / f"{backend}.prom"
            assert main(["audit", "--scale", str(SCALE),
                         "--seed", str(SEED), "--month", str(MONTH),
                         "--backend", backend, "--jobs", jobs,
                         "--fault-seed", str(FAULT_SEED),
                         "--stats", "--json",
                         "--metrics-out", str(out)]) == 0
            stats = json.loads(capsys.readouterr().out)
            assert stats["backend"] == backend
            if backend == "process":
                assert stats["jobs"] >= 1
            metrics[backend] = out.read_text(encoding="utf-8")
        assert metrics["serial"] == metrics["process"]

    def test_audit_process_save_matches_serial_commit(self, tmp_path):
        from repro.cli import main
        from repro.measurement.store_io import load_state
        digests = {}
        for backend in ("serial", "process"):
            state_dir = tmp_path / backend
            assert main(["audit", "--scale", str(SCALE),
                         "--seed", str(SEED), "--month", str(MONTH),
                         "--backend", backend,
                         "--jobs", "2" if backend == "process" else "1",
                         "--save", str(state_dir)]) == 0
            state = load_state(str(state_dir))
            entry = state.entry(MONTH)
            digests[backend] = entry.sha256
            assert entry.rows == len(state.store.month(MONTH))
        assert digests["serial"] == digests["process"]

    def test_audit_serial_excess_jobs_is_an_error(self, capsys):
        from repro.cli import main
        assert main(["audit", "--scale", str(SCALE),
                     "--backend", "serial", "--jobs", "2"]) == 2
        assert "serial backend ignores" in capsys.readouterr().err
