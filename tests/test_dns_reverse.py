"""Tests for reverse DNS, FCrDNS verification, and FCrDNS-gated MTAs."""

import pytest

from repro.dns.name import DnsName
from repro.dns.records import ARecord
from repro.dns.reverse import fcrdns_check, publish_ptr, reverse_name
from repro.dns.zone import Zone
from repro.ecosystem.deployment import DomainSpec, deploy_domain
from repro.netsim.ip import IpAddress


class TestReverseName:
    def test_octet_reversal(self):
        assert reverse_name(IpAddress.parse("10.1.2.3")).text == \
            "3.2.1.10.in-addr.arpa"

    def test_v6_not_modelled(self):
        with pytest.raises(ValueError):
            reverse_name(IpAddress.v6(1))


class TestFcrdns:
    def _publish_identity(self, world, hostname, ip):
        apex = DnsName.parse(hostname).parent()
        zone = Zone(apex=apex)
        zone.add(ARecord(DnsName.parse(hostname), 3600, ip))
        world.host_zone(zone)
        publish_ptr(world.reverse_zone, ip, hostname)

    def test_world_scanner_identity_passes(self, world):
        result = fcrdns_check(world.resolver, world.scanner_ip,
                              world.scanner_hostname)
        assert result.passed
        assert result.ptr_name == world.scanner_hostname

    def test_missing_ptr_fails(self, world):
        stray = world.mx_ip_pool.allocate()
        result = fcrdns_check(world.resolver, stray, "ghost.example.org")
        assert not result.passed
        assert "no PTR" in result.detail

    def test_ptr_name_mismatch_fails(self, world):
        ip = world.mx_ip_pool.allocate()
        self._publish_identity(world, "real.mailer.net", ip)
        result = fcrdns_check(world.resolver, ip, "fake.mailer.net")
        assert not result.passed
        assert result.ptr_name == "real.mailer.net"

    def test_forward_confirmation_required(self, world):
        # PTR exists but the forward A record points elsewhere.
        ip = world.mx_ip_pool.allocate()
        other_ip = world.mx_ip_pool.allocate()
        world.network.register_host(other_ip)
        zone = Zone(apex=DnsName.parse("mailer.net"))
        zone.add(ARecord(DnsName.parse("spoofed.mailer.net"), 3600,
                         other_ip))
        world.host_zone(zone)
        publish_ptr(world.reverse_zone, ip, "spoofed.mailer.net")
        result = fcrdns_check(world.resolver, ip, "spoofed.mailer.net")
        assert not result.passed
        assert "resolves to" in result.detail

    def test_out_of_zone_ptr_rejected(self):
        zone = Zone(apex=DnsName.parse("1.10.in-addr.arpa"))
        with pytest.raises(ValueError):
            publish_ptr(zone, IpAddress.parse("10.2.0.1"), "x.example.com")


class TestFcrdnsGatedMx:
    def test_scanner_accepted_by_strict_mta(self, world):
        deployed = deploy_domain(world, DomainSpec(domain="strictmx.com"))
        mx = deployed.mx_hosts[0]
        mx.require_fcrdns_with = world.resolver
        probe = world.smtp_probe.probe_host("mail.strictmx.com")
        assert probe.starttls_offered
        assert probe.cert_valid

    def test_anonymous_client_rejected(self, world):
        deployed = deploy_domain(world, DomainSpec(domain="strictmx2.com"))
        mx = deployed.mx_hosts[0]
        mx.require_fcrdns_with = world.resolver
        response = mx.ehlo("liar.example.net", None)
        assert response.code == 554

    def test_spoofed_name_rejected(self, world):
        deployed = deploy_domain(world, DomainSpec(domain="strictmx3.com"))
        mx = deployed.mx_hosts[0]
        mx.require_fcrdns_with = world.resolver
        response = mx.ehlo("liar.example.net", world.scanner_ip)
        assert response.code == 554

    def test_probe_records_fcrdns_rejection(self, world):
        from repro.smtp.client import SmtpProbe
        deployed = deploy_domain(world, DomainSpec(domain="strictmx4.com"))
        deployed.mx_hosts[0].require_fcrdns_with = world.resolver
        rogue = SmtpProbe(world.network, world.resolver, world.trust_store,
                          world.clock, client_name="rogue.nowhere.net")
        result = rogue.probe_host("mail.strictmx4.com")
        assert result.ehlo_code == 554
        assert not result.starttls_offered
        assert "FCrDNS" in result.detail
