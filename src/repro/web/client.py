"""A validating HTTPS client with staged failure reporting.

:class:`HttpsClient.fetch` walks the exact pipeline RFC 8461 senders
(and the paper's scanner) walk when retrieving a policy:

1. **DNS** — resolve the host (following CNAME delegation);
2. **TCP** — connect to port 443;
3. **TLS** — handshake with SNI and full PKIX validation;
4. **HTTP** — issue the GET and require a 200 (redirects are refused
   per RFC 8461 §3.3).

:class:`FetchOutcome` records which stage failed, giving Figure 5 its
x-axis for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import trace
from repro.clock import Clock
from repro.dns.name import DnsName, canonical_host
from repro.dns.resolver import Resolver
from repro.errors import (
    DnsError, NetworkError, PolicyFetchStage, TlsError, TlsFailure,
)
from repro.netsim.ip import IpAddress
from repro.netsim.network import Network
from repro.netsim.retry import (
    DEFAULT_RETRY_POLICY, RetryPolicy, connect_with_retries,
)
from repro.pki.ca import TrustStore
from repro.pki.certificate import Certificate
from repro.tls.handshake import handshake
from repro.web.server import HTTPS_PORT, WebServer


@dataclass
class FetchOutcome:
    """Result of one staged HTTPS fetch."""

    url: str
    body: Optional[str] = None
    status: Optional[int] = None
    failed_stage: Optional[PolicyFetchStage] = None
    tls_failure: Optional[TlsFailure] = None
    certificate: Optional[Certificate] = None
    detail: str = ""
    resolved_ips: list[IpAddress] = field(default_factory=list)
    #: The failed stage died on a fault-injected transient error that
    #: survived the retry budget (never set on successful fetches).
    transient: bool = False

    @property
    def ok(self) -> bool:
        return self.failed_stage is None


class HttpsClient:
    """Fetches URLs over the simulated network with PKIX validation."""

    def __init__(self, network: Network, resolver: Resolver,
                 trust_store: TrustStore, clock: Clock,
                 *, retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY):
        self._network = network
        self._resolver = resolver
        self._trust_store = trust_store
        self._clock = clock
        self._retry_policy = retry_policy

    def fetch(self, host: str | DnsName, path: str,
              *, validate_tls: bool = True) -> FetchOutcome:
        host_text = canonical_host(host)
        outcome = FetchOutcome(url=f"https://{host_text}{path}")

        # Stage 1: DNS
        try:
            name = DnsName.parse(host_text)
            addresses = self._resolver.resolve_address(name)
        except (ValueError, DnsError) as exc:
            outcome.failed_stage = PolicyFetchStage.DNS
            outcome.transient = getattr(exc, "transient", False)
            outcome.detail = str(exc)
            if trace.TRACING:
                trace.event("fetch-stage", stage="dns", outcome=str(exc),
                            transient=outcome.transient)
            return outcome
        outcome.resolved_ips = addresses
        if trace.TRACING:
            trace.event("fetch-stage", stage="dns",
                        outcome=f"ok:{len(addresses)}")

        # Stage 2: TCP (each address retried under the policy)
        server = None
        tcp_error: Exception | None = None
        for address in addresses:
            try:
                server = connect_with_retries(
                    self._network, address, HTTPS_PORT,
                    policy=self._retry_policy,
                    key=f"https:{host_text}:{address.text}")
                break
            except NetworkError as exc:
                tcp_error = exc
        if server is None:
            outcome.failed_stage = PolicyFetchStage.TCP
            outcome.transient = getattr(tcp_error, "transient", False)
            outcome.detail = str(tcp_error)
            if trace.TRACING:
                trace.event("fetch-stage", stage="tcp",
                            outcome=str(tcp_error),
                            transient=outcome.transient)
            return outcome
        if not isinstance(server, WebServer):
            outcome.failed_stage = PolicyFetchStage.TCP
            outcome.detail = "endpoint is not an HTTPS server"
            if trace.TRACING:
                trace.event("fetch-stage", stage="tcp",
                            outcome=outcome.detail)
            return outcome
        if trace.TRACING:
            trace.event("fetch-stage", stage="tcp", outcome="connected")

        # Stage 3: TLS
        try:
            session = handshake(
                server.tls, host_text,
                trust_store=self._trust_store if validate_tls else None,
                now=self._clock.now() if validate_tls else None)
            outcome.certificate = session.certificate
        except TlsError as exc:
            outcome.failed_stage = PolicyFetchStage.TLS
            outcome.tls_failure = exc.failure
            outcome.detail = str(exc)
            if trace.TRACING:
                trace.event("fetch-stage", stage="tls",
                            outcome=exc.failure.value)
            return outcome
        if trace.TRACING:
            trace.event("fetch-stage", stage="tls", outcome="established")

        # Stage 4: HTTP (redirects are treated as errors per RFC 8461)
        response = server.handle(host_text, path)
        outcome.status = response.status
        if response.status != 200:
            outcome.failed_stage = PolicyFetchStage.HTTP
            outcome.detail = f"HTTP {response.status}"
            if trace.TRACING:
                trace.event("fetch-stage", stage="http",
                            outcome=f"status:{response.status}")
            return outcome
        outcome.body = response.body
        if trace.TRACING:
            trace.event("fetch-stage", stage="http", outcome="status:200")
        return outcome
