"""Simulated HTTPS: policy-hosting web servers and a validating client."""

from repro.web.server import HttpResponse, WebServer
from repro.web.client import HttpsClient, FetchOutcome

__all__ = ["HttpResponse", "WebServer", "HttpsClient", "FetchOutcome"]
