"""Simulated HTTPS servers.

A :class:`WebServer` pairs a TLS endpoint with a virtual-host routing
table: ``(host, path) -> response``.  MTA-STS policy hosting is just a
route at ``/.well-known/mta-sts.txt`` for the ``mta-sts.<domain>``
host.  Fault hooks cover the HTTP-level errors in Figure 5: 404s
(policy file removed or never published), 5xx, and redirects — which
RFC 8461 forbids senders from following (senders "MUST NOT follow
HTTP redirects"), so the client treats 3xx as an HTTP error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.dns.name import canonical_host
from repro.netsim.ip import IpAddress
from repro.netsim.network import Network
from repro.tls.handshake import TlsEndpoint

HTTPS_PORT = 443

WELL_KNOWN_STS_PATH = "/.well-known/mta-sts.txt"


@dataclass(frozen=True)
class HttpResponse:
    status: int
    body: str = ""
    content_type: str = "text/plain"

    @classmethod
    def ok(cls, body: str) -> "HttpResponse":
        return cls(200, body)

    @classmethod
    def not_found(cls) -> "HttpResponse":
        return cls(404, "not found")


class WebServer:
    """A virtual-hosting HTTPS server on the simulated network."""

    def __init__(self, name: str, ip: IpAddress, network: Network,
                 *, tls: Optional[TlsEndpoint] = None):
        self.name = name
        self.ip = ip
        self.tls = tls or TlsEndpoint()
        self._routes: Dict[Tuple[str, str], HttpResponse] = {}
        self._default_response = HttpResponse.not_found()
        self.request_count = 0
        network.register(ip, HTTPS_PORT, self, description=f"https:{name}")

    # -- content management ------------------------------------------------

    def set_route(self, host: str, path: str, response: HttpResponse) -> None:
        self._routes[(canonical_host(host), path)] = response

    def remove_route(self, host: str, path: str) -> None:
        self._routes.pop((canonical_host(host), path), None)

    def host_policy(self, domain: str, policy_text: str,
                    *, status: int = 200) -> None:
        """Publish an MTA-STS policy for *domain* at the well-known URI."""
        host = f"mta-sts.{canonical_host(domain)}"
        self.set_route(host, WELL_KNOWN_STS_PATH,
                       HttpResponse(status, policy_text))

    def unhost_policy(self, domain: str) -> None:
        host = f"mta-sts.{canonical_host(domain)}"
        self.remove_route(host, WELL_KNOWN_STS_PATH)

    def hosted_policy_domains(self) -> list[str]:
        return sorted(host[len("mta-sts."):]
                      for (host, path) in self._routes
                      if path == WELL_KNOWN_STS_PATH
                      and host.startswith("mta-sts."))

    # -- request handling ----------------------------------------------------

    def handle(self, host: str, path: str) -> HttpResponse:
        self.request_count += 1
        response = self._routes.get((canonical_host(host), path))
        if response is None:
            return self._default_response
        return response
