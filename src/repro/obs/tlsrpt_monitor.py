"""TLSRPT ingestion health monitoring (RFC 8460, operator side).

The delivery campaign's senders emit daily aggregate reports; the
operator-side :class:`~repro.core.reporting.ReportAggregator` receives
them.  :class:`TlsRptMonitor` turns that received stream into
per-window metrics — reports received, sessions attempted, failure
rate by result type, the top failing sending MTAs — evaluated against
:class:`TlsRptThresholds` into the same OK/WARN/ALERT
:class:`~repro.obs.monitor.HealthReport` the scan and delivery
monitors produce, with Prometheus + JSONL exposition through
:mod:`repro.obs.exporters`.

Unlike :class:`~repro.obs.monitor.DeliveryThresholds` (cumulative),
the failure-rate bounds here are **per window**: a seeded fault spike
must raise an ALERT on exactly the poisoned window, not smear across
the campaign.  Every recorded value is an integer counter derived from
the deterministically ordered report set, so the window JSONL is
byte-identical between serial and threaded delivery backends, clean
and fault-seeded.

The monitor also exposes a **verdict feed** —
:meth:`TlsRptMonitor.verdicts` yields per-domain
:class:`TlsRptVerdict` items that ``measurement/notify.py``
(``run_from_verdicts``) and ``measurement/repair.py``
(``plan_repairs_from_verdict``) consume, so notifications and repairs
are triggered by *received reports* rather than rescans.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.tlsrpt import ResultType, TlsRptReport
from repro.obs.exporters import (
    append_jsonl_line, month_jsonl_line, read_month_records,
    write_lines_atomic,
)
from repro.obs.monitor import ALERT, OK, WARN, HealthFinding, HealthReport
from repro.trace import MetricsRegistry

__all__ = [
    "TOP_FAILING_MTAS",
    "TlsRptVerdict", "TlsRptThresholds", "TlsRptWindowRecord",
    "TlsRptMonitor",
]

#: How many failing sender organisations each window's registry names
#: (bounded cardinality: the campaign has thousands of senders).
TOP_FAILING_MTAS = 5


@dataclass(frozen=True)
class TlsRptVerdict:
    """One actionable conclusion from received reports: *this* policy
    domain accumulated *this many* failed sessions of *this* type."""

    policy_domain: str
    result_type: ResultType
    failed_sessions: int


@dataclass
class TlsRptThresholds:
    """Per-window health bounds over the received report stream.

    Defaults are calibrated so a clean campaign stays all-OK (its only
    failures are the sparse misconfigured-recipient tail) while a
    fault-seeded one pushes the poisoned window's failure share over
    the ALERT line.
    """

    #: per-window failed share of sessions (WARN)
    failure_rate_warn: float = 0.15
    #: per-window failed share of sessions (ALERT)
    failure_rate_alert: float = 0.35

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class TlsRptWindowRecord:
    """One reporting window's registry snapshot inside the monitor."""

    window_index: int
    date: str
    metrics: MetricsRegistry

    def reports(self) -> int:
        return self.metrics.get("tlsrpt.reports")

    def sessions(self) -> int:
        return self.metrics.get("tlsrpt.sessions")

    def failed_sessions(self) -> int:
        return self.metrics.get("tlsrpt.failure")

    def failure_rate(self) -> float:
        sessions = self.sessions()
        return self.failed_sessions() / sessions if sessions else 0.0


class TlsRptMonitor:
    """Collects per-window report aggregates and evaluates health.

    The API mirrors :class:`~repro.obs.monitor.DeliveryMonitor` (live
    JSONL feed, atomic full-feed writes, offline re-evaluation from a
    saved feed) with the reporting window as the unit of record.
    """

    def __init__(self, thresholds: Optional[TlsRptThresholds] = None,
                 *, jsonl_path: Optional[str] = None):
        self.thresholds = thresholds or TlsRptThresholds()
        self.records: List[TlsRptWindowRecord] = []
        self.jsonl_path = jsonl_path
        self._verdict_tallies: Dict[Tuple[str, ResultType], int] = \
            defaultdict(int)

    # -- capture ------------------------------------------------------

    def observe_window(self, window_index: int, date: str,
                       reports: Sequence[TlsRptReport]
                       ) -> TlsRptWindowRecord:
        """Aggregate one window's received reports into a record.

        *reports* must arrive in a deterministic order (the campaign's
        mailbox sweep sorts them) — every derived counter is
        order-independent anyway, but the invariant keeps the feed's
        provenance obvious.
        """
        registry = MetricsRegistry()
        domains = set()
        successes = failures = 0
        by_result = {rtype: 0 for rtype in ResultType}
        by_org: Dict[str, int] = defaultdict(int)
        for report in reports:
            for summary in report.policies:
                domains.add(summary.policy_domain)
                successes += summary.total_successful_sessions
                failures += summary.total_failed_sessions
                if summary.total_failed_sessions:
                    by_org[report.organization_name] += \
                        summary.total_failed_sessions
                for detail in summary.failure_details:
                    by_result[detail.result_type] += \
                        detail.failed_session_count
                    self._verdict_tallies[
                        (summary.policy_domain, detail.result_type)] += \
                        detail.failed_session_count
        registry.count("tlsrpt.reports", len(reports))
        registry.count("tlsrpt.domains", len(domains))
        registry.count("tlsrpt.success", successes)
        registry.count("tlsrpt.failure", failures)
        registry.count("tlsrpt.sessions", successes + failures)
        for rtype in ResultType:
            registry.count(f"tlsrpt.failure.{rtype.value}",
                           by_result[rtype])
        top = sorted(by_org.items(), key=lambda kv: (-kv[1], kv[0]))
        for org, count in top[:TOP_FAILING_MTAS]:
            registry.count(f"tlsrpt.failing_mta.{org}", count)
        return self.add_record(
            TlsRptWindowRecord(window_index, date, registry))

    def observe_reports(self, reports: Sequence[TlsRptReport]
                        ) -> List[TlsRptWindowRecord]:
        """Group *reports* into windows by their start date and observe
        each (sorted by date) — the whole-campaign / report-dir entry
        point shared by the campaign driver and ``repro tlsrpt``."""
        by_window: Dict[str, List[TlsRptReport]] = defaultdict(list)
        for report in reports:
            by_window[report.window_start.date_string()].append(report)
        records = []
        for date in sorted(by_window):
            records.append(self.observe_window(
                len(self.records), date, by_window[date]))
        return records

    def add_record(self, record: TlsRptWindowRecord) -> TlsRptWindowRecord:
        self.records.append(record)
        self.records.sort(key=lambda r: r.window_index)
        if self.jsonl_path is not None:
            append_jsonl_line(
                self.jsonl_path,
                month_jsonl_line(record.window_index, record.date,
                                 record.metrics))
        return record

    # -- (de)serialisation --------------------------------------------

    def to_jsonl_lines(self) -> List[str]:
        return [month_jsonl_line(r.window_index, r.date, r.metrics)
                for r in self.records]

    def to_jsonl(self) -> str:
        return "\n".join(self.to_jsonl_lines()) + "\n"

    def write_jsonl(self, path: str) -> int:
        return write_lines_atomic(path, self.to_jsonl_lines())

    @classmethod
    def from_jsonl(cls, text: str,
                   thresholds: Optional[TlsRptThresholds] = None,
                   ) -> "TlsRptMonitor":
        """Rebuild the window feed (not the verdict tallies — those
        need the reports themselves; re-ingest via
        :meth:`observe_reports` for a verdict-capable monitor)."""
        monitor = cls(thresholds)
        for window_index, date, registry in read_month_records(text):
            monitor.records.append(
                TlsRptWindowRecord(window_index, date, registry))
        return monitor

    def total_registry(self) -> MetricsRegistry:
        total = MetricsRegistry()
        for record in self.records:
            total.merge(record.metrics)
        return total

    def failing_mtas(self) -> List[Tuple[str, int]]:
        """Aggregated top failing sender organisations across every
        window (recomputable from a saved feed)."""
        prefix = "tlsrpt.failing_mta."
        totals: Dict[str, int] = defaultdict(int)
        for record in self.records:
            for key, value in record.metrics.counters.items():
                if key.startswith(prefix):
                    totals[key[len(prefix):]] += int(value)
        return sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))

    # -- the verdict feed ---------------------------------------------

    def verdicts(self, *, min_failed_sessions: int = 1
                 ) -> List[TlsRptVerdict]:
        """Per-(domain, result-type) failure totals over every observed
        window, sorted canonically — what the notification and repair
        loops consume."""
        return [TlsRptVerdict(domain, rtype, count)
                for (domain, rtype), count in sorted(
                    self._verdict_tallies.items(),
                    key=lambda kv: (kv[0][0], kv[0][1].value))
                if count >= min_failed_sessions]

    # -- evaluation ---------------------------------------------------

    def health(self) -> HealthReport:
        """Per-window threshold evaluation; every input is an integer
        counter, so the report is byte-identical across delivery
        backends."""
        report = HealthReport()
        bounds = self.thresholds
        for record in self.records:
            findings: List[HealthFinding] = []
            rate = record.failure_rate()
            if rate > bounds.failure_rate_alert:
                findings.append(HealthFinding(
                    ALERT, record.window_index, "tlsrpt-failure-rate",
                    rate, bounds.failure_rate_alert,
                    f"window failure share {rate:.2%} exceeds "
                    f"{bounds.failure_rate_alert:.2%} "
                    f"({record.failed_sessions()} of "
                    f"{record.sessions()} sessions)"))
            elif rate > bounds.failure_rate_warn:
                findings.append(HealthFinding(
                    WARN, record.window_index, "tlsrpt-failure-rate",
                    rate, bounds.failure_rate_warn,
                    f"window failure share {rate:.2%} exceeds "
                    f"{bounds.failure_rate_warn:.2%} "
                    f"({record.failed_sessions()} of "
                    f"{record.sessions()} sessions)"))
            if not findings:
                findings.append(HealthFinding(
                    OK, record.window_index, "all-checks", 0.0, 0.0,
                    f"{record.reports()} report(s), "
                    f"{record.sessions()} session(s), all checks passed"))
            report.findings.extend(findings)
        return report
