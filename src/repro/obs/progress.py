"""Live scan progress: the executor heartbeat API and its renderer.

:class:`~repro.measurement.executor.ScanExecutor` accepts a progress
callback; while a scan runs it receives :class:`ProgressEvent`
heartbeats (domains done, shards completed, throughput, wall-clock
ETA) plus one final event.  The executor funnels every backend through
:class:`ProgressTracker`, which is thread-safe — threaded-shard
workers report concurrently — and rate-limits emission to one event
per *heartbeat_every* completed domains, so an attached callback costs
nothing measurable.

:class:`ProgressPrinter` is the CLI consumer: a single overwriting
status line on a TTY, one line per heartbeat otherwise.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional, TextIO

__all__ = ["ProgressEvent", "ProgressTracker", "ProgressPrinter"]


@dataclass(frozen=True)
class ProgressEvent:
    """One heartbeat of a running scan."""

    month_index: int
    backend: str
    domains_total: int
    domains_done: int
    shards_total: int
    shards_done: int
    wall_elapsed_seconds: float
    #: the scan's *virtual* instant (epoch seconds) — the campaign's
    #: position in simulated time, unrelated to the wall clock
    virtual_epoch: int
    final: bool = False

    @property
    def domains_per_second(self) -> float:
        if self.wall_elapsed_seconds <= 0.0:
            return 0.0
        return self.domains_done / self.wall_elapsed_seconds

    @property
    def eta_seconds(self) -> Optional[float]:
        """Estimated wall seconds to scan completion (None until the
        first domain finishes)."""
        rate = self.domains_per_second
        if rate <= 0.0:
            return None
        return (self.domains_total - self.domains_done) / rate

    @property
    def percent(self) -> float:
        if not self.domains_total:
            return 100.0
        return 100.0 * self.domains_done / self.domains_total


class ProgressTracker:
    """Thread-safe heartbeat aggregator for one scan.

    Workers call :meth:`domain_done` / :meth:`shard_done`; the tracker
    emits to the callback at shard boundaries, every
    ``heartbeat_every`` domains, and once from :meth:`finish` with
    ``final=True``.  Events are emitted under the lock, so the callback
    observes monotonically non-decreasing counters.
    """

    def __init__(self, callback: Callable[[ProgressEvent], None], *,
                 month_index: int, backend: str, domains_total: int,
                 shards_total: int, virtual_epoch: int,
                 heartbeat_every: int = 0):
        self._callback = callback
        self._month_index = month_index
        self._backend = backend
        self._domains_total = domains_total
        self._shards_total = shards_total
        self._virtual_epoch = virtual_epoch
        if heartbeat_every <= 0:
            heartbeat_every = max(1, domains_total // 20)
        self._heartbeat_every = heartbeat_every
        self._lock = threading.Lock()
        self._domains_done = 0
        self._shards_done = 0
        self._started = time.perf_counter()

    def _emit(self, final: bool = False) -> None:
        self._callback(ProgressEvent(
            month_index=self._month_index, backend=self._backend,
            domains_total=self._domains_total,
            domains_done=self._domains_done,
            shards_total=self._shards_total,
            shards_done=self._shards_done,
            wall_elapsed_seconds=time.perf_counter() - self._started,
            virtual_epoch=self._virtual_epoch, final=final))

    def domain_done(self, domain: str) -> None:
        with self._lock:
            self._domains_done += 1
            if self._domains_done % self._heartbeat_every == 0:
                self._emit()

    def advance(self, count: int) -> None:
        """Credit *count* completed domains in one step.

        The process scan backend ships progress across the process
        boundary as batched increments (a queue message per domain
        would dominate the heartbeat's cost), so the tracker must
        accept jumps: one event is emitted whenever a batch crosses a
        heartbeat boundary, preserving the ~heartbeat_every cadence.
        """
        if count <= 0:
            return
        with self._lock:
            before = self._domains_done
            self._domains_done += count
            if (before // self._heartbeat_every
                    != self._domains_done // self._heartbeat_every):
                self._emit()

    def shard_done(self) -> None:
        with self._lock:
            self._shards_done += 1
            self._emit()

    def finish(self) -> None:
        with self._lock:
            self._emit(final=True)


class ProgressPrinter:
    """Renders heartbeats as a CLI status line.

    On a TTY the line overwrites itself (carriage return); elsewhere
    every heartbeat is its own line, which keeps piped output and test
    captures readable.
    """

    def __init__(self, stream: Optional[TextIO] = None):
        self._stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())

    def __call__(self, event: ProgressEvent) -> None:
        eta = event.eta_seconds
        line = (f"scan m{event.month_index:02d} [{event.backend}] "
                f"{event.domains_done}/{event.domains_total} domains "
                f"({event.percent:5.1f}%)  "
                f"shard {event.shards_done}/{event.shards_total}  "
                f"{event.domains_per_second:7.0f} dom/s")
        if eta is not None:
            line += f"  eta {eta:5.1f}s"
        if self._tty:
            end = "\n" if event.final else ""
            self._stream.write("\r" + line + end)
        else:
            self._stream.write(line + "\n")
        self._stream.flush()
