"""Campaign-level observability.

The :mod:`repro.trace` layer explains *one scan* (span trees, per-scan
metrics).  This package explains *campaigns*:

* :mod:`repro.obs.exporters` — Prometheus text-format exposition and
  monthly metrics JSONL for any
  :class:`~repro.trace.MetricsRegistry`, deterministically ordered so
  serial and threaded backends emit byte-identical output;
* :mod:`repro.obs.monitor` — :class:`CampaignMonitor`: per-month
  registry snapshots, month-over-month drift, and threshold-driven
  OK/WARN/ALERT health findings;
* :mod:`repro.obs.progress` — the heartbeat API on
  :class:`~repro.measurement.executor.ScanExecutor` and its CLI
  renderer;
* :mod:`repro.obs.profile` — optional wall-clock stage timers and the
  top-N slowest domains.
"""

from repro.obs.exporters import (
    append_jsonl_line, month_jsonl_line, parse_prometheus_exposition,
    prometheus_exposition, read_month_records, write_lines_atomic,
)
from repro.obs.monitor import (
    CampaignMonitor, HealthFinding, HealthReport, MonthRecord, Thresholds,
    build_month_registry,
)
from repro.obs.profile import ProfileReport, StageProfiler
from repro.obs.progress import ProgressEvent, ProgressPrinter, ProgressTracker

__all__ = [
    "prometheus_exposition", "parse_prometheus_exposition",
    "month_jsonl_line", "read_month_records", "write_lines_atomic",
    "append_jsonl_line",
    "CampaignMonitor", "MonthRecord", "Thresholds", "HealthFinding",
    "HealthReport", "build_month_registry",
    "ProgressEvent", "ProgressTracker", "ProgressPrinter",
    "StageProfiler", "ProfileReport",
]
