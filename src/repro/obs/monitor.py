"""Longitudinal campaign health monitoring.

The paper's contribution is month-over-month dynamics (Fig. 9, §5) —
which makes the campaign itself a measurement instrument that can
silently degrade.  A transient-rate spike is indistinguishable from an
ecosystem regression unless the scanner's own health is tracked;
related large-scale scans (Mayer et al., Czybik et al.) all monitor
their pipelines for exactly this reason.

:class:`CampaignMonitor` hooks into
:func:`repro.analysis.series.run_campaign`: after every scan month it
captures a deterministic :class:`~repro.trace.MetricsRegistry`
snapshot (:func:`build_month_registry` — scan-stage counters, the
taxonomy-bucket census, world-build churn), appends it to the monthly
metrics feed, and evaluates configurable :class:`Thresholds` over the
month-over-month drift into a :class:`HealthReport` of OK/WARN/ALERT
findings.  Saved feeds re-evaluate offline through
:meth:`CampaignMonitor.from_jsonl` (the CLI ``monitor`` subcommand).

Everything recorded here is an integer (or a rounded-to-milliseconds
virtual duration), so the monthly feed inherits the scan pipeline's
serial/threaded byte-identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.measurement.taxonomy import PRIMARY_BUCKETS, primary_bucket
from repro.obs.exporters import (
    append_jsonl_line, month_jsonl_line, read_month_records,
    write_lines_atomic,
)
from repro.trace import MetricsRegistry

if TYPE_CHECKING:
    from repro.measurement.executor import ScanStats
    from repro.measurement.snapshots import DomainSnapshot

__all__ = [
    "OK", "WARN", "ALERT",
    "MonthRecord", "Thresholds", "HealthFinding", "HealthReport",
    "CampaignMonitor", "build_month_registry",
    "WaveRecord", "DeliveryThresholds", "DeliveryMonitor",
    "ServeRecord", "ServeThresholds", "ServeMonitor",
]

OK, WARN, ALERT = "OK", "WARN", "ALERT"
_SEVERITY = {OK: 0, WARN: 1, ALERT: 2}

#: ScanStats integer counters mirrored into the monthly registry, by
#: (stats attribute, registry key).  Wall-clock fields are deliberately
#: absent — they would break serial/threaded byte-identity.
_STAT_COUNTERS = (
    ("domains_scanned", "scan.domains"),
    ("transient_domains", "scan.transient_domains"),
    ("dns_queries", "dns.queries"),
    ("dns_cache_hits", "dns.cache_hits"),
    ("dns_negative_cache_hits", "dns.negative_cache_hits"),
    ("policy_fetches", "policy.fetches"),
    ("smtp_probes", "smtp.probes"),
    ("smtp_probe_cache_hits", "smtp.cache_hits"),
    ("pkix_validations", "pkix.validations"),
    ("pkix_cache_hits", "pkix.cache_hits"),
    ("connect_retries", "net.connect_retries"),
    ("faults_injected", "net.faults_injected"),
)


def build_month_registry(stats: "ScanStats",
                         snapshots: Iterable["DomainSnapshot"] = (),
                         *, build_stats: Optional[Dict[str, int]] = None,
                         bucket_census: Optional[Dict[str, int]] = None,
                         ) -> MetricsRegistry:
    """The deterministic metrics snapshot for one scan month.

    Combines the executor's integer :class:`ScanStats` counters, the
    total-and-exclusive taxonomy-bucket census of the month's
    snapshots, and (when given) the materialiser's world-build churn.
    Virtual backoff is recorded in whole milliseconds: the underlying
    float sum is order-sensitive in its last bits across thread
    interleavings, integer milliseconds are not.

    *bucket_census* short-circuits the snapshot iteration with a
    precomputed ``primary_bucket`` census (the columnar analysis path
    supplies :func:`~repro.measurement.columnar.taxonomy_census_view`'s
    result); the emitted registry is identical either way.
    """
    registry = MetricsRegistry()
    for attribute, key in _STAT_COUNTERS:
        registry.count(key, getattr(stats, attribute))
    registry.count("net.backoff_millis",
                   round(stats.retry_backoff_seconds * 1_000))
    if bucket_census is None:
        census = {bucket: 0 for bucket in PRIMARY_BUCKETS}
        for snapshot in snapshots:
            census[primary_bucket(snapshot)] += 1
    else:
        census = {bucket: int(bucket_census.get(bucket, 0))
                  for bucket in PRIMARY_BUCKETS}
    for bucket, count in census.items():
        registry.count(f"taxonomy.{bucket}", count)
    for key, value in sorted((build_stats or {}).items()):
        registry.count(f"build.{key}", int(value))
    return registry


@dataclass
class MonthRecord:
    """One scan month's registry snapshot inside the monitor."""

    month_index: int
    date: str
    metrics: MetricsRegistry

    # -- derived signals ----------------------------------------------

    def domains(self) -> int:
        return self.metrics.get("scan.domains")

    def transient_rate(self) -> float:
        domains = self.domains()
        return (self.metrics.get("scan.transient_domains") / domains
                if domains else 0.0)

    def cache_hit_rate(self, stage: str) -> float:
        """Cache hit share for ``dns`` / ``smtp`` / ``pkix``."""
        work_key = {"dns": "dns.queries", "smtp": "smtp.probes",
                    "pkix": "pkix.validations"}[stage]
        hits = self.metrics.get(f"{stage}.cache_hits")
        total = self.metrics.get(work_key) + hits
        return hits / total if total else 0.0

    def bucket_fractions(self) -> Dict[str, float]:
        domains = self.domains()
        if not domains:
            return {bucket: 0.0 for bucket in PRIMARY_BUCKETS}
        return {bucket: self.metrics.get(f"taxonomy.{bucket}") / domains
                for bucket in PRIMARY_BUCKETS}

    def retries_per_domain(self) -> float:
        domains = self.domains()
        return (self.metrics.get("net.connect_retries") / domains
                if domains else 0.0)


@dataclass
class Thresholds:
    """Configurable drift bounds; defaults calibrated so the clean
    12-month campaign is all-OK while a seeded fault-rate bump alerts.

    Rates are fractions in [0, 1]; ``*_drop``/``*_shift``/``*_jump``
    bound month-over-month changes of those fractions.
    """

    #: absolute transient share of a month's scans (ALERT)
    transient_rate_alert: float = 0.02
    #: month-over-month increase of the transient share (ALERT)
    transient_jump_alert: float = 0.01
    #: month-over-month drop of a cache hit rate (WARN)
    cache_hit_drop_warn: float = 0.25
    #: month-over-month shift of any taxonomy-bucket fraction (WARN)
    bucket_shift_warn: float = 0.15
    #: month-over-month increase of connect retries per domain (WARN)
    retry_jump_warn: float = 0.5

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class HealthFinding:
    """One evaluated check: what was measured, against which bound."""

    level: str
    month_index: int
    metric: str
    value: float
    threshold: float
    detail: str

    def render(self) -> str:
        return (f"[{self.level:<5}] m{self.month_index:02d} "
                f"{self.metric:<24} {self.detail}")


@dataclass
class HealthReport:
    """Every OK/WARN/ALERT finding of one campaign evaluation."""

    findings: List[HealthFinding] = field(default_factory=list)

    @property
    def level(self) -> str:
        worst = OK
        for finding in self.findings:
            if _SEVERITY[finding.level] > _SEVERITY[worst]:
                worst = finding.level
        return worst

    def ok(self) -> bool:
        return self.level == OK

    def at_level(self, level: str) -> List[HealthFinding]:
        return [f for f in self.findings if f.level == level]

    def render(self) -> str:
        lines = [f"campaign health: {self.level} "
                 f"({len(self.at_level(ALERT))} alert(s), "
                 f"{len(self.at_level(WARN))} warning(s), "
                 f"{len(self.at_level(OK))} month(s) clean)"]
        lines.extend(finding.render() for finding in self.findings)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {"level": self.level,
                "findings": [{"level": f.level, "month": f.month_index,
                              "metric": f.metric, "value": f.value,
                              "threshold": f.threshold,
                              "detail": f.detail}
                             for f in self.findings]}


class CampaignMonitor:
    """Collects per-month registry snapshots and evaluates drift.

    ``jsonl_path`` turns on the live feed: every observed month is
    appended to that file as it completes, so a crashed campaign still
    leaves the months it finished.  :meth:`write_jsonl` additionally
    writes the whole feed atomically (temp file + ``os.replace``).
    """

    def __init__(self, thresholds: Optional[Thresholds] = None,
                 *, jsonl_path: Optional[str] = None):
        self.thresholds = thresholds or Thresholds()
        self.records: List[MonthRecord] = []
        self.jsonl_path = jsonl_path

    # -- capture ------------------------------------------------------

    def observe_month(self, month_index: int, date: str,
                      stats: "ScanStats",
                      snapshots: Iterable["DomainSnapshot"] = (),
                      *, build_stats: Optional[Dict[str, int]] = None,
                      ) -> MonthRecord:
        """Snapshot one finished scan month into the monitor."""
        registry = build_month_registry(stats, snapshots,
                                        build_stats=build_stats)
        return self.add_record(MonthRecord(month_index, date, registry))

    def add_record(self, record: MonthRecord) -> MonthRecord:
        self.records.append(record)
        self.records.sort(key=lambda r: r.month_index)
        if self.jsonl_path is not None:
            append_jsonl_line(
                self.jsonl_path,
                month_jsonl_line(record.month_index, record.date,
                                 record.metrics))
        return record

    # -- (de)serialisation --------------------------------------------

    def to_jsonl_lines(self) -> List[str]:
        return [month_jsonl_line(r.month_index, r.date, r.metrics)
                for r in self.records]

    def to_jsonl(self) -> str:
        return "\n".join(self.to_jsonl_lines()) + "\n"

    def write_jsonl(self, path: str) -> int:
        """Atomically write the full monthly feed; returns the record
        count."""
        return write_lines_atomic(path, self.to_jsonl_lines())

    @classmethod
    def from_jsonl(cls, text: str,
                   thresholds: Optional[Thresholds] = None,
                   ) -> "CampaignMonitor":
        monitor = cls(thresholds)
        for month_index, date, registry in read_month_records(text):
            monitor.records.append(
                MonthRecord(month_index, date, registry))
        return monitor

    @classmethod
    def from_state(cls, state_dir: str,
                   thresholds: Optional[Thresholds] = None,
                   *, columnar: bool = False,
                   ) -> "CampaignMonitor":
        """Re-evaluate campaign health from a checkpointed state dir.

        Each committed month's registry is rebuilt from the manifest's
        persisted :class:`ScanStats` counters, the snapshot shards'
        taxonomy census, and the recorded world-build churn — exactly
        the inputs :meth:`observe_month` saw live, so the monthly feed
        (and therefore drift and health) is byte-identical to the
        feed the original campaign would have written.

        ``columnar=True`` rebuilds the taxonomy census from the
        columnar analysis path (no snapshot objects); the feed stays
        byte-identical.
        """
        from repro.measurement.executor import ScanStats

        monitor = cls(thresholds)
        if columnar:
            from repro.measurement.columnar import (
                ColumnarStore, taxonomy_census_view,
            )
            store = ColumnarStore.from_state_dir(state_dir)
            for month in store.months():
                entry = store.entries[month]
                registry = build_month_registry(
                    ScanStats.from_dict(entry.stats),
                    build_stats=entry.build_stats,
                    bucket_census=taxonomy_census_view(
                        store.month_view(month)))
                monitor.add_record(
                    MonthRecord(month, entry.date, registry))
            return monitor
        from repro.measurement.store_io import load_state

        state = load_state(state_dir)
        for entry in state.months:
            monitor.observe_month(
                entry.month, entry.date, ScanStats.from_dict(entry.stats),
                state.store.month(entry.month),
                build_stats=entry.build_stats)
        return monitor

    # -- evaluation ---------------------------------------------------

    def drift(self) -> List[Dict[str, float]]:
        """Month-over-month signal table (one row per month)."""
        rows: List[Dict[str, float]] = []
        previous: Optional[MonthRecord] = None
        for record in self.records:
            row: Dict[str, float] = {
                "month": record.month_index,
                "domains": record.domains(),
                "transient_rate": record.transient_rate(),
                "dns_hit_rate": record.cache_hit_rate("dns"),
                "smtp_hit_rate": record.cache_hit_rate("smtp"),
                "retries_per_domain": record.retries_per_domain(),
                "backoff_millis": record.metrics.get("net.backoff_millis"),
            }
            if previous is not None:
                row["transient_jump"] = (record.transient_rate()
                                         - previous.transient_rate())
                fractions = record.bucket_fractions()
                before = previous.bucket_fractions()
                shifts = {bucket: abs(fractions[bucket] - before[bucket])
                          for bucket in fractions}
                worst = max(shifts, key=lambda b: (shifts[b], b))
                row["max_bucket_shift"] = shifts[worst]
            rows.append(row)
            previous = record
        return rows

    def health(self) -> HealthReport:
        """Evaluate the thresholds over every observed month."""
        report = HealthReport()
        bounds = self.thresholds
        previous: Optional[MonthRecord] = None
        for record in self.records:
            month_findings: List[HealthFinding] = []

            rate = record.transient_rate()
            if rate > bounds.transient_rate_alert:
                month_findings.append(HealthFinding(
                    ALERT, record.month_index, "transient-rate",
                    rate, bounds.transient_rate_alert,
                    f"transient share {rate:.2%} exceeds "
                    f"{bounds.transient_rate_alert:.2%} — scanner or "
                    f"network pathology, month is untrustworthy"))
            if previous is not None:
                jump = rate - previous.transient_rate()
                if jump > bounds.transient_jump_alert:
                    month_findings.append(HealthFinding(
                        ALERT, record.month_index, "transient-rate-jump",
                        jump, bounds.transient_jump_alert,
                        f"transient share jumped {jump:+.2%} vs "
                        f"m{previous.month_index:02d}"))
                for stage in ("dns", "smtp"):
                    drop = (previous.cache_hit_rate(stage)
                            - record.cache_hit_rate(stage))
                    if drop > bounds.cache_hit_drop_warn:
                        month_findings.append(HealthFinding(
                            WARN, record.month_index,
                            f"{stage}-cache-collapse",
                            drop, bounds.cache_hit_drop_warn,
                            f"{stage} cache hit rate dropped "
                            f"{drop:.2%} vs m{previous.month_index:02d}"))
                fractions = record.bucket_fractions()
                before = previous.bucket_fractions()
                for bucket in sorted(fractions):
                    shift = abs(fractions[bucket] - before[bucket])
                    if shift > bounds.bucket_shift_warn:
                        month_findings.append(HealthFinding(
                            WARN, record.month_index,
                            f"taxonomy-shift:{bucket}",
                            shift, bounds.bucket_shift_warn,
                            f"bucket '{bucket}' moved "
                            f"{fractions[bucket] - before[bucket]:+.2%} "
                            f"vs m{previous.month_index:02d}"))
                retry_jump = (record.retries_per_domain()
                              - previous.retries_per_domain())
                if retry_jump > bounds.retry_jump_warn:
                    month_findings.append(HealthFinding(
                        WARN, record.month_index, "retry-spike",
                        retry_jump, bounds.retry_jump_warn,
                        f"connect retries per domain jumped "
                        f"{retry_jump:+.2f} vs m{previous.month_index:02d}"))

            if not month_findings:
                month_findings.append(HealthFinding(
                    OK, record.month_index, "all-checks", 0.0, 0.0,
                    f"{record.domains()} domains, all checks passed"))
            report.findings.extend(month_findings)
            previous = record
        return report


# ---------------------------------------------------------------------------
# Delivery-campaign health
# ---------------------------------------------------------------------------

@dataclass
class WaveRecord:
    """One delivery wave's registry snapshot inside the monitor.

    The registry carries only per-sender-derived integer counters (see
    ``repro.measurement.delivery_campaign``), so the wave feed — like
    the monthly scan feed — is byte-identical between the serial and
    threaded delivery backends.
    """

    wave_index: int
    date: str
    metrics: MetricsRegistry

    def finalized(self) -> int:
        return self.metrics.get("deliver.finalized")

    def delivered(self) -> int:
        return self.metrics.get("deliver.delivered")

    def bounced(self) -> int:
        return self.metrics.get("deliver.bounced")

    def queue_depth(self) -> int:
        return self.metrics.get("deliver.queue_depth")


@dataclass
class DeliveryThresholds:
    """Health bounds for a delivery campaign, evaluated over
    *cumulative* totals at each wave (a per-wave bounce rate would
    false-alarm on the sparse tail waves where only stragglers bounce;
    the cumulative rate converges to the campaign's true rate).

    Defaults are calibrated so a clean campaign against the simulated
    world is all-OK while a heavily fault-seeded one surfaces findings.
    """

    #: cumulative bounced share of finalised messages (ALERT)
    bounce_rate_alert: float = 0.35
    #: cumulative plaintext share of delivered messages (WARN) — the
    #: downgrade exposure the paper warns about
    plaintext_rate_warn: float = 0.25
    #: cumulative policy-refused share of delivery attempts (WARN)
    refused_rate_warn: float = 0.30

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class DeliveryMonitor:
    """Collects per-wave registry snapshots and evaluates health.

    The API mirrors :class:`CampaignMonitor` (live JSONL feed, atomic
    full-feed writes, offline re-evaluation from a saved feed) with the
    scan month replaced by the delivery wave as the unit of record.
    *backpressure*, when given, arms the invariant check that no wave
    ever reports a queue depth above the campaign's global bound.
    """

    def __init__(self, thresholds: Optional[DeliveryThresholds] = None,
                 *, backpressure: Optional[int] = None,
                 jsonl_path: Optional[str] = None):
        self.thresholds = thresholds or DeliveryThresholds()
        self.backpressure = backpressure
        self.records: List[WaveRecord] = []
        self.jsonl_path = jsonl_path

    # -- capture ------------------------------------------------------

    def observe_wave(self, wave_index: int, date: str,
                     metrics: MetricsRegistry) -> WaveRecord:
        return self.add_record(WaveRecord(wave_index, date, metrics))

    def add_record(self, record: WaveRecord) -> WaveRecord:
        self.records.append(record)
        self.records.sort(key=lambda r: r.wave_index)
        if self.jsonl_path is not None:
            append_jsonl_line(
                self.jsonl_path,
                month_jsonl_line(record.wave_index, record.date,
                                 record.metrics))
        return record

    # -- (de)serialisation --------------------------------------------

    def to_jsonl_lines(self) -> List[str]:
        return [month_jsonl_line(r.wave_index, r.date, r.metrics)
                for r in self.records]

    def to_jsonl(self) -> str:
        return "\n".join(self.to_jsonl_lines()) + "\n"

    def write_jsonl(self, path: str) -> int:
        return write_lines_atomic(path, self.to_jsonl_lines())

    @classmethod
    def from_jsonl(cls, text: str,
                   thresholds: Optional[DeliveryThresholds] = None,
                   *, backpressure: Optional[int] = None,
                   ) -> "DeliveryMonitor":
        monitor = cls(thresholds, backpressure=backpressure)
        for wave_index, date, registry in read_month_records(text):
            monitor.records.append(WaveRecord(wave_index, date, registry))
        return monitor

    # -- evaluation ---------------------------------------------------

    def health(self) -> HealthReport:
        """Evaluate the thresholds over the cumulative totals at every
        wave; every input is an integer counter, so the report is
        byte-identical across delivery backends."""
        report = HealthReport()
        bounds = self.thresholds
        finalized = delivered = plaintext = bounced = 0
        attempts = refused = 0
        for record in self.records:
            finalized += record.finalized()
            delivered += record.delivered()
            plaintext += record.metrics.get("deliver.delivered_plaintext")
            bounced += record.bounced()
            attempts += record.metrics.get("deliver.attempts")
            refused += record.metrics.get("deliver.refused_attempts")
            findings: List[HealthFinding] = []

            if (self.backpressure is not None
                    and record.queue_depth() > self.backpressure):
                findings.append(HealthFinding(
                    ALERT, record.wave_index, "backpressure-violated",
                    record.queue_depth(), self.backpressure,
                    f"queue depth {record.queue_depth()} exceeds the "
                    f"campaign bound {self.backpressure} — admission "
                    f"control is broken"))
            bounce_rate = bounced / finalized if finalized else 0.0
            if bounce_rate > bounds.bounce_rate_alert:
                findings.append(HealthFinding(
                    ALERT, record.wave_index, "bounce-rate",
                    bounce_rate, bounds.bounce_rate_alert,
                    f"cumulative bounce share {bounce_rate:.2%} exceeds "
                    f"{bounds.bounce_rate_alert:.2%}"))
            plaintext_rate = plaintext / delivered if delivered else 0.0
            if plaintext_rate > bounds.plaintext_rate_warn:
                findings.append(HealthFinding(
                    WARN, record.wave_index, "plaintext-fallback",
                    plaintext_rate, bounds.plaintext_rate_warn,
                    f"cumulative plaintext share {plaintext_rate:.2%} of "
                    f"deliveries exceeds "
                    f"{bounds.plaintext_rate_warn:.2%} — downgrade "
                    f"exposure"))
            refused_rate = refused / attempts if attempts else 0.0
            if refused_rate > bounds.refused_rate_warn:
                findings.append(HealthFinding(
                    WARN, record.wave_index, "policy-refusals",
                    refused_rate, bounds.refused_rate_warn,
                    f"cumulative policy-refused share {refused_rate:.2%} "
                    f"of attempts exceeds "
                    f"{bounds.refused_rate_warn:.2%}"))

            if not findings:
                findings.append(HealthFinding(
                    OK, record.wave_index, "all-checks", 0.0, 0.0,
                    f"{record.finalized()} finalized, all checks passed"))
            report.findings.extend(findings)
        return report


# ---------------------------------------------------------------------------
# Policy-checker service health
# ---------------------------------------------------------------------------

@dataclass
class ServeRecord:
    """One ``repro serve`` metrics window inside the monitor.

    The registry carries the coordinator-derived integer counters and
    the virtual-latency histogram from
    ``repro.measurement.serve`` — every value is computed from batch
    composition on the single-threaded coordinator, so the window feed
    is byte-identical between the serial and threaded serve backends.
    """

    window_index: int
    date: str
    metrics: MetricsRegistry

    def requests(self) -> int:
        return self.metrics.get("serve.requests")

    def computations(self) -> int:
        return self.metrics.get("serve.computations")

    def served_from_cache(self) -> int:
        """Requests answered without a fresh scan: direct cache hits
        plus followers collapsed onto an in-flight computation."""
        return (self.metrics.get("serve.hits")
                + self.metrics.get("serve.collapsed"))

    def hit_rate(self) -> float:
        requests = self.requests()
        return self.served_from_cache() / requests if requests else 0.0

    def fanin_peak(self) -> int:
        return self.metrics.get("serve.stampede_fanin_peak")

    def p99_latency_seconds(self) -> float:
        histogram = self.metrics.histograms.get("serve.latency")
        return histogram.quantile(0.99) if histogram is not None else 0.0


@dataclass
class ServeThresholds:
    """Health bounds for the policy-checker service.

    The hit-rate floor is evaluated over *cumulative* totals (early
    windows are all cold misses — a per-window floor would false-alarm
    before the cache warms); latency and fan-in are per-window, since
    a p99 regression in one window is actionable on its own.  Defaults
    are calibrated so the default seeded query mix is all-OK.
    """

    #: cumulative served-from-cache share of all requests (WARN below)
    hit_rate_floor_warn: float = 0.60
    #: per-window p99 virtual latency in seconds (ALERT above)
    p99_latency_alert: float = 5.0
    #: per-window stampede fan-in a single computation absorbed
    #: (WARN above — the single-flight cache should make even a flash
    #: crowd one computation, so this bounds *workload* spikes, not
    #: wasted work)
    fanin_warn: int = 50_000

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class ServeMonitor:
    """Collects per-window registry snapshots and evaluates health.

    The API mirrors :class:`DeliveryMonitor` (live JSONL feed, atomic
    full-feed writes, offline re-evaluation from a saved feed) with the
    metrics window as the unit of record.
    """

    def __init__(self, thresholds: Optional[ServeThresholds] = None,
                 *, jsonl_path: Optional[str] = None):
        self.thresholds = thresholds or ServeThresholds()
        self.records: List[ServeRecord] = []
        self.jsonl_path = jsonl_path

    # -- capture ------------------------------------------------------

    def observe_window(self, window_index: int, date: str,
                       metrics: MetricsRegistry) -> ServeRecord:
        return self.add_record(ServeRecord(window_index, date, metrics))

    def add_record(self, record: ServeRecord) -> ServeRecord:
        self.records.append(record)
        self.records.sort(key=lambda r: r.window_index)
        if self.jsonl_path is not None:
            append_jsonl_line(
                self.jsonl_path,
                month_jsonl_line(record.window_index, record.date,
                                 record.metrics))
        return record

    # -- (de)serialisation --------------------------------------------

    def to_jsonl_lines(self) -> List[str]:
        return [month_jsonl_line(r.window_index, r.date, r.metrics)
                for r in self.records]

    def to_jsonl(self) -> str:
        return "\n".join(self.to_jsonl_lines()) + "\n"

    def write_jsonl(self, path: str) -> int:
        return write_lines_atomic(path, self.to_jsonl_lines())

    @classmethod
    def from_jsonl(cls, text: str,
                   thresholds: Optional[ServeThresholds] = None,
                   ) -> "ServeMonitor":
        monitor = cls(thresholds)
        for window_index, date, registry in read_month_records(text):
            monitor.records.append(
                ServeRecord(window_index, date, registry))
        return monitor

    # -- evaluation ---------------------------------------------------

    def health(self) -> HealthReport:
        """Evaluate the thresholds over every observed window; every
        input is an integer counter or an integer-bucket histogram, so
        the report is byte-identical across serve backends."""
        report = HealthReport()
        bounds = self.thresholds
        requests = cached = 0
        for record in self.records:
            requests += record.requests()
            cached += record.served_from_cache()
            findings: List[HealthFinding] = []

            hit_rate = cached / requests if requests else 0.0
            if hit_rate < bounds.hit_rate_floor_warn:
                findings.append(HealthFinding(
                    WARN, record.window_index, "hit-rate-floor",
                    hit_rate, bounds.hit_rate_floor_warn,
                    f"cumulative cache hit rate {hit_rate:.2%} below "
                    f"{bounds.hit_rate_floor_warn:.2%} — the verdict "
                    f"cache is not absorbing the query mix"))
            p99 = record.p99_latency_seconds()
            if p99 > bounds.p99_latency_alert:
                findings.append(HealthFinding(
                    ALERT, record.window_index, "p99-latency",
                    p99, bounds.p99_latency_alert,
                    f"window p99 virtual latency {p99:.3f}s exceeds "
                    f"{bounds.p99_latency_alert:.3f}s"))
            fanin = record.fanin_peak()
            if fanin > bounds.fanin_warn:
                findings.append(HealthFinding(
                    WARN, record.window_index, "stampede-fanin",
                    fanin, bounds.fanin_warn,
                    f"{fanin} concurrent requests collapsed onto one "
                    f"computation (bound {bounds.fanin_warn})"))

            if not findings:
                findings.append(HealthFinding(
                    OK, record.window_index, "all-checks", 0.0, 0.0,
                    f"{record.requests()} requests, all checks passed"))
            report.findings.extend(findings)
        return report
