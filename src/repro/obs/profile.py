"""Optional wall-clock stage profiling.

The trace layer records *virtual* time (deterministic, byte-identical
across backends); this module records *real* seconds — which stage of
the pipeline the wall clock actually goes to, and which domains are
slowest — to guide the next performance PR.  Like tracing, profiling
is off by default and costs one ``is None`` branch per scanned domain
when disabled (the acceptance criteria cap the disabled overhead at
5%); wall-clock numbers never feed the deterministic exporters.

One :class:`StageProfiler` is owned by each scanner (each shard, under
the threaded backend), so recording needs no locks;
:meth:`ProfileReport.merge` folds the shard profilers into the
campaign view the executor exposes as ``last_profile``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["StageProfiler", "ProfileReport", "STAGES"]

#: The scanner's pipeline stages, in execution order.
STAGES = ("dns", "policy", "mx")


class StageProfiler:
    """Per-scanner wall-clock accumulator: seconds and calls per stage,
    plus every domain's total scan seconds."""

    def __init__(self) -> None:
        self.stage_seconds: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}
        #: (seconds, month_index, domain) per scanned domain
        self.domain_seconds: List[Tuple[float, int, str]] = []

    def record_stage(self, stage: str, seconds: float) -> None:
        self.stage_seconds[stage] = (
            self.stage_seconds.get(stage, 0.0) + seconds)
        self.stage_calls[stage] = self.stage_calls.get(stage, 0) + 1

    def record_domain(self, domain: str, month_index: int,
                      seconds: float) -> None:
        self.domain_seconds.append((seconds, month_index, domain))


class ProfileReport:
    """The merged wall-clock profile of one scan (or campaign)."""

    def __init__(self, top_n: int = 10):
        self.top_n = top_n
        self.stage_seconds: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}
        self.slowest: List[Tuple[float, int, str]] = []
        self.domains_profiled = 0

    @classmethod
    def merge(cls, profilers: Sequence[StageProfiler],
              top_n: int = 10) -> "ProfileReport":
        report = cls(top_n)
        for profiler in profilers:
            for stage, seconds in profiler.stage_seconds.items():
                report.stage_seconds[stage] = (
                    report.stage_seconds.get(stage, 0.0) + seconds)
            for stage, calls in profiler.stage_calls.items():
                report.stage_calls[stage] = (
                    report.stage_calls.get(stage, 0) + calls)
            report.domains_profiled += len(profiler.domain_seconds)
            report.slowest.extend(profiler.domain_seconds)
        report.slowest.sort(reverse=True)
        del report.slowest[top_n:]
        return report

    def extend(self, other: "ProfileReport") -> None:
        """Fold another scan's profile in (campaign accumulation)."""
        for stage, seconds in other.stage_seconds.items():
            self.stage_seconds[stage] = (
                self.stage_seconds.get(stage, 0.0) + seconds)
        for stage, calls in other.stage_calls.items():
            self.stage_calls[stage] = (
                self.stage_calls.get(stage, 0) + calls)
        self.domains_profiled += other.domains_profiled
        self.slowest.extend(other.slowest)
        self.slowest.sort(reverse=True)
        del self.slowest[self.top_n:]

    @property
    def total_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def to_dict(self) -> Dict[str, object]:
        return {
            "domains_profiled": self.domains_profiled,
            "total_seconds": round(self.total_seconds, 4),
            "stages": {
                stage: {
                    "seconds": round(self.stage_seconds.get(stage, 0.0), 4),
                    "calls": self.stage_calls.get(stage, 0),
                }
                for stage in sorted(self.stage_seconds)
            },
            "slowest_domains": [
                {"domain": domain, "month": month,
                 "seconds": round(seconds, 6)}
                for seconds, month, domain in self.slowest
            ],
        }
