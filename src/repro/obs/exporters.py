"""Metrics export: Prometheus exposition and monthly metrics JSONL.

Both formats serialise a :class:`~repro.trace.MetricsRegistry` with a
fixed ordering (sorted metric names, sorted label keys, canonical JSON)
so that the serial and threaded scan backends — whose merged registries
are equal by construction — emit **byte-identical** artifacts.  The
determinism tests assert that identity with and without fault
injection.

The Prometheus exposition is self-describing enough to round-trip: the
``# HELP`` line of every metric carries the original registry key (dots
and dashes survive there even though the metric name flattens them),
and :func:`parse_prometheus_exposition` rebuilds an equal registry from
the text.  The monthly JSONL is one canonical JSON record per scan
month; :func:`read_month_records` is its inverse.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.fsutil import atomic_write_text
from repro.trace import Histogram, MetricsRegistry

__all__ = [
    "prometheus_exposition", "parse_prometheus_exposition",
    "month_jsonl_line", "read_month_records", "write_lines_atomic",
    "append_jsonl_line",
]


def _metric_name(key: str) -> str:
    """Flatten a registry key into a legal Prometheus metric name."""
    return key.replace(".", "_").replace("-", "_")


def _label_text(labels: Optional[Dict[str, str]],
                extra: Optional[Tuple[str, str]] = None) -> str:
    pairs: List[Tuple[str, str]] = sorted((labels or {}).items())
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in pairs)
    return "{" + body + "}"


def _bound_text(bound: float) -> str:
    return f"{bound:g}"


def prometheus_exposition(registry: MetricsRegistry, *,
                          namespace: str = "repro",
                          labels: Optional[Dict[str, str]] = None) -> str:
    """Render *registry* in the Prometheus text exposition format.

    Counters become ``<ns>_<name>_total``; histograms become the usual
    ``_bucket``/``_sum``/``_count`` triple with cumulative bucket
    counts, the sum in seconds (the registry keeps integer
    microseconds, so six decimals lose nothing).  Ordering is fully
    deterministic: metrics sorted by registry key, labels by label key.
    """
    lines: List[str] = []
    for key in sorted(registry.counters):
        metric = f"{namespace}_{_metric_name(key)}_total"
        lines.append(f"# HELP {metric} {key}")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{_label_text(labels)} "
                     f"{registry.counters[key]}")
    for key in sorted(registry.histograms):
        histogram = registry.histograms[key]
        metric = f"{namespace}_{_metric_name(key)}_seconds"
        lines.append(f"# HELP {metric} {key}")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(histogram.bounds, histogram.counts):
            cumulative += count
            lines.append(
                f"{metric}_bucket"
                f"{_label_text(labels, ('le', _bound_text(bound)))} "
                f"{cumulative}")
        cumulative += histogram.counts[-1]
        lines.append(f"{metric}_bucket"
                     f"{_label_text(labels, ('le', '+Inf'))} {cumulative}")
        lines.append(f"{metric}_sum{_label_text(labels)} "
                     f"{histogram.total_micros / 1_000_000:.6f}")
        lines.append(f"{metric}_count{_label_text(labels)} {cumulative}")
    return "\n".join(lines) + "\n"


def _split_sample(line: str) -> Tuple[str, Dict[str, str], str]:
    """Split a sample line into (metric name, labels, value text)."""
    brace, space = line.find("{"), line.find(" ")
    if brace != -1 and (space == -1 or brace < space):
        name = line[:brace]
        body, _, value = line[brace + 1:].partition("}")
        labels: Dict[str, str] = {}
        for pair in body.split(","):
            if pair:
                key, _, quoted = pair.partition("=")
                labels[key] = quoted.strip('"')
        return name, labels, value.strip()
    name, _, value = line.partition(" ")
    return name, {}, value.strip()


def parse_prometheus_exposition(text: str) -> MetricsRegistry:
    """Rebuild the registry a :func:`prometheus_exposition` came from.

    Only understands our own exposition — it relies on the ``# HELP``
    line carrying the original registry key; used by the round-trip
    tests and the ``monitor`` tooling.
    """
    keys: Dict[str, str] = {}           # metric name -> registry key
    types: Dict[str, str] = {}          # metric name -> counter|histogram
    counters: Dict[str, int] = {}
    buckets: Dict[str, List[Tuple[float, int]]] = {}
    sums: Dict[str, int] = {}
    totals: Dict[str, int] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            metric, _, key = line[len("# HELP "):].partition(" ")
            keys[metric] = key
            continue
        if line.startswith("# TYPE "):
            metric, _, kind = line[len("# TYPE "):].partition(" ")
            types[metric] = kind
            continue
        name, labels, value = _split_sample(line)
        if types.get(name) == "counter":
            counters[keys[name]] = int(value)
        elif name.endswith("_bucket") and labels.get("le") != "+Inf":
            buckets.setdefault(name[:-len("_bucket")], []).append(
                (float(labels["le"]), int(value)))
        elif name.endswith("_sum"):
            sums[name[:-len("_sum")]] = round(float(value) * 1_000_000)
        elif name.endswith("_count"):
            totals[name[:-len("_count")]] = int(value)

    registry = MetricsRegistry()
    registry.counters = counters
    for metric, pairs in buckets.items():
        if types.get(metric) != "histogram" or metric not in keys:
            continue
        pairs.sort()
        cumulative = [count for _, count in pairs]
        counts = [cumulative[0]] + [
            cumulative[i] - cumulative[i - 1]
            for i in range(1, len(cumulative))]
        counts.append(totals.get(metric, cumulative[-1]) - cumulative[-1])
        registry.histograms[keys[metric]] = Histogram(
            bounds=tuple(bound for bound, _ in pairs),
            counts=counts, total_micros=sums.get(metric, 0))
    return registry


# ---------------------------------------------------------------------------
# Monthly metrics JSONL
# ---------------------------------------------------------------------------

def month_jsonl_line(month_index: int, date: str,
                     registry: MetricsRegistry) -> str:
    """One canonical JSON record for one scan month's registry."""
    return json.dumps(
        {"type": "month", "month": month_index, "date": date,
         **registry.to_dict()},
        sort_keys=True, separators=(",", ":"))


def read_month_records(text: str) -> List[Tuple[int, str, MetricsRegistry]]:
    """Parse monthly metrics JSONL back into ``(month, date, registry)``
    tuples, skipping non-``month`` records."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        data = json.loads(line)
        if data.get("type") != "month":
            continue
        records.append((int(data["month"]), str(data.get("date", "")),
                        MetricsRegistry.from_dict(data)))
    records.sort(key=lambda record: record[0])
    return records


def write_lines_atomic(path: str, lines: Iterable[str]) -> int:
    """Atomically write *lines* as a newline-terminated file; returns
    the number of lines written."""
    materialised = list(lines)
    atomic_write_text(
        path, "\n".join(materialised) + "\n" if materialised else "")
    return len(materialised)


def append_jsonl_line(path: str, line: str) -> None:
    """Append one record to an append-only JSONL feed.

    The line is written with a single ``write`` call so concurrent
    readers of the feed never observe a torn record.
    """
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")
