"""Shared error taxonomy for the MTA-STS reproduction.

The paper classifies MTA-STS deployment faults into a hierarchy
(Section 4.2): individual errors in the DNS record, the policy server,
or the MX hosts, plus inconsistency errors between the policy and the
MX records.  Every layer of this library reports failures through the
enumerations defined here so that the measurement pipeline can fold
low-level faults (a TLS alert, an HTTP 404) into the paper's top-level
categories without string matching.
"""

from __future__ import annotations

import enum


class ReproError(Exception):
    """Base class for all exceptions raised by this library.

    ``transient`` marks failures injected by the deterministic fault
    layer (:class:`repro.netsim.network.FaultPlan`): a transient error
    would have succeeded had the fault schedule been exhausted, so the
    scan pipeline retries it and — when retries run out — classifies
    the observation as *transient* rather than as a hard
    misconfiguration.  Deterministic failures (closed ports, NXDOMAIN,
    expired certificates) keep the default ``False``.
    """

    transient = False


# ---------------------------------------------------------------------------
# Simulated-network layer
# ---------------------------------------------------------------------------

class NetworkError(ReproError):
    """A simulated transport-level failure (connect refused, timeout)."""


class ConnectionRefused(NetworkError):
    """No listener on the target IP/port, or the host rejects TCP."""


class ConnectionTimeout(NetworkError):
    """The target host is unreachable or drops SYNs (blackhole)."""


class ConnectionReset(NetworkError):
    """The connection was accepted but torn down mid-exchange (RST)."""

    def __init__(self, message: str = "", *, bytes_delivered: int = 0):
        self.bytes_delivered = bytes_delivered
        super().__init__(message or "connection reset")


class HostUnreachable(NetworkError):
    """The target IP is not allocated to any simulated host."""


# ---------------------------------------------------------------------------
# Persistence layer
# ---------------------------------------------------------------------------

class StoreCorruption(ReproError):
    """A persisted campaign store failed integrity verification.

    Raised by :mod:`repro.measurement.store_io` when a shard's content
    digest does not match the manifest, a shard is truncated or
    unparsable, a recorded shard is missing, or the manifest itself is
    damaged or written by an unsupported schema version.  The message
    always names the offending artifact — resume never proceeds from a
    silent partial load.
    """


# ---------------------------------------------------------------------------
# DNS layer
# ---------------------------------------------------------------------------

class DnsError(ReproError):
    """Base class for resolution failures."""

    rcode = "SERVFAIL"


class NxDomain(DnsError):
    """The queried name does not exist (authoritative denial)."""

    rcode = "NXDOMAIN"


class NoData(DnsError):
    """The name exists but has no records of the queried type."""

    rcode = "NODATA"


class ServFail(DnsError):
    """The authoritative server failed (lame delegation, fault injection)."""

    rcode = "SERVFAIL"


class DnsTimeout(DnsError):
    """No authoritative server answered within the resolver's budget."""

    rcode = "TIMEOUT"


class CnameLoop(DnsError):
    """CNAME chasing exceeded the loop-protection limit."""

    rcode = "SERVFAIL"


class DnssecBogus(DnsError):
    """DNSSEC validation failed: the chain of trust is broken."""

    rcode = "SERVFAIL"


# ---------------------------------------------------------------------------
# TLS / PKI layer
# ---------------------------------------------------------------------------

class TlsError(ReproError):
    """Base class for handshake failures; carries a :class:`TlsFailure`."""

    def __init__(self, failure: "TlsFailure", message: str = ""):
        self.failure = failure
        super().__init__(message or failure.value)


class TlsFailure(enum.Enum):
    """Why a simulated TLS handshake failed.

    These mirror the certificate-error classes the paper reports in
    Figures 5 and 6: Common Name / SAN mismatches, self-signed chains,
    expired certificates, and servers with no certificate installed for
    the requested name (SSL alerts such as ``unrecognized_name``).
    """

    NO_TLS_SUPPORT = "no-tls-support"
    NO_CERTIFICATE = "no-certificate"        # SSL alert: no cert for this SNI
    HOSTNAME_MISMATCH = "hostname-mismatch"  # CN/SAN does not cover the name
    SELF_SIGNED = "self-signed"
    UNTRUSTED_ROOT = "untrusted-root"
    EXPIRED = "expired"
    NOT_YET_VALID = "not-yet-valid"
    REVOKED = "revoked"
    HANDSHAKE_ALERT = "handshake-alert"      # generic fatal alert


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------

class HttpError(ReproError):
    """A non-2xx HTTP response where a policy body was required."""

    def __init__(self, status: int, message: str = ""):
        self.status = status
        super().__init__(message or f"HTTP {status}")


# ---------------------------------------------------------------------------
# SMTP layer
# ---------------------------------------------------------------------------

class SmtpError(ReproError):
    """Base class for SMTP conversation failures."""


class StarttlsNotOffered(SmtpError):
    """The server's EHLO response did not advertise STARTTLS."""


class SmtpRejected(SmtpError):
    """The server rejected the command (e.g. greylisting 4xx)."""

    def __init__(self, code: int, message: str = ""):
        self.code = code
        super().__init__(message or f"SMTP {code}")


class DeliveryRefused(SmtpError):
    """A policy-compliant sender refused to deliver (enforce-mode failure)."""


# ---------------------------------------------------------------------------
# MTA-STS core taxonomy (the paper's Section 4 categories)
# ---------------------------------------------------------------------------

class StsRecordError(enum.Enum):
    """Syntactic faults in the ``_mta-sts`` TXT record (Section 4.3.2)."""

    MISSING = "missing"                # no record at all
    MULTIPLE_RECORDS = "multiple-records"
    BAD_VERSION = "bad-version"        # does not begin with v=STSv1
    MISSING_ID = "missing-id"
    INVALID_ID = "invalid-id"          # non-alphanumeric id (e.g. hyphen)
    INVALID_EXTENSION = "invalid-extension"


class PolicyFetchStage(enum.Enum):
    """The stage at which policy retrieval failed (Figure 5 x-axis)."""

    DNS = "dns"
    TCP = "tcp"
    TLS = "tls"
    HTTP = "http"
    SYNTAX = "policy-syntax"


class PolicySyntaxError(enum.Enum):
    """Semantic faults in a fetched policy file (Section 4.3.3)."""

    EMPTY_FILE = "empty-file"
    BAD_VERSION = "bad-version"
    MISSING_VERSION = "missing-version"
    MISSING_MODE = "missing-mode"
    INVALID_MODE = "invalid-mode"
    MISSING_MAX_AGE = "missing-max-age"
    INVALID_MAX_AGE = "invalid-max-age"
    NO_MX_PATTERNS = "no-mx-patterns"
    INVALID_MX_PATTERN = "invalid-mx-pattern"  # email address, trailing dot, empty
    MALFORMED_LINE = "malformed-line"
    DUPLICATE_KEY = "duplicate-key"


class PolicyWarning(enum.Enum):
    """Non-fatal policy faults: the policy stays usable, but the census
    records the deviation (a silent clamp would hide it)."""

    MAX_AGE_OVER_BOUND = "max-age-over-bound"


class MisconfigCategory(enum.Enum):
    """The paper's four top-level misconfiguration categories (Figure 4)."""

    DNS_RECORD = "dns-record"
    POLICY_RETRIEVAL = "policy-retrieval"
    MX_CERTIFICATE = "mx-certificate"
    INCONSISTENCY = "inconsistency"
    #: Not one of the paper's four: the observation failed on a
    #: fault-injected transient error that survived the retry budget,
    #: so the domain's true posture is unknown for this snapshot.
    TRANSIENT = "transient"


class MismatchClass(enum.Enum):
    """Inconsistency sub-classes between mx patterns and MX records (Fig. 8)."""

    TLD = "tld-mismatch"
    DOMAIN = "complete-domain-mismatch"
    THREE_LD = "3ld-plus-mismatch"
    TYPO = "typo"


class ManagingEntity(enum.Enum):
    """Who operates a component, per the Section 4.3.1 heuristics."""

    SELF_MANAGED = "self-managed"
    THIRD_PARTY = "third-party"
    UNCLASSIFIED = "unclassified"


class PolicyError(ReproError):
    """Raised by strict policy parsing; carries a :class:`PolicySyntaxError`."""

    def __init__(self, kind: PolicySyntaxError, message: str = ""):
        self.kind = kind
        super().__init__(message or kind.value)


class RecordError(ReproError):
    """Raised by strict record parsing; carries a :class:`StsRecordError`."""

    def __init__(self, kind: StsRecordError, message: str = ""):
        self.kind = kind
        super().__init__(message or kind.value)
