"""Authoritative DNS servers.

An :class:`AuthoritativeServer` serves one or more zones and registers
itself on the simulated network (UDP/TCP port 53 collapses to one
endpoint here).  Fault injection covers the failure modes the resolver
— and therefore the scanner — must classify: SERVFAIL, timeouts, and
lame delegations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.dns.name import DnsName
from repro.dns.records import CnameRecord, ResourceRecord, RRType
from repro.dns.zone import Zone
from repro.errors import ServFail
from repro.netsim.ip import IpAddress
from repro.netsim.network import Network

DNS_PORT = 53


class ServerFault(enum.Enum):
    NONE = "none"
    SERVFAIL = "servfail"   # answers SERVFAIL to everything
    LAME = "lame"           # claims no knowledge of its zones


@dataclass
class QueryResult:
    """An authoritative response."""

    rcode: str                      # NOERROR | NXDOMAIN | SERVFAIL
    records: List[ResourceRecord]
    cname: CnameRecord | None = None


class AuthoritativeServer:
    """Serves zones over the simulated network."""

    def __init__(self, name: str, ip: IpAddress, network: Network):
        self.name = name
        self.ip = ip
        self._zones: Dict[DnsName, Zone] = {}
        self.fault = ServerFault.NONE
        self.query_count = 0
        network.register(ip, DNS_PORT, self, description=f"dns:{name}")

    def add_zone(self, zone: Zone) -> None:
        self._zones[zone.apex] = zone

    def remove_zone(self, apex: DnsName) -> None:
        self._zones.pop(apex, None)

    def zone_for(self, name: DnsName) -> Zone | None:
        """Longest-suffix zone match."""
        best: Zone | None = None
        for apex, zone in self._zones.items():
            if name.is_subdomain_of(apex):
                if best is None or apex.label_count() > best.apex.label_count():
                    best = zone
        return best

    def query(self, name: DnsName, rrtype: RRType) -> QueryResult:
        """Answer a query for *name*/*rrtype*.

        Raises :class:`ServFail` under fault injection; returns a
        :class:`QueryResult` otherwise.  CNAMEs found at the query name
        are returned for the resolver to chase (authoritative servers
        here do not follow cross-zone CNAMEs themselves).
        """
        self.query_count += 1
        if self.fault is ServerFault.SERVFAIL:
            raise ServFail(f"{self.name}: injected SERVFAIL")
        zone = self.zone_for(name)
        if zone is None or self.fault is ServerFault.LAME:
            raise ServFail(f"{self.name}: not authoritative for {name}")

        cname = zone.cname_at(name)
        if cname is not None and rrtype is not RRType.CNAME:
            return QueryResult("NOERROR", [], cname=cname)

        records = zone.lookup(name, rrtype)
        if records:
            return QueryResult("NOERROR", records)
        if zone.name_exists(name):
            return QueryResult("NOERROR", [])     # NODATA
        return QueryResult("NXDOMAIN", [])
