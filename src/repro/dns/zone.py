"""Zones and an RFC-1035-style master-file parser.

A :class:`Zone` owns every record at or under its apex.  The master
file parser accepts the common subset of zone-file syntax (``$ORIGIN``,
``$TTL``, relative and absolute names, ``@``, comments) so that the
scanner can also ingest real zone files — the paper's raw input — in
addition to the synthetic registry.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.dns.name import DnsName
from repro.dns.records import (
    AaaaRecord, ARecord, CnameRecord, MxRecord, NsRecord, PtrRecord,
    ResourceRecord, RRType, SoaRecord, TlsaRecord, TxtRecord,
)
from repro.netsim.ip import IpAddress


@dataclass
class Zone:
    """A DNS zone: an apex name and its records, indexed by (name, type)."""

    apex: DnsName
    default_ttl: int = 3600
    _records: Dict[Tuple[DnsName, RRType], List[ResourceRecord]] = field(
        default_factory=lambda: defaultdict(list))

    def add(self, record: ResourceRecord) -> None:
        if not record.name.is_subdomain_of(self.apex):
            raise ValueError(
                f"{record.name} is outside zone {self.apex}")
        existing = self._records[(record.name, record.rrtype)]
        if record.rrtype is RRType.CNAME and existing:
            raise ValueError(f"duplicate CNAME at {record.name}")
        other_types = [t for (n, t) in self._records
                       if n == record.name and self._records[(n, t)]]
        if record.rrtype is RRType.CNAME and any(
                t is not RRType.CNAME for t in other_types):
            raise ValueError(f"CNAME at {record.name} conflicts with data")
        if (record.rrtype is not RRType.CNAME
                and self._records.get((record.name, RRType.CNAME))):
            raise ValueError(f"data at {record.name} conflicts with CNAME")
        existing.append(record)

    def remove(self, name: DnsName, rrtype: RRType) -> int:
        """Delete the whole RRset; returns how many records were removed."""
        removed = self._records.pop((name, rrtype), [])
        return len(removed)

    def replace(self, record: ResourceRecord) -> None:
        """Replace the RRset of this name/type with the single *record*."""
        self._records.pop((record.name, record.rrtype), None)
        self.add(record)

    def lookup(self, name: DnsName, rrtype: RRType) -> List[ResourceRecord]:
        return list(self._records.get((name, rrtype), ()))

    def cname_at(self, name: DnsName) -> CnameRecord | None:
        records = self._records.get((name, RRType.CNAME))
        return records[0] if records else None  # type: ignore[return-value]

    def name_exists(self, name: DnsName) -> bool:
        """True if any record exists at *name* or underneath it (ENT)."""
        for (owner, _), records in self._records.items():
            if records and owner.is_subdomain_of(name):
                return True
        return False

    def names(self) -> List[DnsName]:
        return sorted({name for (name, _), recs in self._records.items()
                       if recs})

    def all_records(self) -> List[ResourceRecord]:
        out: List[ResourceRecord] = []
        for records in self._records.values():
            out.extend(records)
        return out

    def record_count(self) -> int:
        return sum(len(r) for r in self._records.values())


# ---------------------------------------------------------------------------
# Master-file parsing
# ---------------------------------------------------------------------------

def _strip_comment(line: str) -> str:
    """Remove a ``;`` comment, honouring quoted strings."""
    out = []
    in_quote = False
    for ch in line:
        if ch == '"':
            in_quote = not in_quote
        if ch == ";" and not in_quote:
            break
        out.append(ch)
    return "".join(out)


def _tokenize(line: str) -> List[str]:
    """Split on whitespace, keeping quoted strings as single tokens."""
    tokens: List[str] = []
    current: List[str] = []
    in_quote = False
    for ch in line:
        if ch == '"':
            in_quote = not in_quote
            continue
        if ch.isspace() and not in_quote:
            if current:
                tokens.append("".join(current))
                current = []
        else:
            current.append(ch)
    if in_quote:
        raise ValueError(f"unterminated quote in {line!r}")
    if current:
        tokens.append("".join(current))
    return tokens


def _resolve_name(token: str, origin: DnsName) -> DnsName:
    if token == "@":
        return origin
    if token.endswith("."):
        return DnsName.parse(token)
    return DnsName.parse(f"{token}.{origin.text}")


def parse_master_file(text: str, origin: str | DnsName | None = None) -> Zone:
    """Parse zone-file *text* into a :class:`Zone`.

    Either the text carries a ``$ORIGIN`` directive or *origin* must be
    supplied.  Class fields (``IN``) are accepted and ignored.
    """
    current_origin = (DnsName.parse(origin) if isinstance(origin, str)
                      else origin)
    default_ttl = 3600
    zone: Zone | None = None
    pending: List[ResourceRecord] = []
    last_name: DnsName | None = None

    for raw_line in text.splitlines():
        line = _strip_comment(raw_line)
        if not line.strip():
            continue
        starts_with_space = line[0].isspace()
        tokens = _tokenize(line)
        if not tokens:
            continue

        if tokens[0] == "$ORIGIN":
            current_origin = DnsName.parse(tokens[1])
            continue
        if tokens[0] == "$TTL":
            default_ttl = int(tokens[1])
            continue
        if current_origin is None:
            raise ValueError("no $ORIGIN and no origin argument")

        if starts_with_space:
            if last_name is None:
                raise ValueError(f"continuation line before any owner: {raw_line!r}")
            name = last_name
        else:
            name = _resolve_name(tokens[0], current_origin)
            tokens = tokens[1:]
        last_name = name

        ttl = default_ttl
        while tokens and (tokens[0].isdigit() or tokens[0].upper() == "IN"):
            if tokens[0].isdigit():
                ttl = int(tokens[0])
            tokens = tokens[1:]
        if not tokens:
            raise ValueError(f"no record type in {raw_line!r}")
        rrtype_text, *rdata = tokens
        record = _build_record(name, ttl, rrtype_text.upper(), rdata,
                               current_origin)
        pending.append(record)
        if zone is None:
            zone = Zone(apex=current_origin, default_ttl=default_ttl)

    if zone is None:
        raise ValueError("zone file contains no records")
    for record in pending:
        zone.add(record)
    return zone


def _build_record(name: DnsName, ttl: int, rrtype: str,
                  rdata: List[str], origin: DnsName) -> ResourceRecord:
    if rrtype == "A":
        return ARecord(name, ttl, IpAddress.parse(rdata[0]))
    if rrtype == "AAAA":
        return AaaaRecord(name, ttl, IpAddress(rdata[0], 6))
    if rrtype == "MX":
        return MxRecord(name, ttl, int(rdata[0]),
                        _resolve_name(rdata[1], origin))
    if rrtype == "NS":
        return NsRecord(name, ttl, _resolve_name(rdata[0], origin))
    if rrtype == "CNAME":
        return CnameRecord(name, ttl, _resolve_name(rdata[0], origin))
    if rrtype == "TXT":
        return TxtRecord(name, ttl, " ".join(rdata))
    if rrtype == "TLSA":
        return TlsaRecord(name, ttl, int(rdata[0]), int(rdata[1]),
                          int(rdata[2]), rdata[3])
    if rrtype == "PTR":
        return PtrRecord(name, ttl, _resolve_name(rdata[0], origin))
    if rrtype == "SOA":
        return SoaRecord(name, ttl, _resolve_name(rdata[0], origin),
                         rdata[1].rstrip("."), int(rdata[2]) if len(rdata) > 2 else 1)
    raise ValueError(f"unsupported record type {rrtype!r}")


def serialize_zone(zone: Zone) -> str:
    """Render a zone back to master-file text (round-trips with the parser)."""
    lines = [f"$ORIGIN {zone.apex.text}.", f"$TTL {zone.default_ttl}"]
    for name in zone.names():
        for rrtype in RRType:
            for record in zone.lookup(name, rrtype):
                rdata = record.rdata_text()
                lines.append(
                    f"{record.name.text}. {record.ttl} IN "
                    f"{record.rrtype.value} {rdata}")
    return "\n".join(lines) + "\n"
