"""Simulated DNSSEC.

DANE — the paper's constant point of comparison — requires a DNSSEC
chain of trust from the root to the TLSA record.  The simulation does
not model real cryptography; instead each zone carries a signing state
and a parent link (the DS record's presence), and validation walks the
chain exactly as a validating resolver would classify it:

* **secure** — every zone from the root to the queried zone is signed
  and each child's DS is published in its parent;
* **insecure** — some parent has no DS for the child (an unsigned
  delegation), which is safe but disables DANE;
* **bogus** — a zone claims to be signed but its chain is broken
  (missing/mismatched DS, expired signatures), which a validating
  resolver must treat as SERVFAIL.

This is enough to reproduce the operational facts the paper leans on:
DANE's dependency on DNSSEC (about 4% global deployment) and the
survey respondents whose registrar or authoritative server "lacked
DNSSEC support".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.dns.name import DnsName
from repro.errors import DnssecBogus


class ChainStatus(enum.Enum):
    SECURE = "secure"
    INSECURE = "insecure"
    BOGUS = "bogus"


@dataclass
class ZoneSigningState:
    """DNSSEC posture of one zone."""

    apex: DnsName
    signed: bool = False
    ds_in_parent: bool = False       # parent publishes a matching DS
    ds_mismatch: bool = False        # parent publishes a stale/wrong DS
    signatures_expired: bool = False


class DnssecAuthority:
    """Tracks signing state for every zone in the simulation."""

    def __init__(self):
        self._zones: Dict[DnsName, ZoneSigningState] = {}
        root = DnsName(("",)) if False else None  # the root is implicit
        del root

    def set_state(self, state: ZoneSigningState) -> None:
        self._zones[state.apex] = state

    def sign_zone(self, apex: DnsName | str, *,
                  publish_ds: bool = True) -> ZoneSigningState:
        if isinstance(apex, str):
            apex = DnsName.parse(apex)
        state = ZoneSigningState(apex, signed=True, ds_in_parent=publish_ds)
        self._zones[apex] = state
        return state

    def state_for(self, apex: DnsName) -> Optional[ZoneSigningState]:
        return self._zones.get(apex)

    def chain_for(self, name: DnsName) -> list[ZoneSigningState]:
        """Zone states from the TLD down to the closest enclosing zone."""
        chain: list[ZoneSigningState] = []
        for depth in range(1, name.label_count() + 1):
            apex = DnsName(name.labels[-depth:])
            state = self._zones.get(apex)
            if state is not None:
                chain.append(state)
        return chain

    def validate(self, name: DnsName | str) -> ChainStatus:
        """Classify the chain of trust covering *name*.

        The walk starts at the TLD (the simulated root always signs and
        publishes TLD DS records) and descends.  The first unsigned
        delegation renders everything below *insecure*; any signed zone
        with a missing/mismatched DS while its parent is secure, or with
        expired signatures, is *bogus*.
        """
        if isinstance(name, str):
            name = DnsName.parse(name)
        chain = self.chain_for(name)
        if not chain:
            return ChainStatus.INSECURE
        status = ChainStatus.SECURE
        for state in chain:
            if status is ChainStatus.INSECURE:
                # Below an insecure delegation nothing can become secure
                # again (no trust anchor), but it cannot be bogus either.
                continue
            if not state.signed:
                status = ChainStatus.INSECURE
                continue
            if state.signatures_expired or state.ds_mismatch:
                return ChainStatus.BOGUS
            if not state.ds_in_parent:
                # Signed zone, but the parent never got the DS: the
                # delegation is insecure from the validator's viewpoint.
                status = ChainStatus.INSECURE
        # The deepest registered zone must reach past the public suffix:
        # a name under a signed TLD whose own zone never registered a
        # signing state is an unsigned (insecure) delegation.
        deepest = chain[-1]
        if (status is ChainStatus.SECURE
                and deepest.apex.label_count() == 1
                and name.label_count() > 1):
            return ChainStatus.INSECURE
        return status

    def require_secure(self, name: DnsName | str) -> None:
        """Raise :class:`DnssecBogus` unless the chain is fully secure."""
        status = self.validate(name)
        if status is ChainStatus.BOGUS:
            raise DnssecBogus(f"bogus DNSSEC chain for {name}")
        if status is ChainStatus.INSECURE:
            raise DnssecBogus(
                f"no secure DNSSEC chain for {name}; DANE unusable")
