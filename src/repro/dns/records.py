"""Resource record types.

Only the record types the paper's scanner touches are modelled:
A/AAAA (policy-host and MX addresses), MX, NS (management-entity
classification), TXT (``_mta-sts`` and ``_smtp._tls``), CNAME (policy
delegation), TLSA (the DANE baseline) and SOA (zone bookkeeping).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dns.name import DnsName
from repro.netsim.ip import IpAddress


class RRType(enum.Enum):
    A = "A"
    AAAA = "AAAA"
    MX = "MX"
    NS = "NS"
    TXT = "TXT"
    CNAME = "CNAME"
    TLSA = "TLSA"
    SOA = "SOA"
    PTR = "PTR"


@dataclass(frozen=True)
class ResourceRecord:
    """Base record: every record has an owner name and a TTL."""

    name: DnsName
    ttl: int = 3600

    @property
    def rrtype(self) -> RRType:
        raise NotImplementedError

    def rdata_text(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class ARecord(ResourceRecord):
    address: IpAddress = field(default=IpAddress("0.0.0.0"))

    @property
    def rrtype(self) -> RRType:
        return RRType.A

    def rdata_text(self) -> str:
        return self.address.text


@dataclass(frozen=True)
class AaaaRecord(ResourceRecord):
    address: IpAddress = field(default=IpAddress("::", 6))

    @property
    def rrtype(self) -> RRType:
        return RRType.AAAA

    def rdata_text(self) -> str:
        return self.address.text


@dataclass(frozen=True)
class MxRecord(ResourceRecord):
    preference: int = 10
    exchange: DnsName = field(default=DnsName(("invalid",)))

    @property
    def rrtype(self) -> RRType:
        return RRType.MX

    def rdata_text(self) -> str:
        return f"{self.preference} {self.exchange.text}."


@dataclass(frozen=True)
class NsRecord(ResourceRecord):
    nsdname: DnsName = field(default=DnsName(("invalid",)))

    @property
    def rrtype(self) -> RRType:
        return RRType.NS

    def rdata_text(self) -> str:
        return f"{self.nsdname.text}."


@dataclass(frozen=True)
class TxtRecord(ResourceRecord):
    text: str = ""

    @property
    def rrtype(self) -> RRType:
        return RRType.TXT

    def rdata_text(self) -> str:
        return f'"{self.text}"'


@dataclass(frozen=True)
class CnameRecord(ResourceRecord):
    target: DnsName = field(default=DnsName(("invalid",)))

    @property
    def rrtype(self) -> RRType:
        return RRType.CNAME

    def rdata_text(self) -> str:
        return f"{self.target.text}."


@dataclass(frozen=True)
class TlsaRecord(ResourceRecord):
    """A DANE TLSA record (RFC 6698).

    *association* is the certificate or key fingerprint the record
    pins; in the simulation fingerprints are the opaque strings
    produced by :mod:`repro.pki.keys`.
    """

    usage: int = 3       # DANE-EE by default, the common SMTP deployment
    selector: int = 1    # SPKI
    matching_type: int = 1  # SHA-256
    association: str = ""

    @property
    def rrtype(self) -> RRType:
        return RRType.TLSA

    def rdata_text(self) -> str:
        return (f"{self.usage} {self.selector} {self.matching_type} "
                f"{self.association}")


@dataclass(frozen=True)
class PtrRecord(ResourceRecord):
    """Reverse-mapping record under ``in-addr.arpa``; the basis of the
    forward-confirmed reverse DNS (FCrDNS) identity the paper's
    instrumented SMTP client presents (§4.1)."""

    ptrdname: DnsName = field(default=DnsName(("invalid",)))

    @property
    def rrtype(self) -> RRType:
        return RRType.PTR

    def rdata_text(self) -> str:
        return f"{self.ptrdname.text}."


@dataclass(frozen=True)
class SoaRecord(ResourceRecord):
    mname: DnsName = field(default=DnsName(("ns1", "invalid")))
    rname: str = "hostmaster.invalid"
    serial: int = 1

    @property
    def rrtype(self) -> RRType:
        return RRType.SOA

    def rdata_text(self) -> str:
        return (f"{self.mname.text}. {self.rname}. {self.serial} "
                f"7200 3600 1209600 3600")
