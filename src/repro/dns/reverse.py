"""Reverse DNS and forward-confirmed reverse DNS (FCrDNS).

The paper's instrumented SMTP client connects "from a host with
correctly configured forward-confirmed reverse DNS" and EHLOs "with a
name matching the reverse DNS" (§4.1) — many MTAs greylist or refuse
peers that fail this check.  This module provides:

* :func:`reverse_name` — the ``in-addr.arpa`` owner name of an IPv4
  address;
* :func:`publish_ptr` — install a PTR (and matching forward A record)
  for a host identity;
* :func:`fcrdns_check` — the full verification an MTA performs: the
  connecting IP's PTR must name the claimed hostname, and that
  hostname's A record must include the connecting IP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dns.name import DnsName, canonical_host
from repro.dns.records import ARecord, PtrRecord, RRType
from repro.dns.resolver import Resolver
from repro.dns.zone import Zone
from repro.netsim.ip import IpAddress

REVERSE_SUFFIX = "in-addr.arpa"


def reverse_name(ip: IpAddress) -> DnsName:
    """``10.1.2.3`` → ``3.2.1.10.in-addr.arpa``."""
    if ip.family != 4:
        raise ValueError("only IPv4 reverse names are modelled")
    octets = ip.text.split(".")
    return DnsName.parse(".".join(reversed(octets)) + "." + REVERSE_SUFFIX)


@dataclass
class FcrdnsResult:
    """Outcome of one FCrDNS verification."""

    passed: bool
    ptr_name: Optional[str] = None
    detail: str = ""


def publish_ptr(reverse_zone: Zone, ip: IpAddress,
                hostname: str | DnsName, *, ttl: int = 3600) -> None:
    """Install the PTR record for *ip* pointing at *hostname*."""
    name = (DnsName.parse(hostname) if isinstance(hostname, str)
            else hostname)
    owner = reverse_name(ip)
    if not owner.is_subdomain_of(reverse_zone.apex):
        raise ValueError(f"{owner} is outside zone {reverse_zone.apex}")
    reverse_zone.replace(PtrRecord(owner, ttl, name))


def fcrdns_check(resolver: Resolver, ip: IpAddress,
                 claimed_hostname: str | DnsName) -> FcrdnsResult:
    """Verify PTR(ip) == claimed name and A(claimed name) ∋ ip."""
    claimed = canonical_host(claimed_hostname.text
                             if isinstance(claimed_hostname, DnsName)
                             else claimed_hostname)
    answer = resolver.try_resolve(reverse_name(ip), RRType.PTR)
    if answer is None or not answer.records:
        return FcrdnsResult(False, detail=f"no PTR record for {ip}")
    ptr_names = {r.ptrdname.text for r in answer.records
                 if isinstance(r, PtrRecord)}
    if claimed not in ptr_names:
        return FcrdnsResult(
            False, ptr_name=sorted(ptr_names)[0] if ptr_names else None,
            detail=f"PTR names {sorted(ptr_names)} != claimed {claimed!r}")
    forward = resolver.try_resolve(claimed, RRType.A)
    if forward is None:
        return FcrdnsResult(False, ptr_name=claimed,
                            detail=f"{claimed} has no A record")
    addresses = {r.address.text for r in forward.records
                 if isinstance(r, ARecord)}
    if ip.text not in addresses:
        return FcrdnsResult(
            False, ptr_name=claimed,
            detail=f"{claimed} resolves to {sorted(addresses)}, not {ip}")
    return FcrdnsResult(True, ptr_name=claimed)
