"""In-memory DNS: names, records, zones, servers, and a resolver."""

from repro.dns.name import DnsName, effective_sld, registrable_part
from repro.dns.records import (
    RRType, ResourceRecord, ARecord, AaaaRecord, MxRecord, NsRecord,
    TxtRecord, CnameRecord, TlsaRecord, SoaRecord,
)
from repro.dns.zone import Zone, parse_master_file, serialize_zone
from repro.dns.server import AuthoritativeServer, ServerFault
from repro.dns.resolver import Resolver, Answer

__all__ = [
    "DnsName", "effective_sld", "registrable_part",
    "RRType", "ResourceRecord", "ARecord", "AaaaRecord", "MxRecord",
    "NsRecord", "TxtRecord", "CnameRecord", "TlsaRecord", "SoaRecord",
    "Zone", "parse_master_file", "serialize_zone",
    "AuthoritativeServer", "ServerFault",
    "Resolver", "Answer",
]
