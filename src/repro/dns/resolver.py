"""A caching recursive resolver.

The resolver holds a delegation registry (zone apex → authoritative
server addresses) standing in for the root/TLD referral chain, chases
CNAMEs across zones with loop protection, and caches both positive and
negative answers by TTL against the simulated clock.  All scanner
lookups in :mod:`repro.measurement.scanner` go through this class, so
its error surface (NXDOMAIN, NODATA, SERVFAIL, timeout) is exactly the
set of DNS outcomes the paper's Figure 5 "DNS" bar aggregates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro import trace
from repro.clock import Clock, Duration, Instant
from repro.dns.name import DnsName
from repro.dns.records import CnameRecord, ResourceRecord, RRType
from repro.dns.server import DNS_PORT, AuthoritativeServer
from repro.errors import (
    CnameLoop, DnsError, DnsTimeout, NetworkError, NoData, NxDomain,
    ServFail,
)
from repro.netsim.ip import IpAddress
from repro.netsim.network import Network
from repro.netsim.retry import (
    DEFAULT_RETRY_POLICY, RetryPolicy, connect_with_retries,
)

MAX_CNAME_DEPTH = 8


@dataclass
class Answer:
    """A successful resolution."""

    name: DnsName                      # the name originally queried
    rrtype: RRType
    records: List[ResourceRecord]      # records at the end of any CNAME chain
    cname_chain: List[CnameRecord] = field(default_factory=list)
    from_cache: bool = False

    @property
    def canonical_name(self) -> DnsName:
        if self.cname_chain:
            return self.cname_chain[-1].target
        return self.name


@dataclass
class _CacheEntry:
    expires: Instant
    records: List[ResourceRecord] | None   # None encodes a negative entry
    negative: type | None = None           # NxDomain or NoData


class Resolver:
    """Recursive resolver with TTL-based positive and negative caching."""

    def __init__(self, network: Network, clock: Clock,
                 *, cache_enabled: bool = True,
                 negative_ttl: int = 300,
                 retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY):
        self._network = network
        self._clock = clock
        self._retry_policy = retry_policy
        self._delegations: Dict[DnsName, List[IpAddress]] = {}
        self._cache: Dict[Tuple[DnsName, RRType], _CacheEntry] = {}
        self._cache_enabled = cache_enabled
        self._negative_ttl = negative_ttl
        # Single-flight machinery: one lock guards the cache and the
        # in-flight table, so a cacheable (name, rrtype) is live-queried
        # by exactly one thread while concurrent lookups wait and then
        # serve the stored answer as a cache hit.  This makes the
        # query/hit counters — and the set of live queries the trace
        # records — identical between serial and threaded backends.
        self._flight_lock = threading.Lock()
        self._inflight: Dict[Tuple[DnsName, RRType], threading.Event] = {}
        self.query_count = 0
        self.cache_hits = 0
        self.negative_cache_hits = 0
        #: Optional shard-scan journal (process backend): every live
        #: query that ends up *cached* — i.e. work a sibling worker may
        #: duplicate — is recorded with its network cost so the parent
        #: can merge per-worker counters back to serial-exact totals.
        #: Single-threaded use only; the threaded backend relies on
        #: single-flight instead and never sets this.
        self.journal = None

    # -- delegation registry -------------------------------------------

    def delegate(self, apex: DnsName | str,
                 servers: List[IpAddress]) -> None:
        """Register the authoritative servers for a zone apex."""
        if isinstance(apex, str):
            apex = DnsName.parse(apex)
        self._delegations[apex] = list(servers)

    def undelegate(self, apex: DnsName | str) -> None:
        if isinstance(apex, str):
            apex = DnsName.parse(apex)
        self._delegations.pop(apex, None)

    def servers_for(self, name: DnsName) -> List[IpAddress]:
        # Longest-suffix match via direct dict probes: every suffix of
        # *name* is a candidate apex, and the longest one wins.  This is
        # O(labels) instead of O(registered zones) — the delegation
        # registry holds one entry per deployed domain, so a linear scan
        # here dominated the entire scan pipeline at ecosystem scale.
        labels = name.labels
        delegations = self._delegations
        for i in range(len(labels)):
            servers = delegations.get(DnsName(labels[i:]))
            if servers is not None:
                return servers
        return []

    # -- resolution -----------------------------------------------------

    def resolve(self, name: DnsName | str, rrtype: RRType) -> Answer:
        """Resolve *name*/*rrtype*, chasing CNAMEs.

        Raises the appropriate :class:`~repro.errors.DnsError` subclass
        on failure.  NODATA (empty answer for an existing name) raises
        :class:`NoData` so callers never confuse "no record" with an
        empty RRset.
        """
        if isinstance(name, str):
            name = DnsName.parse(name)
        chain: List[CnameRecord] = []
        current = name
        seen = {current}
        for _ in range(MAX_CNAME_DEPTH + 1):
            records, cname = self._query_one(current, rrtype)
            if cname is not None:
                chain.append(cname)
                current = cname.target
                if current in seen:
                    raise CnameLoop(f"CNAME loop at {current}")
                seen.add(current)
                continue
            if not records:
                raise NoData(f"{current}/{rrtype.value}: no data")
            return Answer(name, rrtype, records, chain)
        raise CnameLoop(f"CNAME chain too long resolving {name}")

    def try_resolve(self, name: DnsName | str,
                    rrtype: RRType) -> Answer | None:
        """Like :meth:`resolve` but returns ``None`` on any DNS failure."""
        try:
            return self.resolve(name, rrtype)
        except DnsError:
            return None

    def resolve_detailed(self, name: DnsName | str, rrtype: RRType
                         ) -> Tuple[Answer | None, DnsError | None]:
        """:meth:`resolve` returning ``(answer, error)`` instead of
        raising.  The error (when set) carries the ``transient`` flag
        the scanner uses to separate retry-exhausted fault injections
        from deterministic failures."""
        try:
            return self.resolve(name, rrtype), None
        except DnsError as exc:
            return None, exc

    def resolve_address(self, name: DnsName | str) -> List[IpAddress]:
        """Resolve A then AAAA, returning every address found.

        Raises the A-lookup's error if both address families fail.
        """
        addresses: List[IpAddress] = []
        first_error: DnsError | None = None
        for rrtype in (RRType.A, RRType.AAAA):
            try:
                answer = self.resolve(name, rrtype)
            except DnsError as exc:
                if first_error is None:
                    first_error = exc
                continue
            addresses.extend(r.address for r in answer.records)  # type: ignore[attr-defined]
        if not addresses:
            raise first_error or NoData(f"{name}: no address records")
        return addresses

    # -- internals --------------------------------------------------------

    def _query_one(self, name: DnsName, rrtype: RRType
                   ) -> Tuple[List[ResourceRecord], CnameRecord | None]:
        key = (name, rrtype)
        tracer = trace.current_tracer() if trace.TRACING else None
        if tracer is None:
            # Untraced fast path: lock-free cache reads.  The answer is
            # a pure function of the world either way; single-flight
            # only matters when the query/hit *counters* must be
            # deterministic (i.e. when a trace is being recorded).
            if self._cache_enabled:
                entry = self._cache.get(key)
                if entry is not None and entry.expires > self._clock.now():
                    self.cache_hits += 1
                    if entry.negative is not None:
                        self.negative_cache_hits += 1
                        raise entry.negative(
                            f"{name}/{rrtype.value} (cached)")
                    records = entry.records or []
                    if (records and isinstance(records[0], CnameRecord)
                            and rrtype is not RRType.CNAME):
                        return [], records[0]
                    return records, None
            self.query_count += 1
            return self._query_live(name, rrtype, key)
        if not self._cache_enabled:
            with self._flight_lock:
                self.query_count += 1
            tracer.metrics.count("dns.queries")
            return self._query_live(name, rrtype, key)

        while True:
            now = self._clock.now()
            with self._flight_lock:
                entry = self._cache.get(key)
                if entry is not None and entry.expires > now:
                    self.cache_hits += 1
                    tracer.metrics.count("dns.cache_hits")
                    if entry.negative is not None:
                        self.negative_cache_hits += 1
                        tracer.metrics.count("dns.negative_cache_hits")
                        raise entry.negative(
                            f"{name}/{rrtype.value} (cached)")
                    return self._entry_answer(entry, rrtype)
                flight = self._inflight.get(key)
                if flight is None:
                    flight = threading.Event()
                    self._inflight[key] = flight
                    break       # this thread owns the live query
            # Another thread is resolving this key: wait, then re-check
            # the cache.  A non-cacheable failure (timeout, SERVFAIL)
            # leaves the cache empty, in which case the waiter becomes
            # the next owner — the same per-lookup live query a serial
            # scan would perform.
            flight.wait()

        try:
            with self._flight_lock:
                self.query_count += 1
            tracer.metrics.count("dns.queries")
            return self._query_live(name, rrtype, key)
        finally:
            with self._flight_lock:
                self._inflight.pop(key, None)
            flight.set()

    @staticmethod
    def _entry_answer(entry: _CacheEntry, rrtype: RRType
                      ) -> Tuple[List[ResourceRecord], CnameRecord | None]:
        records = entry.records or []
        cname = None
        if (records and isinstance(records[0], CnameRecord)
                and rrtype is not RRType.CNAME):
            cname = records[0]
            records = []
        return records, cname

    def _query_live(self, name: DnsName, rrtype: RRType,
                    key: Tuple[DnsName, RRType]
                    ) -> Tuple[List[ResourceRecord], CnameRecord | None]:
        journal = self.journal
        if journal is None:
            return self._resolve_live(name, rrtype, key)
        token = journal.dns_started()
        try:
            return self._resolve_live(name, rrtype, key)
        finally:
            # Only *cached* outcomes are journaled: a cacheable answer
            # (positive, CNAME, NXDOMAIN, NODATA) is the work another
            # shard worker may redo where a serial scan would have hit
            # its cache.  Transient failures are never cached, execute
            # per-request under every backend, and need no correction.
            entry = self._cache.get(key)
            if entry is not None:
                journal.dns_finished(
                    f"{name.text}/{rrtype.value}",
                    entry.negative is not None, token)

    def _resolve_live(self, name: DnsName, rrtype: RRType,
                      key: Tuple[DnsName, RRType]
                      ) -> Tuple[List[ResourceRecord], CnameRecord | None]:
        servers = self.servers_for(name)
        if not servers:
            raise DnsTimeout(f"no delegation covers {name}")
        last_error: DnsError = DnsTimeout(f"all servers failed for {name}")
        for server_ip in servers:
            try:
                server = connect_with_retries(
                    self._network, server_ip, DNS_PORT,
                    policy=self._retry_policy,
                    key=f"dns:{server_ip.text}:{name.text}")
            except NetworkError as exc:
                # Transient (fault-injected) unreachability must not be
                # confused with — or negatively cached as — a dead
                # server, so the flag rides along on the DNS error.
                timeout = DnsTimeout(f"{server_ip} unreachable: {exc}")
                timeout.transient = getattr(exc, "transient", False)
                last_error = timeout
                continue
            if not isinstance(server, AuthoritativeServer):
                last_error = ServFail(f"{server_ip} is not a DNS server")
                continue
            try:
                result = server.query(name, rrtype)
            except ServFail as exc:
                last_error = exc
                continue
            if result.rcode == "NXDOMAIN":
                self._store_negative(key, NxDomain)
                raise NxDomain(f"{name} does not exist")
            if result.cname is not None:
                self._store_positive(key, [result.cname])
                return [], result.cname
            if not result.records:
                self._store_negative(key, NoData)
                return [], None
            self._store_positive(key, result.records)
            return list(result.records), None
        raise last_error

    def _store_positive(self, key, records: List[ResourceRecord]) -> None:
        if not self._cache_enabled:
            return
        ttl = min(r.ttl for r in records)
        entry = _CacheEntry(self._clock.now() + Duration(ttl), list(records))
        with self._flight_lock:
            self._cache[key] = entry

    def _store_negative(self, key, error_type: type) -> None:
        if not self._cache_enabled:
            return
        entry = _CacheEntry(
            self._clock.now() + Duration(self._negative_ttl), None,
            error_type)
        with self._flight_lock:
            self._cache[key] = entry

    def flush_cache(self) -> None:
        with self._flight_lock:
            self._cache.clear()

    # -- instrumentation --------------------------------------------------

    def cache_stats(self) -> Dict[str, int | float]:
        """Counters for the scan instrumentation layer (``ScanStats``).

        ``cache_hits`` includes negative (NXDOMAIN/NODATA) hits;
        ``negative_cache_hits`` breaks those out separately.
        """
        lookups = self.query_count + self.cache_hits
        return {
            "queries": self.query_count,
            "cache_hits": self.cache_hits,
            "negative_cache_hits": self.negative_cache_hits,
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
            "entries": len(self._cache),
        }

    def reset_stats(self) -> None:
        self.query_count = 0
        self.cache_hits = 0
        self.negative_cache_hits = 0
