"""DNS name handling.

Names are case-insensitive sequences of labels.  The measurement
pipeline leans heavily on two derived notions:

* the **effective second-level domain** (eSLD), used by the paper's
  Heuristic 1/2 to decide whether an MX or NS host "belongs to" the
  scanned domain or to a provider; and
* label arithmetic (parent, subdomain-of, label count) used by the
  mx-pattern mismatch classifier (Figure 8's TLD / domain / 3LD+
  classes).

A small embedded public-suffix list covers the TLDs and multi-label
suffixes the simulation uses; it is intentionally not the full PSL —
the library accepts an extended suffix set for users who need one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, Tuple

_LABEL_RE = re.compile(r"^[a-z0-9_*]([a-z0-9_-]*[a-z0-9_])?$")


def canonical_host(host: "str | DnsName") -> str:
    """Canonicalise a hostname for comparison and lookup.

    Strips surrounding whitespace and the trailing root dot, then
    case-folds (``casefold`` rather than ``lower`` so names containing
    characters with non-trivial case mappings — dotted capital I, sharp
    s — canonicalise the same way everywhere).  Returns ``""`` for
    anything that is not a plausible host: empty input, the bare root
    ``"."``, or a name with an empty label (``"a..b"``).

    Every host comparison in the pipeline funnels through here (or
    through :meth:`DnsName.parse`, which applies the same folding), so
    mx-pattern matching, policy fetching, and probe caching can never
    disagree about whether two spellings are the same host.
    """
    text = host.text if isinstance(host, DnsName) else host
    text = text.strip().rstrip(".").casefold()
    # An empty label survives the trailing-dot strip only as a leading
    # dot or a ".." run; substring checks beat splitting on the scan
    # hot path.
    if not text or text.startswith(".") or ".." in text:
        return ""
    return text

#: Multi-label public suffixes known to the simulation, beyond plain TLDs.
DEFAULT_MULTI_LABEL_SUFFIXES = frozenset({
    "co.uk", "org.uk", "ac.uk", "com.au", "net.au", "co.jp", "or.jp",
    "com.br", "co.nz", "co.za", "com.mx",
})


@dataclass(frozen=True, order=True)
class DnsName:
    """A fully-qualified DNS name, stored lowercase without a root dot."""

    labels: Tuple[str, ...]

    @classmethod
    def parse(cls, text: str) -> "DnsName":
        text = text.strip().rstrip(".").casefold()
        if not text:
            raise ValueError("empty DNS name")
        labels = tuple(text.split("."))
        for label in labels:
            if not label:
                raise ValueError(f"empty label in {text!r}")
            if len(label) > 63:
                raise ValueError(f"label too long in {text!r}")
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label {label!r} in {text!r}")
        if sum(len(l) + 1 for l in labels) > 254:
            raise ValueError(f"name too long: {text!r}")
        return cls(labels)

    @classmethod
    def try_parse(cls, text: str) -> "DnsName | None":
        try:
            return cls.parse(text)
        except ValueError:
            return None

    @property
    def text(self) -> str:
        return ".".join(self.labels)

    def __str__(self) -> str:
        return self.text

    # -- label arithmetic ----------------------------------------------

    def label_count(self) -> int:
        return len(self.labels)

    def parent(self) -> "DnsName":
        if len(self.labels) <= 1:
            raise ValueError(f"{self.text!r} has no parent")
        return DnsName(self.labels[1:])

    def child(self, label: str) -> "DnsName":
        return DnsName.parse(f"{label}.{self.text}")

    def tld(self) -> str:
        return self.labels[-1]

    def is_subdomain_of(self, other: "DnsName") -> bool:
        """True if *self* equals *other* or sits underneath it."""
        n = len(other.labels)
        return len(self.labels) >= n and self.labels[-n:] == other.labels

    def strictly_under(self, other: "DnsName") -> bool:
        return self != other and self.is_subdomain_of(other)


def _suffix_length(name: DnsName,
                   multi_label_suffixes: Iterable[str]) -> int:
    """Number of labels in the public suffix of *name*."""
    if len(name.labels) >= 2:
        last_two = ".".join(name.labels[-2:])
        if last_two in multi_label_suffixes:
            return 2
    return 1


def effective_sld(name: DnsName | str,
                  multi_label_suffixes: Iterable[str] = DEFAULT_MULTI_LABEL_SUFFIXES,
                  ) -> "DnsName | None":
    """The registrable domain (public suffix plus one label).

    Returns ``None`` when *name* is itself a public suffix (no
    registrable part), mirroring how the paper tallies "effective SLDs
    for each MX and NS entry".
    """
    if isinstance(name, str):
        name = DnsName.parse(name)
    suffix_len = _suffix_length(name, multi_label_suffixes)
    if len(name.labels) <= suffix_len:
        return None
    return DnsName(name.labels[-(suffix_len + 1):])


def registrable_part(name: DnsName | str) -> str:
    """The eSLD as text, or the input itself if it is a bare suffix."""
    if isinstance(name, str):
        name = DnsName.parse(name)
    sld = effective_sld(name)
    return (sld or name).text


def second_label(name: DnsName | str) -> str:
    """The label left of the public suffix (``tutanota`` in
    ``mta-sts.tutanota.com``) — the token the paper compares to infer
    whether two outsourced services share a provider (Section 4.5.1)."""
    if isinstance(name, str):
        name = DnsName.parse(name)
    sld = effective_sld(name)
    if sld is None:
        return name.labels[0]
    return sld.labels[0]


def levenshtein(a: str, b: str, *, cap: int | None = None) -> int:
    """Edit distance between two strings, optionally capped.

    Used by the typo classifier (Figure 8): mismatched mx patterns with
    edit distance <= 3 to an actual MX are counted as typographical
    errors.  With *cap* set, computation stops early and returns
    ``cap + 1`` when the distance is known to exceed the cap.
    """
    if a == b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    if cap is not None and len(b) - len(a) > cap:
        return cap + 1
    previous = list(range(len(a) + 1))
    for j, cb in enumerate(b, start=1):
        current = [j]
        best = j
        for i, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            value = min(previous[i] + 1, current[i - 1] + 1,
                        previous[i - 1] + cost)
            current.append(value)
            best = min(best, value)
        if cap is not None and best > cap:
            return cap + 1
        previous = current
    return previous[-1]
