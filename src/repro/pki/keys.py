"""Simulated key material.

Real asymmetric cryptography is irrelevant to reproducing the paper's
measurements; what matters is *identity*: whether the certificate a
server presents chains to a trusted root, and whether a DANE TLSA
record's fingerprint matches the presented key.  A :class:`KeyPair` is
therefore an opaque unique token with a stable fingerprint.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

_counter = itertools.count(1)


@dataclass(frozen=True)
class KeyPair:
    """An opaque simulated keypair."""

    key_id: int = field(default_factory=lambda: next(_counter))
    label: str = ""

    def fingerprint(self) -> str:
        """A stable hex fingerprint of the public key (SPKI digest)."""
        digest = hashlib.sha256(f"spki:{self.key_id}".encode()).hexdigest()
        return digest[:56]

    def sign(self, payload: str) -> str:
        """Produce a deterministic "signature" binding payload to key."""
        return hashlib.sha256(
            f"sig:{self.key_id}:{payload}".encode()).hexdigest()[:40]

    def verify(self, payload: str, signature: str) -> bool:
        return self.sign(payload) == signature
