"""Simulated web PKI: keys, certificates, CAs, PKIX validation, ACME."""

from repro.pki.keys import KeyPair
from repro.pki.certificate import Certificate, CertTemplate
from repro.pki.ca import CertificateAuthority, TrustStore
from repro.pki.validation import (
    validate_chain, verify_hostname, ValidationResult, classify_failure,
)
from repro.pki.acme import AcmeService, AcmeChallengeError

__all__ = [
    "KeyPair", "Certificate", "CertTemplate",
    "CertificateAuthority", "TrustStore",
    "validate_chain", "verify_hostname", "ValidationResult",
    "classify_failure",
    "AcmeService", "AcmeChallengeError",
]
