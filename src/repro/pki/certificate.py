"""Certificates.

A :class:`Certificate` binds names (Common Name + Subject Alternative
Names, with RFC 6125 wildcard semantics) to a keypair for a validity
window, signed by an issuer.  Self-signed certificates — a recurring
failure class in the paper's Figures 5 and 6 — are certificates whose
issuer keypair is their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.clock import Instant
from repro.dns.name import DnsName, canonical_host
from repro.pki.keys import KeyPair


def hostname_matches(pattern: str, hostname: str) -> bool:
    """RFC 6125-style matching of a certificate name against a hostname.

    A leading ``*.`` wildcard matches exactly one leftmost label; the
    wildcard never matches an empty label or crosses label boundaries.
    Matching is case-insensitive.
    """
    pattern = canonical_host(pattern)
    hostname = canonical_host(hostname)
    if not pattern or not hostname:
        return False
    if pattern == hostname:
        return True
    if pattern.startswith("*."):
        suffix = pattern[2:]
        if not suffix:
            return False
        host_labels = hostname.split(".")
        if len(host_labels) < 2:
            return False
        return ".".join(host_labels[1:]) == suffix and bool(host_labels[0])
    return False


@dataclass(frozen=True)
class Certificate:
    """An X.509-like certificate in the simulated PKI."""

    subject_cn: str
    san: Tuple[str, ...]
    key: KeyPair
    issuer_cn: str
    issuer_key: KeyPair
    not_before: Instant
    not_after: Instant
    signature: str = ""
    is_ca: bool = False
    revoked: bool = False

    @property
    def self_signed(self) -> bool:
        return self.issuer_key == self.key

    def tbs_payload(self) -> str:
        names = ",".join(sorted(self.san))
        return (f"cn={self.subject_cn};san={names};key={self.key.fingerprint()};"
                f"nb={self.not_before.epoch_seconds};na={self.not_after.epoch_seconds};"
                f"ca={self.is_ca}")

    def signature_valid(self) -> bool:
        return self.issuer_key.verify(self.tbs_payload(), self.signature)

    def valid_at(self, when: Instant) -> bool:
        return self.not_before <= when <= self.not_after

    def covers_hostname(self, hostname: str | DnsName) -> bool:
        """True when CN or any SAN matches *hostname*.

        Per RFC 6125 the SAN list takes precedence; like most SMTP
        scanners (and the paper's), we accept a CN match when the SAN
        list is empty.
        """
        host = hostname.text if isinstance(hostname, DnsName) else hostname
        if self.san:
            return any(hostname_matches(p, host) for p in self.san)
        return hostname_matches(self.subject_cn, host)

    def spki_fingerprint(self) -> str:
        return self.key.fingerprint()

    def cert_fingerprint(self) -> str:
        import hashlib
        return hashlib.sha256(
            (self.tbs_payload() + self.signature).encode()).hexdigest()[:56]


@dataclass
class CertTemplate:
    """What a requester asks a CA (or itself) to certify."""

    names: Sequence[str]
    key: Optional[KeyPair] = None
    lifetime_days: int = 90

    def primary_name(self) -> str:
        if not self.names:
            raise ValueError("certificate template needs at least one name")
        return self.names[0]


def make_self_signed(template: CertTemplate, now: Instant) -> Certificate:
    """Issue a self-signed leaf — the classic misconfiguration."""
    from repro.clock import DAY

    key = template.key or KeyPair(label=f"self:{template.primary_name()}")
    cert = Certificate(
        subject_cn=template.primary_name(),
        san=tuple(template.names),
        key=key,
        issuer_cn=template.primary_name(),
        issuer_key=key,
        not_before=now,
        not_after=now + DAY * template.lifetime_days,
    )
    return _sign(cert, key)


def _sign(cert: Certificate, issuer_key: KeyPair) -> Certificate:
    from dataclasses import replace
    signature = issuer_key.sign(cert.tbs_payload())
    return replace(cert, signature=signature)
