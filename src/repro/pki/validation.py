"""PKIX validation and failure classification.

:func:`validate_chain` reproduces the decisions the paper's scanner
makes about every certificate it retrieves — from policy servers
(Figure 5's TLS bar) and MX hosts (Figure 6) — and
:func:`classify_failure` maps each outcome onto the paper's reported
error classes: Common Name / SAN mismatch, self-signed, expired, and
missing/untrusted certificates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.clock import Instant
from repro.dns.name import DnsName
from repro.errors import TlsFailure
from repro.pki.ca import TrustStore
from repro.pki.certificate import Certificate


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of PKIX validation of one presented certificate."""

    valid: bool
    failure: Optional[TlsFailure] = None
    detail: str = ""

    @classmethod
    def ok(cls) -> "ValidationResult":
        return cls(True)

    @classmethod
    def fail(cls, failure: TlsFailure, detail: str = "") -> "ValidationResult":
        return cls(False, failure, detail)


def verify_hostname(cert: Certificate,
                    hostname: str | DnsName) -> ValidationResult:
    """Check only the name binding (CN/SAN coverage)."""
    if cert.covers_hostname(hostname):
        return ValidationResult.ok()
    host = hostname.text if isinstance(hostname, DnsName) else hostname
    return ValidationResult.fail(
        TlsFailure.HOSTNAME_MISMATCH,
        f"certificate names {cert.san or (cert.subject_cn,)} "
        f"do not cover {host}")


def validate_chain(cert: Optional[Certificate],
                   hostname: str | DnsName,
                   trust_store: TrustStore,
                   now: Instant) -> ValidationResult:
    """Full PKIX validation of a presented leaf certificate.

    Check order mirrors what scanners observe in practice: missing
    certificate, then trust (self-signed vs unknown issuer), then
    validity window, then revocation, then hostname.  The first failure
    wins — the same convention the paper uses when attributing each
    domain to a single TLS error class.
    """
    if cert is None:
        return ValidationResult.fail(
            TlsFailure.NO_CERTIFICATE, "server presented no certificate")

    if cert.self_signed:
        if not trust_store.is_trusted_root(cert):
            return ValidationResult.fail(
                TlsFailure.SELF_SIGNED,
                f"self-signed certificate for {cert.subject_cn}")
    else:
        issuer = trust_store.find_issuer(cert)
        if issuer is None:
            return ValidationResult.fail(
                TlsFailure.UNTRUSTED_ROOT,
                f"issuer {cert.issuer_cn!r} is not a trusted root")
        if not cert.signature_valid():
            return ValidationResult.fail(
                TlsFailure.HANDSHAKE_ALERT,
                "certificate signature does not verify")
        if not issuer.valid_at(now):
            return ValidationResult.fail(
                TlsFailure.UNTRUSTED_ROOT, "issuing root expired")

    if now < cert.not_before:
        return ValidationResult.fail(
            TlsFailure.NOT_YET_VALID,
            f"certificate not valid before {cert.not_before}")
    if now > cert.not_after:
        return ValidationResult.fail(
            TlsFailure.EXPIRED,
            f"certificate expired at {cert.not_after}")
    if cert.revoked:
        return ValidationResult.fail(TlsFailure.REVOKED, "certificate revoked")

    return verify_hostname(cert, hostname)


def classify_failure(result: ValidationResult) -> str:
    """Map a validation failure to the paper's reporting buckets."""
    if result.valid:
        return "valid"
    mapping = {
        TlsFailure.HOSTNAME_MISMATCH: "cn-mismatch",
        TlsFailure.SELF_SIGNED: "self-signed",
        TlsFailure.UNTRUSTED_ROOT: "self-signed",   # untrusted ≅ private PKI
        TlsFailure.EXPIRED: "expired",
        TlsFailure.NOT_YET_VALID: "expired",
        TlsFailure.NO_CERTIFICATE: "no-certificate",
        TlsFailure.REVOKED: "revoked",
        TlsFailure.HANDSHAKE_ALERT: "handshake-alert",
        TlsFailure.NO_TLS_SUPPORT: "no-tls",
    }
    assert result.failure is not None
    return mapping[result.failure]
