"""PKIX validation and failure classification.

:func:`validate_chain` reproduces the decisions the paper's scanner
makes about every certificate it retrieves — from policy servers
(Figure 5's TLS bar) and MX hosts (Figure 6) — and
:func:`classify_failure` maps each outcome onto the paper's reported
error classes: Common Name / SAN mismatch, self-signed, expired, and
missing/untrusted certificates.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import trace
from repro.clock import Instant
from repro.dns.name import DnsName, canonical_host
from repro.errors import TlsFailure
from repro.pki.ca import TrustStore
from repro.pki.certificate import Certificate


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of PKIX validation of one presented certificate."""

    valid: bool
    failure: Optional[TlsFailure] = None
    detail: str = ""

    @classmethod
    def ok(cls) -> "ValidationResult":
        return cls(True)

    @classmethod
    def fail(cls, failure: TlsFailure, detail: str = "") -> "ValidationResult":
        return cls(False, failure, detail)


def verify_hostname(cert: Certificate,
                    hostname: str | DnsName) -> ValidationResult:
    """Check only the name binding (CN/SAN coverage)."""
    if cert.covers_hostname(hostname):
        return ValidationResult.ok()
    host = hostname.text if isinstance(hostname, DnsName) else hostname
    return ValidationResult.fail(
        TlsFailure.HOSTNAME_MISMATCH,
        f"certificate names {cert.san or (cert.subject_cn,)} "
        f"do not cover {host}")


def validate_chain(cert: Optional[Certificate],
                   hostname: str | DnsName,
                   trust_store: TrustStore,
                   now: Instant) -> ValidationResult:
    """Full PKIX validation of a presented leaf certificate.

    Check order mirrors what scanners observe in practice: missing
    certificate, then trust (self-signed vs unknown issuer), then
    validity window, then revocation, then hostname.  The first failure
    wins — the same convention the paper uses when attributing each
    domain to a single TLS error class.
    """
    if cert is None:
        return ValidationResult.fail(
            TlsFailure.NO_CERTIFICATE, "server presented no certificate")

    if cert.self_signed:
        if not trust_store.is_trusted_root(cert):
            return ValidationResult.fail(
                TlsFailure.SELF_SIGNED,
                f"self-signed certificate for {cert.subject_cn}")
    else:
        issuer = trust_store.find_issuer(cert)
        if issuer is None:
            return ValidationResult.fail(
                TlsFailure.UNTRUSTED_ROOT,
                f"issuer {cert.issuer_cn!r} is not a trusted root")
        if not cert.signature_valid():
            return ValidationResult.fail(
                TlsFailure.HANDSHAKE_ALERT,
                "certificate signature does not verify")
        if not issuer.valid_at(now):
            return ValidationResult.fail(
                TlsFailure.UNTRUSTED_ROOT, "issuing root expired")

    if now < cert.not_before:
        return ValidationResult.fail(
            TlsFailure.NOT_YET_VALID,
            f"certificate not valid before {cert.not_before}")
    if now > cert.not_after:
        return ValidationResult.fail(
            TlsFailure.EXPIRED,
            f"certificate expired at {cert.not_after}")
    if cert.revoked:
        return ValidationResult.fail(TlsFailure.REVOKED, "certificate revoked")

    return verify_hostname(cert, hostname)


class _ChainValidationCache:
    """Memoizes :func:`validate_chain` outcomes.

    The scan pipeline validates the same certificates over and over —
    provider MX farms and wildcard policy-host certificates are
    presented to thousands of domains per snapshot.  ``validate_chain``
    is a pure function of (certificate, hostname, trust store contents,
    instant), so its result is cached keyed by the certificate
    fingerprint plus those inputs.  Trust stores are held weakly and
    carry a ``generation`` counter bumped on root changes, so mutating
    a store can never serve a stale verdict.
    """

    def __init__(self):
        self._stores: "weakref.WeakKeyDictionary[TrustStore, Dict[Tuple, ValidationResult]]" = (
            weakref.WeakKeyDictionary())
        self._lock = threading.Lock()
        self.validations = 0
        self.cache_hits = 0

    def validate(self, cert: Optional[Certificate],
                 hostname: str | DnsName,
                 trust_store: TrustStore, now: Instant) -> ValidationResult:
        if cert is None:
            return validate_chain(cert, hostname, trust_store, now)
        host = canonical_host(hostname)
        # ``revoked`` is excluded from the fingerprint's signed payload,
        # so it is part of the key explicitly.
        key = (cert.cert_fingerprint(), cert.revoked, host,
               getattr(trust_store, "generation", 0), now.epoch_seconds)
        with self._lock:
            entries = self._stores.get(trust_store)
            if entries is None:
                entries = {}
                self._stores[trust_store] = entries
            cached = entries.get(key)
            if cached is not None:
                self.cache_hits += 1
                if trace.TRACING:
                    trace.count("pkix.cache_hits")
                return cached
            self.validations += 1
            if trace.TRACING:
                trace.count("pkix.validations")
            result = validate_chain(cert, host, trust_store, now)
            entries[key] = result
            return result

    def stats(self) -> Dict[str, int | float]:
        lookups = self.validations + self.cache_hits
        return {
            "validations": self.validations,
            "cache_hits": self.cache_hits,
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
        }

    def keys(self) -> list:
        """Every cache key currently held, sorted, across all stores.

        Keys are plain tuples of (fingerprint, revoked, host,
        generation, epoch) — content-derived, so two identically built
        worlds produce identical keys.  The process scan backend
        captures each worker's post-scan key set (the cache is flushed
        at scan start, so these are exactly the validations the scan
        performed) and counts the cross-worker union to recover the
        serial validation total.
        """
        with self._lock:
            return sorted(key for entries in self._stores.values()
                          for key in entries)

    def flush(self) -> None:
        with self._lock:
            self._stores = weakref.WeakKeyDictionary()

    def reset_stats(self) -> None:
        self.validations = 0
        self.cache_hits = 0


_chain_cache = _ChainValidationCache()


def validate_chain_cached(cert: Optional[Certificate],
                          hostname: str | DnsName,
                          trust_store: TrustStore,
                          now: Instant) -> ValidationResult:
    """Memoized :func:`validate_chain` (same contract, shared cache)."""
    return _chain_cache.validate(cert, hostname, trust_store, now)


def chain_cache_stats() -> Dict[str, int | float]:
    return _chain_cache.stats()


def chain_cache_keys() -> list:
    """The sorted cache keys across every trust store (see
    :meth:`_ChainValidationCache.keys`)."""
    return _chain_cache.keys()


def flush_chain_cache() -> None:
    _chain_cache.flush()


def reset_chain_cache_stats() -> None:
    _chain_cache.reset_stats()


def classify_failure(result: ValidationResult) -> str:
    """Map a validation failure to the paper's reporting buckets."""
    if result.valid:
        return "valid"
    mapping = {
        TlsFailure.HOSTNAME_MISMATCH: "cn-mismatch",
        TlsFailure.SELF_SIGNED: "self-signed",
        TlsFailure.UNTRUSTED_ROOT: "self-signed",   # untrusted ≅ private PKI
        TlsFailure.EXPIRED: "expired",
        TlsFailure.NOT_YET_VALID: "expired",
        TlsFailure.NO_CERTIFICATE: "no-certificate",
        TlsFailure.REVOKED: "revoked",
        TlsFailure.HANDSHAKE_ALERT: "handshake-alert",
        TlsFailure.NO_TLS_SUPPORT: "no-tls",
    }
    assert result.failure is not None
    return mapping[result.failure]
