"""Certificate authorities and trust stores."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.clock import DAY, Clock, Instant
from repro.pki.certificate import Certificate, CertTemplate
from repro.pki.keys import KeyPair


class TrustStore:
    """The set of root certificates a client trusts."""

    def __init__(self, roots: Optional[List[Certificate]] = None):
        self._roots: Dict[str, Certificate] = {}
        #: Bumped on every root change; the chain-validation cache in
        #: :mod:`repro.pki.validation` keys on it so a mutated store
        #: never serves stale verdicts.
        self.generation = 0
        for root in roots or []:
            self.add_root(root)

    def add_root(self, root: Certificate) -> None:
        if not root.is_ca:
            raise ValueError("trust anchors must be CA certificates")
        self._roots[root.cert_fingerprint()] = root
        self.generation += 1

    def remove_root(self, root: Certificate) -> None:
        self._roots.pop(root.cert_fingerprint(), None)
        self.generation += 1

    def is_trusted_root(self, cert: Certificate) -> bool:
        return cert.cert_fingerprint() in self._roots

    def find_issuer(self, cert: Certificate) -> Optional[Certificate]:
        for root in self._roots.values():
            if (root.subject_cn == cert.issuer_cn
                    and root.key == cert.issuer_key):
                return root
        return None

    def roots(self) -> List[Certificate]:
        return list(self._roots.values())


class CertificateAuthority:
    """A simulated CA: a self-signed root that issues leaf certificates.

    Intermediates are not modelled — the paper's error classes never
    depend on chain depth, only on trust, names, and validity.
    """

    def __init__(self, name: str, clock: Clock, *, root_lifetime_days: int = 3650):
        self.name = name
        self._clock = clock
        self.key = KeyPair(label=f"ca:{name}")
        now = clock.now()
        root = Certificate(
            subject_cn=name,
            san=(),
            key=self.key,
            issuer_cn=name,
            issuer_key=self.key,
            not_before=now,
            not_after=now + DAY * root_lifetime_days,
            is_ca=True,
        )
        self.root = replace(root, signature=self.key.sign(root.tbs_payload()))
        self.issued_count = 0

    def issue(self, template: CertTemplate,
              *, backdate_days: int = 0) -> Certificate:
        """Issue a leaf certificate for the template's names.

        *backdate_days* shifts the validity window into the past, which
        lets tests and the misconfiguration injector mint certificates
        that are already expired at simulation time.
        """
        now = self._clock.now() - DAY * backdate_days
        key = template.key or KeyPair(label=f"leaf:{template.primary_name()}")
        cert = Certificate(
            subject_cn=template.primary_name(),
            san=tuple(template.names),
            key=key,
            issuer_cn=self.name,
            issuer_key=self.key,
            not_before=now,
            not_after=now + DAY * template.lifetime_days,
        )
        self.issued_count += 1
        return replace(cert, signature=self.key.sign(cert.tbs_payload()))

    def revoke(self, cert: Certificate) -> Certificate:
        return replace(cert, revoked=True)
