"""ACME-style domain-validated certificate issuance.

Policy delegation (Section 2.5 / Table 2) only works because the
third-party host can pass an ACME domain-validation challenge for
``mta-sts.customer.example``: the customer's CNAME hands the provider
control of the name.  This module simulates that flow, including the
behaviour the paper calls out — providers that *keep renewing*
certificates for opted-out customers as long as the CNAME persists
(DMARCReport, EasyDMARC, Sendmarc, OnDMARC), versus providers that
stop answering (NXDOMAIN), after which issuance fails.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Clock
from repro.dns.name import DnsName
from repro.dns.records import RRType
from repro.dns.resolver import Resolver
from repro.errors import DnsError, ReproError
from repro.pki.ca import CertificateAuthority
from repro.pki.certificate import Certificate, CertTemplate
from repro.pki.keys import KeyPair


class AcmeChallengeError(ReproError):
    """Domain validation failed; no certificate can be issued."""


@dataclass
class AcmeService:
    """A CA front-end that issues only after a DNS-based check.

    The simulated challenge verifies that the requested name resolves
    to an address the requester claims to control (HTTP-01's essence)
    — i.e. the CNAME/A records must already point at the requester.
    """

    ca: CertificateAuthority
    resolver: Resolver
    clock: Clock

    def issue_dv(self, names: list[str], controlled_ips: set[str],
                 *, key: KeyPair | None = None,
                 lifetime_days: int = 90) -> Certificate:
        """Issue a DV certificate after validating every requested name.

        *controlled_ips* is the set of IP addresses (as text) on which
        the requester can answer challenges.
        """
        for name in names:
            self._validate_control(name, controlled_ips)
        template = CertTemplate(names=names, key=key,
                                lifetime_days=lifetime_days)
        return self.ca.issue(template)

    def _validate_control(self, name: str, controlled_ips: set[str]) -> None:
        if name.startswith("*."):
            # Wildcards require DNS-01; approximate by validating the base.
            name = name[2:]
        try:
            parsed = DnsName.parse(name)
        except ValueError as exc:
            raise AcmeChallengeError(f"unparseable name {name!r}") from exc
        try:
            addresses = self.resolver.resolve_address(parsed)
        except DnsError as exc:
            raise AcmeChallengeError(
                f"{name}: challenge lookup failed ({exc})") from exc
        if not any(a.text in controlled_ips for a in addresses):
            raise AcmeChallengeError(
                f"{name} resolves to {[a.text for a in addresses]}, "
                f"none controlled by requester")

    def can_renew(self, name: str, controlled_ips: set[str]) -> bool:
        """Whether a renewal for *name* would pass validation now."""
        try:
            self._validate_control(name, controlled_ips)
        except AcmeChallengeError:
            return False
        return True
