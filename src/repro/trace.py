"""Structured scan tracing and metrics.

The measurement pipeline's value rests on being able to explain *why*
each domain classified the way it did: which DNS lookups ran, where
the policy fetch broke, which MX probes hit injected faults, how much
retry backoff was charged.  This module provides the substrate:

* :class:`Span` — one node of a per-domain span tree (``scan`` →
  ``dns`` / ``policy`` / ``mx``), carrying ordered events and
  deterministic ids derived from the *virtual* clock and the domain —
  never from wall time, thread ids, or allocation order;
* :class:`MetricsRegistry` — integer counters and virtual-time
  histograms; :class:`~repro.measurement.executor.ScanStats` is a view
  over the merged registry when tracing is enabled;
* :class:`Tracer` — the per-shard recorder.  Each scan shard owns one
  tracer and binds it thread-locally while scanning, so the clients
  (resolver, HTTPS client, SMTP probe, retry layer) report into the
  right shard without threading a handle through every call;
* :class:`TraceReport` — the canonical merge of all shard tracers.

Determinism rules (the byte-identity invariant)
-----------------------------------------------

Serial and threaded scans must emit byte-identical traces.  Anything
attributed to a *domain* span must therefore be a pure function of the
world and the scan instant — outcomes, verdicts, stage results.  Work
that is compute-once behind a shared cache (live DNS queries, SMTP
probes, PKIX validations) is *racy to attribute*: which domain's scan
happens to execute it depends on thread scheduling.  Such work is
recorded instead as a flat **resource span** keyed by the operation's
stable key (``dns:<server>:<name>``, ``probe:<hostname>``); its
*content* is a pure function of the key and the virtual clock, so the
merged, key-sorted resource section is identical under any
interleaving.  Domain spans reference resources by key and record only
deterministic outcomes, never cache hit/miss flags.  Cache traffic is
counted in the metrics registry, whose totals are deterministic
because every shared cache in the pipeline is compute-once.

Virtual durations are recorded as integer microseconds so that merge
order cannot perturb floating-point sums.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = [
    "Span", "Tracer", "MetricsRegistry", "Histogram", "TraceReport",
    "current_tracer", "count", "observe", "event", "child_span",
    "resource_span",
]

#: Upper bucket bounds (virtual seconds) for the backoff histogram.
HISTOGRAM_BOUNDS = (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 30.0, 60.0)


def micros(seconds: float) -> int:
    """Virtual seconds → integer microseconds (the trace's time unit)."""
    return round(seconds * 1_000_000)


# ---------------------------------------------------------------------------
# Span model
# ---------------------------------------------------------------------------

@dataclass
class Span:
    """One node of a span tree.

    ``span_id`` is assigned when the tree is sealed: the root id is a
    digest of ``(virtual instant, month, target)`` and children get
    ``<root>.<preorder-index>`` — fully deterministic, no wall time.
    """

    name: str
    target: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    children: List["Span"] = field(default_factory=list)
    span_id: str = ""

    def event(self, name: str, **attrs: Any) -> None:
        entry: Dict[str, Any] = {"event": name}
        entry.update(attrs)
        self.events.append(entry)

    def seal(self, seed: str) -> None:
        """Assign deterministic ids to this tree from *seed*."""
        self.span_id = hashlib.sha256(seed.encode("utf-8")).hexdigest()[:16]
        index = 0
        stack = [self]
        while stack:
            node = stack.pop()
            for child in node.children:
                index += 1
                child.span_id = f"{self.span_id}.{index}"
                stack.append(child)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"span_id": self.span_id, "name": self.name}
        if self.target:
            data["target"] = self.target
        if self.attrs:
            data["attrs"] = self.attrs
        if self.events:
            data["events"] = self.events
        if self.children:
            data["children"] = [c.to_dict() for c in self.children]
        return data

    def render(self, indent: int = 0) -> List[str]:
        """Human-readable tree lines (``audit --explain``)."""
        pad = "  " * indent
        head = f"{pad}{self.name}"
        if self.target:
            head += f" [{self.target}]"
        if self.attrs:
            head += "  " + " ".join(
                f"{k}={v}" for k, v in sorted(self.attrs.items()))
        lines = [head]
        for entry in self.events:
            rest = " ".join(f"{k}={v}" for k, v in entry.items()
                            if k != "event")
            lines.append(f"{pad}  · {entry['event']}"
                         + (f" {rest}" if rest else ""))
        for child in self.children:
            lines.extend(child.render(indent + 1))
        return lines


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

@dataclass
class Histogram:
    """A fixed-bucket histogram over virtual durations (microseconds).

    Buckets are integer counts under :data:`HISTOGRAM_BOUNDS` plus an
    overflow bucket; totals are integer microseconds, so merged sums
    are independent of merge order.
    """

    bounds: Sequence[float] = HISTOGRAM_BOUNDS
    counts: List[int] = field(default_factory=list)
    total_micros: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe_micros(self, value: int) -> None:
        seconds = value / 1_000_000
        for index, bound in enumerate(self.bounds):
            if seconds <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.total_micros += value

    @property
    def observations(self) -> int:
        return sum(self.counts)

    def quantile(self, q: float) -> float:
        """The upper bucket bound containing the *q*-quantile, in
        seconds (the usual Prometheus-style histogram estimate).
        Observations in the overflow bucket report ``inf``; an empty
        histogram reports ``0.0``."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be within (0, 1]")
        total = self.observations
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for bound, count in zip(self.bounds, self.counts):
            cumulative += count
            if cumulative >= target:
                return float(bound)
        return float("inf")

    def merge(self, other: "Histogram") -> None:
        for index, value in enumerate(other.counts):
            self.counts[index] += value
        self.total_micros += other.total_micros

    def to_dict(self) -> Dict[str, Any]:
        return {"bounds": list(self.bounds), "counts": list(self.counts),
                "total_micros": self.total_micros}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        return cls(bounds=tuple(data["bounds"]),
                   counts=list(data["counts"]),
                   total_micros=int(data["total_micros"]))


class MetricsRegistry:
    """Counters and virtual-time histograms for one tracer.

    Lock-free by design: a registry is only ever written by the shard
    thread that owns it; cross-shard totals come from :meth:`merge`,
    which is integer addition and therefore order-independent.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}

    def count(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def observe(self, name: str, value_micros: int) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe_micros(value_micros)

    def merge(self, other: "MetricsRegistry") -> None:
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram(
                    bounds=histogram.bounds)
            mine.merge(histogram)

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "histograms": {k: self.histograms[k].to_dict()
                           for k in sorted(self.histograms)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Inverse of :meth:`to_dict` (the metrics exporters'
        re-parse path)."""
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counters[name] = int(value)
        for name, payload in data.get("histograms", {}).items():
            registry.histograms[name] = Histogram.from_dict(payload)
        return registry


# ---------------------------------------------------------------------------
# The per-shard tracer and its thread-local binding
# ---------------------------------------------------------------------------

class Tracer:
    """Records span trees and metrics for one scan shard.

    One tracer is owned by exactly one scanner and used from exactly
    one thread at a time (the executor gives every shard its own), so
    recording needs no locks.  Domain trees are keyed by
    ``(month, domain)`` and resource spans by their operation key; the
    merge sorts both, which is what makes the serial and threaded
    backends emit identical traces.
    """

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.domain_spans: Dict[tuple, Span] = {}
        self.resource_spans: Dict[str, Span] = {}
        self._stack: List[Span] = []

    # -- recording ----------------------------------------------------

    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def domain_span(self, domain: str, month_index: int,
                    instant_epoch: int) -> Iterator[Span]:
        span = Span("scan", target=domain,
                    attrs={"domain": domain, "month": month_index,
                           "instant": instant_epoch})
        self.domain_spans[(month_index, domain)] = span
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    @contextmanager
    def child(self, name: str, target: str = "") -> Iterator[Span]:
        span = Span(name, target=target)
        parent = self.current_span()
        if parent is not None:
            parent.children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    @contextmanager
    def resource(self, key: str, name: str,
                 target: str = "") -> Iterator[Span]:
        """A flat, key-deduplicated span for compute-once shared work.

        The span is *not* attached to the current tree — which domain
        triggered the work is scheduling-dependent — but it is pushed
        on the stack so events emitted while the work runs land on it.
        Re-executions of the same key (identical content by
        construction: every decision is a pure function of the key and
        the virtual clock) keep the first recording.
        """
        span = self.begin_resource(key, name, target)
        try:
            yield span
        finally:
            self.end_resource(key)

    def begin_resource(self, key: str, name: str,
                       target: str = "") -> Span:
        """Non-contextmanager form of :meth:`resource` for hot paths
        that cannot afford a generator frame per call; pair every call
        with :meth:`end_resource` in a ``finally``."""
        span = Span(name, target=target, attrs={"key": key})
        self._stack.append(span)
        return span

    def end_resource(self, key: str) -> None:
        span = self._stack.pop()
        self.resource_spans.setdefault(key, span)


_ACTIVE = threading.local()
# Process-wide count of live ``bind`` contexts, mirrored into the
# public ``TRACING`` flag.  When no tracer is bound anywhere — the
# normal untraced case — hot pipeline sites skip their instrumentation
# behind a plain ``trace.TRACING`` attribute read, without paying a
# function call or a thread-local lookup per operation.  Always read it
# as ``trace.TRACING`` (never ``from repro.trace import TRACING``,
# which would freeze the value at import time).
_BIND_DEPTH = 0
_BIND_LOCK = threading.Lock()
TRACING = False


def current_tracer() -> Optional[Tracer]:
    if not TRACING:
        return None
    return getattr(_ACTIVE, "tracer", None)


@contextmanager
def bind(tracer: Optional[Tracer]) -> Iterator[None]:
    """Bind *tracer* as the calling thread's active tracer."""
    global _BIND_DEPTH, TRACING
    previous = getattr(_ACTIVE, "tracer", None)
    _ACTIVE.tracer = tracer
    with _BIND_LOCK:
        _BIND_DEPTH += 1
        TRACING = True
    try:
        yield
    finally:
        _ACTIVE.tracer = previous
        with _BIND_LOCK:
            _BIND_DEPTH -= 1
            TRACING = _BIND_DEPTH > 0


# -- module-level helpers used by the pipeline clients ---------------------
#
# Every helper no-ops cheaply when no tracer is bound (a ``TRACING``
# global read; the span helpers hand back a shared null context instead
# of a generator frame), which is what keeps the tracing layer free
# when disabled.  Hot call sites additionally guard with
# ``if trace.TRACING:`` so even the helper call and its argument
# construction are skipped.

_NULL_SPAN_CONTEXT = contextlib.nullcontext(None)


def count(name: str, value: int = 1) -> None:
    tracer = current_tracer()
    if tracer is not None:
        tracer.metrics.count(name, value)


def observe(name: str, value_micros: int) -> None:
    tracer = current_tracer()
    if tracer is not None:
        tracer.metrics.observe(name, value_micros)


def event(name: str, **attrs: Any) -> None:
    tracer = current_tracer()
    if tracer is not None:
        span = tracer.current_span()
        if span is not None:
            span.event(name, **attrs)


def child_span(name: str, target: str = ""):
    tracer = current_tracer()
    if tracer is None:
        return _NULL_SPAN_CONTEXT
    return tracer.child(name, target)


def resource_span(key: str, name: str, target: str = ""):
    tracer = current_tracer()
    if tracer is None:
        return _NULL_SPAN_CONTEXT
    return tracer.resource(key, name, target)


# ---------------------------------------------------------------------------
# The merged report
# ---------------------------------------------------------------------------

class TraceReport:
    """The canonical merge of every shard tracer of one scan.

    Merge order is fixed: domain trees sorted by ``(month, domain)``,
    then resource spans sorted by key, then one metrics record — so a
    serial scan and any sharding of the same scan serialise to the
    same bytes.
    """

    def __init__(self, instant_epoch: int = 0):
        self.instant_epoch = instant_epoch
        self.domain_spans: Dict[tuple, Span] = {}
        self.resource_spans: Dict[str, Span] = {}
        self.metrics = MetricsRegistry()

    @classmethod
    def merge(cls, tracers: Sequence[Tracer],
              instant_epoch: int = 0) -> "TraceReport":
        report = cls(instant_epoch)
        for tracer in tracers:
            for key, span in tracer.domain_spans.items():
                report.domain_spans[key] = span
            for key, span in tracer.resource_spans.items():
                report.resource_spans.setdefault(key, span)
            report.metrics.merge(tracer.metrics)
        for (month, domain), span in report.domain_spans.items():
            span.seal(f"{report.instant_epoch}:{month}:{domain}")
        for key, span in report.resource_spans.items():
            span.seal(f"{report.instant_epoch}:resource:{key}")
        return report

    # -- serialisation ------------------------------------------------

    def jsonl_lines(self) -> Iterator[str]:
        """One JSON record per line: domains, resources, metrics."""
        for (month, domain) in sorted(self.domain_spans):
            span = self.domain_spans[(month, domain)]
            yield json.dumps(
                {"type": "domain", "month": month, "domain": domain,
                 "span": span.to_dict()},
                sort_keys=True, separators=(",", ":"))
        for key in sorted(self.resource_spans):
            yield json.dumps(
                {"type": "resource", "key": key,
                 "span": self.resource_spans[key].to_dict()},
                sort_keys=True, separators=(",", ":"))
        yield json.dumps({"type": "metrics", **self.metrics.to_dict()},
                         sort_keys=True, separators=(",", ":"))

    def to_jsonl(self) -> str:
        return "\n".join(self.jsonl_lines()) + "\n"

    def write_jsonl(self, path: str) -> int:
        """Write the trace atomically (temp file + ``os.replace``, so
        an interrupted run never leaves a truncated trace); returns the
        number of records written."""
        from repro.fsutil import atomic_write_text

        lines = list(self.jsonl_lines())
        atomic_write_text(path, "\n".join(lines) + "\n")
        return len(lines)

    # -- inspection ---------------------------------------------------

    def domain_tree(self, domain: str,
                    month_index: Optional[int] = None) -> Optional[Span]:
        candidates = [key for key in self.domain_spans
                      if key[1] == domain
                      and (month_index is None or key[0] == month_index)]
        if not candidates:
            return None
        return self.domain_spans[max(candidates)]

    def referenced_resources(self, span: Span) -> List[str]:
        """Every resource key a tree references, in first-seen order."""
        keys: List[str] = []
        stack = [span]
        while stack:
            node = stack.pop(0)
            for entry in node.events:
                ref = entry.get("ref")
                if ref and ref not in keys and ref in self.resource_spans:
                    keys.append(ref)
            stack.extend(node.children)
        return keys

    def explain(self, domain: str,
                month_index: Optional[int] = None) -> str:
        """The human-readable span tree for one domain, with the
        resource spans (probes, connect attempts) it references."""
        span = self.domain_tree(domain, month_index)
        if span is None:
            return f"no trace recorded for {domain!r}"
        lines = span.render()
        resources = self.referenced_resources(span)
        if resources:
            lines.append("")
            lines.append("referenced shared resources:")
            for key in resources:
                lines.extend(self.resource_spans[key].render(indent=1))
        return "\n".join(lines)
