"""A retrying mail queue.

Real MTAs do not give up on a 4xx: greylisted or temporarily failing
messages sit in a queue and retry on a backoff schedule until they
either deliver or exceed the queue lifetime and bounce.  The paper's
methodology touches this twice: greylisting MXes only reveal STARTTLS
on a retry (§4.1 footnote), and MTA-STS enforce-mode refusals are
*temporary* failures from the queue's perspective — the recipient may
fix their policy before the queue gives up, which is exactly what
saved most of the lucidgrow cohort ("the issue was quickly resolved").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.clock import Clock, Duration, HOUR, Instant
from repro.smtp.delivery import DeliveryAttempt, DeliveryStatus, Message

#: Classic sendmail-style backoff: quick first retries, then hourly-ish.
DEFAULT_RETRY_SCHEDULE = (
    Duration(15 * 60), Duration(30 * 60), HOUR, 2 * HOUR, 4 * HOUR,
    8 * HOUR, 12 * HOUR, 24 * HOUR,
)
DEFAULT_QUEUE_LIFETIME = Duration(5 * 24 * 3600)    # five days


class QueueOutcome(enum.Enum):
    DELIVERED = "delivered"
    QUEUED = "queued"            # waiting for its next attempt
    BOUNCED = "bounced"          # permanent failure or lifetime exceeded


@dataclass
class QueueEntry:
    message: Message
    enqueued_at: Instant
    next_attempt_at: Instant
    attempts: int = 0
    outcome: QueueOutcome = QueueOutcome.QUEUED
    last_status: Optional[DeliveryStatus] = None
    history: List[DeliveryStatus] = field(default_factory=list)

    @property
    def active(self) -> bool:
        return self.outcome is QueueOutcome.QUEUED


#: Delivery statuses the queue treats as retryable (temporary).
TEMPORARY = {
    DeliveryStatus.UNREACHABLE,
    DeliveryStatus.REFUSED_BY_POLICY,    # policy may get fixed
}
#: Permanent: bounce immediately.
PERMANENT = {
    DeliveryStatus.NO_MX,
    DeliveryStatus.REJECTED_BY_SERVER,
}


class MailQueue:
    """Outbound queue in front of any sender with a ``send(Message)``.

    The queue is clock-driven: callers advance the simulated clock and
    invoke :meth:`run_due` to process every entry whose retry time has
    arrived.
    """

    def __init__(self, sender, clock: Clock,
                 *, retry_schedule=DEFAULT_RETRY_SCHEDULE,
                 lifetime: Duration = DEFAULT_QUEUE_LIFETIME):
        self._sender = sender
        self._clock = clock
        self._schedule = tuple(retry_schedule)
        self._lifetime = lifetime
        self.entries: List[QueueEntry] = []
        self.delivered_count = 0
        self.bounced_count = 0

    # -- intake ----------------------------------------------------------

    def submit(self, message: Message) -> QueueEntry:
        """Accept a message and attempt immediate delivery."""
        now = self._clock.now()
        entry = QueueEntry(message=message, enqueued_at=now,
                           next_attempt_at=now)
        self.entries.append(entry)
        self._attempt(entry)
        return entry

    # -- processing --------------------------------------------------------

    def run_due(self) -> List[QueueEntry]:
        """Attempt every entry whose retry time has arrived."""
        now = self._clock.now()
        processed = []
        for entry in self.entries:
            if entry.active and entry.next_attempt_at <= now:
                self._attempt(entry)
                processed.append(entry)
        return processed

    def _attempt(self, entry: QueueEntry) -> None:
        attempt: DeliveryAttempt = self._sender.send(entry.message)
        entry.attempts += 1
        entry.last_status = attempt.status
        entry.history.append(attempt.status)

        if attempt.delivered:
            entry.outcome = QueueOutcome.DELIVERED
            self.delivered_count += 1
            return
        if attempt.status in PERMANENT:
            entry.outcome = QueueOutcome.BOUNCED
            self.bounced_count += 1
            return
        # Temporary failure: schedule the next retry, or bounce when
        # the schedule or the queue lifetime is exhausted.
        now = self._clock.now()
        retry_index = entry.attempts - 1
        if retry_index >= len(self._schedule):
            entry.outcome = QueueOutcome.BOUNCED
            self.bounced_count += 1
            return
        next_at = now + self._schedule[retry_index]
        if next_at - entry.enqueued_at > self._lifetime:
            entry.outcome = QueueOutcome.BOUNCED
            self.bounced_count += 1
            return
        entry.next_attempt_at = next_at

    # -- introspection ----------------------------------------------------------

    def pending(self) -> List[QueueEntry]:
        return [e for e in self.entries if e.active]

    def next_wakeup(self) -> Optional[Instant]:
        pending = self.pending()
        if not pending:
            return None
        return min(e.next_attempt_at for e in pending)

    def drain(self, *, max_steps: int = 64) -> None:
        """Advance the clock through every scheduled retry until the
        queue is empty or *max_steps* is hit (simulation helper)."""
        for _ in range(max_steps):
            wakeup = self.next_wakeup()
            if wakeup is None:
                return
            if wakeup > self._clock.now():
                self._clock.advance_to(wakeup)
            self.run_due()
