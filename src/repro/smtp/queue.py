"""A retrying mail queue.

Real MTAs do not give up on a 4xx: greylisted or temporarily failing
messages sit in a queue and retry on a backoff schedule until they
either deliver or exceed the queue lifetime and bounce.  The paper's
methodology touches this twice: greylisting MXes only reveal STARTTLS
on a retry (§4.1 footnote), and MTA-STS enforce-mode refusals are
*temporary* failures from the queue's perspective — the recipient may
fix their policy before the queue gives up, which is exactly what
saved most of the lucidgrow cohort ("the issue was quickly resolved").
"""

from __future__ import annotations

import enum
import inspect
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.clock import Clock, Duration, HOUR, Instant
from repro.smtp.delivery import DeliveryAttempt, DeliveryStatus, Message

#: Classic sendmail-style backoff: quick first retries, then hourly-ish.
DEFAULT_RETRY_SCHEDULE = (
    Duration(15 * 60), Duration(30 * 60), HOUR, 2 * HOUR, 4 * HOUR,
    8 * HOUR, 12 * HOUR, 24 * HOUR,
)
DEFAULT_QUEUE_LIFETIME = Duration(5 * 24 * 3600)    # five days


class QueueOutcome(enum.Enum):
    DELIVERED = "delivered"
    QUEUED = "queued"            # waiting for its next attempt
    BOUNCED = "bounced"          # permanent failure or lifetime exceeded


class QueueFull(RuntimeError):
    """Raised by :meth:`MailQueue.submit` when a bounded queue is at
    capacity — the caller must apply backpressure (hold the message
    back and resubmit once in-flight entries finalise)."""


@dataclass
class QueueEntry:
    message: Message
    enqueued_at: Instant
    next_attempt_at: Instant
    attempts: int = 0
    outcome: QueueOutcome = QueueOutcome.QUEUED
    last_status: Optional[DeliveryStatus] = None
    history: List[DeliveryStatus] = field(default_factory=list)
    #: Opaque caller bookkeeping (the delivery campaign stores the
    #: message's workload sequence number here).
    tag: Optional[object] = None

    @property
    def active(self) -> bool:
        return self.outcome is QueueOutcome.QUEUED


#: Delivery statuses the queue treats as retryable (temporary).
TEMPORARY = {
    DeliveryStatus.UNREACHABLE,
    DeliveryStatus.REFUSED_BY_POLICY,    # policy may get fixed
}
#: Permanent: bounce immediately.
PERMANENT = {
    DeliveryStatus.NO_MX,
    DeliveryStatus.REJECTED_BY_SERVER,
}


class MailQueue:
    """Outbound queue in front of any sender with a ``send(Message)``.

    The queue is clock-driven: callers advance the simulated clock and
    invoke :meth:`run_due` to process every entry whose retry time has
    arrived.
    """

    def __init__(self, sender, clock: Clock,
                 *, retry_schedule=DEFAULT_RETRY_SCHEDULE,
                 lifetime: Duration = DEFAULT_QUEUE_LIFETIME,
                 capacity: Optional[int] = None,
                 on_attempt: Optional[Callable[[QueueEntry,
                                                DeliveryAttempt],
                                               None]] = None):
        """*capacity* bounds the number of in-flight (active) entries;
        :meth:`submit` raises :class:`QueueFull` beyond it.  *on_attempt*
        observes every delivery attempt (the campaign records the
        sender's mechanism and per-wave counters through it)."""
        if capacity is not None and capacity < 1:
            raise ValueError("queue capacity must be a positive integer")
        self._sender = sender
        self._clock = clock
        self._schedule = tuple(retry_schedule)
        self._lifetime = lifetime
        self._capacity = capacity
        self._on_attempt = on_attempt
        # Senders that accept the retry ordinal get it passed through
        # (attempt-scoped fault injections then recover on retry, like
        # a real greylist); plain ``send(message)`` senders still work.
        try:
            parameters = inspect.signature(sender.send).parameters
        except (TypeError, ValueError):
            parameters = {}
        self._pass_attempt = "attempt" in parameters or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in parameters.values())
        self.entries: List[QueueEntry] = []
        self.delivered_count = 0
        self.bounced_count = 0

    # -- intake ----------------------------------------------------------

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    def has_capacity(self) -> bool:
        return (self._capacity is None
                or len(self.pending()) < self._capacity)

    def submit(self, message: Message, *,
               tag: Optional[object] = None) -> QueueEntry:
        """Accept a message and attempt immediate delivery."""
        if not self.has_capacity():
            raise QueueFull(
                f"queue for {getattr(self._sender, 'identity', '?')} is "
                f"at capacity ({self._capacity} in flight)")
        now = self._clock.now()
        entry = QueueEntry(message=message, enqueued_at=now,
                           next_attempt_at=now, tag=tag)
        self.entries.append(entry)
        self._attempt(entry)
        return entry

    # -- processing --------------------------------------------------------

    def run_due(self) -> List[QueueEntry]:
        """Attempt every entry whose retry time has arrived."""
        now = self._clock.now()
        processed = []
        for entry in self.entries:
            if entry.active and entry.next_attempt_at <= now:
                self._attempt(entry)
                processed.append(entry)
        return processed

    def _attempt(self, entry: QueueEntry) -> None:
        if self._pass_attempt:
            attempt: DeliveryAttempt = self._sender.send(
                entry.message, attempt=entry.attempts)
        else:
            attempt = self._sender.send(entry.message)
        entry.attempts += 1
        entry.last_status = attempt.status
        entry.history.append(attempt.status)
        if self._on_attempt is not None:
            self._on_attempt(entry, attempt)

        if attempt.delivered:
            entry.outcome = QueueOutcome.DELIVERED
            self.delivered_count += 1
            return
        if attempt.status in PERMANENT:
            entry.outcome = QueueOutcome.BOUNCED
            self.bounced_count += 1
            return
        # Temporary failure: schedule the next retry, or bounce when
        # the schedule or the queue lifetime is exhausted.
        now = self._clock.now()
        retry_index = entry.attempts - 1
        if retry_index >= len(self._schedule):
            entry.outcome = QueueOutcome.BOUNCED
            self.bounced_count += 1
            return
        next_at = now + self._schedule[retry_index]
        if next_at - entry.enqueued_at > self._lifetime:
            entry.outcome = QueueOutcome.BOUNCED
            self.bounced_count += 1
            return
        entry.next_attempt_at = next_at

    # -- introspection ----------------------------------------------------------

    def pending(self) -> List[QueueEntry]:
        return [e for e in self.entries if e.active]

    def pending_count(self) -> int:
        return sum(1 for e in self.entries if e.active)

    def next_wakeup(self, *,
                    granularity: Optional[Duration] = None
                    ) -> Optional[Instant]:
        """The earliest pending retry instant.

        With *granularity*, the instant is rounded **up** to the next
        multiple of that many seconds — a batched wake-up: thousands of
        queues whose retries land within the same window coalesce onto
        one shared wake-up instant instead of each demanding its own
        clock stop.  Retrying later than scheduled is always safe
        (:meth:`run_due` processes everything that has come due).
        """
        pending = self.pending()
        if not pending:
            return None
        earliest = min(e.next_attempt_at for e in pending)
        if granularity is None or granularity.seconds <= 1:
            return earliest
        step = granularity.seconds
        rounded = -(-earliest.epoch_seconds // step) * step
        return Instant(rounded)

    def drain(self, *, max_steps: int = 64) -> None:
        """Advance the clock through every scheduled retry until the
        queue is empty or *max_steps* is hit (simulation helper)."""
        for _ in range(max_steps):
            wakeup = self.next_wakeup()
            if wakeup is None:
                return
            if wakeup > self._clock.now():
                self._clock.advance_to(wakeup)
            self.run_due()
