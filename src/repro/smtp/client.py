"""The instrumented SMTP scanning client (paper §4.1).

The probe reproduces the paper's measurement steps exactly:

(a) connect from a host with forward-confirmed reverse DNS;
(b) EHLO with a name matching that reverse DNS, falling back to HELO
    when EHLO is unsupported, and note whether STARTTLS is offered;
(c) issue STARTTLS and retrieve the server certificate (without
    aborting on validation failure — the certificate is analysed
    offline);
(d) close without delivering mail.

The :class:`ProbeResult` carries both the raw certificate and its
offline PKIX verdict so the measurement layer can build Figures 6/7.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import trace
from repro.clock import Clock
from repro.dns.name import DnsName, canonical_host
from repro.dns.records import RRType
from repro.dns.resolver import Resolver
from repro.errors import DnsError, NetworkError, TlsError, TlsFailure
from repro.netsim.ip import IpAddress
from repro.netsim.network import Network
from repro.netsim.retry import (
    DEFAULT_RETRY_POLICY, RetryPolicy, connect_with_retries,
)
from repro.pki.ca import TrustStore
from repro.pki.certificate import Certificate
from repro.pki.validation import (
    ValidationResult, classify_failure, validate_chain_cached,
)
from repro.smtp.server import (
    SMTP_PORT, MxHost, speaks_smtp as _speaks_smtp,
)
from repro.tls.handshake import handshake


@dataclass
class ProbeResult:
    """Everything one STARTTLS probe of one MX host learned."""

    mx_hostname: str
    reachable: bool = False
    ehlo_code: Optional[int] = None
    used_helo_fallback: bool = False
    starttls_offered: bool = False
    greylisted: bool = False
    certificate: Optional[Certificate] = None
    tls_failure: Optional[TlsFailure] = None
    validation: Optional[ValidationResult] = None
    detail: str = ""
    #: The probe failed on a fault-injected transient error that
    #: survived the retry budget; a host that recovered within the
    #: budget produces a result indistinguishable from a healthy one.
    transient: bool = False

    @property
    def tls_established(self) -> bool:
        return self.certificate is not None

    @property
    def cert_valid(self) -> bool:
        return self.validation is not None and self.validation.valid

    def failure_class(self) -> str:
        """The paper's per-MX error bucket (valid/cn-mismatch/...)."""
        if not self.reachable:
            return "unreachable"
        if not self.starttls_offered:
            return "no-starttls"
        if self.tls_failure is not None and self.certificate is None:
            return "tls-" + self.tls_failure.value
        if self.validation is None:
            return "not-validated"
        return classify_failure(self.validation)


class SmtpProbe:
    """Scans MX hosts over the simulated network."""

    def __init__(self, network: Network, resolver: Resolver,
                 trust_store: TrustStore, clock: Clock,
                 *, client_name: str = "scanner.netsecurelab.org",
                 client_ip: IpAddress | None = None,
                 retry_greylist: bool = True,
                 cache_enabled: bool = False,
                 retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY):
        self._network = network
        self._resolver = resolver
        self._trust_store = trust_store
        self._clock = clock
        self._retry_policy = retry_policy
        self.client_name = client_name
        #: The scanner's own address; with forward and PTR records
        #: published for (client_name, client_ip) the probe satisfies
        #: FCrDNS-checking MTAs, per the §4.1 methodology.
        self.client_ip = client_ip
        self.retry_greylist = retry_greylist
        #: Per-snapshot memoization: thousands of domains share the same
        #: provider MX hosts (aspmx.l.google.com &c), and a host's probe
        #: outcome is a function of the host, not of the domain pointing
        #: at it — so each hostname is probed once per scan snapshot.
        #: Off by default because a cached result goes stale the moment
        #: simulated infrastructure mutates; the scan drivers
        #: (:class:`~repro.measurement.executor.ScanExecutor`,
        #: ``Scanner.scan_all``) enable it for the duration of one
        #: snapshot scan and flush it between snapshots.
        self.cache_enabled = cache_enabled
        self._cache: Dict[str, ProbeResult] = {}
        self._cache_lock = threading.Lock()
        self.probes_performed = 0
        self.cache_hits = 0
        #: Optional shard-scan journal (process backend): each *settled*
        #: probe execution — the memoizable work a sibling worker may
        #: duplicate — is recorded with its network/DNS/PKIX cost so the
        #: parent can merge per-worker counters back to serial-exact
        #: totals.  Only consulted on the memoized path; single-threaded
        #: use only.
        self.journal = None

    def probe_host(self, mx_hostname: str | DnsName) -> ProbeResult:
        """Probe one MX hostname: resolve, connect, EHLO, STARTTLS.

        With :attr:`cache_enabled` set, a hostname is probed at most
        once between :meth:`flush_cache` calls; repeat calls return the
        memoized :class:`ProbeResult`.  The lock makes the memoization
        compute-once under the threaded scan backend, so every backend
        observes an identical per-host probe sequence.
        """
        name_text = canonical_host(mx_hostname)
        tracer = trace.current_tracer() if trace.TRACING else None
        if not self.cache_enabled:
            self.probes_performed += 1
            if tracer is None:
                return self._probe_uncached(name_text)
            tracer.metrics.count("smtp.probes")
            with tracer.resource(f"probe:{name_text}", "smtp-probe",
                                 name_text):
                return self._probe_uncached(name_text)
        with self._cache_lock:
            cached = self._cache.get(name_text)
            if cached is not None:
                self.cache_hits += 1
                if tracer is not None:
                    tracer.metrics.count("smtp.cache_hits")
                return cached
            self.probes_performed += 1
            journal = self.journal
            token = journal.probe_started() if journal is not None else None
            if tracer is None:
                result = self._probe_uncached(name_text)
            else:
                tracer.metrics.count("smtp.probes")
                with tracer.resource(f"probe:{name_text}", "smtp-probe",
                                     name_text):
                    result = self._probe_uncached(name_text)
            if journal is not None:
                journal.probe_finished(name_text, result.transient, token)
            # A retry-exhausted transient verdict says nothing durable
            # about the host — memoizing it would serve a stale failure
            # after the endpoint recovers, so only settled outcomes
            # (success or deterministic hard failure) are cached.
            if not result.transient:
                self._cache[name_text] = result
            return result

    def flush_cache(self) -> None:
        with self._cache_lock:
            self._cache.clear()

    def cache_stats(self) -> Dict[str, int | float]:
        lookups = self.probes_performed + self.cache_hits
        return {
            "probes": self.probes_performed,
            "cache_hits": self.cache_hits,
            "hit_rate": self.cache_hits / lookups if lookups else 0.0,
            "entries": len(self._cache),
        }

    def reset_stats(self) -> None:
        self.probes_performed = 0
        self.cache_hits = 0

    def _probe_uncached(self, name_text: str) -> ProbeResult:
        result = ProbeResult(mx_hostname=name_text)

        try:
            name = DnsName.parse(name_text)
            addresses = self._resolver.resolve_address(name)
        except (ValueError, DnsError) as exc:
            result.detail = f"dns: {exc}"
            result.transient = getattr(exc, "transient", False)
            trace.event("probe-dns", outcome=str(exc),
                        transient=result.transient)
            return result
        trace.event("probe-dns", outcome=f"ok:{len(addresses)}")

        server = None
        for address in addresses:
            try:
                server = connect_with_retries(
                    self._network, address, SMTP_PORT,
                    policy=self._retry_policy,
                    key=f"smtp:{name_text}:{address.text}")
                break
            except NetworkError as exc:
                result.detail = f"tcp: {exc}"
                result.transient = getattr(exc, "transient", False)
        if not _speaks_smtp(server):
            trace.event("probe-tcp", outcome=result.detail or "no-smtp",
                        transient=result.transient)
            return result
        result.reachable = True
        result.transient = False
        trace.event("probe-tcp", outcome="connected")

        server.greet()
        ehlo = server.ehlo(self.client_name, self.client_ip)
        if ehlo.code == 451:
            result.greylisted = True
            trace.event("greylisted", retry=self.retry_greylist)
            if not self.retry_greylist:
                result.ehlo_code = ehlo.code
                result.detail = "greylisted"
                return result
            # retry after greylist
            ehlo = server.ehlo(self.client_name, self.client_ip)
        if ehlo.code == 554:
            result.ehlo_code = ehlo.code
            result.detail = "rejected (FCrDNS policy)"
            trace.event("ehlo", code=ehlo.code, outcome="rejected")
            return result
        if ehlo.code == 502:
            result.used_helo_fallback = True
            ehlo = server.helo(self.client_name)
            trace.event("helo-fallback", code=ehlo.code)
        result.ehlo_code = ehlo.code
        result.starttls_offered = ehlo.starttls_offered
        trace.event("ehlo", code=ehlo.code,
                    starttls=ehlo.starttls_offered)
        if not ehlo.starttls_offered:
            result.detail = "starttls not offered"
            return result

        # STARTTLS: retrieve the certificate without inline validation,
        # then validate offline (the scanner never aborts on a bad cert).
        try:
            session = handshake(server.starttls_endpoint(), name_text)
        except TlsError as exc:
            result.tls_failure = exc.failure
            result.detail = str(exc)
            trace.event("starttls", outcome=exc.failure.value)
            return result
        result.certificate = session.certificate
        result.validation = validate_chain_cached(
            session.certificate, name_text, self._trust_store,
            self._clock.now())
        trace.event("starttls", outcome="established",
                    verdict=result.failure_class())
        return result

    def probe_domain(self, domain: str | DnsName) -> list[ProbeResult]:
        """Probe every MX of *domain* (or its apex A record fallback)."""
        if isinstance(domain, str):
            domain = DnsName.parse(domain)
        mx_answer = self._resolver.try_resolve(domain, RRType.MX)
        hostnames: list[str] = []
        if mx_answer is not None:
            records = sorted(mx_answer.records,
                             key=lambda r: (r.preference, r.exchange.text))  # type: ignore[attr-defined]
            hostnames = [r.exchange.text for r in records]  # type: ignore[attr-defined]
        else:
            # Implicit MX: fall back to the apex A/AAAA record (§2.2.3).
            apex = self._resolver.try_resolve(domain, RRType.A)
            if apex is not None:
                hostnames = [domain.text]
        return [self.probe_host(h) for h in hostnames]
