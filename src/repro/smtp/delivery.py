"""A sending MTA.

:class:`SendingMta` performs the plain SMTP delivery pipeline: resolve
the recipient's MXes, try them in preference order, negotiate STARTTLS
opportunistically, and hand the message over.  Security policy (MTA-STS
or DANE) is plugged in by :mod:`repro.core.sender` through the
``security_gate`` hook — this module stays protocol-only so that the
"opportunistic TLS" senders in §6.2 (93.2% of the sender population)
are just a :class:`SendingMta` with no gate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.clock import Clock
from repro.dns.name import DnsName, canonical_host
from repro.dns.records import RRType
from repro.dns.resolver import Resolver
from repro.errors import (
    ConnectionRefused, ConnectionReset, ConnectionTimeout, DnsError,
    TlsError,
)
from repro.netsim.network import Network
from repro.pki.ca import TrustStore
from repro.pki.certificate import Certificate
from repro.pki.validation import validate_chain
from repro.smtp.server import (
    SMTP_PORT, MxHost, speaks_smtp as _speaks_smtp,
)
from repro.tls.handshake import handshake


class DeliveryStatus(enum.Enum):
    DELIVERED = "delivered"
    DELIVERED_PLAINTEXT = "delivered-plaintext"
    REFUSED_BY_POLICY = "refused-by-policy"     # our side refused (enforce)
    REJECTED_BY_SERVER = "rejected-by-server"   # 5xx from the MX
    NO_MX = "no-mx"
    UNREACHABLE = "unreachable"


@dataclass(frozen=True)
class Message:
    sender: str
    recipient: str
    body: str = ""

    @property
    def recipient_domain(self) -> str:
        # canonical_host, not .lower(): the policy matcher and the
        # mismatch classifier both casefold (ẞ → ss, İ → i̇), so the
        # domain a delivery routes on must fold the same way or a
        # recipient spelled with a non-trivial case mapping would fetch
        # policies under one name and match mx patterns under another.
        return canonical_host(self.recipient.rsplit("@", 1)[-1])


@dataclass
class MxAttempt:
    """What happened at one candidate MX host."""

    mx_hostname: str
    connected: bool = False
    starttls: bool = False
    certificate: Optional[Certificate] = None
    cert_valid: bool = False
    gate_verdict: str = ""
    smtp_code: Optional[int] = None
    detail: str = ""


@dataclass
class DeliveryAttempt:
    """The full outcome of delivering one message."""

    message: Message
    status: DeliveryStatus
    attempts: List[MxAttempt] = field(default_factory=list)
    detail: str = ""

    @property
    def delivered(self) -> bool:
        return self.status in (DeliveryStatus.DELIVERED,
                               DeliveryStatus.DELIVERED_PLAINTEXT)


# A security gate inspects a candidate MX before and after STARTTLS.
# Returning (allow, require_tls, detail): see repro.core.sender.
GateDecision = tuple


class SendingMta:
    """A sender with pluggable transport-security policy.

    Parameters
    ----------
    require_pkix:
        When True the sender refuses any MX whose certificate fails
        PKIX validation, regardless of MTA-STS/DANE (the 1.3% of
        senders §6.2 found that always require valid certificates).
    security_gate:
        Optional callable ``gate(domain, mx_hostname, certificate) ->
        (allow, detail)`` consulted once the TLS handshake (if any)
        has completed.  MTA-STS enforcement lives here.
    mx_preflight:
        Optional callable ``preflight(domain, mx_hostname) -> (allow,
        detail)`` consulted before connecting, used for MTA-STS mx
        pattern matching.
    """

    def __init__(self, identity: str, network: Network, resolver: Resolver,
                 trust_store: TrustStore, clock: Clock,
                 *, require_pkix: bool = False,
                 opportunistic_tls: bool = True,
                 security_gate: Optional[Callable] = None,
                 mx_preflight: Optional[Callable] = None):
        self.identity = identity
        self._network = network
        self._resolver = resolver
        self._trust_store = trust_store
        self._clock = clock
        self.require_pkix = require_pkix
        self.opportunistic_tls = opportunistic_tls
        self.security_gate = security_gate
        self.mx_preflight = mx_preflight
        self._attempt_index = 0

    # -- MX selection -------------------------------------------------------

    def lookup_mx(self, domain: str | DnsName) -> List[str]:
        if isinstance(domain, str):
            domain = DnsName.parse(domain)
        answer = self._resolver.try_resolve(domain, RRType.MX)
        if answer is not None:
            records = sorted(
                answer.records,
                key=lambda r: (r.preference, r.exchange.text))  # type: ignore[attr-defined]
            return [r.exchange.text for r in records]  # type: ignore[attr-defined]
        if self._resolver.try_resolve(domain, RRType.A) is not None:
            return [domain.text]
        return []

    # -- delivery -------------------------------------------------------------

    def send(self, message: Message, *, attempt: int = 0) -> DeliveryAttempt:
        """Deliver one message.

        *attempt* is the retry ordinal the caller's queue is on (0 for
        the first try); it is threaded into every TCP connect so
        attempt-scoped fault injections (refuse-twice, greylist-style
        timeouts) recover on a later queue retry exactly as they would
        for a real MTA.
        """
        self._attempt_index = attempt
        domain = message.recipient_domain
        if not domain:
            return DeliveryAttempt(
                message, DeliveryStatus.NO_MX,
                detail=f"unroutable recipient {message.recipient!r}")
        mx_hosts = self.lookup_mx(domain)
        if not mx_hosts:
            return DeliveryAttempt(message, DeliveryStatus.NO_MX,
                                   detail=f"no MX or A record for {domain}")

        outcome = DeliveryAttempt(message, DeliveryStatus.UNREACHABLE)
        policy_refusals = 0
        for mx_hostname in mx_hosts:
            attempt = MxAttempt(mx_hostname=mx_hostname)
            outcome.attempts.append(attempt)

            if self.mx_preflight is not None:
                allow, detail = self.mx_preflight(domain, mx_hostname)
                attempt.gate_verdict = detail
                if not allow:
                    attempt.detail = f"preflight refused: {detail}"
                    policy_refusals += 1
                    continue

            server = self._connect(mx_hostname, attempt)
            if server is None:
                continue

            certificate = self._negotiate_tls(server, mx_hostname, attempt)
            if self.require_pkix and not attempt.cert_valid:
                attempt.detail = "PKIX required but certificate invalid"
                policy_refusals += 1
                continue

            if self.security_gate is not None:
                allow, detail = self.security_gate(
                    domain, mx_hostname, certificate)
                attempt.gate_verdict = detail
                if not allow:
                    attempt.detail = f"gate refused: {detail}"
                    policy_refusals += 1
                    continue

            over_tls = certificate is not None
            code, reply = server.accept_message(
                message.sender, message.recipient, message.body,
                over_tls=over_tls)
            attempt.smtp_code = code
            if code == 250:
                outcome.status = (DeliveryStatus.DELIVERED if over_tls
                                  else DeliveryStatus.DELIVERED_PLAINTEXT)
                return outcome
            attempt.detail = reply
            outcome.status = DeliveryStatus.REJECTED_BY_SERVER

        if policy_refusals and not outcome.delivered:
            if all(a.detail.startswith(("preflight refused", "gate refused",
                                        "PKIX required"))
                   for a in outcome.attempts if a.detail):
                outcome.status = DeliveryStatus.REFUSED_BY_POLICY
                outcome.detail = "every MX refused by transport policy"
        return outcome

    # -- helpers ----------------------------------------------------------------

    def _connect(self, mx_hostname: str, attempt: MxAttempt) -> Optional[MxHost]:
        try:
            name = DnsName.parse(mx_hostname)
            addresses = self._resolver.resolve_address(name)
        except (ValueError, DnsError) as exc:
            attempt.detail = f"dns: {exc}"
            return None
        for address in addresses:
            try:
                server = self._network.connect(address, SMTP_PORT,
                                               attempt=self._attempt_index)
            except (ConnectionRefused, ConnectionReset,
                    ConnectionTimeout) as exc:
                attempt.detail = f"tcp: {exc}"
                continue
            if _speaks_smtp(server):
                attempt.connected = True
                server.greet()
                return server
        return None

    def _negotiate_tls(self, server: MxHost, mx_hostname: str,
                       attempt: MxAttempt) -> Optional[Certificate]:
        ehlo = server.ehlo(self.identity)
        if ehlo.code == 451:
            ehlo = server.ehlo(self.identity)
        if ehlo.code == 502:
            ehlo = server.helo(self.identity)
        if not ehlo.starttls_offered or not self.opportunistic_tls:
            return None
        try:
            session = handshake(server.starttls_endpoint(), mx_hostname)
        except TlsError as exc:
            attempt.detail = f"tls: {exc}"
            return None
        attempt.starttls = True
        attempt.certificate = session.certificate
        validation = validate_chain(session.certificate, mx_hostname,
                                    self._trust_store, self._clock.now())
        attempt.cert_valid = validation.valid
        return session.certificate
