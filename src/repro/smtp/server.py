"""Simulated MX hosts.

An :class:`MxHost` speaks enough SMTP for the paper's methodology:
EHLO (falling back to HELO), STARTTLS capability advertisement, the
STARTTLS transition presenting a certificate, and mail acceptance.
Behaviour toggles reproduce the operational quirks §4.1 footnotes:
greylisting (temporary 4xx before STARTTLS can be probed) and servers
that hide STARTTLS from unknown peers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.dns.name import DnsName, canonical_host
from repro.netsim.ip import IpAddress
from repro.netsim.network import Network
from repro.tls.handshake import TlsEndpoint

SMTP_PORT = 25

_SMTP_VERBS = ("greet", "ehlo", "helo", "starttls_endpoint",
               "accept_message")


def speaks_smtp(obj) -> bool:
    """Structural check for the MX-host interface.

    Clients use this rather than ``isinstance(obj, MxHost)`` so that
    transparent proxies — such as the STARTTLS-stripping attacker in
    :mod:`repro.attacks.mitm` — are indistinguishable from real
    servers, exactly as they are on the wire.
    """
    return obj is not None and all(hasattr(obj, verb)
                                   for verb in _SMTP_VERBS)


@dataclass(frozen=True)
class EhloResponse:
    """The server's EHLO/HELO reply."""

    code: int
    hostname: str
    extensions: tuple[str, ...] = ()

    @property
    def starttls_offered(self) -> bool:
        return "STARTTLS" in self.extensions


@dataclass
class StoredMessage:
    sender: str
    recipient: str
    body: str
    over_tls: bool


class MxHost:
    """One inbound mail server, addressable by one or more hostnames."""

    def __init__(self, hostname: str | DnsName, ip: IpAddress,
                 network: Network, *, tls: Optional[TlsEndpoint] = None,
                 ehlo_supported: bool = True):
        self.hostname = canonical_host(
            hostname.text if isinstance(hostname, DnsName) else hostname)
        self.ip = ip
        self.tls = tls if tls is not None else TlsEndpoint()
        self.ehlo_supported = ehlo_supported
        self.greylist_first_contact = False
        self.hide_starttls_from_unknown = False
        self.reject_all_mail = False       # Tutanota's opted-out behaviour
        #: When set (to a Resolver), EHLO clients must pass the FCrDNS
        #: check: their IP's PTR names the EHLO hostname and that name
        #: resolves back to the IP.  §4.1's scanner is built to satisfy
        #: exactly this.
        self.require_fcrdns_with: Optional[object] = None
        self._seen_peers: Set[str] = set()
        self.mailbox: List[StoredMessage] = []
        self.session_count = 0
        network.register(ip, SMTP_PORT, self, description=f"smtp:{self.hostname}")

    # -- SMTP verbs -----------------------------------------------------------

    def greet(self) -> tuple[int, str]:
        self.session_count += 1
        return 220, f"{self.hostname} ESMTP ready"

    def ehlo(self, client_name: str,
             client_ip: Optional[IpAddress] = None) -> EhloResponse:
        """EHLO; servers without ESMTP answer 502 so clients fall back."""
        if not self.ehlo_supported:
            return EhloResponse(502, self.hostname)
        if self.require_fcrdns_with is not None:
            from repro.dns.reverse import fcrdns_check
            if client_ip is None:
                return EhloResponse(554, self.hostname)
            result = fcrdns_check(self.require_fcrdns_with, client_ip,
                                  client_name)
            if not result.passed:
                return EhloResponse(554, self.hostname)
        if self.greylist_first_contact and client_name not in self._seen_peers:
            self._seen_peers.add(client_name)
            return EhloResponse(451, self.hostname)
        extensions = ["PIPELINING", "8BITMIME", "SIZE 52428800"]
        offer_tls = self.tls.enabled
        if self.hide_starttls_from_unknown and client_name not in self._seen_peers:
            offer_tls = False
        self._seen_peers.add(client_name)
        if offer_tls:
            extensions.append("STARTTLS")
        return EhloResponse(250, self.hostname, tuple(extensions))

    def helo(self, client_name: str) -> EhloResponse:
        """Plain HELO: no extension advertisement at all."""
        self._seen_peers.add(client_name)
        return EhloResponse(250, self.hostname)

    def starttls_endpoint(self) -> TlsEndpoint:
        """The TLS configuration used after the STARTTLS command."""
        return self.tls

    def accept_message(self, sender: str, recipient: str, body: str,
                       *, over_tls: bool) -> tuple[int, str]:
        if self.reject_all_mail:
            return 550, "5.7.1 recipient service discontinued"
        self.mailbox.append(StoredMessage(sender, recipient, body, over_tls))
        return 250, "2.0.0 message accepted"
