"""Simulated SMTP: MX hosts, an instrumented scanner, and mail delivery."""

from repro.smtp.server import MxHost, SMTP_PORT, EhloResponse
from repro.smtp.client import SmtpProbe, ProbeResult
from repro.smtp.delivery import (
    DeliveryAttempt, DeliveryStatus, Message, SendingMta,
)
from repro.smtp.queue import MailQueue, QueueEntry, QueueOutcome

__all__ = [
    "MxHost", "SMTP_PORT", "EhloResponse",
    "SmtpProbe", "ProbeResult",
    "DeliveryAttempt", "DeliveryStatus", "Message", "SendingMta",
    "MailQueue", "QueueEntry", "QueueOutcome",
]
