"""Command-line interface.

``python -m repro.cli <command>``:

* ``lint-record "<txt>"``       — validate an ``_mta-sts`` TXT string;
* ``lint-policy <file|->``      — validate a policy file;
* ``check-zone <zonefile> <domain> [--policy FILE]`` — offline
  assessment of a domain's MTA-STS posture from its zone file;
* ``plan-removal <max_age_seconds>`` — print the RFC 8461 §2.6 removal
  sequence for a policy with the given max_age;
* ``audit [--scale S] [--backend B --jobs N] [--stats [--json]]
  [--fault-seed N --fault-rate R] [--trace FILE]
  [--explain DOMAIN] [--metrics-out FILE] [--profile]
  [--progress] [--save DIR | --load DIR]`` — run the
  synthetic-ecosystem scan for the final snapshot and print the
  misconfiguration census (``--backend`` picks serial, threaded, or
  process-parallel execution — all byte-identical — and ``--jobs 0``
  auto-detects one worker per CPU core; with ``--stats``, the
  per-stage scan statistics — as machine-readable JSON with
  ``--json``; with
  ``--fault-seed``, deterministic network faults injected into the
  scan; with ``--trace``, one JSONL span tree per scanned domain;
  with ``--explain``, the human-readable span tree for one domain;
  with ``--metrics-out``, the scan's metrics as a Prometheus
  exposition; with ``--profile``, a wall-clock stage profile; with
  ``--progress``, live heartbeats on stderr; with ``--save``, the
  scanned month committed into a campaign store; with ``--load``,
  the census runs offline from a saved store without scanning);
* ``campaign [--scale S] [--backend B --jobs N]
  [--metrics-out FILE] [--progress] [--state-dir DIR [--resume]]
  [--fault-seed N --fault-rate R]`` — run the full monthly scan
  campaign with the health monitor attached, write the monthly
  metrics JSONL, and print the month-over-month health report
  (exit 1 on any ALERT; with ``--state-dir``, each completed month
  is committed atomically and ``--resume`` continues a killed run
  from the last committed month);
* ``campaign deliver [--scale S] [--senders N --messages-per-sender M]
  [--backend serial|threaded --jobs N] [--backpressure N]
  [--wakeup-seconds S] [--fault-seed N --fault-rate R]
  [--ledger-out FILE] [--metrics-out FILE] [--tlsrpt-out DIR]
  [--progress] [--state-dir DIR [--resume]]`` — run the
  campaign-scale delivery engine: a §6.2-profiled sender population
  queues messages against the materialised world under per-delivery
  MTA-STS enforcement, emitting a canonical delivery ledger, per-wave
  metrics, and a delivery health report (exit 1 on any ALERT; serial
  and threaded backends are byte-identical; with ``--tlsrpt-out``,
  the senders additionally run the RFC 8460 reporting pipeline —
  daily aggregate reports delivered to each recipient's published
  ``rua`` endpoints through the simulated world — and the received
  reports plus the operator-side ingestion monitor's window JSONL
  are written into DIR);
* ``tlsrpt <FILE|DIR> [--monitor-out FILE]`` — ingest a saved TLSRPT
  report feed (``reports.jsonl``, or a directory holding one as
  written by ``campaign deliver --tlsrpt-out``) and print the
  operator census — reports, sessions, failures by RFC 8460 result
  type, top failing sending MTAs — plus the per-window health
  report (exit 1 on any ALERT, exit 2 when no reports exist);
* ``serve [--scale S] [--requests N --batch-size B]
  [--month M --months K] [--backend serial|threaded --jobs N]
  [--ttl-seconds T --min-ttl-seconds T] [--zipf-s S]
  [--flash-every K --flash-size N] [--metrics-out FILE]
  [--prom-out FILE] [--progress]`` — replay a seeded open-internet
  query mix against the MTA-STS policy-checker service: verdicts
  computed through the scanner's single-domain path, cached in a
  single-flight TTL verdict cache, with per-window hit-rate, p99
  virtual latency, and stampede fan-in metrics plus a service
  health report (exit 1 on any ALERT; serial and threaded backends
  emit byte-identical metrics feeds);
* ``monitor FILE|DIR`` — re-evaluate a saved monthly metrics JSONL
  feed, or a campaign store directory, against (configurable)
  health thresholds (exit 1 on any ALERT);
* ``survey``                    — print the §7.2 survey statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.policy import check_policy_text
from repro.core.record import parse_sts_record
from repro.dns.name import canonical_host
from repro.errors import RecordError


def _cmd_lint_record(args) -> int:
    try:
        record = parse_sts_record(args.record)
    except RecordError as exc:
        print(f"INVALID ({exc.kind.value}): {exc}")
        return 1
    print(f"OK: version={record.version} id={record.id}"
          + (f" extensions={dict(record.extensions)}"
             if record.extensions else ""))
    return 0


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _cmd_lint_policy(args) -> int:
    check = check_policy_text(_read_text(args.file))
    if check.valid:
        policy = check.policy
        print(f"OK: mode={policy.mode.value} max_age={policy.max_age} "
              f"mx={list(policy.mx_patterns)}")
        for kind, detail in zip(check.warnings, check.warning_details):
            print(f"WARNING ({kind.value}): {detail}")
        return 0
    for kind, detail in zip(check.errors, check.details):
        print(f"INVALID ({kind.value}): {detail}")
    return 1


def _cmd_check_zone(args) -> int:
    from repro.measurement.offline import assess_zone

    policy_text = _read_text(args.policy) if args.policy else None
    assessment = assess_zone(_read_text(args.zonefile), args.domain,
                             policy_text, origin=args.origin)
    for finding in assessment.findings:
        print(finding.render())
    if assessment.ok:
        print(f"{args.domain}: no errors found")
        return 0
    print(f"{args.domain}: {len(assessment.errors)} error(s)")
    return 1


def _cmd_plan_removal(args) -> int:
    from repro.core.lifecycle import plan_removal
    from repro.core.policy import Policy, PolicyMode

    previous = Policy(version="STSv1", mode=PolicyMode.ENFORCE,
                      max_age=args.max_age, mx_patterns=("mx.example",))
    plan = plan_removal(args.domain, previous)
    print(f"RFC 8461 removal sequence for {args.domain} "
          f"(previous max_age={args.max_age}s):")
    for i, step in enumerate(plan.steps, start=1):
        extra = ""
        if step.wait is not None:
            extra = f" ({step.wait.seconds}s)"
        print(f"  {i}. {step.kind.value}{extra} — {step.note}")
    return 0


def _cmd_audit(args) -> int:
    import json

    from repro.ecosystem.population import PopulationConfig
    from repro.errors import StoreCorruption
    from repro.measurement.classify import EntityClassifier
    from repro.measurement.executor import ScanExecutor, ScanStats
    from repro.measurement.taxonomy import snapshot_summary

    if args.json and not args.stats:
        print("error: --json requires --stats", file=sys.stderr)
        return 2
    if args.load:
        for flag, name in ((args.trace, "--trace"),
                           (args.explain, "--explain"),
                           (args.profile, "--profile"),
                           (args.progress, "--progress"),
                           (args.fault_seed, "--fault-seed")):
            if flag:
                print(f"error: {name} requires a live scan and cannot "
                      f"be combined with --load", file=sys.stderr)
                return 2
    if args.columnar and not args.load:
        print("error: --columnar requires --load", file=sys.stderr)
        return 2
    if args.columnar and args.show_repairs:
        print("error: --show-repairs needs snapshot objects and cannot "
              "be combined with --columnar", file=sys.stderr)
        return 2

    # With --json, stdout carries exactly one machine-readable JSON
    # document; everything informational moves to stderr.
    info_stream = sys.stderr if args.json else sys.stdout

    def info(*values, **kwargs) -> None:
        print(*values, file=info_stream, **kwargs)

    if args.load and args.columnar:
        # Offline, columnar: the month shard is decoded straight into
        # per-field columns — no DomainSnapshot objects — and every
        # printed line is byte-identical to the object path's.
        from repro.measurement.columnar import (
            ColumnarStore, snapshot_summary_view, taxonomy_census_view,
        )
        try:
            cstore = ColumnarStore.from_state_dir(args.load)
        except StoreCorruption as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        committed = cstore.months()
        if not committed:
            print(f"error: {args.load} holds no committed months",
                  file=sys.stderr)
            return 1
        month = (args.month if args.month is not None
                 else committed[-1])
        if month not in cstore.entries:
            print(f"error: month {month} is not committed in {args.load} "
                  f"(committed: {committed})", file=sys.stderr)
            return 1
        entry = cstore.entries[month]
        try:
            view = cstore.month_view(month)
        except StoreCorruption as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        stats = ScanStats.from_dict(entry.stats)
        summary = snapshot_summary_view(view)
        if args.metrics_out:
            from repro.obs.exporters import prometheus_exposition
            from repro.obs.monitor import build_month_registry
            from repro.fsutil import atomic_write_text
            registry = build_month_registry(
                stats, build_stats=entry.build_stats,
                bucket_census=taxonomy_census_view(view))
            atomic_write_text(args.metrics_out, prometheus_exposition(
                registry, labels={"month": str(month)}))
            info(f"metrics: {len(registry.counters)} series -> "
                 f"{args.metrics_out}")
        info(f"snapshot {entry.date} (loaded from {args.load})")
    elif args.load:
        # Offline: everything below runs from the checkpointed store,
        # no world is built and nothing is scanned.
        from repro.measurement.store_io import load_state
        try:
            state = load_state(args.load)
        except StoreCorruption as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if not state.months:
            print(f"error: {args.load} holds no committed months",
                  file=sys.stderr)
            return 1
        month = (args.month if args.month is not None
                 else state.month_indexes()[-1])
        entry = state.entry(month)
        if entry is None:
            print(f"error: month {month} is not committed in {args.load} "
                  f"(committed: {state.month_indexes()})", file=sys.stderr)
            return 1
        snapshots = state.store.month(month)
        stats = ScanStats.from_dict(entry.stats)
        summary = snapshot_summary(
            snapshots, EntityClassifier(snapshots).classify_all())
        if args.metrics_out:
            from repro.obs.exporters import prometheus_exposition
            from repro.obs.monitor import build_month_registry
            from repro.fsutil import atomic_write_text
            registry = build_month_registry(stats, snapshots,
                                            build_stats=entry.build_stats)
            atomic_write_text(args.metrics_out, prometheus_exposition(
                registry, labels={"month": str(month)}))
            info(f"metrics: {len(registry.counters)} series -> "
                 f"{args.metrics_out}")
        info(f"snapshot {entry.date} (loaded from {args.load})")
    else:
        # Live: every backend runs through scan_population, which owns
        # materialisation (shard-scoped under the process backend) and
        # installs the seeded fault plan after the world is built, so
        # only scan traffic is faulted — never the deployment/ACME
        # exchanges.
        population = PopulationConfig(scale=args.scale, seed=args.seed)
        tracing = bool(args.trace or args.explain)
        progress = None
        if args.progress:
            from repro.obs.progress import ProgressPrinter
            progress = ProgressPrinter()
        try:
            executor = ScanExecutor(backend=args.backend,
                                    jobs=_resolve_jobs(args.jobs,
                                                       args.backend),
                                    trace=tracing, profile=args.profile,
                                    progress=progress)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = executor.scan_population(
            population, args.month,
            fault_seed=args.fault_seed, fault_rate=args.fault_rate)
        store, stats, month = result.store, result.stats, result.month_index
        if args.trace:
            records = executor.last_trace.write_jsonl(args.trace)
            info(f"trace: {records} records -> {args.trace}")
        if args.explain:
            info(executor.last_trace.explain(canonical_host(args.explain)))
            info()
        snapshots = store.month(month)
        summary = snapshot_summary(
            snapshots, EntityClassifier(snapshots).classify_all())
        if args.save:
            from repro.ecosystem.timeline import population_to_dict
            from repro.measurement.store_io import commit_month
            commit_month(args.save, store, month,
                         date=result.instant.date_string(),
                         stats=stats.as_dict(),
                         build_stats=result.build_stats,
                         population=population_to_dict(population))
            info(f"store: month {month} committed -> {args.save}")
        if args.metrics_out:
            from repro.obs.exporters import prometheus_exposition
            from repro.obs.monitor import build_month_registry
            from repro.fsutil import atomic_write_text
            registry = build_month_registry(stats, snapshots)
            atomic_write_text(args.metrics_out, prometheus_exposition(
                registry, labels={"month": str(month)}))
            info(f"metrics: {len(registry.counters)} series -> "
                 f"{args.metrics_out}")
        info(f"snapshot {result.instant.date_string()} "
             f"(scale={args.scale})")
        if result.worker_peak_rss_kib:
            info(f"  worker peak RSS      : "
                 f"{max(result.worker_peak_rss_kib) / 1024:.1f} MiB "
                 f"(max of {len(result.worker_peak_rss_kib)} workers)")
    info(f"  MTA-STS domains      : {summary.total_sts}")
    info(f"  misconfigured        : {summary.misconfigured} "
         f"({summary.misconfigured_percent():.1f}%)")
    info(f"  delivery failures    : {summary.delivery_failures}")
    if args.fault_seed is not None:
        info(f"  transient (faulted)  : {summary.transient}")
    for category, count in summary.category_counts.most_common():
        info(f"  {category:<21}: {count}")

    if args.show_repairs:
        from repro.measurement.repair import plan_repairs
        from repro.measurement.taxonomy import categorize
        shown = 0
        for snapshot in snapshots:
            if shown >= args.show_repairs:
                break
            actions = plan_repairs(snapshot)
            if not actions or not categorize(snapshot):
                continue
            shown += 1
            info(f"\n  repair plan for {snapshot.domain}:")
            for action in actions:
                info(f"    {action.render()}")

    if args.profile:
        from repro.analysis.report import render_profile
        info()
        info(render_profile(executor.last_profile), end="")

    if args.stats:
        if args.json:
            print(json.dumps(stats.as_dict(), sort_keys=True))
        else:
            print()
            print(stats.render_table())
    return 0


def _cmd_campaign(args) -> int:
    from repro.analysis.report import render_drift_table
    from repro.analysis.series import run_campaign
    from repro.ecosystem.population import PopulationConfig
    from repro.ecosystem.timeline import EcosystemTimeline, TimelineConfig
    from repro.errors import StoreCorruption
    from repro.measurement.executor import ScanExecutor
    from repro.obs.monitor import ALERT, CampaignMonitor

    if args.resume and not args.state_dir:
        print("error: --resume requires --state-dir", file=sys.stderr)
        return 2
    timeline = EcosystemTimeline(
        TimelineConfig(PopulationConfig(scale=args.scale, seed=args.seed)))
    progress = None
    if args.progress:
        from repro.obs.progress import ProgressPrinter
        progress = ProgressPrinter()
    try:
        executor = ScanExecutor(backend=args.backend,
                                jobs=_resolve_jobs(args.jobs, args.backend),
                                progress=progress)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    monitor = CampaignMonitor(_thresholds_from_args(args))
    fault_plan_factory = None
    if args.fault_seed is not None:
        from repro.netsim.network import FaultPlan

        def fault_plan_factory(month, _seed=args.fault_seed,
                               _rate=args.fault_rate):
            return FaultPlan.seeded(seed=_seed + month, rate=_rate)

    try:
        analysis = run_campaign(timeline, incremental=not args.full_rebuild,
                                executor=executor, monitor=monitor,
                                state_dir=args.state_dir, resume=args.resume,
                                fault_plan_factory=fault_plan_factory)
    except (StoreCorruption, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.state_dir:
        print(f"store: {len(analysis.store.months())} months committed "
              f"-> {args.state_dir}")
    if args.metrics_out:
        records = monitor.write_jsonl(args.metrics_out)
        print(f"monthly metrics: {records} records -> {args.metrics_out}")
    totals = analysis.total_stats()
    print(f"campaign: {len(monitor.records)} months, "
          f"{totals.domains_scanned:,} domain scans "
          f"({totals.scan_seconds:.2f}s scanning)")
    print()
    print(render_drift_table(monitor.drift()), end="")
    print()
    report = monitor.health()
    print(report.render())
    return 1 if report.level == ALERT else 0


def _cmd_campaign_deliver(args) -> int:
    import os

    from repro.errors import StoreCorruption
    from repro.fsutil import atomic_write_text, ensure_dir
    from repro.measurement.delivery_campaign import (
        DeliveryCampaignConfig, run_delivery_campaign,
    )
    from repro.obs.monitor import ALERT, DeliveryThresholds
    from repro.obs.tlsrpt_monitor import TlsRptThresholds

    if args.resume and not args.state_dir:
        print("error: --resume requires --state-dir", file=sys.stderr)
        return 2
    if args.tlsrpt_out and args.state_dir:
        print("error: --tlsrpt-out cannot be combined with --state-dir "
              "(received-report state is not part of the wave "
              "checkpoint)", file=sys.stderr)
        return 2
    thresholds = DeliveryThresholds()
    for name in ("bounce_rate_alert", "plaintext_rate_warn",
                 "refused_rate_warn"):
        value = getattr(args, name, None)
        if value is not None:
            setattr(thresholds, name, value)
    tlsrpt_thresholds = TlsRptThresholds()
    for name in ("failure_rate_warn", "failure_rate_alert"):
        value = getattr(args, "tlsrpt_" + name, None)
        if value is not None:
            setattr(tlsrpt_thresholds, name, value)
    progress = None
    if args.progress:
        from repro.obs.progress import ProgressPrinter
        progress = ProgressPrinter()
    try:
        config = DeliveryCampaignConfig(
            scale=args.scale, seed=args.seed, month_index=args.month,
            senders=args.senders,
            messages_per_sender=args.messages_per_sender,
            sender_seed=args.sender_seed,
            backpressure=args.backpressure,
            wakeup_seconds=args.wakeup_seconds,
            fault_seed=args.fault_seed, fault_rate=args.fault_rate,
            tlsrpt=bool(args.tlsrpt_out))
        result = run_delivery_campaign(
            config, backend=args.backend, jobs=args.jobs,
            progress=progress, thresholds=thresholds,
            state_dir=args.state_dir, resume=args.resume,
            tlsrpt_thresholds=tlsrpt_thresholds)
    except (StoreCorruption, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    stats = result.stats
    if args.ledger_out:
        atomic_write_text(args.ledger_out, result.ledger_text)
        print(f"ledger: {result.ledger_text.count(chr(10)):,} rows "
              f"-> {args.ledger_out}")
    if args.metrics_out:
        records = result.monitor.write_jsonl(args.metrics_out)
        print(f"wave metrics: {records} records -> {args.metrics_out}")
    print(f"delivery: {stats.messages:,} messages from "
          f"{stats.senders:,} senders in {stats.waves} waves "
          f"[{stats.backend}] ({stats.deliver_seconds:.2f}s, "
          f"{stats.messages_per_second:,.0f} msg/s)")
    print(f"  delivered {stats.delivered:,} "
          f"({stats.delivered_plaintext:,} plaintext), "
          f"bounced {stats.bounced:,}, "
          f"{stats.attempts:,} attempts, "
          f"peak queue depth {stats.queue_depth_peak:,}")
    print(f"  ledger sha256 {result.ledger_digest}")
    report = result.health()
    print(report.render())
    exit_code = 1 if report.level == ALERT else 0
    if args.tlsrpt_out:
        out_dir = ensure_dir(args.tlsrpt_out)
        reports_path = os.path.join(out_dir, "reports.jsonl")
        atomic_write_text(reports_path, result.tlsrpt_reports_jsonl)
        monitor_path = os.path.join(out_dir, "monitor.jsonl")
        result.tlsrpt_monitor.write_jsonl(monitor_path)
        print(f"tlsrpt: {stats.reports_generated:,} report(s) generated, "
              f"{stats.reports_delivered:,} delivered "
              f"({stats.reports_bounced:,} bounced, "
              f"{stats.reports_missing_endpoint:,} without a published "
              f"rua), {stats.reports_received:,} received "
              f"-> {reports_path}")
        tlsrpt_report = result.tlsrpt_monitor.health()
        print(tlsrpt_report.render())
        if tlsrpt_report.level == ALERT:
            exit_code = 1
    return exit_code


def _cmd_tlsrpt(args) -> int:
    import os

    from repro.core.reporting import ReportAggregator
    from repro.obs.monitor import ALERT
    from repro.obs.tlsrpt_monitor import (
        TOP_FAILING_MTAS, TlsRptMonitor, TlsRptThresholds,
    )

    path = args.reports
    if os.path.isdir(path):
        path = os.path.join(path, "reports.jsonl")
    if not os.path.exists(path):
        print(f"error: {path}: no TLSRPT reports found", file=sys.stderr)
        return 2
    aggregator = ReportAggregator()
    for line in _read_text(path).splitlines():
        if line.strip():
            aggregator.ingest(line)
    thresholds = TlsRptThresholds()
    for name in ("failure_rate_warn", "failure_rate_alert"):
        value = getattr(args, name, None)
        if value is not None:
            setattr(thresholds, name, value)
    monitor = TlsRptMonitor(thresholds)
    monitor.observe_reports(aggregator.reports)
    census = aggregator.census()
    print(f"tlsrpt: {census['reports']:,} report(s) covering "
          f"{census['domains']:,} domain(s), "
          f"{census['sessions']:,} session(s) "
          f"({census['failed_sessions']:,} failed), "
          f"{census['malformed']} malformed submission(s)")
    for rtype, count in census["failures_by_result_type"].items():
        print(f"  {rtype:<28}: {count}")
    top = monitor.failing_mtas()
    if top:
        print("  top failing sending MTAs:")
        for org, count in top[:TOP_FAILING_MTAS]:
            print(f"    {org:<26}: {count} failed session(s)")
    if args.monitor_out:
        records = monitor.write_jsonl(args.monitor_out)
        print(f"window metrics: {records} records -> {args.monitor_out}")
    report = monitor.health()
    print(report.render())
    return 1 if report.level == ALERT else 0


def _cmd_serve(args) -> int:
    from repro.measurement.serve import ServeConfig, run_serve
    from repro.obs.exporters import prometheus_exposition
    from repro.obs.monitor import ALERT, ServeThresholds

    thresholds = ServeThresholds()
    for name in ("hit_rate_floor_warn", "p99_latency_alert",
                 "fanin_warn"):
        value = getattr(args, name, None)
        if value is not None:
            setattr(thresholds, name, value)
    progress = None
    if args.progress:
        def progress(served, total):
            print(f"\rserve: {served:,}/{total:,} requests "
                  f"({served / total:.0%})", end="", file=sys.stderr)
            if served >= total:
                print(file=sys.stderr)
    try:
        config = ServeConfig(
            scale=args.scale, seed=args.seed, query_seed=args.query_seed,
            requests=args.requests, batch_size=args.batch_size,
            month_index=args.month, months=args.months,
            ttl_seconds=args.ttl_seconds,
            min_ttl_seconds=args.min_ttl_seconds,
            zipf_s=args.zipf_s, flash_every=args.flash_every,
            flash_size=args.flash_size, record_every=args.record_every)
        result = run_serve(config, backend=args.backend,
                           jobs=_resolve_jobs(args.jobs, args.backend),
                           thresholds=thresholds, progress=progress)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stats = result.stats
    if args.metrics_out:
        records = result.monitor.write_jsonl(args.metrics_out)
        print(f"window metrics: {records} records -> {args.metrics_out}")
    if args.prom_out:
        from repro.fsutil import atomic_write_text
        atomic_write_text(args.prom_out, prometheus_exposition(
            result.total_registry, labels={"command": "serve"}))
        print(f"prometheus metrics -> {args.prom_out}")
    print(f"serve: {stats.requests:,} requests "
          f"({stats.flash_requests:,} from flash crowds) over "
          f"{stats.months} month(s) [{stats.backend}] "
          f"({stats.serve_seconds:.2f}s, "
          f"{stats.requests_per_second:,.0f} req/s)")
    print(f"  verdicts computed {stats.computations:,}, cache hits "
          f"{stats.hits:,}, collapsed in flight {stats.collapsed:,} "
          f"(hit rate {stats.hit_rate:.2%})")
    print(f"  stampede fan-in peak {stats.stampede_fanin_peak:,}, "
          f"evictions {stats.evictions:,}, "
          f"{stats.cache_entries:,} entries cached, "
          f"p99 virtual latency {result.p99_latency_seconds:.3f}s")
    report = result.health()
    print(report.render())
    return 1 if report.level == ALERT else 0


def _cmd_monitor(args) -> int:
    import os

    from repro.analysis.report import render_drift_table
    from repro.errors import StoreCorruption
    from repro.obs.monitor import ALERT, CampaignMonitor

    if args.feed != "-" and os.path.isdir(args.feed):
        # A directory is a checkpointed campaign store: health is
        # re-evaluated from the persisted snapshots and stats rather
        # than a pre-rendered metrics feed.
        try:
            monitor = CampaignMonitor.from_state(
                args.feed, _thresholds_from_args(args))
        except StoreCorruption as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    else:
        monitor = CampaignMonitor.from_jsonl(
            _read_text(args.feed), _thresholds_from_args(args))
    if not monitor.records:
        print(f"no monthly records found in {args.feed}")
        return 1
    print(render_drift_table(monitor.drift()), end="")
    print()
    report = monitor.health()
    print(report.render())
    return 1 if report.level == ALERT else 0


def _thresholds_from_args(args):
    from repro.obs.monitor import Thresholds

    thresholds = Thresholds()
    for name in ("transient_rate_alert", "transient_jump_alert",
                 "cache_hit_drop_warn", "bucket_shift_warn",
                 "retry_jump_warn"):
        value = getattr(args, name, None)
        if value is not None:
            setattr(thresholds, name, value)
    return thresholds


def _add_threshold_arguments(parser) -> None:
    parser.add_argument("--transient-rate-alert", type=_rate, default=None,
                        dest="transient_rate_alert", metavar="R",
                        help="ALERT when a month's transient share "
                             "exceeds R")
    parser.add_argument("--transient-jump-alert", type=_rate, default=None,
                        dest="transient_jump_alert", metavar="R",
                        help="ALERT when the transient share jumps by "
                             "more than R month-over-month")
    parser.add_argument("--cache-hit-drop-warn", type=_rate, default=None,
                        dest="cache_hit_drop_warn", metavar="R",
                        help="WARN when a cache hit rate drops by more "
                             "than R month-over-month")
    parser.add_argument("--bucket-shift-warn", type=_rate, default=None,
                        dest="bucket_shift_warn", metavar="R",
                        help="WARN when a taxonomy bucket's share moves "
                             "by more than R month-over-month")
    parser.add_argument("--retry-jump-warn", type=float, default=None,
                        dest="retry_jump_warn", metavar="N",
                        help="WARN when connect retries per domain jump "
                             "by more than N month-over-month")


def _cmd_survey(args) -> int:
    from repro.survey.analysis import analyze
    from repro.survey.synthesize import synthesize_respondents

    findings = analyze(synthesize_respondents())
    rows = [
        ("heard of MTA-STS", findings.heard_of_mta_sts),
        ("deployed MTA-STS", findings.deployed),
        ("motivation: prevent downgrade", findings.motivation_downgrade),
        ("bottleneck: operational complexity",
         findings.bottleneck_complexity),
        ("not deployed: use DANE instead", findings.not_deployed_use_dane),
        ("management: policy updates hard", findings.mgmt_updates_hard),
        ("updates: TXT record first", findings.update_txt_first),
        ("heard of DANE", findings.heard_dane),
        ("DANE judged superior", findings.dane_superior),
    ]
    print(f"survey respondents: {findings.engaged}")
    for label, (count, denominator, percent) in rows:
        print(f"  {label:<36} {count:>3}/{denominator:<3} "
              f"({percent:.1f}%)")
    return 0


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}")
    return value


def _job_count(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer (0 = auto-detect), "
            f"got {value}")
    return value


def _resolve_jobs(jobs: int, backend: str) -> int:
    """Resolve ``--jobs 0`` (auto-detect) at the CLI layer.

    Auto means every core for the parallel backends and one worker for
    serial; :class:`~repro.measurement.executor.ScanExecutor` itself
    never clamps — an explicit ``--jobs N`` on a backend that cannot
    honour it is an error, not a silent downgrade.
    """
    if jobs:
        return jobs
    if backend == "serial":
        return 1
    import os
    return os.cpu_count() or 1


def _rate(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"expected a rate in [0, 1], got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MTA-STS deployment & management toolkit "
                    "(IMC 2025 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    lint_record = sub.add_parser("lint-record",
                                 help="validate an _mta-sts TXT string")
    lint_record.add_argument("record")
    lint_record.set_defaults(handler=_cmd_lint_record)

    lint_policy = sub.add_parser("lint-policy",
                                 help="validate a policy file ('-' = stdin)")
    lint_policy.add_argument("file")
    lint_policy.set_defaults(handler=_cmd_lint_policy)

    check_zone = sub.add_parser("check-zone",
                                help="offline assessment from a zone file")
    check_zone.add_argument("zonefile")
    check_zone.add_argument("domain")
    check_zone.add_argument("--policy", help="the intended policy file")
    check_zone.add_argument("--origin", help="zone origin when the file "
                                             "has no $ORIGIN")
    check_zone.set_defaults(handler=_cmd_check_zone)

    plan = sub.add_parser("plan-removal",
                          help="print the RFC 8461 removal sequence")
    plan.add_argument("domain")
    plan.add_argument("max_age", type=int)
    plan.set_defaults(handler=_cmd_plan_removal)

    audit = sub.add_parser("audit",
                           help="scan the synthetic ecosystem snapshot")
    audit.add_argument("--scale", type=float, default=0.01)
    audit.add_argument("--seed", type=int, default=20240929)
    audit.add_argument("--month", type=int, default=None)
    audit.add_argument("--show-repairs", type=int, default=0,
                       metavar="N",
                       help="print repair plans for N misconfigured "
                            "domains")
    audit.add_argument("--backend",
                       choices=("serial", "threaded", "process"),
                       default="serial",
                       help="scan execution backend (all produce "
                            "identical snapshots; 'process' runs "
                            "shard workers in separate processes, each "
                            "materialising only its population slice)")
    audit.add_argument("--jobs", type=_job_count, default=1,
                       metavar="N",
                       help="workers for the threaded/process backends "
                            "(0 = one per CPU core)")
    audit.add_argument("--stats", action="store_true",
                       help="print the per-stage scan statistics table")
    audit.add_argument("--json", action="store_true",
                       help="with --stats: emit the statistics as a "
                            "single JSON document on stdout (all other "
                            "output moves to stderr)")
    audit.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the scan's metrics registry as a "
                            "Prometheus text exposition to FILE "
                            "(written atomically)")
    audit.add_argument("--profile", action="store_true",
                       help="record wall-clock stage timers and print "
                            "the flame-style profile")
    audit.add_argument("--progress", action="store_true",
                       help="print live scan heartbeats to stderr")
    audit.add_argument("--fault-seed", type=int, default=None,
                       metavar="SEED",
                       help="inject deterministic network faults into "
                            "the scan, seeded by SEED")
    audit.add_argument("--fault-rate", type=_rate, default=0.2,
                       metavar="R",
                       help="fraction of endpoints the seeded fault "
                            "plan afflicts (default 0.2, range [0, 1])")
    audit.add_argument("--trace", default=None, metavar="FILE",
                       help="write the scan's span trees and metrics "
                            "as JSONL to FILE")
    audit.add_argument("--explain", default=None, metavar="DOMAIN",
                       help="print the span tree explaining DOMAIN's "
                            "scan verdict")
    audit.add_argument("--save", default=None, metavar="DIR",
                       help="commit the scanned month into the campaign "
                            "store at DIR")
    audit.add_argument("--load", default=None, metavar="DIR",
                       help="run the census offline from the campaign "
                            "store at DIR instead of scanning "
                            "(--month picks a committed month; default "
                            "is the latest)")
    audit.add_argument("--columnar", action="store_true",
                       help="with --load: decode the shard into "
                            "per-field columns instead of snapshot "
                            "objects (byte-identical output, faster "
                            "at scale)")
    audit.set_defaults(handler=_cmd_audit)

    campaign = sub.add_parser(
        "campaign",
        help="run the monthly scan campaign with health monitoring")
    campaign.add_argument("--scale", type=float, default=0.01)
    campaign.add_argument("--seed", type=int, default=20240929)
    campaign.add_argument("--backend", choices=("serial", "threaded"),
                          default="serial")
    campaign.add_argument("--jobs", type=_job_count, default=1,
                          metavar="N",
                          help="worker threads for the threaded backend "
                               "(0 = one per CPU core)")
    campaign.add_argument("--full-rebuild", action="store_true",
                          help="rebuild the world from scratch every "
                               "month instead of diffing")
    campaign.add_argument("--metrics-out", default=None, metavar="FILE",
                          help="write the monthly metrics JSONL feed to "
                               "FILE (written atomically)")
    campaign.add_argument("--progress", action="store_true",
                          help="print live scan heartbeats to stderr")
    campaign.add_argument("--state-dir", default=None, metavar="DIR",
                          help="checkpoint every completed month into "
                               "the campaign store at DIR")
    campaign.add_argument("--resume", action="store_true",
                          help="with --state-dir: resume from the last "
                               "committed month instead of refusing to "
                               "reuse a non-empty store")
    campaign.add_argument("--fault-seed", type=int, default=None,
                          metavar="SEED",
                          help="inject deterministic network faults into "
                               "every month's scan, seeded by SEED")
    campaign.add_argument("--fault-rate", type=_rate, default=0.2,
                          metavar="R",
                          help="fraction of endpoints each month's fault "
                               "plan afflicts (default 0.2, range [0, 1])")
    _add_threshold_arguments(campaign)
    campaign.set_defaults(handler=_cmd_campaign)

    campaign_sub = campaign.add_subparsers(dest="campaign_command")
    deliver = campaign_sub.add_parser(
        "deliver",
        help="run the campaign-scale delivery engine against the "
             "materialised world")
    deliver.add_argument("--scale", type=float, default=0.02,
                         help="recipient world scale (default 0.02)")
    deliver.add_argument("--seed", type=int, default=11,
                         help="recipient population seed")
    deliver.add_argument("--month", type=int, default=3,
                         help="scan month to materialise (default 3)")
    deliver.add_argument("--senders", type=_positive_int, default=120,
                         metavar="N",
                         help="sender-domain count (§6.2 population: "
                              "2394)")
    deliver.add_argument("--messages-per-sender", type=_positive_int,
                         default=4, dest="messages_per_sender",
                         metavar="M",
                         help="messages queued per sender domain")
    deliver.add_argument("--sender-seed", type=int, default=20230201,
                         dest="sender_seed",
                         help="§6.2 sender-population seed")
    deliver.add_argument("--backend", choices=("serial", "threaded"),
                         default="serial",
                         help="delivery backend (byte-identical ledgers)")
    deliver.add_argument("--jobs", type=_job_count, default=0,
                         help="threaded shard count (0 = auto)")
    deliver.add_argument("--backpressure", type=_positive_int,
                         default=10_000, metavar="N",
                         help="global in-flight message bound")
    deliver.add_argument("--wakeup-seconds", type=_positive_int,
                         default=900, dest="wakeup_seconds", metavar="S",
                         help="batched wake-up granularity in virtual "
                              "seconds (default 900)")
    deliver.add_argument("--fault-seed", type=int, default=None,
                         dest="fault_seed",
                         help="seed a deterministic network fault plan")
    deliver.add_argument("--fault-rate", type=_rate, default=0.2,
                         dest="fault_rate",
                         help="share of listeners the fault plan "
                              "degrades (default 0.2)")
    deliver.add_argument("--ledger-out", default=None, metavar="FILE",
                         dest="ledger_out",
                         help="write the canonical delivery ledger "
                              "JSONL to FILE")
    deliver.add_argument("--metrics-out", default=None, metavar="FILE",
                         dest="metrics_out",
                         help="write the per-wave metrics JSONL to FILE")
    deliver.add_argument("--progress", action="store_true",
                         help="live delivery heartbeats on stderr")
    deliver.add_argument("--state-dir", default=None, metavar="DIR",
                         dest="state_dir",
                         help="durably commit every wave (ledger "
                              "shards + manifest + checkpoint) at DIR")
    deliver.add_argument("--resume", action="store_true",
                         help="resume a committed campaign from its "
                              "checkpoint (requires --state-dir)")
    deliver.add_argument("--bounce-rate-alert", type=_rate, default=None,
                         dest="bounce_rate_alert", metavar="R",
                         help="ALERT when the cumulative bounce share "
                              "exceeds R")
    deliver.add_argument("--plaintext-rate-warn", type=_rate,
                         default=None, dest="plaintext_rate_warn",
                         metavar="R",
                         help="WARN when the cumulative plaintext "
                              "delivery share exceeds R")
    deliver.add_argument("--refused-rate-warn", type=_rate, default=None,
                         dest="refused_rate_warn", metavar="R",
                         help="WARN when the cumulative policy-refusal "
                              "share of attempts exceeds R")
    deliver.add_argument("--tlsrpt-out", default=None, metavar="DIR",
                         dest="tlsrpt_out",
                         help="run the RFC 8460 reporting pipeline "
                              "alongside delivery and write the "
                              "received reports (reports.jsonl) and "
                              "ingestion-monitor windows "
                              "(monitor.jsonl) into DIR")
    deliver.add_argument("--tlsrpt-failure-rate-warn", type=_rate,
                         default=None, dest="tlsrpt_failure_rate_warn",
                         metavar="R",
                         help="WARN when a reporting window's failed "
                              "session share exceeds R")
    deliver.add_argument("--tlsrpt-failure-rate-alert", type=_rate,
                         default=None, dest="tlsrpt_failure_rate_alert",
                         metavar="R",
                         help="ALERT when a reporting window's failed "
                              "session share exceeds R")
    deliver.set_defaults(handler=_cmd_campaign_deliver)

    tlsrpt = sub.add_parser(
        "tlsrpt",
        help="ingest a saved TLSRPT report feed and print the operator "
             "census and health")
    tlsrpt.add_argument("reports",
                        help="reports.jsonl file, or a directory "
                             "containing one (as written by campaign "
                             "deliver --tlsrpt-out)")
    tlsrpt.add_argument("--monitor-out", default=None, metavar="FILE",
                        dest="monitor_out",
                        help="write the rebuilt per-window monitor "
                             "JSONL to FILE")
    tlsrpt.add_argument("--failure-rate-warn", type=_rate, default=None,
                        dest="failure_rate_warn", metavar="R",
                        help="WARN when a reporting window's failed "
                             "session share exceeds R")
    tlsrpt.add_argument("--failure-rate-alert", type=_rate, default=None,
                        dest="failure_rate_alert", metavar="R",
                        help="ALERT when a reporting window's failed "
                             "session share exceeds R")
    tlsrpt.set_defaults(handler=_cmd_tlsrpt)

    serve = sub.add_parser(
        "serve",
        help="replay a seeded query mix against the policy-checker "
             "service")
    serve.add_argument("--scale", type=float, default=0.02,
                       help="domain world scale (default 0.02)")
    serve.add_argument("--seed", type=int, default=11,
                       help="world population seed")
    serve.add_argument("--query-seed", type=int, default=97,
                       dest="query_seed",
                       help="query-mix seed (ranking, draws, and flash "
                            "crowds)")
    serve.add_argument("--requests", type=_positive_int, default=100_000,
                       metavar="N",
                       help="popularity-mix requests to replay "
                            "(default 100000; flash crowds ride on top)")
    serve.add_argument("--batch-size", type=_positive_int, default=2_000,
                       dest="batch_size", metavar="B",
                       help="requests served per tick at a frozen "
                            "virtual instant (default 2000)")
    serve.add_argument("--month", type=int, default=0,
                       help="first scan month to materialise (default 0)")
    serve.add_argument("--months", type=_positive_int, default=1,
                       metavar="K",
                       help="month snapshots the service lives through "
                            "(the world re-materialises at each "
                            "boundary; default 1)")
    serve.add_argument("--backend", choices=("serial", "threaded"),
                       default="serial",
                       help="request backend (byte-identical metrics)")
    serve.add_argument("--jobs", type=_job_count, default=0,
                       help="threaded worker count (0 = auto)")
    serve.add_argument("--ttl-seconds", type=_positive_int,
                       default=86_400, dest="ttl_seconds", metavar="T",
                       help="default and maximum verdict TTL "
                            "(default 86400)")
    serve.add_argument("--min-ttl-seconds", type=_positive_int,
                       default=3_600, dest="min_ttl_seconds", metavar="T",
                       help="floor for policy-driven verdict TTLs "
                            "(default 3600)")
    serve.add_argument("--zipf-s", type=float, default=1.1,
                       dest="zipf_s", metavar="S",
                       help="popularity skew exponent (default 1.1)")
    serve.add_argument("--flash-every", type=int, default=16,
                       dest="flash_every", metavar="K",
                       help="ticks between flash crowds (0 = off; "
                            "default 16)")
    serve.add_argument("--flash-size", type=int, default=4_000,
                       dest="flash_size", metavar="N",
                       help="requests per flash crowd (default 4000)")
    serve.add_argument("--record-every", type=_positive_int, default=8,
                       dest="record_every", metavar="K",
                       help="ticks per metrics window record (default 8)")
    serve.add_argument("--metrics-out", default=None, metavar="FILE",
                       dest="metrics_out",
                       help="write the per-window metrics JSONL to FILE")
    serve.add_argument("--prom-out", default=None, metavar="FILE",
                       dest="prom_out",
                       help="write the replay's total metrics as a "
                            "Prometheus text exposition to FILE")
    serve.add_argument("--progress", action="store_true",
                       help="live replay heartbeats on stderr")
    serve.add_argument("--hit-rate-floor-warn", type=_rate, default=None,
                       dest="hit_rate_floor_warn", metavar="R",
                       help="WARN when the cumulative cache hit rate "
                            "falls below R")
    serve.add_argument("--p99-latency-alert", type=float, default=None,
                       dest="p99_latency_alert", metavar="S",
                       help="ALERT when a window's p99 virtual latency "
                            "exceeds S seconds")
    serve.add_argument("--fanin-warn", type=_positive_int, default=None,
                       dest="fanin_warn", metavar="N",
                       help="WARN when one computation absorbs more "
                            "than N concurrent requests")
    serve.set_defaults(handler=_cmd_serve)

    monitor = sub.add_parser(
        "monitor",
        help="evaluate a saved monthly metrics JSONL feed "
             "('-' = stdin) or a campaign store directory")
    monitor.add_argument("feed", help="monthly metrics JSONL file, or a "
                                      "campaign store directory")
    _add_threshold_arguments(monitor)
    monitor.set_defaults(handler=_cmd_monitor)

    survey = sub.add_parser("survey", help="print the §7.2 statistics")
    survey.set_defaults(handler=_cmd_survey)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
