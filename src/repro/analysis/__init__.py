"""Figure/table series assembly and report rendering."""

from repro.analysis.series import (
    CampaignAnalysis, load_campaign, run_campaign,
)
from repro.analysis.report import render_table, render_series, format_percent
from repro.analysis.takeaways import Takeaway, compute_takeaways

__all__ = ["CampaignAnalysis", "run_campaign", "load_campaign",
           "render_table", "render_series", "format_percent",
           "Takeaway", "compute_takeaways"]
