"""The paper's §4.6 key takeaways, computed from a campaign.

The paper distils its management analysis into three findings:

1. policy-server misconfigurations are the most common individual
   error (70-85% of all errors across snapshots);
2. self-managed mail servers struggle more with PKIX-valid
   certificates than provider-hosted ones (4.4% vs 1%);
3. inconsistencies persist where policy and email management are split
   across different entities (640 domains vs a single same-provider
   case).

:func:`compute_takeaways` re-derives each claim from scanned data and
reports whether it holds, so any recalibration of the synthetic
ecosystem (or a run against real data) is automatically checked
against the paper's conclusions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.analysis.series import CampaignAnalysis


@dataclass
class Takeaway:
    claim: str
    holds: bool
    evidence: str

    def render(self) -> str:
        marker = "HOLDS  " if self.holds else "BROKEN "
        return f"[{marker}] {self.claim}\n          {self.evidence}"


def compute_takeaways(campaign: CampaignAnalysis) -> List[Takeaway]:
    takeaways: List[Takeaway] = []

    # 1. Policy-server errors dominate in every snapshot (70-85%).
    shares = []
    for month in campaign.store.months():
        summary = campaign.summaries[month]
        total = sum(summary.category_counts.values())
        if total:
            shares.append(summary.category_counts["policy-retrieval"]
                          / total)
    dominate = bool(shares) and all(share >= 0.5 for share in shares)
    takeaways.append(Takeaway(
        claim=("policy-server misconfigurations are the most common "
               "individual error (paper: 70-85% of errors)"),
        holds=dominate,
        evidence=(f"policy-error share per month: "
                  f"{[round(100 * s, 1) for s in shares]}%")))

    # 2. Self-managed MX hosts struggle more with PKIX certificates.
    final = campaign.latest_summary()
    self_total = final.mx_entity_totals["self-managed"]
    third_total = final.mx_entity_totals["third-party"]
    self_rate = (final.mx_invalid_by_entity["self-managed"] / self_total
                 if self_total else 0.0)
    third_rate = (final.mx_invalid_by_entity["third-party"] / third_total
                  if third_total else 0.0)
    takeaways.append(Takeaway(
        claim=("self-managed email servers struggle more with "
               "PKIX-valid certificates (paper: 4.4% vs 1%)"),
        holds=self_rate > 2 * third_rate > 0 or (self_rate > 0
                                                 and third_rate == 0),
        evidence=(f"invalid-certificate rate: self-managed "
                  f"{100 * self_rate:.1f}% vs third-party "
                  f"{100 * third_rate:.1f}%")))

    # 3. Inconsistencies persist where management is split.
    rows = campaign.figure10_series()
    final_row = rows[-1]
    takeaways.append(Takeaway(
        claim=("inconsistencies concentrate where policy and email "
               "management are outsourced to different entities "
               "(paper: 640 split-provider domains vs 1 same-provider)"),
        holds=(final_row["diff_bad"] >= final_row["same_bad"]
               and final_row["same_bad"] <= 1),
        evidence=(f"inconsistent domains: split-provider "
                  f"{final_row['diff_bad']}/{final_row['diff_total']}, "
                  f"same-provider "
                  f"{final_row['same_bad']}/{final_row['same_total']}")))
    return takeaways
