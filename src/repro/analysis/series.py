"""Campaign orchestration: run every monthly scan and assemble the
time series behind Figures 4-10.

:func:`run_campaign` is the expensive step (it materialises a world
per scan month and runs the full scanner); :class:`CampaignAnalysis`
then answers every figure's question from the stored snapshots, so
benchmarks share one campaign run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:
    from repro.obs.monitor import CampaignMonitor

from repro.ecosystem.timeline import (
    EcosystemTimeline, IncrementalMaterializer, MaterializedSnapshot,
    population_to_dict, timeline_from_population,
)
from repro.errors import ManagingEntity, MisconfigCategory
from repro.measurement.classify import EntityClassifier, EntityVerdict
from repro.measurement.delegation import delegation_census
from repro.measurement.executor import ScanExecutor, ScanStats
from repro.measurement.columnar import (
    ColumnarStore, delegation_census_view, historical_series_view,
    mismatch_census_view, snapshot_summary_view,
)
from repro.measurement.historical import historical_series
from repro.measurement.inconsistency import classify_snapshot, mismatch_census
from repro.measurement.snapshots import SnapshotStore
from repro.measurement.taxonomy import SnapshotSummary, snapshot_summary


@dataclass
class CampaignAnalysis:
    """Everything one full scan campaign produced."""

    timeline: EcosystemTimeline
    #: The object representation; ``None`` when the analysis was built
    #: from a :class:`ColumnarStore` instead.
    store: Optional[SnapshotStore]
    verdicts_by_month: Dict[int, Dict[str, EntityVerdict]] = field(
        default_factory=dict)
    summaries: Dict[int, SnapshotSummary] = field(default_factory=dict)
    stats_by_month: Dict[int, ScanStats] = field(default_factory=dict)
    #: The columnar representation (``load_campaign(columnar=True)``).
    #: Figure series dispatch to the column ports when this is set;
    #: both representations produce byte-identical output.
    columnar: Optional[ColumnarStore] = None

    def _months(self) -> List[int]:
        if self.columnar is not None:
            return self.columnar.months()
        return self.store.months()

    def total_stats(self) -> ScanStats:
        """Per-stage counters and timings summed over every scan month."""
        total = ScanStats()
        for month in sorted(self.stats_by_month):
            stats = self.stats_by_month[month]
            total.backend, total.jobs = stats.backend, stats.jobs
            total.merge(stats)
        return total

    # -- Figure 4 ---------------------------------------------------------

    def figure4_series(self) -> List[dict]:
        rows = []
        for month in self._months():
            summary = self.summaries[month]
            rows.append({
                "month_index": month,
                "date": self.timeline.scan_instants[month].date_string(),
                "total_sts": summary.total_sts,
                "misconfigured": summary.misconfigured,
                "misconfigured_pct": summary.misconfigured_percent(),
                **{category.value: summary.category_percent(category)
                   for category in MisconfigCategory},
            })
        return rows

    # -- Figure 5 -------------------------------------------------------------

    def figure5_series(self, entity: str) -> List[dict]:
        """Per-month policy-server error percentages for one entity
        ('self-managed' or 'third-party'), split by failure stage."""
        rows = []
        for month in self._months():
            summary = self.summaries[month]
            total = summary.policy_entity_totals[entity]
            errors = summary.policy_errors_by_entity[entity]
            row = {"month_index": month, "total": total}
            for stage in ("dns", "tcp", "tls", "http", "policy-syntax"):
                row[stage] = 100.0 * errors[stage] / total if total else 0.0
            row["any"] = (100.0 * sum(errors.values()) / total
                          if total else 0.0)
            rows.append(row)
        return rows

    # -- Figure 6 / 7 -----------------------------------------------------------

    def figure6_series(self, entity: str) -> List[dict]:
        rows = []
        for month in self._months():
            summary = self.summaries[month]
            total = summary.mx_entity_totals[entity]
            classes = summary.mx_cert_by_entity[entity]
            row = {"month_index": month, "total": total,
                   "invalid": summary.mx_invalid_by_entity[entity],
                   "invalid_pct": (100.0 * summary.mx_invalid_by_entity[entity]
                                   / total if total else 0.0)}
            for failure_class in ("cn-mismatch", "self-signed", "expired"):
                row[failure_class] = (100.0 * classes[failure_class] / total
                                      if total else 0.0)
            rows.append(row)
        return rows

    def figure7_series(self) -> List[dict]:
        rows = []
        for month in self._months():
            summary = self.summaries[month]
            total = summary.total_sts or 1
            rows.append({
                "month_index": month,
                "all_invalid": summary.all_invalid_mx,
                "all_invalid_pct": 100.0 * summary.all_invalid_mx / total,
                "partially_invalid": summary.partially_invalid_mx,
                "partially_invalid_pct":
                    100.0 * summary.partially_invalid_mx / total,
                "enforce_invalid": summary.enforce_invalid_mx,
                "enforce_invalid_pct":
                    100.0 * summary.enforce_invalid_mx / total,
            })
        return rows

    # -- Figure 8 / 9 -------------------------------------------------------------

    def figure8_series(self) -> List[dict]:
        rows = []
        for month in self._months():
            if self.columnar is not None:
                census = mismatch_census_view(self.columnar.month_view(month))
            else:
                census = mismatch_census(self.store.month(month))
            total = census["total_sts"] or 1
            row = {"month_index": month,
                   "enforce": census["enforce"],
                   "enforce_pct": 100.0 * census["enforce"] / total}
            for cls, count in census["counts"].items():
                row[cls.value] = count
                row[cls.value + "_pct"] = 100.0 * count / total
            rows.append(row)
        return rows

    def figure9_series(self) -> List[dict]:
        if self.columnar is not None:
            return historical_series_view(self.columnar)
        return historical_series(self.store)

    # -- Figure 10 ----------------------------------------------------------------

    def figure10_series(self) -> List[dict]:
        rows = []
        for month in self._months():
            if self.columnar is not None:
                rows.append(self._figure10_row_columnar(month))
                continue
            verdicts = self.verdicts_by_month[month]
            snaps = {s.domain: s for s in self.store.month(month)}
            same_total = same_bad = diff_total = diff_bad = 0
            for domain, verdict in verdicts.items():
                if not verdict.both_outsourced:
                    continue
                snap = snaps.get(domain)
                if snap is None:
                    continue
                inconsistent = classify_snapshot(snap).mismatch
                if verdict.same_provider:
                    same_total += 1
                    same_bad += inconsistent
                else:
                    diff_total += 1
                    diff_bad += inconsistent
            rows.append({
                "month_index": month,
                "same_total": same_total, "same_bad": same_bad,
                "same_pct": 100.0 * same_bad / same_total if same_total else 0.0,
                "diff_total": diff_total, "diff_bad": diff_bad,
                "diff_pct": 100.0 * diff_bad / diff_total if diff_total else 0.0,
            })
        return rows

    def _figure10_row_columnar(self, month: int) -> dict:
        view = self.columnar.month_view(month)
        same_total = same_bad = diff_total = diff_bad = 0
        for i in range(view.n):
            if not view.both_outsourced[i]:
                continue
            inconsistent = 1 if view.mismatch[i] else 0
            if view.same_provider[i]:
                same_total += 1
                same_bad += inconsistent
            else:
                diff_total += 1
                diff_bad += inconsistent
        return {
            "month_index": month,
            "same_total": same_total, "same_bad": same_bad,
            "same_pct": 100.0 * same_bad / same_total if same_total else 0.0,
            "diff_total": diff_total, "diff_bad": diff_bad,
            "diff_pct": 100.0 * diff_bad / diff_total if diff_total else 0.0,
        }

    # -- Table 2 ------------------------------------------------------------------

    def table2_census(self, month: Optional[int] = None,
                      top: int = 8) -> List[dict]:
        month = month if month is not None else max(self._months())
        if self.columnar is not None:
            return delegation_census_view(self.columnar.month_view(month),
                                          top=top)
        return delegation_census(self.store.month(month), top=top)

    # -- headline numbers --------------------------------------------------------

    def latest_summary(self) -> SnapshotSummary:
        return self.summaries[max(self._months())]


def _load_committed(state_dir: str, timeline: EcosystemTimeline,
                    months: List[int], resume: bool):
    """The checkpointed months a (possibly resuming) campaign starts
    from: ``(store, {month: MonthEntry})``."""
    from repro.measurement.store_io import load_state, read_manifest

    manifest = read_manifest(state_dir)
    if manifest is None:
        return SnapshotStore(), {}
    committed = [int(entry["month"]) for entry in manifest.get("months", ())]
    if committed and not resume:
        raise ValueError(
            f"state dir {state_dir!r} already holds "
            f"{len(committed)} committed month(s); pass resume=True to "
            f"continue that campaign or point at a fresh directory")
    persisted = manifest.get("population")
    current = population_to_dict(timeline.config.population)
    if persisted is not None and persisted != current:
        raise ValueError(
            f"state dir {state_dir!r} was written by a campaign with a "
            f"different population config ({persisted!r} != {current!r}); "
            f"resuming it with this timeline would mix incompatible "
            f"snapshots")
    state = load_state(state_dir, months=months)
    return state.store, {entry.month: entry for entry in state.months}


def run_campaign(timeline: EcosystemTimeline,
                 months: Optional[List[int]] = None,
                 *, incremental: bool = True,
                 executor: Optional[ScanExecutor] = None,
                 monitor: Optional["CampaignMonitor"] = None,
                 state_dir: Optional[str] = None,
                 resume: bool = False,
                 fault_plan_factory: Optional[Callable[[int], object]] = None,
                 ) -> CampaignAnalysis:
    """Materialise and scan every requested month (default: all).

    ``incremental`` materialises consecutive months by diffing one
    long-lived world (:class:`IncrementalMaterializer`); pass ``False``
    to rebuild each month from scratch — the slower reference path the
    equivalence tests compare against.  *executor* selects the scan
    backend (default: a serial :class:`ScanExecutor`); per-month
    :class:`ScanStats` land in ``analysis.stats_by_month``.  *monitor*
    attaches a :class:`~repro.obs.monitor.CampaignMonitor`: every
    finished month is snapshotted into its metrics feed (and, if the
    monitor carries a ``jsonl_path``, appended to the on-disk feed as
    the campaign runs).

    ``state_dir`` turns on durable checkpointing: each completed month
    is committed atomically (shard + manifest, see
    :mod:`repro.measurement.store_io`) the moment its scan finishes.
    With ``resume=True`` a killed campaign continues from the last
    committed month: committed months load from disk instead of being
    rescanned, while — under the incremental materialiser — their world
    *builds* are still replayed, so the long-lived world reaches the
    first unscanned month in exactly the state an uninterrupted run
    would have.  The resumed campaign's store is therefore
    byte-identical (``canonical_bytes``) to an uninterrupted run's on
    both backends, with or without fault plans.

    ``fault_plan_factory`` (month -> FaultPlan or None) installs a
    fault plan on the materialised world for each month's *scan* only;
    materialisation — which the incremental path replays — is never
    faulted.
    """
    if months is None:
        months = list(range(len(timeline.scan_instants)))
    if resume and state_dir is None:
        raise ValueError("resume=True requires a state_dir")
    executor = executor if executor is not None else ScanExecutor()
    materializer = IncrementalMaterializer(timeline) if incremental else None
    committed = {}
    if state_dir is not None:
        store, committed = _load_committed(state_dir, timeline, months,
                                           resume)
        population = population_to_dict(timeline.config.population)
    else:
        store = SnapshotStore()
    analysis = CampaignAnalysis(timeline=timeline, store=store)
    for month in months:
        entry = committed.get(month)
        if entry is not None:
            # Committed month: skip the scan, replay the (cheap,
            # deterministic) world build so incremental state carries
            # forward exactly as in the uninterrupted run.
            if materializer is not None:
                materializer.materialize(month)
            stats = ScanStats.from_dict(entry.stats)
            analysis.stats_by_month[month] = stats
            month_snaps = store.month(month)
            verdicts = EntityClassifier(month_snaps).classify_all()
            analysis.verdicts_by_month[month] = verdicts
            analysis.summaries[month] = snapshot_summary(month_snaps,
                                                         verdicts)
            if monitor is not None:
                monitor.observe_month(month, entry.date, stats, month_snaps,
                                      build_stats=entry.build_stats)
            continue

        built_at = time.perf_counter()
        if materializer is not None:
            materialized = materializer.materialize(month)
        else:
            materialized = timeline.materialize(month)
        build_seconds = time.perf_counter() - built_at
        if fault_plan_factory is not None:
            materialized.world.network.install_fault_plan(
                fault_plan_factory(month))
        try:
            _, stats = executor.scan(
                materialized.world, materialized.deployed.keys(), month,
                store, materialized.instant)
        finally:
            if fault_plan_factory is not None:
                # Plans must never fault world materialisation: the
                # incremental path replays deployment traffic next month.
                materialized.world.network.install_fault_plan(None)
        stats.world_build_seconds = build_seconds
        if state_dir is not None:
            from repro.measurement.store_io import commit_month
            stats.checkpoints_written = 1
            commit_started = time.perf_counter()
            commit_month(state_dir, store, month,
                         date=materialized.instant.date_string(),
                         stats=stats.as_dict(),
                         build_stats=materialized.build_stats,
                         population=population)
            stats.checkpoint_seconds = time.perf_counter() - commit_started
        analysis.stats_by_month[month] = stats
        month_snaps = store.month(month)
        verdicts = EntityClassifier(month_snaps).classify_all()
        analysis.verdicts_by_month[month] = verdicts
        analysis.summaries[month] = snapshot_summary(month_snaps, verdicts)
        if monitor is not None:
            monitor.observe_month(
                month, materialized.instant.date_string(), stats,
                month_snaps, build_stats=materialized.build_stats)
    return analysis


def load_campaign(state_dir: str,
                  *, timeline: Optional[EcosystemTimeline] = None,
                  columnar: bool = False,
                  ) -> CampaignAnalysis:
    """Rebuild a :class:`CampaignAnalysis` offline from a saved store.

    Verifies and loads every committed month, restores each month's
    :class:`ScanStats` from the manifest, and recomputes the derived
    verdicts and summaries (pure functions of the snapshots) — so every
    figure series, census, and drift table is available without
    rescanning anything.  The timeline is rebuilt from the persisted
    population config unless one is supplied.

    ``columnar=True`` takes the columnar path instead: shard rows
    parse straight into per-field columns (no snapshot objects) and
    every figure series and census runs over them, byte-identical to
    the object path at a fraction of the cost.  ``verdicts_by_month``
    stays empty on this path; the figures that need entity verdicts
    read the precomputed entity columns.
    """
    from repro.measurement.store_io import load_state

    if columnar:
        cstore = ColumnarStore.from_state_dir(state_dir)
        if timeline is None:
            timeline = timeline_from_population(cstore.population)
        analysis = CampaignAnalysis(timeline=timeline, store=None,
                                    columnar=cstore)
        for month in cstore.months():
            analysis.summaries[month] = snapshot_summary_view(
                cstore.month_view(month))
            analysis.stats_by_month[month] = ScanStats.from_dict(
                cstore.entries[month].stats)
        return analysis

    state = load_state(state_dir)
    if timeline is None:
        timeline = timeline_from_population(state.population)
    analysis = CampaignAnalysis(timeline=timeline, store=state.store)
    for entry in state.months:
        month_snaps = state.store.month(entry.month)
        verdicts = EntityClassifier(month_snaps).classify_all()
        analysis.verdicts_by_month[entry.month] = verdicts
        analysis.summaries[entry.month] = snapshot_summary(month_snaps,
                                                           verdicts)
        analysis.stats_by_month[entry.month] = ScanStats.from_dict(
            entry.stats)
    return analysis
