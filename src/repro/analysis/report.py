"""Plain-text rendering of tables and series.

The benchmark harness prints the same rows the paper's tables and
figures report; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_percent(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}%"


def render_table(rows: Sequence[Mapping], columns: Sequence[str],
                 *, title: str = "") -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return (title + "\n(empty)\n") if title else "(empty)\n"
    widths = {col: len(col) for col in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                text = f"{value:.2f}"
            else:
                text = str(value)
            widths[col] = max(widths[col], len(text))
            cells.append(text)
        rendered_rows.append(cells)

    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[col])
                               for cell, col in zip(cells, columns)))
    return "\n".join(lines) + "\n"


def render_series(points: Iterable[tuple], *, title: str = "",
                  label_width: int = 12, bar_scale: float = 1.0) -> str:
    """Render (label, value) points as a text sparkline table."""
    lines = [title] if title else []
    for label, value in points:
        bar = "#" * max(0, round(value * bar_scale))
        lines.append(f"{str(label):<{label_width}} {value:8.3f}  {bar}")
    return "\n".join(lines) + "\n"


def render_trace_summary(report) -> str:
    """Aggregate one :class:`~repro.trace.TraceReport` into text.

    Three blocks: the scan verdict census (from each domain tree's
    root ``verdict`` event), the metric counters, and the retry
    backoff histogram over virtual time.
    """
    from collections import Counter

    if not report.domain_spans and not report.resource_spans:
        return ("scan trace summary\n"
                "  no spans recorded (zero domains scanned)\n")

    verdicts: Counter = Counter()
    for span in report.domain_spans.values():
        for entry in span.events:
            if entry.get("event") == "verdict":
                verdicts[entry.get("bucket", "unknown")] += 1
    sections = [render_table(
        [{"verdict": bucket, "domains": count}
         for bucket, count in sorted(verdicts.items(),
                                     key=lambda kv: (-kv[1], kv[0]))],
        ("verdict", "domains"),
        title=f"scan verdicts ({sum(verdicts.values())} domains, "
              f"{len(report.resource_spans)} shared resources)")]

    counters = report.metrics.counters
    if counters:
        sections.append(render_table(
            [{"counter": name, "value": counters[name]}
             for name in sorted(counters)],
            ("counter", "value"), title="trace counters"))

    backoff = report.metrics.histograms.get("retry.backoff")
    if backoff is not None and backoff.observations:
        points = []
        for bound, count in zip(backoff.bounds, backoff.counts):
            points.append((f"<= {bound}s", float(count)))
        points.append((f"> {backoff.bounds[-1]}s",
                       float(backoff.counts[-1])))
        total_s = backoff.total_micros / 1_000_000
        sections.append(render_series(
            points,
            title=f"retry backoff (virtual; {backoff.observations} "
                  f"delays, {total_s:.2f}s total)"))
    return "\n".join(sections)


def render_profile(profile, width: int = 32) -> str:
    """Flame-style text rendering of a wall-clock
    :class:`~repro.obs.profile.ProfileReport`: one proportional bar per
    pipeline stage, then the top-N slowest domains."""
    total = profile.total_seconds
    lines = [f"wall-clock stage profile "
             f"({profile.domains_profiled:,} domains, "
             f"{total:.2f}s in stages)"]
    if not profile.stage_seconds:
        lines.append("  no stages profiled")
        return "\n".join(lines) + "\n"
    for stage in sorted(profile.stage_seconds,
                        key=lambda s: -profile.stage_seconds[s]):
        seconds = profile.stage_seconds[stage]
        share = seconds / total if total else 0.0
        bar = "█" * max(1, round(share * width))
        lines.append(f"  {stage:<8} {bar:<{width}} {seconds:8.3f}s "
                     f"{100.0 * share:5.1f}%  "
                     f"{profile.stage_calls.get(stage, 0):,} calls")
    if profile.slowest:
        lines.append("slowest domains:")
        for seconds, month, domain in profile.slowest:
            lines.append(f"  {domain:<28} m{month:02d} "
                         f"{1000.0 * seconds:8.3f}ms")
    return "\n".join(lines) + "\n"


def render_drift_table(rows) -> str:
    """The ``monitor`` subcommand's month-over-month signal table."""
    if not rows:
        return "(no monthly records)\n"
    formatted = []
    for row in rows:
        formatted.append({
            "month": f"m{int(row['month']):02d}",
            "domains": int(row["domains"]),
            "transient": f"{row['transient_rate']:.2%}",
            "jump": (f"{row['transient_jump']:+.2%}"
                     if "transient_jump" in row else "-"),
            "dns-hit": f"{row['dns_hit_rate']:.1%}",
            "smtp-hit": f"{row['smtp_hit_rate']:.1%}",
            "retries/dom": f"{row['retries_per_domain']:.3f}",
            "bucket-shift": (f"{row['max_bucket_shift']:.2%}"
                             if "max_bucket_shift" in row else "-"),
        })
    return render_table(
        formatted,
        ("month", "domains", "transient", "jump", "dns-hit", "smtp-hit",
         "retries/dom", "bucket-shift"),
        title="month-over-month scan health")
