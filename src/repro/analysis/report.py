"""Plain-text rendering of tables and series.

The benchmark harness prints the same rows the paper's tables and
figures report; these helpers keep the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_percent(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}%"


def render_table(rows: Sequence[Mapping], columns: Sequence[str],
                 *, title: str = "") -> str:
    """Render dict-rows as an aligned text table."""
    if not rows:
        return (title + "\n(empty)\n") if title else "(empty)\n"
    widths = {col: len(col) for col in columns}
    rendered_rows: List[List[str]] = []
    for row in rows:
        cells = []
        for col in columns:
            value = row.get(col, "")
            if isinstance(value, float):
                text = f"{value:.2f}"
            else:
                text = str(value)
            widths[col] = max(widths[col], len(text))
            cells.append(text)
        rendered_rows.append(cells)

    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[col])
                               for cell, col in zip(cells, columns)))
    return "\n".join(lines) + "\n"


def render_series(points: Iterable[tuple], *, title: str = "",
                  label_width: int = 12, bar_scale: float = 1.0) -> str:
    """Render (label, value) points as a text sparkline table."""
    lines = [title] if title else []
    for label, value in points:
        bar = "#" * max(0, round(value * bar_scale))
        lines.append(f"{str(label):<{label_width}} {value:8.3f}  {bar}")
    return "\n".join(lines) + "\n"
