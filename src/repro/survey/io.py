"""Survey answer import/export.

The paper releases its survey answers; this module round-trips
respondent populations through a flat CSV so externally released
answer sets load into the same :func:`repro.survey.analysis.analyze`
path the synthetic population uses.  Multi-valued/grid answers are
stored one column per question id with ``;``-joined values.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Sequence

from repro.survey.synthesize import Respondent


def export_csv(respondents: Sequence[Respondent]) -> str:
    """Serialise respondents to CSV text (stable column order)."""
    question_ids: List[str] = []
    seen = set()
    for respondent in respondents:
        for qid in respondent.answers:
            if qid not in seen:
                seen.add(qid)
                question_ids.append(qid)

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["rid"] + question_ids)
    for respondent in respondents:
        row = [str(respondent.rid)]
        for qid in question_ids:
            value = respondent.answers.get(qid)
            if value is None:
                row.append("")
            elif isinstance(value, (list, tuple)):
                row.append(";".join(str(v) for v in value))
            else:
                row.append(str(value))
        writer.writerow(row)
    return buffer.getvalue()


def import_csv(text: str) -> List[Respondent]:
    """Load respondents from CSV text produced by :func:`export_csv`
    (or hand-assembled with the same header convention)."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty CSV") from None
    if not header or header[0] != "rid":
        raise ValueError("first column must be 'rid'")
    question_ids = header[1:]

    respondents: List[Respondent] = []
    for line_number, row in enumerate(reader, start=2):
        if not row or all(not cell for cell in row):
            continue
        if len(row) != len(header):
            raise ValueError(
                f"line {line_number}: {len(row)} cells, "
                f"expected {len(header)}")
        try:
            rid = int(row[0])
        except ValueError:
            raise ValueError(
                f"line {line_number}: rid {row[0]!r} is not an integer"
            ) from None
        respondent = Respondent(rid=rid)
        for qid, cell in zip(question_ids, row[1:]):
            if cell == "":
                continue
            respondent.answer(qid, cell)
        respondents.append(respondent)
    return respondents
