"""The operator survey (paper §7 and Appendix C)."""

from repro.survey.questionnaire import (
    Question, QuestionKind, Questionnaire, build_questionnaire,
)
from repro.survey.synthesize import Respondent, synthesize_respondents
from repro.survey.analysis import SurveyFindings, analyze

__all__ = [
    "Question", "QuestionKind", "Questionnaire", "build_questionnaire",
    "Respondent", "synthesize_respondents",
    "SurveyFindings", "analyze",
]
