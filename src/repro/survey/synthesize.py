"""Synthetic survey respondents matching §7.2's reported marginals.

The paper released the raw answers; this reproduction synthesises a
respondent population whose per-question counts equal every figure the
paper reports, while respecting the questionnaire's branching (only
respondents who said they deployed MTA-STS answer the deployment
pages, etc.).  The construction is deterministic — exact counts, not
sampling — so the analysis stage reproduces §7.2 verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.survey.questionnaire import (
    ACCOUNT_BUCKETS, Questionnaire, build_questionnaire,
)

TOTAL_INITIAL = 120
TOTAL_ENGAGED = 117


@dataclass
class Respondent:
    """One participant's answer sheet (None = unanswered/skipped)."""

    rid: int
    answers: Dict[str, object] = field(default_factory=dict)

    def answer(self, qid: str, value: object) -> None:
        self.answers[qid] = value

    def get(self, qid: str) -> object:
        return self.answers.get(qid)


def _assign(respondents: Sequence[Respondent], qid: str,
            counts: Dict[object, int]) -> None:
    """Assign answers in order: the first ``counts[a]`` respondents get
    answer ``a``, and so on.  Respondents beyond the total stay
    unanswered (they dropped out of this question)."""
    total = sum(counts.values())
    if total > len(respondents):
        raise ValueError(
            f"{qid}: {total} answers but only {len(respondents)} "
            f"eligible respondents")
    index = 0
    for answer, count in counts.items():
        for _ in range(count):
            respondents[index].answer(qid, answer)
            index += 1


def synthesize_respondents() -> List[Respondent]:
    """The 117 engaged respondents, with §7.2-exact marginals."""
    respondents = [Respondent(rid=i) for i in range(TOTAL_ENGAGED)]
    for r in respondents:
        r.answer("consent_participate", "yes")
        r.answer("consent_publication", "yes")

    # §7.2 Deployment: 94 answered familiarity (89 yes); of the
    # continuers, 88 answered deployment (50 yes).
    _assign(respondents, "heard_mta_sts", {"yes": 89, "no": 5})
    continuers = [r for r in respondents
                  if r.get("heard_mta_sts") == "yes"]
    _assign(continuers, "deployed_mta_sts", {"yes": 50, "no": 38})

    deployed = [r for r in continuers if r.get("deployed_mta_sts") == "yes"]
    not_deployed = [r for r in continuers
                    if r.get("deployed_mta_sts") == "no"]

    # Figure 11: 92 respondents answered the account-count question
    # (totals 22 / 20 / 14 / 16 / 20 per bucket, 36 above 500 accounts);
    # the deployed subset contributes 6 / 10 / 8 / 11 / 15 — larger
    # operators deploy MTA-STS more.
    _assign(deployed, "account_count", {
        "<10": 6, "10-100": 10, "100-500": 8, "500-1k": 11, ">1k": 15})
    rest = not_deployed + [r for r in respondents
                           if r.get("heard_mta_sts") != "yes"]
    _assign(rest, "account_count", {
        "<10": 16, "10-100": 10, "100-500": 6, "500-1k": 5, ">1k": 5})

    # Motivation (42 respondents): 34 most-important = prevent
    # downgrade; 9 trust the web PKI more than DANE; 10 cite DANE's
    # DNSSEC complexity (some respondents appear in several columns of
    # a Likert grid; the primary choice is stored here).
    _assign(deployed, "why_adopt", {
        "prevent-downgrade": 34, "trust-web-pki": 4, "dane-harder": 4})
    _assign(deployed, "why_adopt_secondary", {
        "trust-web-pki": 5, "dane-harder": 6})

    # Requirements (41): 13 customer demand, 14 regulation, 5
    # reputation with large providers.
    _assign(deployed, "why_operators_roll_out", {
        "customers-asked": 13, "regulation": 14, "google-acceptance": 5,
        "curiosity": 6, "tech-pulse": 3})

    # Challenges among the deployed (43): operational complexity 21,
    # DANE fundamentally more secure 17, no need for encryption 5.
    _assign(deployed, "deployment_bottleneck", {
        "operational-complexity": 21, "dane-better": 17,
        "no-need-encryption": 5})

    # Management (41): 8 found the HTTPS policy file challenging, 11
    # policy updates.
    _assign(deployed, "hardest_aspect", {
        "https-policy-file": 8, "policy-update": 11, "dns-records": 9,
        "smtp-pkix-cert": 7, "opt-out": 6})

    # Update sequence (42): 15 never updated; 10 update the TXT record
    # first (the risky order).
    _assign(deployed, "update_sequence", {
        "never-updated": 15, "txt-first": 10, "policy-first": 12,
        "dont-know": 5})

    # Policy-host management pages.
    _assign(deployed, "policy_host_management", {
        "outsourced": 18, "self-managed": 27})
    outsourced = [r for r in deployed
                  if r.get("policy_host_management") == "outsourced"]
    _assign(outsourced, "which_provider", {
        "Tutanota": 4, "DMARCReport": 3, "PowerDMARC": 3, "EasyDMARC": 2,
        "Mailhardener": 2, "URIports": 1, "OnDMARC": 1, "other": 2})
    _assign(outsourced, "smtp_management", {
        "outsourced": 11, "self-managed": 7})
    both_outsourced = [r for r in outsourced
                       if r.get("smtp_management") == "outsourced"]
    _assign(both_outsourced, "provider_manages_policy",
            {"yes": 6, "no": 5})

    # Page 10 (33 answered of the 38 non-deployers): 15 use DANE, 9
    # find MTA-STS too complicated to manage.
    _assign(not_deployed, "why_not_deployed", {
        "use-dane": 15, "too-complicated": 9, "do-not-need": 5,
        "do-not-understand": 2, "other": 2})
    _assign(not_deployed, "ever_used", {"yes": 7, "no": 24})

    # DANE familiarity (79 answered, 78 yes).
    dane_eligible = continuers
    _assign(dane_eligible, "heard_dane", {"yes": 78, "no": 1})
    dane_aware = [r for r in dane_eligible if r.get("heard_dane") == "yes"]

    # Of the DANE-aware: 26 serve no TLSA record; 10 lack DNSSEC
    # support at their authoritative server or registrar.
    _assign(dane_aware, "dane_no_tlsa", {"yes": 26, "no": 52})
    _assign(dane_aware, "dane_no_dnssec_support", {"yes": 10, "no": 55})

    # 51 of 70 (72.8%) judge DANE the superior design on security.
    _assign(dane_aware, "better_protocol", {
        "dane": 51, "mta-sts": 12, "balanced": 7})

    # Outbound validation (pages 13-15).
    _assign(continuers, "validates_outbound", {
        "yes": 24, "no": 40, "dont-know": 12})
    validators = [r for r in continuers
                  if r.get("validates_outbound") == "yes"]
    _assign(validators, "validation_tool", {
        "postfix-mta-sts-resolver": 11, "mox": 3, "proprietary": 6,
        "other": 4})
    _assign(validators, "validation_bottleneck", {
        "no-sender-incentive": 9, "low-deployment": 7,
        "cache-maintenance": 4, "low-awareness": 4})

    return respondents
