"""The Appendix-C questionnaire, with page flow and branching.

The survey is fifteen pages; several answers terminate the survey or
jump over pages (e.g. answering "No" to "Have you heard about
MTA-STS?" ends it; answering "No" to "Does your domain support
MTA-STS?" jumps to Page 10).  The model captures every question the
paper lists plus the branching rules, so the synthesizer can only
produce answer sets a real participant could have produced — the
denominators in §7.2 differ per question precisely because of this
flow.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


class QuestionKind(enum.Enum):
    SINGLE_CHOICE = "SCQ"
    MULTIPLE_CHOICE = "MCQ"
    YES_NO = "YN"
    TEXTBOX = "TB"
    GRID = "GS"
    LIKERT = "LS"


@dataclass(frozen=True)
class Question:
    qid: str
    page: int
    kind: QuestionKind
    text: str
    options: tuple = ()
    optional: bool = True


@dataclass
class BranchRule:
    """After *question*, an answer in *answers* jumps to *target_page*
    (None = end the survey)."""

    question: str
    answers: tuple
    target_page: Optional[int]


@dataclass
class Questionnaire:
    questions: List[Question] = field(default_factory=list)
    branches: List[BranchRule] = field(default_factory=list)
    last_page: int = 15

    def question(self, qid: str) -> Question:
        for q in self.questions:
            if q.qid == qid:
                return q
        raise KeyError(qid)

    def page_questions(self, page: int) -> List[Question]:
        return [q for q in self.questions if q.page == page]

    def next_page(self, page: int,
                  answers: Dict[str, object]) -> Optional[int]:
        """The page after *page*, honouring branch rules (None = done)."""
        for rule in self.branches:
            question = self.question(rule.question)
            if question.page != page:
                continue
            answer = answers.get(rule.question)
            if answer in rule.answers:
                return rule.target_page
        nxt = page + 1
        return nxt if nxt <= self.last_page else None

    def walk(self, answers: Dict[str, object]) -> List[int]:
        """The sequence of pages a respondent with *answers* visits."""
        pages = []
        page: Optional[int] = 1
        while page is not None:
            pages.append(page)
            page = self.next_page(page, answers)
        return pages

    def reachable_questions(self, answers: Dict[str, object]) -> List[str]:
        pages = set(self.walk(answers))
        return [q.qid for q in self.questions if q.page in pages]


ACCOUNT_BUCKETS = ("<10", "10-100", "100-500", "500-1k", ">1k")

NOT_DEPLOYED_REASONS = (
    "do-not-understand", "do-not-need", "too-complicated", "use-dane",
    "other")

UPDATE_SEQUENCES = ("txt-first", "policy-first", "never-updated",
                    "dont-know")

POLICY_HOST_PROVIDERS = ("Tutanota", "URIports", "Mailhardener",
                         "PowerDMARC", "EasyDMARC", "OnDMARC",
                         "DMARCReport", "other")


def build_questionnaire() -> Questionnaire:
    """The full Appendix-C instrument."""
    q = Questionnaire()
    add = q.questions.append

    # Page 1: consent (mandatory; a "no" ends the survey).
    add(Question("consent_participate", 1, QuestionKind.YES_NO,
                 "I consent voluntarily to be a participant", optional=False))
    add(Question("consent_publication", 1, QuestionKind.YES_NO,
                 "Information I provide may be used for publications",
                 optional=False))

    # Page 2: basics.
    add(Question("organization", 2, QuestionKind.TEXTBOX,
                 "Name of the organization"))
    add(Question("domain", 2, QuestionKind.TEXTBOX,
                 "Main domain name"))
    add(Question("account_count", 2, QuestionKind.SINGLE_CHOICE,
                 "How many email accounts exist under your infrastructure?",
                 options=ACCOUNT_BUCKETS))

    # Page 3/4: MTA-STS checks.
    add(Question("heard_mta_sts", 3, QuestionKind.YES_NO,
                 "Have you heard about MTA-STS?"))
    add(Question("deployed_mta_sts", 4, QuestionKind.YES_NO,
                 "Does your domain support MTA-STS?"))

    # Page 5: deployment for inbound email.
    add(Question("deploy_valid_components", 5, QuestionKind.GRID,
                 "Select the best option for each statement",
                 options=("record", "policy", "consistency", "starttls",
                          "pkix-some", "pkix-all")))
    add(Question("why_adopt", 5, QuestionKind.LIKERT,
                 "Why did you adopt MTA-STS?",
                 options=("prevent-downgrade", "trust-web-pki",
                          "testing-mode", "dane-harder")))
    add(Question("why_operators_roll_out", 5, QuestionKind.LIKERT,
                 "Why do operators roll out MTA-STS?",
                 options=("customers-asked", "regulation", "curiosity",
                          "google-acceptance", "tech-pulse")))
    add(Question("deployment_bottleneck", 5, QuestionKind.LIKERT,
                 "Largest bottleneck for MTA-STS deployment?",
                 options=("operational-complexity", "dane-better",
                          "no-need-encryption")))

    # Page 6: misconfigurations.
    add(Question("setting_valid", 6, QuestionKind.SINGLE_CHOICE,
                 "Is the MTA-STS setting of your domain valid?",
                 options=("yes", "no", "dont-know")))
    add(Question("hardest_aspect", 6, QuestionKind.LIKERT,
                 "Most difficult thing in setting up/managing MTA-STS?",
                 options=("dns-records", "https-policy-file",
                          "smtp-pkix-cert", "policy-update", "opt-out")))
    add(Question("invalid_config_reason", 6, QuestionKind.LIKERT,
                 "Main reason behind invalid MTA-STS configurations?",
                 options=("policy-dns-dependency", "smtp-server-error",
                          "https-policy-error", "dns-error")))
    add(Question("update_sequence", 6, QuestionKind.SINGLE_CHOICE,
                 "While updating your policy, which sequence?",
                 options=UPDATE_SEQUENCES))

    # Page 7-9: policy host management.
    add(Question("policy_host_management", 7, QuestionKind.SINGLE_CHOICE,
                 "How do you manage your MTA-STS policy host?",
                 options=("outsourced", "self-managed")))
    add(Question("which_provider", 8, QuestionKind.SINGLE_CHOICE,
                 "Which 3rd-party policy host service?",
                 options=POLICY_HOST_PROVIDERS))
    add(Question("hosted_reduces_complexity", 8, QuestionKind.LIKERT,
                 "Hosted MTA-STS reduces operational complexity",
                 options=("agree-scale",)))
    add(Question("smtp_management", 8, QuestionKind.SINGLE_CHOICE,
                 "How do you manage your incoming SMTP server?",
                 options=("outsourced", "self-managed")))
    add(Question("provider_manages_policy", 9, QuestionKind.YES_NO,
                 "Does your email hosting provider manage your policy?"))

    # Page 10: not deployed.
    add(Question("why_not_deployed", 10, QuestionKind.SINGLE_CHOICE,
                 "Why do you NOT deploy MTA-STS?",
                 options=NOT_DEPLOYED_REASONS))
    add(Question("ever_used", 10, QuestionKind.YES_NO,
                 "Have you ever used MTA-STS?"))

    # Page 11-12: DANE.
    add(Question("heard_dane", 11, QuestionKind.YES_NO,
                 "Have you heard about DANE?"))
    add(Question("dane_support", 12, QuestionKind.GRID,
                 "Does your email server support DANE for inbound email?",
                 options=("tlsa-record", "starttls", "dnssec-support",
                          "tlsa-consistent")))
    add(Question("better_protocol", 12, QuestionKind.LIKERT,
                 "Which protocol is better for mandating encryption?",
                 options=("easier-deploy", "fewer-requirements",
                          "easier-maintain", "higher-security",
                          "higher-benefit", "lower-cost")))

    # Page 13-15: outbound validation.
    add(Question("validates_outbound", 13, QuestionKind.SINGLE_CHOICE,
                 "Does your server validate MTA-STS for outbound?",
                 options=("yes", "no", "dont-know")))
    add(Question("validation_tool", 14, QuestionKind.SINGLE_CHOICE,
                 "Which tool validates MTA-STS outbound?",
                 options=("postfix-mta-sts-resolver", "mox",
                          "proprietary", "other")))
    add(Question("validation_bottleneck", 15, QuestionKind.LIKERT,
                 "Major bottleneck behind lack of validation support?",
                 options=("no-sender-incentive", "cache-maintenance",
                          "low-deployment", "low-awareness")))

    q.branches = [
        BranchRule("consent_participate", ("no",), None),
        BranchRule("consent_publication", ("no",), None),
        BranchRule("heard_mta_sts", ("no",), None),
        BranchRule("deployed_mta_sts", ("no",), 10),
        BranchRule("policy_host_management", ("self-managed",), 11),
        BranchRule("smtp_management", ("self-managed",), 11),
        # Page 9 and Page 10 both flow into the DANE pages; Page 10 is
        # only ever *entered* through the deployed=no branch.
        BranchRule("provider_manages_policy", ("yes", "no"), 11),
        BranchRule("heard_dane", ("no",), 13),
        BranchRule("validates_outbound", ("no", "dont-know"), None),
    ]
    return q
