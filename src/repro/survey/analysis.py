"""Survey analysis: recompute every §7.2 statistic from answer sheets.

The functions work for any respondent population with this
questionnaire's answer keys — the synthetic one ships with the
library, but real exported answers load the same way.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.survey.questionnaire import ACCOUNT_BUCKETS
from repro.survey.synthesize import Respondent


def _answered(respondents: List[Respondent], qid: str) -> List[Respondent]:
    return [r for r in respondents if r.get(qid) is not None]


def _count(respondents: List[Respondent], qid: str) -> Counter:
    return Counter(r.get(qid) for r in _answered(respondents, qid))


def _pct(part: int, whole: int) -> float:
    return 100.0 * part / whole if whole else 0.0


@dataclass
class SurveyFindings:
    """Every §7.2 number, as (count, denominator, percent) triples."""

    engaged: int = 0
    heard_of_mta_sts: tuple = (0, 0, 0.0)
    deployed: tuple = (0, 0, 0.0)
    motivation_downgrade: tuple = (0, 0, 0.0)
    trust_web_pki: int = 0
    favored_over_dane: int = 0
    customer_demand: tuple = (0, 0, 0.0)
    regulation: tuple = (0, 0, 0.0)
    reputation_large_providers: int = 0
    bottleneck_complexity: tuple = (0, 0, 0.0)
    bottleneck_dane_secure: tuple = (0, 0, 0.0)
    bottleneck_no_need: tuple = (0, 0, 0.0)
    not_deployed_use_dane: tuple = (0, 0, 0.0)
    not_deployed_too_complicated: tuple = (0, 0, 0.0)
    mgmt_https_hard: tuple = (0, 0, 0.0)
    mgmt_updates_hard: tuple = (0, 0, 0.0)
    update_never: tuple = (0, 0, 0.0)
    update_txt_first: tuple = (0, 0, 0.0)
    heard_dane: tuple = (0, 0, 0.0)
    dane_no_tlsa: tuple = (0, 0, 0.0)
    dane_no_dnssec: int = 0
    dane_superior: tuple = (0, 0, 0.0)
    demographics: Dict[str, int] = field(default_factory=dict)
    demographics_deployed: Dict[str, int] = field(default_factory=dict)


def analyze(respondents: List[Respondent]) -> SurveyFindings:
    findings = SurveyFindings()
    findings.engaged = sum(1 for r in respondents if r.answers)

    heard = _count(respondents, "heard_mta_sts")
    heard_n = sum(heard.values())
    findings.heard_of_mta_sts = (heard["yes"], heard_n,
                                 _pct(heard["yes"], heard_n))

    dep = _count(respondents, "deployed_mta_sts")
    dep_n = sum(dep.values())
    findings.deployed = (dep["yes"], dep_n, _pct(dep["yes"], dep_n))

    adopt = _count(respondents, "why_adopt")
    adopt_n = sum(adopt.values())
    findings.motivation_downgrade = (
        adopt["prevent-downgrade"], adopt_n,
        _pct(adopt["prevent-downgrade"], adopt_n))
    secondary = _count(respondents, "why_adopt_secondary")
    findings.trust_web_pki = (adopt["trust-web-pki"]
                              + secondary["trust-web-pki"])
    findings.favored_over_dane = (adopt["dane-harder"]
                                  + secondary["dane-harder"])

    rollout = _count(respondents, "why_operators_roll_out")
    rollout_n = sum(rollout.values())
    findings.customer_demand = (rollout["customers-asked"], rollout_n,
                                _pct(rollout["customers-asked"], rollout_n))
    findings.regulation = (rollout["regulation"], rollout_n,
                           _pct(rollout["regulation"], rollout_n))
    findings.reputation_large_providers = rollout["google-acceptance"]

    bottleneck = _count(respondents, "deployment_bottleneck")
    bn = sum(bottleneck.values())
    findings.bottleneck_complexity = (
        bottleneck["operational-complexity"], bn,
        _pct(bottleneck["operational-complexity"], bn))
    findings.bottleneck_dane_secure = (
        bottleneck["dane-better"], bn, _pct(bottleneck["dane-better"], bn))
    findings.bottleneck_no_need = (
        bottleneck["no-need-encryption"], bn,
        _pct(bottleneck["no-need-encryption"], bn))

    why_not = _count(respondents, "why_not_deployed")
    wn = sum(why_not.values())
    findings.not_deployed_use_dane = (
        why_not["use-dane"], wn, _pct(why_not["use-dane"], wn))
    findings.not_deployed_too_complicated = (
        why_not["too-complicated"], wn,
        _pct(why_not["too-complicated"], wn))

    hardest = _count(respondents, "hardest_aspect")
    hn = sum(hardest.values())
    findings.mgmt_https_hard = (
        hardest["https-policy-file"], hn,
        _pct(hardest["https-policy-file"], hn))
    findings.mgmt_updates_hard = (
        hardest["policy-update"], hn, _pct(hardest["policy-update"], hn))

    sequence = _count(respondents, "update_sequence")
    sn = sum(sequence.values())
    findings.update_never = (sequence["never-updated"], sn,
                             _pct(sequence["never-updated"], sn))
    findings.update_txt_first = (sequence["txt-first"], sn,
                                 _pct(sequence["txt-first"], sn))

    dane = _count(respondents, "heard_dane")
    dn = sum(dane.values())
    findings.heard_dane = (dane["yes"], dn, _pct(dane["yes"], dn))

    no_tlsa = _count(respondents, "dane_no_tlsa")
    nt = sum(no_tlsa.values())
    findings.dane_no_tlsa = (no_tlsa["yes"], nt, _pct(no_tlsa["yes"], nt))
    findings.dane_no_dnssec = _count(
        respondents, "dane_no_dnssec_support")["yes"]

    better = _count(respondents, "better_protocol")
    bp = sum(better.values())
    findings.dane_superior = (better["dane"], bp, _pct(better["dane"], bp))

    findings.demographics = {
        bucket: _count(respondents, "account_count")[bucket]
        for bucket in ACCOUNT_BUCKETS}
    deployed_respondents = [r for r in respondents
                            if r.get("deployed_mta_sts") == "yes"]
    findings.demographics_deployed = {
        bucket: _count(deployed_respondents, "account_count")[bucket]
        for bucket in ACCOUNT_BUCKETS}
    return findings
