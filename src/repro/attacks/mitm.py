"""Man-in-the-middle attacks against SMTP transport security.

The paper's introduction motivates MTA-STS with two attacks:

* **STARTTLS stripping** — an on-path attacker removes the STARTTLS
  capability from the EHLO response, downgrading opportunistic senders
  to plaintext (§1, [9, 19, 32]);
* **DNS/MX spoofing** — without DNSSEC, an attacker answers the MX (or
  policy-host A) lookup with their own server.

Each attacker here is *installed into* the simulated network and then
defeated — or not — by the sending-side configuration.  The
reproduction demonstrates the full security matrix the paper implies:

====================  ============  =====================
sender                stripping     first-contact TOFU
====================  ============  =====================
opportunistic         downgraded    n/a
MTA-STS, cached       refuses       —
MTA-STS, no cache     refuses*      policy fetch blocked
                                    ⇒ downgraded (fn. 2)
DANE (secure chain)   refuses       safe (no TOFU)
====================  ============  =====================

(*) the DNS record alone reveals MTA-STS support; only when the
attacker also blocks the policy host AND the sender has no cached
policy does the trust-on-first-use weakness bite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dns.name import DnsName, canonical_host
from repro.errors import NxDomain
from repro.netsim.ip import IpAddress
from repro.netsim.network import Network
from repro.smtp.server import SMTP_PORT, EhloResponse, MxHost


class _StrippedMx:
    """A transparent proxy over an MxHost that hides STARTTLS.

    Everything else passes through, so mail still flows — in
    plaintext, which is the point of the attack.
    """

    def __init__(self, victim: MxHost, attacker: "StarttlsStripper"):
        self._victim = victim
        self._attacker = attacker

    def greet(self):
        return self._victim.greet()

    def ehlo(self, client_name: str,
             client_ip: Optional[IpAddress] = None) -> EhloResponse:
        response = self._victim.ehlo(client_name, client_ip)
        stripped = tuple(ext for ext in response.extensions
                         if ext != "STARTTLS")
        if len(stripped) != len(response.extensions):
            self._attacker.stripped_sessions += 1
        return EhloResponse(response.code, response.hostname, stripped)

    def helo(self, client_name: str) -> EhloResponse:
        return self._victim.helo(client_name)

    def starttls_endpoint(self):
        # A client that issues STARTTLS anyway gets the real endpoint —
        # the attack only removes the advertisement (the classic strip).
        return self._victim.starttls_endpoint()

    def accept_message(self, sender, recipient, body, *, over_tls):
        if not over_tls:
            self._attacker.intercepted_messages.append(
                (sender, recipient, body))
        return self._victim.accept_message(sender, recipient, body,
                                           over_tls=over_tls)

    @property
    def hostname(self):
        return self._victim.hostname

    @property
    def tls(self):
        return self._victim.tls


@dataclass
class StarttlsStripper:
    """Install an on-path STARTTLS-stripping attacker before one MX."""

    network: Network
    stripped_sessions: int = 0
    intercepted_messages: List[tuple] = field(default_factory=list)
    _installed: List[tuple] = field(default_factory=list)

    def attack(self, mx: MxHost) -> None:
        proxy = _StrippedMx(mx, self)
        self.network.register(mx.ip, SMTP_PORT, proxy,
                              description=f"mitm:{mx.hostname}")
        self._installed.append((mx.ip, mx))

    def withdraw(self) -> None:
        for ip, mx in self._installed:
            self.network.register(ip, SMTP_PORT, mx,
                                  description=f"smtp:{mx.hostname}")
        self._installed.clear()

    @property
    def plaintext_captured(self) -> bool:
        return bool(self.intercepted_messages)


class DnsSpoofer:
    """Poisons a resolver's view of specific names.

    Models an off-path cache-poisoning (or on-path rewriting) attacker:
    queries for the poisoned names resolve to attacker-chosen answers.
    DNSSEC-validating flows are immune — which is why the simulation
    applies the spoof only at the (unsigned) resolver layer, matching
    the paper's framing that DANE's protection comes from DNSSEC while
    MTA-STS relies on the web PKI instead.
    """

    def __init__(self, resolver):
        self._resolver = resolver
        self._original_query = resolver._query_one
        self._mx_spoofs: dict = {}
        self.spoofed_lookups = 0
        resolver._query_one = self._spoofing_query   # type: ignore

    def spoof_mx(self, domain: str, attacker_mx: str) -> None:
        """All MX lookups for *domain* now name the attacker's host."""
        self._mx_spoofs[canonical_host(domain)] = attacker_mx

    def _spoofing_query(self, name: DnsName, rrtype):
        from repro.dns.records import MxRecord, RRType
        if rrtype is RRType.MX and name.text in self._mx_spoofs:
            self.spoofed_lookups += 1
            fake = MxRecord(name, 60, 0,
                            DnsName.parse(self._mx_spoofs[name.text]))
            return [fake], None
        return self._original_query(name, rrtype)

    def withdraw(self) -> None:
        self._resolver._query_one = self._original_query


class PolicyHostBlocker:
    """Blocks resolution of ``mta-sts.<domain>`` — the second half of a
    first-contact attack: with the policy unfetchable and nothing
    cached, an MTA-STS sender degrades to opportunistic TLS (the TOFU
    weakness of footnote 2)."""

    def __init__(self, resolver):
        self._resolver = resolver
        self._original_query = resolver._query_one
        self._blocked: set = set()
        self.blocked_lookups = 0
        resolver._query_one = self._blocking_query   # type: ignore

    def block_policy_host(self, domain: str) -> None:
        self._blocked.add(f"mta-sts.{canonical_host(domain)}")

    def _blocking_query(self, name: DnsName, rrtype):
        if name.text in self._blocked:
            self.blocked_lookups += 1
            raise NxDomain(f"{name} (spoofed NXDOMAIN)")
        return self._original_query(name, rrtype)

    def withdraw(self) -> None:
        self._resolver._query_one = self._original_query
