"""Active-attacker simulations: the threats MTA-STS exists to stop."""

from repro.attacks.mitm import (
    StarttlsStripper, DnsSpoofer, PolicyHostBlocker,
)

__all__ = ["StarttlsStripper", "DnsSpoofer", "PolicyHostBlocker"]
