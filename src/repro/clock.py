"""Simulated time.

Every component in the simulation (certificate validity, policy cache
expiry, longitudinal snapshots) takes time from an explicit
:class:`Clock` rather than the wall clock, so that a three-year
measurement campaign replays deterministically in milliseconds.

Time is modelled as integer seconds since the Unix epoch
(:class:`Instant`) and integer-second spans (:class:`Duration`).
Calendar helpers cover the paper's measurement window (September 2021
through September 2024).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, order=True)
class Instant:
    """A point in simulated time, in whole seconds since the epoch."""

    epoch_seconds: int

    @classmethod
    def from_date(cls, year: int, month: int, day: int,
                  hour: int = 0, minute: int = 0, second: int = 0) -> "Instant":
        dt = _dt.datetime(year, month, day, hour, minute, second,
                          tzinfo=_dt.timezone.utc)
        return cls(int(dt.timestamp()))

    @classmethod
    def parse(cls, text: str) -> "Instant":
        """Parse ``YYYY-MM-DD`` or ``YYYY-MM-DDTHH:MM:SS``."""
        if "T" in text:
            dt = _dt.datetime.fromisoformat(text)
            if dt.tzinfo is None:
                dt = dt.replace(tzinfo=_dt.timezone.utc)
        else:
            y, m, d = (int(p) for p in text.split("-"))
            dt = _dt.datetime(y, m, d, tzinfo=_dt.timezone.utc)
        return cls(int(dt.timestamp()))

    def to_datetime(self) -> _dt.datetime:
        return _dt.datetime.fromtimestamp(self.epoch_seconds, tz=_dt.timezone.utc)

    def date_string(self) -> str:
        return self.to_datetime().strftime("%Y-%m-%d")

    def month_string(self) -> str:
        return self.to_datetime().strftime("%Y-%m")

    def __add__(self, other: "Duration") -> "Instant":
        if not isinstance(other, Duration):
            return NotImplemented
        return Instant(self.epoch_seconds + other.seconds)

    def __sub__(self, other):
        if isinstance(other, Duration):
            return Instant(self.epoch_seconds - other.seconds)
        if isinstance(other, Instant):
            return Duration(self.epoch_seconds - other.epoch_seconds)
        return NotImplemented

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_datetime().strftime("%Y-%m-%dT%H:%M:%SZ")


@dataclass(frozen=True, order=True)
class Duration:
    """A span of simulated time, in whole seconds.  May be negative."""

    seconds: int

    @classmethod
    def of(cls, *, weeks: int = 0, days: int = 0, hours: int = 0,
           minutes: int = 0, seconds: int = 0) -> "Duration":
        total = seconds + 60 * (minutes + 60 * (hours + 24 * (days + 7 * weeks)))
        return cls(total)

    def __add__(self, other: "Duration") -> "Duration":
        if not isinstance(other, Duration):
            return NotImplemented
        return Duration(self.seconds + other.seconds)

    def __mul__(self, factor: int) -> "Duration":
        return Duration(self.seconds * factor)

    __rmul__ = __mul__

    def __neg__(self) -> "Duration":
        return Duration(-self.seconds)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.seconds}s"


SECOND = Duration(1)
MINUTE = Duration(60)
HOUR = Duration(3600)
DAY = Duration(86400)
WEEK = Duration(7 * 86400)


class Clock:
    """A mutable simulated clock.

    The clock only moves forward; components hold a reference to it and
    call :meth:`now` when they need the current instant.
    """

    def __init__(self, start: Instant):
        self._now = start

    def now(self) -> Instant:
        return self._now

    def advance(self, duration: Duration) -> Instant:
        if duration.seconds < 0:
            raise ValueError("the simulated clock cannot move backwards")
        self._now = self._now + duration
        return self._now

    def advance_to(self, instant: Instant) -> Instant:
        if instant < self._now:
            raise ValueError(
                f"cannot rewind clock from {self._now} to {instant}")
        self._now = instant
        return self._now


def weekly_instants(start: Instant, end: Instant) -> Iterator[Instant]:
    """Yield weekly snapshot instants from *start* to *end* inclusive."""
    current = start
    while current <= end:
        yield current
        current = current + WEEK


def monthly_instants(start: Instant, end: Instant) -> Iterator[Instant]:
    """Yield snapshot instants on the same day-of-month as *start*.

    Months without that day clamp to the month's last day, matching how
    the paper's monthly component scans (Nov 7, 2023 onward) behave.
    """
    dt = start.to_datetime()
    anchor_day = dt.day
    current = dt
    while True:
        instant = Instant(int(current.timestamp()))
        if instant > end:
            return
        yield instant
        year, month = current.year, current.month
        month += 1
        if month == 13:
            month, year = 1, year + 1
        day = min(anchor_day, _days_in_month(year, month))
        current = current.replace(year=year, month=month, day=day)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        nxt = _dt.date(year + 1, 1, 1)
    else:
        nxt = _dt.date(year, month + 1, 1)
    return (nxt - _dt.date(year, month, 1)).days
