"""IP address model for the simulated internet.

Addresses are plain value objects; :class:`IpPool` hands out
deterministic, non-colliding addresses so population generators can
assign "infrastructure" (a provider's shared MX farm) and "edge"
(a hobbyist's single VPS) addresses that the classification heuristics
in :mod:`repro.measurement.classify` can reason about.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class IpAddress:
    """An IPv4 or IPv6 address, stored in canonical text form."""

    text: str
    family: int = 4

    @classmethod
    def v4(cls, a: int, b: int, c: int, d: int) -> "IpAddress":
        for octet in (a, b, c, d):
            if not 0 <= octet <= 255:
                raise ValueError(f"octet out of range: {octet}")
        return cls(f"{a}.{b}.{c}.{d}", 4)

    @classmethod
    def v6(cls, suffix: int) -> "IpAddress":
        if not 0 <= suffix <= 0xFFFF_FFFF:
            raise ValueError("v6 suffix out of range")
        return cls(f"2001:db8::{suffix:x}", 6)

    @classmethod
    def parse(cls, text: str) -> "IpAddress":
        family = 6 if ":" in text else 4
        if family == 4:
            parts = text.split(".")
            if len(parts) != 4 or not all(
                    p.isdigit() and 0 <= int(p) <= 255 for p in parts):
                raise ValueError(f"invalid IPv4 address: {text!r}")
        return cls(text, family)

    def same_slash24(self, other: "IpAddress") -> bool:
        """True when both are IPv4 addresses in the same /24.

        The paper's Heuristic 1 groups "identical or nearby IP
        addresses" under a single administrator; a shared /24 is the
        proxy for "nearby" used here.
        """
        if self.family != 4 or other.family != 4:
            return False
        return self.text.rsplit(".", 1)[0] == other.text.rsplit(".", 1)[0]

    def __str__(self) -> str:
        return self.text


class IpPool:
    """Deterministic allocator of unique IPv4 addresses.

    Allocations walk 10.0.0.0/8 sequentially; separate pools (one per
    provider, one for self-hosters) are created with distinct bases so
    address proximity carries meaning in the simulation.
    """

    def __init__(self, base_second_octet: int = 0):
        if not 0 <= base_second_octet <= 255:
            raise ValueError("base octet out of range")
        self._base = base_second_octet
        self._next = 0
        self._limit = 256 * 256 * 254

    def allocate(self) -> IpAddress:
        if self._next >= self._limit:
            raise RuntimeError("IP pool exhausted")
        index = self._next
        self._next += 1
        c, d = divmod(index, 254)
        b_extra, c = divmod(c, 256)
        return IpAddress.v4(10, (self._base + b_extra) % 256, c, d + 1)

    def allocate_block(self, count: int) -> list[IpAddress]:
        return [self.allocate() for _ in range(count)]
