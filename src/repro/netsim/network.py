"""TCP-level reachability for the simulated internet.

The :class:`Network` is the single rendezvous object shared by every
simulated host.  Servers (authoritative DNS, HTTPS policy hosts, SMTP
MX hosts) register a :class:`Listener` on an ``(ip, port)`` endpoint;
clients call :meth:`Network.connect` and either receive the listener's
application object or a transport exception that mirrors what a real
scanner would see: connection refused (no listener / closed port) or a
timeout (firewalled or blackholed host).

This layer is what lets the measurement pipeline distinguish the
paper's "TCP errors" (closed ports, connection timeouts — Figure 5)
from everything else.

On top of the static :class:`TcpBehavior` outcomes sits the
deterministic fault-injection layer: a :class:`FaultPlan` installed
via :meth:`Network.install_fault_plan` intercepts every connection
attempt and can refuse, blackhole, reset, or slow it according to a
seeded per-endpoint schedule.  Injected failures carry
``transient=True`` so the retry layer (:mod:`repro.netsim.retry`) can
separate network noise from deterministic misconfiguration — the
distinction the paper's error taxonomy is built on.
"""

from __future__ import annotations

import enum
import random
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro import trace
from repro.errors import (
    ConnectionRefused, ConnectionReset, ConnectionTimeout, HostUnreachable,
)
from repro.netsim.ip import IpAddress


class TcpBehavior(enum.Enum):
    """How an endpoint responds to a connection attempt."""

    ACCEPT = "accept"
    REFUSE = "refuse"      # RST: port closed
    TIMEOUT = "timeout"    # SYN blackholed: firewall drop


@dataclass
class Listener:
    """A registered service endpoint."""

    ip: IpAddress
    port: int
    app: Any
    behavior: TcpBehavior = TcpBehavior.ACCEPT
    description: str = ""


# ---------------------------------------------------------------------------
# Deterministic fault injection
# ---------------------------------------------------------------------------

class FaultKind(enum.Enum):
    """The failure modes a :class:`FaultSpec` can inject."""

    REFUSE = "refuse"          # RST the first ``count`` attempts
    TIMEOUT = "timeout"        # blackhole the first ``count`` attempts
    RESET = "reset"            # accept, then RST after ``after_bytes``
    SLOW_START = "slow-start"  # charge ``latency`` seconds per attempt
    FLAP = "flap"              # down on a clock-keyed square wave


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault on one endpoint.

    Attempt-scoped kinds (``REFUSE``/``TIMEOUT``/``RESET``/
    ``SLOW_START``) fire on attempts ``0 .. count-1`` of each client
    *operation* (one retry loop) and are exhausted afterwards — an
    endpoint with ``count`` smaller than the retry budget therefore
    *recovers* within the operation.  ``FLAP`` ignores the attempt
    index: the endpoint is down whenever the simulated clock sits in
    the spec's down phase (``(now // period + phase) % 2 == 0``), which
    is what makes endpoints flap *between* monthly scans while staying
    deterministic within one.
    """

    kind: FaultKind
    count: int = 1             # attempts affected (attempt-scoped kinds)
    after_bytes: int = 0       # RESET: payload delivered before the RST
    latency: float = 0.0       # SLOW_START: seconds charged per attempt
    period: int = 0            # FLAP: half-period in simulated seconds
    phase: int = 0             # FLAP: 0 = down first, 1 = up first

    def fires(self, attempt: int, now_epoch: int) -> bool:
        if self.kind is FaultKind.FLAP:
            if self.period <= 0:
                return False
            return (now_epoch // self.period + self.phase) % 2 == 0
        return attempt < self.count


def _transient(exc):
    exc.transient = True
    return exc


class FaultPlan:
    """A seeded, deterministic schedule of endpoint faults.

    Faults are keyed two ways:

    * by concrete endpoint (:meth:`add`) — exact ``(ip, port)``;
    * by listener *description* (:meth:`add_description`) — the stable
      logical name servers register under (``smtp:mx1.example.com``,
      ``https:mta-sts.example.com``, ``dns:ns.example.com``), which
      survives world rebuilds whose IP allocation order differs.

    :meth:`seeded` adds a third, fully generative rule: every listener
    whose description hashes under ``rate`` (seeded RNG) gets a random
    schedule derived from ``(seed, description)`` alone.  Two worlds
    hosting the same logical services therefore fault identically
    under the same seed, regardless of IP layout or registration
    order — the property the incremental-vs-full differential tests
    lean on.

    Every decision is a pure function of (endpoint, description,
    attempt index, simulated instant, seed): the plan keeps no
    schedule state, so serial and threaded scan backends observe
    byte-identical outcomes under any interleaving.  Counters are the
    only mutable state and never feed back into decisions.
    """

    #: Parameter ranges for :meth:`seeded` schedules.
    _SEEDED_KINDS = (FaultKind.REFUSE, FaultKind.TIMEOUT, FaultKind.RESET,
                     FaultKind.SLOW_START, FaultKind.FLAP)
    _FLAP_PERIODS = (14 * 86400, 30 * 86400, 45 * 86400)

    def __init__(self, *, seed: int = 0, rate: float = 0.0,
                 kinds: Optional[Tuple[FaultKind, ...]] = None):
        self.seed = seed
        self.rate = rate
        self.kinds = tuple(kinds) if kinds else self._SEEDED_KINDS
        self._by_endpoint: Dict[Tuple[str, int], Tuple[FaultSpec, ...]] = {}
        self._by_description: Dict[str, Tuple[FaultSpec, ...]] = {}
        self._seeded_cache: Dict[str, Tuple[FaultSpec, ...]] = {}
        self._lock = threading.Lock()
        self.injections = 0
        self.injected_by_kind: Dict[str, int] = {}

    # -- schedule construction ----------------------------------------

    def add(self, ip: IpAddress | str, port: int,
            *specs: FaultSpec) -> "FaultPlan":
        ip_text = ip.text if isinstance(ip, IpAddress) else ip
        key = (ip_text, port)
        self._by_endpoint[key] = self._by_endpoint.get(key, ()) + specs
        return self

    def add_description(self, description: str,
                        *specs: FaultSpec) -> "FaultPlan":
        self._by_description[description] = (
            self._by_description.get(description, ()) + specs)
        return self

    @classmethod
    def seeded(cls, *, seed: int, rate: float = 0.2,
               kinds: Optional[Tuple[FaultKind, ...]] = None) -> "FaultPlan":
        """A generative plan faulting ~``rate`` of all listeners."""
        return cls(seed=seed, rate=rate, kinds=kinds)

    def _seeded_specs(self, description: str) -> Tuple[FaultSpec, ...]:
        if self.rate <= 0.0 or not description:
            return ()
        cached = self._seeded_cache.get(description)
        if cached is not None:
            return cached
        rng = random.Random(f"faultplan:{self.seed}:{description}")
        if rng.random() >= self.rate:
            specs: Tuple[FaultSpec, ...] = ()
        else:
            kind = rng.choice(self.kinds)
            if kind is FaultKind.FLAP:
                specs = (FaultSpec(
                    kind, period=rng.choice(self._FLAP_PERIODS),
                    phase=rng.randint(0, 1)),)
            elif kind is FaultKind.SLOW_START:
                specs = (FaultSpec(kind, count=rng.randint(1, 4),
                                   latency=rng.uniform(0.5, 60.0)),)
            elif kind is FaultKind.RESET:
                specs = (FaultSpec(kind, count=rng.randint(1, 4),
                                   after_bytes=rng.randint(0, 1400)),)
            else:
                specs = (FaultSpec(kind, count=rng.randint(1, 4)),)
        with self._lock:
            self._seeded_cache[description] = specs
        return specs

    def specs_for(self, ip_text: str, port: int,
                  description: str = "") -> Tuple[FaultSpec, ...]:
        """Every spec that applies to one endpoint (all three rules)."""
        return (self._by_endpoint.get((ip_text, port), ())
                + self._by_description.get(description, ())
                + self._seeded_specs(description))

    # -- the interception point ---------------------------------------

    def check(self, ip_text: str, port: int, description: str,
              attempt: int, timeout: Optional[float],
              now_epoch: int) -> None:
        """Raise the scheduled fault for this attempt, if any."""
        for spec in self.specs_for(ip_text, port, description):
            if not spec.fires(attempt, now_epoch):
                continue
            endpoint = f"{ip_text}:{port}"
            if spec.kind is FaultKind.SLOW_START:
                if timeout is None or spec.latency <= timeout:
                    continue    # slow but within budget: connect succeeds
                self._count(spec.kind, attempt)
                raise _transient(ConnectionTimeout(
                    f"{endpoint} slow-start {spec.latency:.1f}s exceeded "
                    f"{timeout:.1f}s budget"))
            self._count(spec.kind, attempt)
            if spec.kind is FaultKind.REFUSE:
                raise _transient(ConnectionRefused(
                    f"{endpoint} refused (injected, attempt {attempt})"))
            if spec.kind is FaultKind.RESET:
                raise _transient(ConnectionReset(
                    f"{endpoint} reset after {spec.after_bytes} bytes "
                    f"(injected, attempt {attempt})",
                    bytes_delivered=spec.after_bytes))
            # TIMEOUT and the FLAP down-phase both look like blackholes.
            raise _transient(ConnectionTimeout(
                f"{endpoint} timed out (injected "
                f"{spec.kind.value}, attempt {attempt})"))

    def _count(self, kind: FaultKind, attempt: int = 0) -> None:
        with self._lock:
            self.injections += 1
            self.injected_by_kind[kind.value] = (
                self.injected_by_kind.get(kind.value, 0) + 1)
        tracer = trace.current_tracer() if trace.TRACING else None
        if tracer is not None:
            tracer.metrics.count("net.faults_injected")
            span = tracer.current_span()
            if span is not None:
                span.event("fault", kind=kind.value, attempt=attempt)


class Network:
    """The shared fabric connecting all simulated hosts."""

    def __init__(self, clock=None):
        self._listeners: Dict[Tuple[str, int], Listener] = {}
        self._known_hosts: set[str] = set()
        self.clock = clock
        self.fault_plan: Optional[FaultPlan] = None
        self.connect_count = 0
        self.retried_connects = 0
        #: Virtual backoff is accumulated in integer microseconds so
        #: that cross-process stat merging (the process scan backend
        #: sums and corrects per-worker deltas) is exact integer
        #: arithmetic — float summation order would otherwise leak into
        #: the merged totals.  It also matches the unit the trace
        #: registry counts (``net.backoff_micros``) exactly.
        self.backoff_micros = 0
        self._counter_lock = threading.Lock()

    # -- server side --------------------------------------------------

    def register(self, ip: IpAddress, port: int, app: Any, *,
                 behavior: TcpBehavior = TcpBehavior.ACCEPT,
                 description: str = "") -> Listener:
        """Bind *app* to ``ip:port``.  Re-binding replaces the listener."""
        listener = Listener(ip, port, app, behavior, description)
        self._listeners[(ip.text, port)] = listener
        self._known_hosts.add(ip.text)
        return listener

    def unregister(self, ip: IpAddress, port: int) -> None:
        self._listeners.pop((ip.text, port), None)

    def register_host(self, ip: IpAddress) -> None:
        """Mark an IP as allocated even if nothing listens on it yet.

        Connecting to an allocated host with no listener on the port is
        a *refused* connection; connecting to an unallocated IP is a
        *timeout* (nothing answers at all).
        """
        self._known_hosts.add(ip.text)

    def set_behavior(self, ip: IpAddress, port: int,
                     behavior: TcpBehavior) -> None:
        key = (ip.text, port)
        if key not in self._listeners:
            raise KeyError(f"no listener on {ip}:{port}")
        self._listeners[key].behavior = behavior

    # -- fault injection ----------------------------------------------

    def install_fault_plan(self, plan: Optional[FaultPlan]) -> None:
        """Install (or with ``None`` remove) the active fault plan."""
        self.fault_plan = plan

    @property
    def faults_injected(self) -> int:
        return self.fault_plan.injections if self.fault_plan else 0

    @property
    def backoff_seconds(self) -> float:
        """Accumulated virtual backoff, in seconds (float view)."""
        return self.backoff_micros / 1_000_000

    def record_backoff(self, seconds: float) -> None:
        """Charge virtual retry-backoff time (ScanStats accounting)."""
        delay_micros = trace.micros(seconds)
        with self._counter_lock:
            self.backoff_micros += delay_micros
        tracer = trace.current_tracer() if trace.TRACING else None
        if tracer is not None:
            tracer.metrics.count("net.backoff_micros", delay_micros)
            tracer.metrics.observe("retry.backoff", delay_micros)

    # -- client side --------------------------------------------------

    def connect(self, ip: IpAddress, port: int, *, attempt: int = 0,
                timeout: Optional[float] = None) -> Any:
        """Attempt a TCP connection; return the application object.

        *attempt* is the caller's zero-based retry index for this
        operation; the fault plan keys attempt-scoped schedules off it.
        *timeout* is the caller's remaining (virtual) time budget in
        seconds: a scheduled slow-start latency larger than the budget
        surfaces as a :class:`ConnectionTimeout`.

        Raises
        ------
        ConnectionTimeout
            The IP is unallocated, the listener blackholes SYNs, or an
            injected timeout/flap/slow-start fault fired.
        ConnectionRefused
            The host exists but nothing accepts on this port, or an
            injected refusal fired.
        ConnectionReset
            An injected mid-exchange reset fired.
        """
        with self._counter_lock:
            self.connect_count += 1
            if attempt:
                self.retried_connects += 1
        tracer = trace.current_tracer() if trace.TRACING else None
        if tracer is not None:
            tracer.metrics.count("net.connects")
            if attempt:
                tracer.metrics.count("net.connect_retries")
        listener = self._listeners.get((ip.text, port))
        if self.fault_plan is not None:
            now_epoch = (self.clock.now().epoch_seconds
                         if self.clock is not None else 0)
            self.fault_plan.check(
                ip.text, port, listener.description if listener else "",
                attempt, timeout, now_epoch)
        if listener is None:
            if ip.text in self._known_hosts:
                raise ConnectionRefused(f"{ip}:{port} refused")
            raise ConnectionTimeout(f"{ip}:{port} timed out")
        if listener.behavior is TcpBehavior.REFUSE:
            raise ConnectionRefused(f"{ip}:{port} refused")
        if listener.behavior is TcpBehavior.TIMEOUT:
            raise ConnectionTimeout(f"{ip}:{port} timed out")
        return listener.app

    def listener_at(self, ip: IpAddress, port: int) -> Listener | None:
        return self._listeners.get((ip.text, port))

    def endpoints(self) -> list[Tuple[str, int]]:
        return sorted(self._listeners)

    def listeners(self) -> list[Listener]:
        """Every registered listener, in deterministic endpoint order."""
        return [self._listeners[key] for key in sorted(self._listeners)]
