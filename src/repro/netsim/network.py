"""TCP-level reachability for the simulated internet.

The :class:`Network` is the single rendezvous object shared by every
simulated host.  Servers (authoritative DNS, HTTPS policy hosts, SMTP
MX hosts) register a :class:`Listener` on an ``(ip, port)`` endpoint;
clients call :meth:`Network.connect` and either receive the listener's
application object or a transport exception that mirrors what a real
scanner would see: connection refused (no listener / closed port) or a
timeout (firewalled or blackholed host).

This layer is what lets the measurement pipeline distinguish the
paper's "TCP errors" (closed ports, connection timeouts — Figure 5)
from everything else.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.errors import ConnectionRefused, ConnectionTimeout, HostUnreachable
from repro.netsim.ip import IpAddress


class TcpBehavior(enum.Enum):
    """How an endpoint responds to a connection attempt."""

    ACCEPT = "accept"
    REFUSE = "refuse"      # RST: port closed
    TIMEOUT = "timeout"    # SYN blackholed: firewall drop


@dataclass
class Listener:
    """A registered service endpoint."""

    ip: IpAddress
    port: int
    app: Any
    behavior: TcpBehavior = TcpBehavior.ACCEPT
    description: str = ""


class Network:
    """The shared fabric connecting all simulated hosts."""

    def __init__(self):
        self._listeners: Dict[Tuple[str, int], Listener] = {}
        self._known_hosts: set[str] = set()
        self.connect_count = 0

    # -- server side --------------------------------------------------

    def register(self, ip: IpAddress, port: int, app: Any, *,
                 behavior: TcpBehavior = TcpBehavior.ACCEPT,
                 description: str = "") -> Listener:
        """Bind *app* to ``ip:port``.  Re-binding replaces the listener."""
        listener = Listener(ip, port, app, behavior, description)
        self._listeners[(ip.text, port)] = listener
        self._known_hosts.add(ip.text)
        return listener

    def unregister(self, ip: IpAddress, port: int) -> None:
        self._listeners.pop((ip.text, port), None)

    def register_host(self, ip: IpAddress) -> None:
        """Mark an IP as allocated even if nothing listens on it yet.

        Connecting to an allocated host with no listener on the port is
        a *refused* connection; connecting to an unallocated IP is a
        *timeout* (nothing answers at all).
        """
        self._known_hosts.add(ip.text)

    def set_behavior(self, ip: IpAddress, port: int,
                     behavior: TcpBehavior) -> None:
        key = (ip.text, port)
        if key not in self._listeners:
            raise KeyError(f"no listener on {ip}:{port}")
        self._listeners[key].behavior = behavior

    # -- client side --------------------------------------------------

    def connect(self, ip: IpAddress, port: int) -> Any:
        """Attempt a TCP connection; return the application object.

        Raises
        ------
        ConnectionTimeout
            The IP is unallocated, or the listener blackholes SYNs.
        ConnectionRefused
            The host exists but nothing accepts on this port.
        """
        self.connect_count += 1
        listener = self._listeners.get((ip.text, port))
        if listener is None:
            if ip.text in self._known_hosts:
                raise ConnectionRefused(f"{ip}:{port} refused")
            raise ConnectionTimeout(f"{ip}:{port} timed out")
        if listener.behavior is TcpBehavior.REFUSE:
            raise ConnectionRefused(f"{ip}:{port} refused")
        if listener.behavior is TcpBehavior.TIMEOUT:
            raise ConnectionTimeout(f"{ip}:{port} timed out")
        return listener.app

    def listener_at(self, ip: IpAddress, port: int) -> Listener | None:
        return self._listeners.get((ip.text, port))

    def endpoints(self) -> list[Tuple[str, int]]:
        return sorted(self._listeners)

    def listeners(self) -> list[Listener]:
        """Every registered listener, in deterministic endpoint order."""
        return [self._listeners[key] for key in sorted(self._listeners)]
