"""Retry with deterministic exponential backoff.

Real measurement platforms separate transient network noise from true
misconfiguration by retrying failed probes (cf. "No Need for Black
Chambers" and the SPF "Lazy Gatekeepers" study); this module gives the
simulated scanner the same semantics without real sleeping.  A
:class:`RetryPolicy` fixes the attempt budget, the exponential backoff
curve, and a *virtual* per-operation timeout budget; jitter is drawn
from an RNG seeded by ``(policy seed, operation key, attempt)`` so
every backoff sequence is a pure function of its inputs — the serial
and threaded scan backends compute identical schedules regardless of
thread interleaving, and tests can pin exact sequences.

Backoff never sleeps: delays are charged against the operation's
virtual budget and accumulated as integer microseconds on
:class:`~repro.netsim.network.Network` (``backoff_micros``;
``backoff_seconds`` is the derived float view) for ``ScanStats``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List

from repro import trace
from repro.errors import NetworkError
from repro.netsim.ip import IpAddress


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget + deterministic exponential backoff with jitter.

    ``max_attempts`` counts connection attempts, so ``max_attempts=3``
    means the original try plus two retries.  The delay before retry
    ``n`` (zero-based) is ``base_delay * multiplier**n`` capped at
    ``max_delay``, then spread by ``jitter`` (a ± fraction) using an
    RNG seeded from ``(seed, key, n)`` — no shared RNG state, so the
    schedule for one operation never depends on what other operations
    (or threads) did.  ``timeout_budget`` is the operation's total
    virtual time in seconds; once cumulative backoff exceeds it the
    operation stops retrying even with attempts left.
    """

    max_attempts: int = 3
    base_delay: float = 0.25
    multiplier: float = 2.0
    max_delay: float = 8.0
    jitter: float = 0.5
    seed: int = 0
    timeout_budget: float = 30.0

    def backoff(self, key: str, attempt: int) -> float:
        """The delay (virtual seconds) before retrying *attempt*."""
        raw = min(self.base_delay * self.multiplier ** attempt,
                  self.max_delay)
        if not self.jitter:
            return raw
        rng = random.Random(f"retry:{self.seed}:{key}:{attempt}")
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def backoff_sequence(self, key: str) -> List[float]:
        """Every inter-attempt delay one operation could incur."""
        return [self.backoff(key, attempt)
                for attempt in range(self.max_attempts - 1)]


#: The scan pipeline's default: three attempts, sub-second base delay.
DEFAULT_RETRY_POLICY = RetryPolicy()


def connect_with_retries(network, ip: IpAddress, port: int, *,
                         policy: RetryPolicy = DEFAULT_RETRY_POLICY,
                         key: str = "") -> Any:
    """``Network.connect`` under *policy*: retry transport failures.

    Every transport failure — refused, timeout, reset — is retried
    uniformly (a real scanner cannot see whether a failure is
    transient), with the attempt index threaded through to the fault
    layer and the remaining virtual budget passed as the connect
    timeout.  The final exception is re-raised unchanged, so its
    ``transient`` flag tells the caller whether the operation died on
    an injected fault (retry-exhausted transient) or a deterministic
    hard failure.
    """
    key = key or f"{ip.text}:{port}"
    # The whole retry loop is one flat resource span: which scan shard
    # executes a compute-once operation is scheduling-dependent, but
    # the operation's attempt/fault/backoff sequence is a pure function
    # of (key, fault plan, virtual clock), so the recorded span is
    # byte-identical regardless of attribution.  This is the pipeline's
    # hottest trace site, so the untraced path pays only the
    # ``trace.TRACING`` read plus ``span is None`` checks — no extra
    # function call, thread-local lookup, or generator frame.
    tracer = trace.current_tracer() if trace.TRACING else None
    span = (tracer.begin_resource(f"net:{key}", "connect", key)
            if tracer is not None else None)
    try:
        budget = policy.timeout_budget
        last_error: NetworkError | None = None
        for attempt in range(max(1, policy.max_attempts)):
            try:
                result = network.connect(ip, port, attempt=attempt,
                                         timeout=budget)
                if span is not None:
                    span.event("attempt", n=attempt, outcome="connected")
                return result
            except NetworkError as exc:
                last_error = exc
                if span is not None:
                    span.event("attempt", n=attempt,
                               outcome=type(exc).__name__,
                               transient=getattr(exc, "transient", False))
            if attempt + 1 >= policy.max_attempts:
                break
            delay = policy.backoff(key, attempt)
            network.record_backoff(delay)
            if span is not None:
                span.event("backoff", micros=trace.micros(delay))
            budget -= delay
            if budget <= 0.0:
                if span is not None:
                    span.event("budget-exhausted", n=attempt)
                break
        assert last_error is not None
        raise last_error
    finally:
        if tracer is not None:
            tracer.end_resource(f"net:{key}")
