"""The simulated internet: IP addressing and TCP-level reachability."""

from repro.netsim.ip import IpAddress, IpPool
from repro.netsim.network import Network, TcpBehavior, Listener

__all__ = ["IpAddress", "IpPool", "Network", "TcpBehavior", "Listener"]
