"""Filesystem helpers shared by the trace, observability, and campaign
persistence writers."""

from __future__ import annotations

import os
import tempfile

__all__ = ["atomic_write_text", "ensure_dir", "read_text"]


def ensure_dir(path: str) -> str:
    """Create *path* (and parents) if needed; returns the absolute path."""
    path = os.path.abspath(path)
    os.makedirs(path, exist_ok=True)
    return path


def read_text(path: str) -> str:
    """Read a UTF-8 text file in one call."""
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def atomic_write_text(path: str, text: str) -> None:
    """Write *text* to *path* atomically.

    The text goes to a temporary file in the target directory first and
    is moved into place with :func:`os.replace`, so readers never see a
    truncated artifact: an interrupted run leaves either the previous
    file or the complete new one, never a partial write.
    """
    path = os.path.abspath(path)
    directory = os.path.dirname(path)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
