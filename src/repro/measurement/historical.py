"""Historical MX matching (paper Figure 9).

Domains with a *complete domain mismatch* often are not misconfigured
randomly: their policy still lists the MX hosts they used before a
mail-server migration.  The analysis takes every currently mismatched
domain and asks whether any earlier snapshot's MX records match the
current policy's mx patterns; the paper finds a rising share (63% at
the end) does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.matching import policy_covers_mx
from repro.errors import MismatchClass
from repro.measurement.inconsistency import classify_snapshot
from repro.measurement.snapshots import DomainSnapshot, SnapshotStore


@dataclass
class HistoricalMatch:
    domain: str
    matched: bool
    matched_month: int | None = None
    historical_mx: tuple = ()


def domain_mismatch_candidates(snapshots: List[DomainSnapshot]
                               ) -> List[DomainSnapshot]:
    """The Figure-9 universe: snapshots with complete-domain mismatches."""
    out = []
    for snap in snapshots:
        verdict = classify_snapshot(snap)
        if verdict.mismatch and verdict.mismatch_class is MismatchClass.DOMAIN:
            out.append(snap)
    return out


def match_against_history(store: SnapshotStore,
                          snap: DomainSnapshot) -> HistoricalMatch:
    """Search earlier snapshots of *snap.domain* for MX records that the
    current policy's patterns cover."""
    for earlier in store.domain_history(snap.domain):
        if earlier.month_index >= snap.month_index:
            break
        if not earlier.mx_hostnames:
            continue
        if any(policy_covers_mx(snap.mx_patterns, mx)
               for mx in earlier.mx_hostnames):
            return HistoricalMatch(snap.domain, True, earlier.month_index,
                                   tuple(earlier.mx_hostnames))
    return HistoricalMatch(snap.domain, False)


def historical_match_rate(store: SnapshotStore, month_index: int) -> dict:
    """One Figure-9 point: among month *month_index*'s domain-mismatch
    population, the share explainable by obsolete MX records."""
    month_snaps = store.month(month_index)
    candidates = domain_mismatch_candidates(month_snaps)
    matches = [match_against_history(store, snap) for snap in candidates]
    matched = sum(1 for m in matches if m.matched)
    return {
        "month_index": month_index,
        "candidates": len(candidates),
        "matched": matched,
        "percent": 100.0 * matched / len(candidates) if candidates else 0.0,
    }


def historical_series(store: SnapshotStore) -> List[dict]:
    """Figure 9's full time series over every stored month."""
    return [historical_match_rate(store, month)
            for month in store.months()]
