"""Folding snapshots into the paper's error taxonomy.

:func:`categorize` maps one domain snapshot onto the four Figure-4
categories; :func:`snapshot_summary` aggregates one month's
cross-section into every count the paper reports for a snapshot —
the inputs to Figures 4, 5, 6 and 7.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.matching import policy_covers_mx
from repro.errors import ManagingEntity, MisconfigCategory
from repro.measurement.classify import EntityClassifier, EntityVerdict
from repro.measurement.snapshots import DomainSnapshot


def categorize(snap: DomainSnapshot) -> List[MisconfigCategory]:
    """The Figure-4 categories one snapshot falls into (not exclusive).

    A snapshot carrying transient markers (retry-exhausted injected
    faults) additionally falls into ``TRANSIENT`` — its other
    observations are unreliable, which is why :func:`snapshot_summary`
    excludes transient snapshots from the misconfiguration tallies
    rather than letting network noise inflate Figure 4.
    """
    categories: List[MisconfigCategory] = []
    if snap.any_transient:
        categories.append(MisconfigCategory.TRANSIENT)
    if not snap.sts_like:
        return categories
    if not snap.record_valid:
        categories.append(MisconfigCategory.DNS_RECORD)
    if snap.policy_fetch_stage is not None or snap.policy_syntax_errors:
        categories.append(MisconfigCategory.POLICY_RETRIEVAL)
    if snap.any_invalid_mx_cert:
        categories.append(MisconfigCategory.MX_CERTIFICATE)
    if not snap.consistent:
        categories.append(MisconfigCategory.INCONSISTENCY)
    return categories


#: Every value :func:`primary_bucket` can return, in priority order.
PRIMARY_BUCKETS = ("transient", "not-sts", "dns-record",
                   "policy-retrieval", "mx-certificate", "inconsistency",
                   "ok")


def primary_bucket(snap: DomainSnapshot) -> str:
    """A *total, exclusive* classification of one snapshot.

    Every scanned domain lands in exactly one bucket: ``transient``
    (any retry-exhausted injected fault — the observation is noise),
    ``not-sts`` (no MTA-STS signal), the highest-priority Figure-4
    category, or ``ok``.  The fault-robustness property tests assert
    totality: no fault plan may make a domain unclassifiable.
    """
    if snap.any_transient:
        return "transient"
    if not snap.sts_like:
        return "not-sts"
    categories = categorize(snap)
    if categories:
        return categories[0].value
    return "ok"


def delivery_failure_expected(snap: DomainSnapshot) -> bool:
    """Would an RFC 8461-compliant sender fail to deliver? (§4's 3.2%)."""
    if not snap.enforce_mode or not snap.policy_ok:
        return False
    if not snap.mx_hostnames:
        return False
    matching = [mx for mx in snap.mx_hostnames
                if policy_covers_mx(snap.mx_patterns, mx)]
    if not matching:
        return True
    observed = {o.hostname: o for o in snap.mx_observations}
    verdicts = [observed[mx] for mx in matching if mx in observed]
    usable = [v for v in verdicts if v.tls_established]
    return bool(usable) and all(not v.cert_valid for v in usable)


@dataclass
class SnapshotSummary:
    """Every per-month aggregate the paper's figures use."""

    month_index: int
    total_sts: int = 0
    misconfigured: int = 0
    delivery_failures: int = 0
    #: Snapshots (STS or not) that died on retry-exhausted injected
    #: faults.  Excluded from every misconfiguration tally: transient
    #: network noise is not a misconfiguration.
    transient: int = 0
    category_counts: Counter = field(default_factory=Counter)
    # Figure 5: policy errors by stage x entity
    policy_errors_by_entity: Dict[str, Counter] = field(
        default_factory=lambda: {"self-managed": Counter(),
                                 "third-party": Counter(),
                                 "unclassified": Counter()})
    policy_entity_totals: Counter = field(default_factory=Counter)
    # Figure 6: MX cert failure classes x entity
    mx_cert_by_entity: Dict[str, Counter] = field(
        default_factory=lambda: {"self-managed": Counter(),
                                 "third-party": Counter(),
                                 "unclassified": Counter()})
    mx_entity_totals: Counter = field(default_factory=Counter)
    mx_invalid_by_entity: Counter = field(default_factory=Counter)
    # Figure 7
    all_invalid_mx: int = 0
    partially_invalid_mx: int = 0
    enforce_invalid_mx: int = 0
    # Figure 8 precursor: inconsistent domains and their modes
    inconsistent: int = 0
    enforce_inconsistent: int = 0

    def misconfigured_percent(self) -> float:
        return 100.0 * self.misconfigured / self.total_sts if self.total_sts else 0.0

    def category_percent(self, category: MisconfigCategory) -> float:
        if not self.total_sts:
            return 0.0
        return 100.0 * self.category_counts[category.value] / self.total_sts


def snapshot_summary(snapshots: List[DomainSnapshot],
                     verdicts: Optional[Dict[str, EntityVerdict]] = None
                     ) -> SnapshotSummary:
    """Aggregate one month's snapshots (optionally with entity verdicts).

    Snapshots carrying transient markers are tallied in
    ``summary.transient`` and dropped before attribution: a scan that
    lost a domain to network faults has no reliable observation to
    classify, so ``total_sts`` and every figure count only settled
    snapshots.
    """
    transient_count = sum(1 for s in snapshots if s.any_transient)
    sts = [s for s in snapshots if s.sts_like and not s.any_transient]
    month = snapshots[0].month_index if snapshots else 0
    summary = SnapshotSummary(month_index=month, total_sts=len(sts),
                              transient=transient_count)
    if verdicts is None:
        verdicts = EntityClassifier(snapshots).classify_all()

    for snap in sts:
        verdict = verdicts.get(snap.domain, EntityVerdict(snap.domain))
        categories = categorize(snap)
        if categories:
            summary.misconfigured += 1
        for category in categories:
            summary.category_counts[category.value] += 1
        if delivery_failure_expected(snap):
            summary.delivery_failures += 1

        # Figure 5 breakdown
        policy_entity = _entity_key(verdict.policy)
        summary.policy_entity_totals[policy_entity] += 1
        if snap.policy_fetch_stage is not None:
            summary.policy_errors_by_entity[policy_entity][
                snap.policy_fetch_stage] += 1
        elif snap.policy_syntax_errors:
            summary.policy_errors_by_entity[policy_entity]["policy-syntax"] += 1

        # Figures 6/7
        mx_entity = _entity_key(verdict.mx)
        summary.mx_entity_totals[mx_entity] += 1
        if snap.any_invalid_mx_cert:
            summary.mx_invalid_by_entity[mx_entity] += 1
            classes = {o.failure_class for o in snap.mx_tls_capable
                       if not o.cert_valid}
            for failure_class in classes:
                summary.mx_cert_by_entity[mx_entity][failure_class] += 1
            if snap.all_invalid_mx_cert:
                summary.all_invalid_mx += 1
            else:
                summary.partially_invalid_mx += 1
            if snap.enforce_mode and snap.all_invalid_mx_cert:
                summary.enforce_invalid_mx += 1

        if not snap.consistent:
            summary.inconsistent += 1
            if snap.enforce_mode:
                summary.enforce_inconsistent += 1
    return summary


def _entity_key(entity: ManagingEntity) -> str:
    return {ManagingEntity.SELF_MANAGED: "self-managed",
            ManagingEntity.THIRD_PARTY: "third-party",
            ManagingEntity.UNCLASSIFIED: "unclassified"}[entity]
